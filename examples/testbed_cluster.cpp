// Testbed cluster: run the actual FastPR prototype (coordinator +
// agents moving real bytes over a bandwidth-shaped transport) — the
// in-process equivalent of the paper's 25-instance EC2 deployment.
//
// Executes all three strategies in both repair scenarios, verifies
// every repaired chunk byte-for-byte, and prints a summary.
//
//   ./examples/testbed_cluster            # in-process shaped transport
//   ./examples/testbed_cluster --tcp      # real TCP over loopback
#include <cstdio>
#include <cstring>

#include "agent/testbed.h"

#include "util/logging.h"
#include "ec/rs_code.h"
#include "util/units.h"

using namespace fastpr;

int main(int argc, char** argv) {
  const bool use_tcp = argc > 1 && std::strcmp(argv[1], "--tcp") == 0;
  set_log_level(LogLevel::kWarn);

  ec::RsCode code(9, 6);
  agent::TestbedOptions opts;
  opts.num_storage = 21;  // the paper's EC2 layout: 21 DataNodes...
  opts.num_standby = 3;   // ...plus 3 hot-standby instances
  // EC2 m5.large bandwidths scaled 1/4 (chunks are scaled 1/32), so
  // the shaped I/O stays dominant over local CPU on small hosts.
  opts.disk_bytes_per_sec = MBps(142) / 4;
  opts.net_bytes_per_sec = Gbps(5) / 4;
  opts.chunk_bytes = static_cast<uint64_t>(MB(2));  // scaled-down chunks
  opts.packet_bytes = 256 << 10;
  opts.num_stripes = 70;
  opts.seed = 123;
  opts.use_tcp = use_tcp;

  std::printf("testbed: %d storage + %d standby nodes, %s transport\n",
              opts.num_storage, opts.num_standby,
              use_tcp ? "TCP loopback" : "in-process shaped");
  std::printf("RS(9,6), 2 MB chunks, 256 KB packets, bd=35.5 MB/s, bn=1.25 Gb/s\n\n");

  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    std::printf("--- %s repair ---\n", core::to_string(scenario).c_str());
    for (const char* strategy : {"fastpr", "reconstruction", "migration"}) {
      agent::Testbed tb(opts, code);
      const auto stf = tb.flag_stf();
      auto planner = tb.make_planner(scenario);
      core::RepairPlan plan;
      if (std::strcmp(strategy, "fastpr") == 0) {
        plan = planner.plan_fastpr();
      } else if (std::strcmp(strategy, "reconstruction") == 0) {
        plan = planner.plan_reconstruction_only();
      } else {
        plan = planner.plan_migration_only();
      }
      const auto report = tb.execute(plan);
      const bool verified = tb.verify(plan);
      std::printf(
          "%-15s stf=%2d U=%2d rounds=%2zu migrated=%2d reconstructed=%2d "
          "time=%6.2fs per-chunk=%5.3fs %s\n",
          strategy, stf, tb.layout().load(stf), plan.rounds.size(),
          report.migrated, report.reconstructed, report.total_seconds,
          report.per_chunk(),
          report.success && verified ? "VERIFIED" : "FAILED");
    }
    std::printf("\n");
  }
  return 0;
}
