// Quickstart: plan and simulate a predictive repair in ~50 lines.
//
// A 60-node cluster stores 500 stripes of RS(9,6). Node health
// monitoring has flagged one node as soon-to-fail (STF); FastPR builds
// a coupled migration+reconstruction plan and we compare its simulated
// repair time against the two single-method baselines and the
// analytical optimum.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/fastpr.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

using namespace fastpr;

int main() {
  // --- Describe the cluster. ---
  const int num_nodes = 60;
  Rng rng(/*seed=*/42);
  auto layout = cluster::StripeLayout::random(num_nodes, /*n=*/9,
                                              /*stripes=*/500, rng);
  cluster::ClusterState state(
      num_nodes, /*hot_standby=*/3,
      cluster::BandwidthProfile{MBps(100), Gbps(1)});

  // --- The failure predictor flags an STF node (here: most loaded). ---
  cluster::NodeId stf = 0;
  for (cluster::NodeId node = 1; node < num_nodes; ++node) {
    if (layout.load(node) > layout.load(stf)) stf = node;
  }
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  std::printf("STF node %d stores %d chunks\n", stf, layout.load(stf));

  // --- Plan the repair. ---
  core::PlannerOptions options;
  options.scenario = core::Scenario::kScattered;
  options.k_repair = 6;                              // RS(9,6)
  options.chunk_bytes = static_cast<double>(MB(64));
  core::FastPrPlanner planner(layout, state, options);

  const auto plan = planner.plan_fastpr();
  std::printf("FastPR plan: %zu rounds, %d migrated, %d reconstructed\n",
              plan.rounds.size(), plan.total_migrated(),
              plan.total_reconstructed());
  core::validate_plan(plan, layout, state, options.k_repair);

  // --- Simulate it against the baselines. ---
  sim::SimParams sim_params;
  sim_params.chunk_bytes = options.chunk_bytes;
  sim_params.disk_bw = MBps(100);
  sim_params.net_bw = Gbps(1);
  sim_params.k_repair = 6;
  sim_params.scenario = core::Scenario::kScattered;

  const auto fastpr = sim::simulate(plan, sim_params);
  const auto recon =
      sim::simulate(planner.plan_reconstruction_only(), sim_params);
  const auto migr = sim::simulate(planner.plan_migration_only(), sim_params);
  const auto optimum = planner.cost_model().predictive_time_per_chunk();

  std::printf("\nrepair time per chunk:\n");
  std::printf("  FastPR               %.3f s\n", fastpr.per_chunk());
  std::printf("  reconstruction-only  %.3f s  (conventional reactive)\n",
              recon.per_chunk());
  std::printf("  migration-only       %.3f s\n", migr.per_chunk());
  std::printf("  analytic optimum     %.3f s\n", optimum);
  std::printf("\nFastPR cuts reactive repair by %.1f%%\n",
              100.0 * (1.0 - fastpr.per_chunk() / recon.per_chunk()));
  return 0;
}
