// LRC scenario (§III "Extension for LRCs"): locally repairable codes
// fetch only k' = k/l helpers per repaired chunk, which changes the
// whole migration/reconstruction trade-off. This example plans FastPR
// for Azure-style LRC(12, l=2, g=2) next to RS(16,12) — same storage
// overhead class — and shows both the analytic and simulated effect,
// then executes the LRC plan on the byte-level testbed.
//
//   ./examples/lrc_repair
#include <cstdio>

#include "agent/testbed.h"

#include "util/logging.h"
#include "core/fastpr.h"
#include "ec/lrc_code.h"
#include "ec/rs_code.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

using namespace fastpr;

namespace {

struct Outcome {
  double fastpr = 0;
  double reactive = 0;
  double optimum = 0;
};

Outcome plan_and_simulate(const ec::ErasureCode& code, int k_repair,
                          uint64_t seed) {
  const int num_nodes = 80;
  Rng rng(seed);
  auto layout =
      cluster::StripeLayout::random(num_nodes, code.n(), 600, rng);
  cluster::ClusterState state(
      num_nodes, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  cluster::NodeId stf = 0;
  for (cluster::NodeId n = 1; n < num_nodes; ++n) {
    if (layout.load(n) > layout.load(stf)) stf = n;
  }
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);

  core::PlannerOptions options;
  options.k_repair = k_repair;
  options.chunk_bytes = static_cast<double>(MB(64));
  options.code = &code;
  core::FastPrPlanner planner(layout, state, options);

  sim::SimParams sp;
  sp.chunk_bytes = options.chunk_bytes;
  sp.disk_bw = MBps(100);
  sp.net_bw = Gbps(1);
  sp.k_repair = k_repair;

  Outcome out;
  out.fastpr = sim::simulate(planner.plan_fastpr(), sp).per_chunk();
  out.reactive =
      sim::simulate(planner.plan_reconstruction_only(), sp).per_chunk();
  out.optimum = planner.cost_model().predictive_time_per_chunk();
  return out;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  ec::RsCode rs(16, 12);
  ec::LrcCode lrc(12, /*l=*/2, /*g=*/2);  // n = 16 as well

  std::printf("codes: %s vs %s — both n=16, 12 data chunks\n",
              rs.name().c_str(), lrc.name().c_str());
  std::printf("single-chunk repair fetch: RS k=%d, LRC k'=%d\n\n",
              rs.repair_fetch_count(0), lrc.repair_fetch_count(0));

  const auto rs_out = plan_and_simulate(rs, 12, 5);
  const auto lrc_out = plan_and_simulate(lrc, 6, 5);

  std::printf("simulated repair time per chunk (s):\n");
  std::printf("  %-12s fastpr=%.3f reactive=%.3f optimum=%.3f\n",
              rs.name().c_str(), rs_out.fastpr, rs_out.reactive,
              rs_out.optimum);
  std::printf("  %-12s fastpr=%.3f reactive=%.3f optimum=%.3f\n",
              lrc.name().c_str(), lrc_out.fastpr, lrc_out.reactive,
              lrc_out.optimum);
  std::printf(
      "\nLRC locality (k'=%d) cuts FastPR repair time by %.1f%% vs "
      "RS(16,12)\n\n",
      lrc.repair_fetch_count(0),
      100.0 * (1.0 - lrc_out.fastpr / rs_out.fastpr));

  // --- Byte-level proof on the testbed. ---
  agent::TestbedOptions topts;
  topts.num_storage = 20;
  topts.num_standby = 2;
  topts.chunk_bytes = static_cast<uint64_t>(MB(1));
  topts.packet_bytes = 128 << 10;
  topts.num_stripes = 40;
  topts.seed = 77;
  agent::Testbed tb(topts, lrc);
  tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  const auto report = tb.execute(plan);
  std::printf("testbed LRC repair: %d chunks in %.2f s — %s\n",
              report.repaired(), report.total_seconds,
              report.success && tb.verify(plan)
                  ? "all chunks byte-verified"
                  : "FAILED");
  return 0;
}
