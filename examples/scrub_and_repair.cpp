// Scrub-and-repair: latent sector errors end to end.
//
// The paper motivates predictive repair with the prevalence of latent
// sector errors [4] — damage the disk does NOT report at write time.
// This example runs the whole defensive loop on the byte-level testbed:
//   1. chunks live in checksummed stores (CRC-32C recorded at write);
//   2. silent corruption strikes a few stored chunks;
//   3. a background scrub pass finds the mismatches;
//   4. the damaged chunks are reconstructed from their stripes' healthy
//      peers and verified bit-exact.
//
//   ./examples/scrub_and_repair
#include <cstdio>

#include "agent/testbed.h"
#include "core/repair_plan.h"
#include "ec/rs_code.h"
#include "util/logging.h"
#include "util/units.h"

using namespace fastpr;

int main() {
  set_log_level(LogLevel::kWarn);
  ec::RsCode code(6, 4);

  agent::TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 0;
  opts.chunk_bytes = 256 << 10;
  opts.packet_bytes = 64 << 10;
  opts.num_stripes = 25;
  opts.seed = 31;
  agent::Testbed tb(opts, code);

  // 1+2. Materialize some chunks on node 0 (writes record CRC-32C),
  // then corrupt two of them silently.
  auto& store = tb.store(0);
  const auto on_node = tb.layout().chunks_on(0);
  std::printf("node 0 holds %zu chunks; materializing and corrupting 2\n",
              on_node.size());
  std::vector<std::vector<uint8_t>> pristine;
  for (size_t i = 0; i < 4 && i < on_node.size(); ++i) {
    auto content = store.read_unthrottled(on_node[i]);
    pristine.push_back(*content);
    store.write_unthrottled(on_node[i], std::move(*content));
  }
  store.corrupt(on_node[0], 12345);
  store.corrupt(on_node[1], 777);

  // 3. Background scrub finds exactly the damaged chunks.
  const auto damaged = store.scrub();
  std::printf("scrub found %zu damaged chunks\n", damaged.size());
  for (const auto& chunk : damaged) {
    std::printf("  stripe %d index %d\n", chunk.stripe, chunk.index);
  }

  // 4. Reconstruct each damaged chunk from its healthy peers, in place.
  core::RepairPlan plan;
  plan.stf_node = 0;
  for (const auto& chunk : damaged) {
    // Pretend the chunk is lost: read k peers and decode.
    const auto& nodes = tb.layout().stripe_nodes(chunk.stripe);
    std::vector<bool> available(nodes.size(), true);
    available[static_cast<size_t>(chunk.index)] = false;
    const auto helpers = code.repair_helpers(chunk.index, available);
    std::vector<std::vector<uint8_t>> helper_data;
    helper_data.reserve(helpers.size());  // spans must stay valid
    for (int h : helpers) {
      auto data = tb.store(nodes[static_cast<size_t>(h)])
                      .read_unthrottled({chunk.stripe, h});
      helper_data.push_back(std::move(*data));
    }
    std::vector<ec::ConstChunk> helper_spans(helper_data.begin(),
                                             helper_data.end());
    std::vector<uint8_t> repaired(opts.chunk_bytes);
    code.repair_chunk(chunk.index, helpers, helper_spans, repaired);
    store.write_unthrottled(chunk, std::move(repaired));
  }

  const auto after = store.scrub();
  std::printf("scrub after repair: %zu damaged chunks\n", after.size());
  // The decode must restore the exact original bytes, not merely
  // checksum-consistent ones.
  bool exact = true;
  for (size_t i = 0; i < pristine.size(); ++i) {
    exact &= *store.read_unthrottled(on_node[i]) == pristine[i];
  }
  std::printf(after.empty() && exact
                  ? "all chunks healthy and byte-identical again\n"
                  : "REPAIR FAILED\n");
  return after.empty() && exact ? 0 : 1;
}
