// Predictive-maintenance scenario: the full lifecycle the paper's
// introduction motivates.
//
// A fleet of disks reports SMART telemetry daily. A predictor watches
// the fleet; the day it flags a soon-to-fail disk, FastPR repairs that
// node's chunks in advance. We then compare the window of vulnerability
// (time during which the flagged node's data has reduced redundancy)
// against the conventional reactive approach that waits for the disk to
// actually die.
//
//   ./examples/predictive_maintenance
#include <cstdio>

#include "core/fastpr.h"
#include "predict/predictor.h"
#include "predict/trace_generator.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

using namespace fastpr;

int main() {
  const int num_nodes = 80;
  Rng rng(7);

  // --- Synthesize 90 days of SMART telemetry; one disk degrades. ---
  predict::TraceConfig tcfg;
  tcfg.num_disks = num_nodes;
  tcfg.failure_fraction = 1.0 / num_nodes;
  tcfg.silent_failure_fraction = 0.0;
  const auto traces = predict::generate_traces(tcfg, rng);

  double failure_day = 0;
  for (const auto& t : traces) {
    if (t.will_fail) failure_day = t.failure_day;
  }
  std::printf("ground truth: one disk fails on day %.1f\n", failure_day);

  // --- Daily predictor sweep: when is the STF flag raised? ---
  const predict::LogisticPredictor predictor;
  double flag_day = -1;
  int stf = -1;
  for (double day = 1; day <= tcfg.horizon_days; day += 1.0) {
    const int candidate = predict::select_stf_disk(predictor, traces, day);
    if (candidate >= 0) {
      flag_day = day;
      stf = candidate;
      break;
    }
  }
  if (stf < 0) {
    std::printf("predictor never fired — no proactive repair possible\n");
    return 1;
  }
  std::printf("predictor flags disk %d on day %.1f (%.1f days of lead)\n",
              stf, flag_day, failure_day - flag_day);

  // Predictor quality on the whole fleet at flag time.
  const auto eval = predict::evaluate(predictor, traces, flag_day, 30.0);
  std::printf("fleet-wide accuracy %.1f%%, false alarm rate %.2f%%\n",
              100 * eval.accuracy(), 100 * eval.false_alarm_rate());

  // --- Proactive repair of the flagged node. ---
  auto layout = cluster::StripeLayout::random(num_nodes, 9, 800, rng);
  cluster::ClusterState state(
      num_nodes, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);

  core::PlannerOptions options;
  options.k_repair = 6;
  options.chunk_bytes = static_cast<double>(MB(64));
  core::FastPrPlanner planner(layout, state, options);

  sim::SimParams sp;
  sp.chunk_bytes = options.chunk_bytes;
  sp.disk_bw = MBps(100);
  sp.net_bw = Gbps(1);
  sp.k_repair = 6;

  const auto fastpr = sim::simulate(planner.plan_fastpr(), sp);
  const auto reactive =
      sim::simulate(planner.plan_reconstruction_only(), sp);

  // --- Window of vulnerability. ---
  // Predictive: data is fully redundant again fastpr.total_time after
  // the flag — days before the disk dies. Reactive: redundancy is
  // reduced from the failure until reconstruction completes.
  const double lead_seconds = (failure_day - flag_day) * 86400.0;
  std::printf("\nrepairing %d chunks of node %d:\n",
              fastpr.repaired(), stf);
  std::printf("  FastPR (predictive) total time    %.1f s\n",
              fastpr.total_time);
  std::printf("  reactive reconstruction total     %.1f s\n",
              reactive.total_time);
  if (fastpr.total_time < lead_seconds) {
    std::printf(
        "  predictive repair finishes %.1f days BEFORE the failure —\n"
        "  window of vulnerability: 0 s (vs %.1f s reactive)\n",
        (lead_seconds - fastpr.total_time) / 86400.0,
        reactive.total_time);
  } else {
    std::printf("  warning: lead time too short, %.1f s exposed\n",
                fastpr.total_time - lead_seconds);
  }
  return 0;
}
