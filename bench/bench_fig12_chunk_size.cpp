// Figure 12 (Experiment B.2): testbed — impact of the chunk size.
// Paper sweeps 32/64/128 MB with 4 MB packets; scaled 1/16 this is
// 2/4/8 MB chunks with 256 KB packets.
#include "bench_common.h"

using namespace fastpr;

int main() {
  set_log_level(LogLevel::kWarn);
  ec::RsCode code(9, 6);
  std::printf("=== Figure 12 (Exp B.2): impact of the chunk size ===\n");
  std::printf(
      "testbed, RS(9,6), packet 256 KB (paper 4 MB, scaled 1/16)\n"
      "repair time per chunk (s)\n\n");

  bench::FigureEmitter fig("bench_fig12_chunk_size");
  fig.add_config("code", "RS(9,6)");
  fig.add_config("packet", "256KB (paper 4MB, scaled 1/16)");
  fig.add_config("seed", "12");
  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    const std::string title =
        std::string("(") +
        (scenario == core::Scenario::kScattered ? "a" : "b") + ") " +
        core::to_string(scenario) + " repair";
    fig.begin_section(title,
                      {"chunk", "FastPR", "Reconstruction", "Migration"});
    for (int chunk_mb : {2, 4, 8}) {
      auto opts = bench::testbed_defaults(/*seed=*/12);
      opts.chunk_bytes = static_cast<uint64_t>(MB(chunk_mb));
      const auto r = bench::run_testbed_trio(opts, code, scenario);
      fig.add_row({std::to_string(chunk_mb) + "MB", Table::fmt(r.fastpr, 3),
                   Table::fmt(r.reconstruction, 3),
                   Table::fmt(r.migration, 3)});
      fig.attach_json("fastpr_report", r.fastpr_report.to_json());
    }
    fig.end_section();
  }
  std::printf(
      "paper shape: per-chunk repair time grows with the chunk size; "
      "FastPR cuts migration-only by 31-48%% and reconstruction-only by "
      "10-28%% across sizes\n");
  fig.write_sidecar();
  return 0;
}
