// Figure 3: mathematical analysis, hot-standby repair.
// Varying M and the number of hot-standby nodes h; RS(9,6), h=3 default.
#include "bench_common.h"

#include "core/cost_model.h"

using namespace fastpr;
using core::CostModel;
using core::ModelParams;
using core::Scenario;

namespace {

ModelParams defaults() {
  ModelParams p;
  p.num_nodes = 100;
  p.stf_chunks = 1000;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = 6;
  p.hot_standby = 3;
  p.scenario = Scenario::kHotStandby;
  return p;
}

void emit(Table& table, const std::string& x, const ModelParams& p) {
  const CostModel m(p);
  table.add_row({x, Table::fmt(m.predictive_time_per_chunk()),
                 Table::fmt(m.reactive_time_per_chunk()),
                 bench::pct(m.predictive_time(), m.reactive_time())});
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("=== Figure 3: mathematical analysis, hot-standby repair ===\n");
  std::printf("repair time per chunk (s); reduction = predictive vs reactive\n\n");

  {
    std::printf("(a) varying number of nodes M, h=3\n");
    Table t({"M", "predictive", "reactive", "reduction"});
    for (int m = 20; m <= 100; m += 10) {
      auto p = defaults();
      p.num_nodes = m;
      emit(t, std::to_string(m), p);
    }
    t.print();
  }
  {
    std::printf("\n(b) varying number of hot-standby nodes h, M=100\n");
    Table t({"h", "predictive", "reactive", "reduction"});
    for (int h = 3; h <= 9; ++h) {
      auto p = defaults();
      p.hot_standby = h;
      emit(t, std::to_string(h), p);
    }
    t.print();
  }

  const CostModel m(defaults());
  std::printf(
      "\nheadline: h=3 predictive reduces reactive by %s (paper: 41.3%%)\n",
      bench::pct(m.predictive_time(), m.reactive_time()).c_str());
  return 0;
}
