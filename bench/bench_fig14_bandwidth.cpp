// Figure 14 (Experiment B.4): testbed — impact of network bandwidth.
// The paper throttles the NIC with Wonder Shaper to 0.5/1/5 Gb/s; here
// the shaped transport's token buckets play that role. Both the chunk
// size AND the bandwidths keep their scaled relationship: chunks are
// 1/16 of the paper's, so per-chunk times are ≈ paper/16 at every bn.
#include "bench_common.h"

using namespace fastpr;

int main() {
  set_log_level(LogLevel::kWarn);
  ec::RsCode code(9, 6);
  std::printf("=== Figure 14 (Exp B.4): impact of network bandwidth ===\n");
  std::printf(
      "testbed, RS(9,6), chunk 4 MB (scaled 1/16), packet 256 KB\n"
      "repair time per chunk (s)\n\n");

  bench::FigureEmitter fig("bench_fig14_bandwidth");
  fig.add_config("code", "RS(9,6)");
  fig.add_config("chunk", "4MB (scaled 1/16)");
  fig.add_config("packet", "256KB");
  fig.add_config("seed", "14");
  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    const std::string title =
        std::string("(") +
        (scenario == core::Scenario::kScattered ? "a" : "b") + ") " +
        core::to_string(scenario) + " repair";
    fig.begin_section(title,
                      {"bn", "FastPR", "Reconstruction", "Migration",
                       "FastPR vs Recon", "FastPR vs Migr"});
    for (double bn : {0.5, 1.0, 5.0}) {
      auto opts = bench::testbed_defaults(/*seed=*/14);
      // Scaled 1/4 like every testbed bandwidth, so the label matches
      // the paper's axis while ratios to the (scaled) disk hold.
      opts.net_bytes_per_sec = Gbps(bn) / 4;
      const auto r = bench::run_testbed_trio(opts, code, scenario);
      fig.add_row({Table::fmt(bn, 1) + "Gb/s", Table::fmt(r.fastpr, 3),
                   Table::fmt(r.reconstruction, 3),
                   Table::fmt(r.migration, 3),
                   bench::pct(r.fastpr, r.reconstruction),
                   bench::pct(r.fastpr, r.migration)});
      fig.attach_json("fastpr_report", r.fastpr_report.to_json());
    }
    fig.end_section();
  }
  std::printf(
      "paper shape: reconstruction-only blows up at low bn (k-fold "
      "traffic); FastPR least everywhere (reductions 27.7%%/62.5%% at "
      "0.5 Gb/s, 27.1%%/61.5%% at 1 Gb/s, scattered)\n");
  fig.write_sidecar();
  return 0;
}
