// Figure 13 (Experiment B.3): testbed — impact of different erasure
// codes: RS(9,6), RS(14,10), RS(16,12).
#include "bench_common.h"

using namespace fastpr;

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("=== Figure 13 (Exp B.3): impact of different erasure codes ===\n");
  std::printf(
      "testbed, chunk 4 MB (paper 64 MB, scaled 1/16), packet 256 KB\n"
      "repair time per chunk (s)\n\n");

  bench::FigureEmitter fig("bench_fig13_erasure_codes");
  fig.add_config("chunk", "4MB (paper 64MB, scaled 1/16)");
  fig.add_config("packet", "256KB");
  fig.add_config("seed", "13");
  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    const std::string title =
        std::string("(") +
        (scenario == core::Scenario::kScattered ? "a" : "b") + ") " +
        core::to_string(scenario) + " repair";
    fig.begin_section(title,
                      {"code", "FastPR", "Reconstruction", "Migration",
                       "FastPR vs Recon", "FastPR vs Migr"});
    for (auto [n, k] : {std::pair{9, 6}, {14, 10}, {16, 12}}) {
      ec::RsCode code(n, k);
      auto opts = bench::testbed_defaults(/*seed=*/13);
      const auto r = bench::run_testbed_trio(opts, code, scenario);
      fig.add_row({code.name(), Table::fmt(r.fastpr, 3),
                   Table::fmt(r.reconstruction, 3),
                   Table::fmt(r.migration, 3),
                   bench::pct(r.fastpr, r.reconstruction),
                   bench::pct(r.fastpr, r.migration)});
      fig.attach_json("fastpr_report", r.fastpr_report.to_json());
    }
    fig.end_section();
  }
  std::printf(
      "paper shape: migration flat across codes; reconstruction grows "
      "sharply with k; FastPR least everywhere (scattered reductions: "
      "42.6%%/17.1%% at RS(9,6) ... 9.6%%/71.7%% at RS(16,12))\n");
  fig.write_sidecar();
  return 0;
}
