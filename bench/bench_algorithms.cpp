// google-benchmark microbenchmarks for the hot kernels: GF(2^8) region
// ops, RS encode/repair, bipartite matching, Algorithm 1.
#include <benchmark/benchmark.h>

#include "core/recon_sets.h"
#include "ec/rs_code.h"
#include "gf/gf256.h"
#include "matching/hopcroft_karp.h"
#include "matching/incremental_matching.h"
#include "util/rng.h"

using namespace fastpr;

namespace {

// Coefficient sweep: c = 0 and c = 1 take the memset/memcpy and pure
// XOR fast paths, general c takes the table kernel — a single fixed
// coefficient hides those cliffs. Sizes cross the L1/L2/DRAM regimes.
void BM_GfMulRegionXor(benchmark::State& state) {
  const uint8_t c = static_cast<uint8_t>(state.range(0));
  const size_t len = static_cast<size_t>(state.range(1));
  std::vector<uint8_t> src(len, 0x37), dst(len, 0x11);
  for (auto _ : state) {
    gf::mul_region_xor(dst.data(), src.data(), c, len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_GfMulRegionXor)
    ->ArgsProduct({{0, 1, 2, 0x1D, 0xFF}, {4 << 10, 64 << 10, 1 << 20}});

void BM_GfMulRegion(benchmark::State& state) {
  const uint8_t c = static_cast<uint8_t>(state.range(0));
  const size_t len = static_cast<size_t>(state.range(1));
  std::vector<uint8_t> src(len, 0x37), dst(len, 0x11);
  for (auto _ : state) {
    gf::mul_region(dst.data(), src.data(), c, len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_GfMulRegion)
    ->ArgsProduct({{0, 1, 0x1D}, {64 << 10, 1 << 20}});

// The fused decode kernel at the fan-ins the codecs actually use:
// k=2 (LRC local repair), k=6 (RS(9,6)), k=12 (RS(16,12)).
void BM_GfDotRegionXor(benchmark::State& state) {
  const size_t num_src = static_cast<size_t>(state.range(0));
  const size_t len = static_cast<size_t>(state.range(1));
  std::vector<std::vector<uint8_t>> srcs(num_src,
                                         std::vector<uint8_t>(len, 0x37));
  std::vector<const uint8_t*> ptrs;
  std::vector<uint8_t> coeffs;
  for (size_t j = 0; j < num_src; ++j) {
    ptrs.push_back(srcs[j].data());
    coeffs.push_back(static_cast<uint8_t>(3 + 5 * j));
  }
  std::vector<uint8_t> dst(len, 0x11);
  for (auto _ : state) {
    gf::dot_region_xor(dst.data(), ptrs.data(), coeffs.data(), num_src, len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(num_src * len));
}
BENCHMARK(BM_GfDotRegionXor)
    ->ArgsProduct({{2, 6, 12}, {64 << 10, 1 << 20}});

void BM_GfXorRegion(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> src(len, 0x37), dst(len, 0x11);
  for (auto _ : state) {
    gf::xor_region(dst.data(), src.data(), len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_GfXorRegion)->Arg(64 << 10)->Arg(1 << 20);

void BM_RsEncode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const ec::RsCode code(n, k);
  const size_t chunk = 256 << 10;
  std::vector<std::vector<uint8_t>> data(
      static_cast<size_t>(k), std::vector<uint8_t>(chunk, 0xA1));
  std::vector<ec::ConstChunk> dspan(data.begin(), data.end());
  std::vector<std::vector<uint8_t>> parity(
      static_cast<size_t>(n - k), std::vector<uint8_t>(chunk));
  std::vector<ec::MutChunk> pspan(parity.begin(), parity.end());
  for (auto _ : state) {
    code.encode(dspan, pspan);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk) * k);
}
BENCHMARK(BM_RsEncode)->Args({9, 6})->Args({14, 10})->Args({16, 12});

void BM_RsRepairChunk(benchmark::State& state) {
  const ec::RsCode code(9, 6);
  const size_t chunk = 256 << 10;
  std::vector<std::vector<uint8_t>> data(6,
                                         std::vector<uint8_t>(chunk, 0x42));
  const auto stripe = ec::encode_stripe(code, data);
  std::vector<bool> available(9, true);
  available[8] = false;
  const auto helpers = code.repair_helpers(8, available);
  std::vector<ec::ConstChunk> hdata;
  for (int h : helpers) hdata.emplace_back(stripe[static_cast<size_t>(h)]);
  std::vector<uint8_t> out(chunk);
  for (auto _ : state) {
    code.repair_chunk(8, helpers, hdata, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk) * 6);
}
BENCHMARK(BM_RsRepairChunk);

matching::BipartiteGraph random_graph(int left, int right, int degree,
                                      uint64_t seed) {
  Rng rng(seed);
  matching::BipartiteGraph g;
  g.left_count = left;
  for (int r = 0; r < right; ++r) {
    std::vector<int> adj;
    for (int d = 0; d < degree; ++d) {
      adj.push_back(static_cast<int>(rng.uniform(0, left - 1)));
    }
    g.add_right_vertex(std::move(adj));
  }
  return g;
}

void BM_HopcroftKarp(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  const auto g = random_graph(size, size, 8, 77);
  for (auto _ : state) {
    auto m = matching::hopcroft_karp(g);
    benchmark::DoNotOptimize(m.size);
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(256)->Arg(1024);

void BM_IncrementalGroupInsert(benchmark::State& state) {
  // The MATCH probe pattern of Algorithm 1: insert groups of k=6 slots
  // over 99 left vertices until saturation, reset, repeat.
  Rng rng(99);
  std::vector<std::vector<int>> adjacencies;
  for (int i = 0; i < 32; ++i) {
    std::vector<int> adj;
    for (int d = 0; d < 8; ++d) {
      adj.push_back(static_cast<int>(rng.uniform(0, 98)));
    }
    adjacencies.push_back(std::move(adj));
  }
  matching::IncrementalMatcher matcher(99);
  for (auto _ : state) {
    matcher.reset();
    for (const auto& adj : adjacencies) {
      benchmark::DoNotOptimize(matcher.try_add_group(adj, 6));
    }
  }
}
BENCHMARK(BM_IncrementalGroupInsert);

void BM_FindReconstructionSets(benchmark::State& state) {
  const int chunks = static_cast<int>(state.range(0));
  Rng rng(5);
  cluster::StripeLayout layout(100, 9);
  for (int s = 0; s < chunks; ++s) {
    std::vector<cluster::NodeId> nodes = {0};
    for (int p : rng.sample_distinct(99, 8)) nodes.push_back(p + 1);
    layout.add_stripe(nodes);
  }
  std::vector<cluster::NodeId> healthy;
  for (int i = 1; i < 100; ++i) healthy.push_back(i);
  for (auto _ : state) {
    auto sets =
        core::find_reconstruction_sets(layout, 0, healthy, 6, {});
    benchmark::DoNotOptimize(sets.size());
  }
}
BENCHMARK(BM_FindReconstructionSets)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
