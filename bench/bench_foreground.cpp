// Foreground/repair contention frontier (DESIGN.md §10, no paper
// counterpart): an open-loop Zipfian read/write mix shares the per-node
// NIC and disk token buckets with a predictive repair, and the bench
// sweeps the repair-budget policy:
//
//   unthrottled — repair grabs every token it can (the paper's mode);
//   cap10       — fixed polite cap at 10% of the repair-budget ceiling;
//   adaptive    — SLO-aware AIMD leases (ramp while foreground p99 is
//                 under the SLO, multiplicative cut on a breach);
//   panic       — polite cap + a scripted STF death deadline the cap
//                 cannot meet, so the throttler must deliberately breach
//                 the SLO and pin the budget at the ceiling.
//
// The frontier the sidecar records: adaptive should beat unthrottled on
// foreground p99 AND beat the fixed cap on repair completion; panic
// must finish before the scripted death while the polite cap does not.
// Timings are wall-clock — never run this from a sanitizer build, and
// never report foreground p99 from one (EXPERIMENTS.md).
//
// `--smoke` runs a tiny configuration and only checks mechanics: the
// throttled repair completes byte-verified under live foreground load,
// leases were actually granted, the foreground tail was recorded with
// zero decode mismatches, and an infeasible deadline trips panic mode.
#include <cstring>

#include "bench_common.h"
#include "core/repair_throttler.h"
#include "load/foreground.h"

using namespace fastpr;

namespace {

struct ScenarioResult {
  double repair_seconds = 0;
  double fg_p50_ms = 0;
  double fg_p99_ms = 0;
  double fg_p999_ms = 0;
  double fg_achieved_ops = 0;
  int64_t fg_ops = 0;
  int64_t degraded_reads = 0;
  int64_t leases_granted = 0;
  int64_t slo_breaches = 0;
  double final_budget_mbps = 0;
  bool panic = false;
  bool ok = false;
};

agent::TestbedOptions bench_options(uint64_t seed) {
  agent::TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 2;
  opts.disk_bytes_per_sec = MBps(100);
  opts.net_bytes_per_sec = MBps(50);
  opts.chunk_bytes = 256 * kKiB;
  opts.packet_bytes = 64 * kKiB;
  opts.num_stripes = 24;
  opts.seed = seed;
  opts.round_timeout = std::chrono::seconds(60);
  return opts;
}

load::WorkloadOptions workload_options(uint64_t seed) {
  load::WorkloadOptions w;
  w.ops_per_sec = 200;
  w.op_bytes = 64 * kKiB;
  w.read_fraction = 0.8;
  w.threads = 2;
  w.seed = seed;
  w.verify_degraded = true;
  return w;
}

/// The repair-budget ceiling every throttled scenario shares. 40 MB/s
/// against 50 MB/s NICs: the ceiling alone is a (mild) brake, the
/// policy decides how much of it repair actually gets.
core::ThrottlerOptions budget_ceiling() {
  core::ThrottlerOptions t;
  t.total_bytes_per_sec = MBps(40);
  return t;
}

/// One policy run on a fresh testbed: foreground starts first, repair
/// executes under it, and nothing is reported unless every repaired
/// chunk byte-verifies and every degraded read decoded byte-exactly.
ScenarioResult run_scenario(const agent::TestbedOptions& opts,
                            const ec::ErasureCode& code,
                            const load::WorkloadOptions& wopts) {
  ScenarioResult out;
  agent::Testbed tb(opts, code);
  const auto stf = tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();

  load::ForegroundWorkload fg(tb, code, wopts);
  fg.set_degraded(stf);
  tb.set_pressure_source(&fg);
  fg.start();
  const auto report = tb.execute(plan);
  fg.stop();

  if (!report.success) {
    LOG_ERROR("repair failed: "
              << (report.errors.empty() ? "?" : report.errors[0]));
    return out;
  }
  if (!tb.verify(report, plan)) {
    LOG_ERROR("repair byte verification FAILED");
    return out;
  }
  const auto stats = fg.stats();
  if (stats.verify_failures != 0) {
    LOG_ERROR("foreground degraded reads decoded WRONG bytes: "
              << stats.verify_failures);
    return out;
  }
  out.repair_seconds = report.repair.total_seconds;
  out.fg_ops = stats.reads + stats.degraded_reads + stats.writes;
  out.fg_p50_ms = stats.p50_seconds * 1e3;
  out.fg_p99_ms = stats.p99_seconds * 1e3;
  out.fg_p999_ms = stats.p999_seconds * 1e3;
  out.fg_achieved_ops = stats.achieved_ops_per_sec;
  out.degraded_reads = stats.degraded_reads;
  if (tb.throttler() != nullptr) {
    const auto ts = tb.throttler()->stats();
    out.leases_granted = ts.leases_granted;
    out.slo_breaches = ts.slo_breaches;
    // Display conversion, not a configuration boundary.
    // fastpr-lint: allow(units)
    out.final_budget_mbps = ts.budget_bytes_per_sec / 1e6;
    out.panic = ts.panic;
  }
  out.ok = true;
  return out;
}

std::string scenario_json(const ScenarioResult& r) {
  std::ostringstream os;
  os << "{\"repair_seconds\":" << Table::fmt(r.repair_seconds, 3)
     << ",\"fg_p99_ms\":" << Table::fmt(r.fg_p99_ms, 2)
     << ",\"fg_p999_ms\":" << Table::fmt(r.fg_p999_ms, 2)
     << ",\"fg_achieved_ops\":" << Table::fmt(r.fg_achieved_ops, 1)
     << ",\"leases_granted\":" << r.leases_granted
     << ",\"slo_breaches\":" << r.slo_breaches
     << ",\"final_budget_mbps\":" << Table::fmt(r.final_budget_mbps, 2)
     << ",\"panic\":" << (r.panic ? "true" : "false") << "}";
  return os.str();
}

int run_smoke() {
  agent::TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 2;
  opts.disk_bytes_per_sec = MBps(100);
  opts.net_bytes_per_sec = MBps(25);
  opts.chunk_bytes = 256 * kKiB;
  opts.packet_bytes = 64 * kKiB;
  opts.num_stripes = 24;
  opts.seed = 23;
  opts.round_timeout = std::chrono::seconds(30);
  ec::RsCode code(6, 4);

  auto wopts = workload_options(/*seed=*/23);
  wopts.ops_per_sec = 500;

  // Adaptive leases under live foreground load.
  auto adaptive = opts;
  core::ThrottlerOptions throttle;
  throttle.total_bytes_per_sec = MBps(20);
  throttle.slo_p99_seconds = 0.050;
  adaptive.throttle = throttle;
  const auto a = run_scenario(adaptive, code, wopts);
  if (!a.ok || a.leases_granted <= 0 || a.fg_p99_ms <= 0) {
    std::printf(
        "bench_foreground --smoke: FAIL (adaptive run: ok=%d leases=%lld "
        "p99=%.3fms ops=%lld repair=%.3fs)\n",
        a.ok ? 1 : 0, static_cast<long long>(a.leases_granted),
        a.fg_p99_ms, static_cast<long long>(a.fg_ops), a.repair_seconds);
    return 1;
  }

  // An infeasible deadline must trip panic mode and still complete.
  auto panic = opts;
  throttle.adaptive = false;
  throttle.initial_fraction = 0.05;
  panic.throttle = throttle;
  panic.stf_deadline_seconds = 0.05;
  const auto p = run_scenario(panic, code, wopts);
  if (!p.ok || !p.panic) {
    std::printf("bench_foreground --smoke: FAIL (panic run)\n");
    return 1;
  }
  std::printf("bench_foreground --smoke: PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return run_smoke();
  }

  ec::RsCode code(9, 6);
  const uint64_t seed = 23;
  const double slo_ms = 50;
  // The scripted STF death: predicted failure this many seconds in.
  // Chosen between the polite cap's completion (~2x slower) and the
  // ceiling-pinned completion (~2x faster), so the frontier is legible.
  const double death_s = 5.0;

  std::printf("=== Foreground contention vs repair-budget policy ===\n");
  std::printf(
      "testbed, RS(9,6), 12+2 nodes, chunk 256 KB, disk 100 MB/s, NIC "
      "50 MB/s per node\nforeground: open-loop Zipfian 80/20 mix, 200 "
      "op/s x 64 KB, degraded reads on the STF node\nrepair budget "
      "ceiling 40 MB/s, foreground SLO p99 %.0f ms, scripted STF death "
      "at %.1f s\n\n",
      slo_ms, death_s);

  bench::FigureEmitter fig("bench_foreground");
  fig.add_config("code", "RS(9,6)");
  fig.add_config("chunk", "256KB");
  fig.add_config("disk", "100 MB/s");
  fig.add_config("nic", "50 MB/s");
  fig.add_config("budget_ceiling", "40 MB/s");
  fig.add_config("foreground", "200 op/s x 64KB, 80% reads, Zipf 0.99");
  fig.add_config("slo_p99_ms", Table::fmt(slo_ms, 0));
  fig.add_config("stf_death_s", Table::fmt(death_s, 1));
  fig.add_config("seed", std::to_string(seed));

  const auto wopts = workload_options(seed);

  auto unthrottled = bench_options(seed);

  auto cap10 = bench_options(seed);
  {
    auto t = budget_ceiling();
    t.adaptive = false;
    t.initial_fraction = 0.10;
    cap10.throttle = t;
  }

  auto adaptive = bench_options(seed);
  {
    auto t = budget_ceiling();
    t.slo_p99_seconds = slo_ms / 1e3;
    t.initial_fraction = 0.25;
    adaptive.throttle = t;
  }

  // Panic starts from the same polite cap but carries the death
  // deadline: the throttler must notice the cap cannot make it.
  auto panic = cap10;
  panic.stf_deadline_seconds = death_s;

  struct Row {
    const char* name;
    ScenarioResult r;
  };
  std::vector<Row> rows;
  rows.push_back({"unthrottled", run_scenario(unthrottled, code, wopts)});
  rows.push_back({"cap10", run_scenario(cap10, code, wopts)});
  rows.push_back({"adaptive", run_scenario(adaptive, code, wopts)});
  rows.push_back({"panic", run_scenario(panic, code, wopts)});

  fig.begin_section("repair-budget policy frontier",
                    {"policy", "repair (s)", "fg p50 (ms)", "fg p99 (ms)",
                     "fg p999 (ms)", "fg op/s", "degraded", "leases",
                     "breaches", "budget end (MB/s)", "panic"});
  for (const auto& row : rows) {
    if (!row.r.ok) {
      fig.add_row({row.name, "FAIL", "-", "-", "-", "-", "-", "-", "-",
                   "-", "-"});
      continue;
    }
    fig.add_row({row.name, Table::fmt(row.r.repair_seconds, 2),
                 Table::fmt(row.r.fg_p50_ms, 2),
                 Table::fmt(row.r.fg_p99_ms, 2),
                 Table::fmt(row.r.fg_p999_ms, 2),
                 Table::fmt(row.r.fg_achieved_ops, 0),
                 std::to_string(row.r.degraded_reads),
                 std::to_string(row.r.leases_granted),
                 std::to_string(row.r.slo_breaches),
                 Table::fmt(row.r.final_budget_mbps, 1),
                 row.r.panic ? "yes" : "no"});
    fig.attach_json("detail", scenario_json(row.r));
  }
  fig.end_section();

  // The frontier claims, evaluated on this very run and mirrored into
  // the sidecar so a regression is visible in CI artifacts.
  const auto& un = rows[0].r;
  const auto& cap = rows[1].r;
  const auto& ad = rows[2].r;
  const auto& pa = rows[3].r;
  const bool all_ok = un.ok && cap.ok && ad.ok && pa.ok;
  const bool adaptive_quieter = all_ok && ad.fg_p99_ms < un.fg_p99_ms;
  const bool adaptive_faster =
      all_ok && ad.repair_seconds < cap.repair_seconds;
  const bool panic_beats_death =
      all_ok && pa.panic && pa.repair_seconds < death_s;
  const bool cap_misses_death = all_ok && cap.repair_seconds > death_s;

  fig.begin_section("frontier checks", {"claim", "holds"});
  fig.add_row({"adaptive fg p99 < unthrottled fg p99",
               adaptive_quieter ? "yes" : "NO"});
  fig.add_row({"adaptive repair < cap10 repair",
               adaptive_faster ? "yes" : "NO"});
  fig.add_row({"panic completes before STF death",
               panic_beats_death ? "yes" : "NO"});
  fig.add_row({"cap10 misses the STF death",
               cap_misses_death ? "yes" : "NO"});
  fig.end_section();

  std::printf(
      "expected shape: unthrottled finishes repair fastest but with the "
      "worst foreground tail; cap10 is quietest and slowest (and misses "
      "the %.1f s death); adaptive sits on the frontier — quieter than "
      "unthrottled, faster than cap10; panic abandons the SLO and beats "
      "the death deadline from cap10's settings\n",
      death_s);
  fig.write_sidecar();
  return 0;
}
