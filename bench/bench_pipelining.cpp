// Packet-level repair pipelining (partial-sum helper chains) vs star
// fan-in, on the scaled testbed (scattered repair, reconstruction-only
// plans so the chain path carries every repaired chunk).
//
// Two sweeps, both against the measured single-transfer bound (the
// per-chunk time of a migration-only run — read, one network transfer,
// write — which is the floor any reconstruction strategy can approach).
// Reconstruction plans are re-rounded to one task per round so a round
// duration is one isolated chain / fan-in star, not several co-scheduled
// groups contending for shared disks:
//  * packet size at k=6: the fan-in/chain crossover. Small packets pay
//    the per-forward store-and-forward overhead ceil(c/p)·o on every
//    hop and lose to fan-in; large packets amortize it and approach the
//    bound. The `auto` column is the cost model's per-round pick, which
//    must land on the measured-faster side at both extremes.
//  * k at the paper's packet size (256 KiB scaled): fan-in degrades
//    linearly with k (k streams funnel into one NIC) while the chain
//    stays within 1.35x of the single-transfer bound — enforced, the
//    bench exits nonzero on violation.
//
// `--smoke` runs a tiny unthrottled configuration and only checks
// correctness (byte verification + the chain path actually engaging);
// CI runs it in the release job. Timings must come from a release
// build with the machine otherwise idle (never from sanitizer builds).
#include "bench_common.h"

#include <cstring>

#include "gf/gf256.h"

using namespace fastpr;

namespace {

struct ReconRun {
  bool ok = false;
  double per_chunk = 0;
  /// Mean duration of one isolated reconstruction round (exactly one
  /// chain or one fan-in star per round — see run_recon).
  double mean_round = 0;
};

ReconRun run_recon(const agent::TestbedOptions& base,
                   const ec::ErasureCode& code,
                   core::StrategyChoice strategy) {
  auto opts = base;
  opts.repair_strategy = strategy;
  agent::Testbed tb(opts, code);
  tb.flag_stf();
  auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_reconstruction_only();
  // Isolate the transfer under test: re-round the plan so each round
  // carries exactly one reconstruction. Planner rounds pack multiple
  // disjoint groups, and at small k those groups reuse nodes as
  // helper-in-one / destination-in-another, so a packed round measures
  // shared-disk contention rather than the chain-vs-single-transfer
  // physics the bench is after. A singleton subset of a valid round is
  // still valid.
  core::RepairPlan isolated;
  isolated.stf_node = plan.stf_node;
  isolated.stf_nodes = plan.stf_nodes;
  for (auto& round : plan.rounds) {
    for (auto& task : round.reconstructions) {
      core::RepairRound single;
      single.strategy = round.strategy;
      single.reconstructions.push_back(std::move(task));
      isolated.rounds.push_back(std::move(single));
    }
  }
  const auto report = tb.execute(isolated);
  ReconRun out;
  out.ok = report.success && tb.verify(isolated);
  if (!out.ok) {
    LOG_ERROR("reconstruction run failed ("
              << (report.errors.empty() ? "verify" : report.errors[0])
              << ")");
    return out;
  }
  out.per_chunk = report.per_chunk();
  double sum = 0;
  int rounds = 0;
  for (const auto& round : report.repair.rounds) {
    if (round.cr == 0) continue;
    sum += round.duration_seconds;
    ++rounds;
  }
  out.mean_round = rounds > 0 ? sum / rounds : 0;
  return out;
}

/// Measured single-transfer bound: migration per-chunk time (the STF
/// disk serializes the reads, so per_chunk() is exactly one
/// read + transfer + write).
double run_single_transfer(const agent::TestbedOptions& base,
                           const ec::ErasureCode& code, bool& ok) {
  agent::Testbed tb(base, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_migration_only();
  const auto report = tb.execute(plan);
  if (!report.success || !tb.verify(plan)) {
    LOG_ERROR("migration run failed");
    ok = false;
    return 0;
  }
  return report.per_chunk();
}

/// What `--repair-strategy=auto` resolves to for this configuration's
/// reconstruction rounds (planning only, no execution).
std::string auto_pick(const agent::TestbedOptions& base,
                      const ec::ErasureCode& code) {
  auto opts = base;
  opts.repair_strategy = core::StrategyChoice::kAuto;
  agent::Testbed tb(opts, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_reconstruction_only();
  for (const auto& round : plan.rounds) {
    if (!round.reconstructions.empty()) {
      return core::to_string(round.strategy);
    }
  }
  return "-";
}

int run_smoke() {
  agent::TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 2;
  opts.disk_bytes_per_sec = 0;  // unthrottled: smoke checks bytes only
  opts.net_bytes_per_sec = 0;
  opts.chunk_bytes = 64 * kKiB;
  opts.packet_bytes = 16 * kKiB;
  opts.num_stripes = 20;
  opts.seed = 17;
  opts.round_timeout = std::chrono::milliseconds(30000);
  ec::RsCode code(6, 4);

#if FASTPR_TELEMETRY_ENABLED
  const int64_t forwards_before = telemetry::MetricsRegistry::global()
                                      .counter("agent.chain_forwards")
                                      .value();
#endif
  for (auto strategy :
       {core::StrategyChoice::kFanIn, core::StrategyChoice::kChain,
        core::StrategyChoice::kAuto}) {
    const auto run = run_recon(opts, code, strategy);
    if (!run.ok) {
      std::printf("bench_pipelining --smoke: FAIL (%s)\n",
                  core::to_string(strategy).c_str());
      return 1;
    }
  }
#if FASTPR_TELEMETRY_ENABLED
  if (telemetry::MetricsRegistry::global()
          .counter("agent.chain_forwards")
          .value() <= forwards_before) {
    std::printf("bench_pipelining --smoke: FAIL (chain path never ran)\n");
    return 1;
  }
#endif
  std::printf("bench_pipelining --smoke: PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return run_smoke();
  }

  std::printf("=== Repair pipelining: partial-sum helper chains ===\n");
  std::printf(
      "testbed, scattered reconstruction-only, chunk 4 MB (scaled "
      "1/16), bandwidths = EC2/4, chain hop overhead 500 us\n"
      "round = mean isolated reconstruction-round seconds (one transfer "
      "per round); bound = measured single-transfer per-chunk seconds\n\n");

  bench::FigureEmitter fig("bench_pipelining");
  fig.add_config("chunk", "4MB (paper 64MB, scaled 1/16)");
  fig.add_config("bandwidths", "EC2/4 (35.5 MB/s disk, 1.25 Gb/s NIC)");
  fig.add_config("chain_hop_overhead", "500us");
  fig.add_config("scenario", "scattered");
  fig.add_config("gf_kernel", std::string(gf::kernel_name(gf::active_kernel())));
  fig.add_config("seed", "17");

  bool ok = true;
  std::vector<std::string> violations;

  // --- Sweep 1: packet size at k=6 (the crossover). ---
  ec::RsCode rs96(9, 6);
  auto base = bench::testbed_defaults(/*seed=*/17);
  base.num_stripes = 440 / rs96.n();  // ~19 chunks on the STF node
  const double bound96 = run_single_transfer(base, rs96, ok);

  fig.begin_section("(a) packet-size sweep, RS(9,6)",
                    {"packet", "fan-in round", "chain round",
                     "chain/bound", "auto"});
  struct PacketPoint {
    uint64_t packet_kb;
    std::string pick;
    double fanin, chain;
  };
  std::vector<PacketPoint> points;
  for (uint64_t packet_kb : {4, 16, 64, 256, 1024}) {
    auto opts = base;
    opts.packet_bytes = packet_kb * static_cast<uint64_t>(kKiB);
    const auto fanin = run_recon(opts, rs96, core::StrategyChoice::kFanIn);
    const auto chain = run_recon(opts, rs96, core::StrategyChoice::kChain);
    ok = ok && fanin.ok && chain.ok;
    const std::string pick = auto_pick(opts, rs96);
    points.push_back(
        {packet_kb, pick, fanin.mean_round, chain.mean_round});
    fig.add_row({std::to_string(packet_kb) + "KB",
                 Table::fmt(fanin.mean_round, 3),
                 Table::fmt(chain.mean_round, 3),
                 bound96 > 0 ? Table::fmt(chain.mean_round / bound96, 2)
                             : "-",
                 pick});
  }
  fig.end_section();

  // Auto must land on the measured-faster side at both extremes (the
  // 16/64 KB midpoints sit near the crossover and are not asserted).
  const auto check_extreme = [&](const PacketPoint& p) {
    const std::string faster =
        core::to_string(p.fanin <= p.chain ? core::RepairStrategy::kFanIn
                                           : core::RepairStrategy::kChain);
    if (p.pick != faster) {
      violations.push_back("auto picked " + p.pick + " at " +
                           std::to_string(p.packet_kb) +
                           "KB but measured faster side is " + faster);
    }
  };
  check_extreme(points.front());
  check_extreme(points.back());

  // --- Sweep 2: k at the paper's packet size (256 KiB scaled). ---
  fig.begin_section("(b) k sweep at 256KB packets",
                    {"code", "bound", "fan-in round", "chain round",
                     "chain/bound", "auto"});
  for (int k : {6, 8, 10, 12}) {
    ec::RsCode code(k + 3, k);
    auto opts = bench::testbed_defaults(/*seed=*/17);
    opts.num_stripes = 440 / code.n();
    opts.packet_bytes = 256 * kKiB;
    const double bound = run_single_transfer(opts, code, ok);
    const auto fanin = run_recon(opts, code, core::StrategyChoice::kFanIn);
    const auto chain = run_recon(opts, code, core::StrategyChoice::kChain);
    ok = ok && fanin.ok && chain.ok;
    const double ratio = bound > 0 ? chain.mean_round / bound : 0;
    fig.add_row({"RS(" + std::to_string(k + 3) + "," + std::to_string(k) +
                     ")",
                 Table::fmt(bound, 3), Table::fmt(fanin.mean_round, 3),
                 Table::fmt(chain.mean_round, 3), Table::fmt(ratio, 2),
                 auto_pick(opts, code)});
    if (ratio > 1.35) {
      violations.push_back(
          "chain round " + Table::fmt(chain.mean_round, 3) + "s at k=" +
          std::to_string(k) + " exceeds 1.35x the single-transfer bound " +
          Table::fmt(bound, 3) + "s (ratio " + Table::fmt(ratio, 2) + ")");
    }
  }
  fig.end_section();

  std::printf(
      "expected shape: fan-in round grows ~linearly with k; chain round "
      "stays near the single-transfer bound once packets amortize the "
      "hop overhead, with the crossover at small packets\n");
  for (const auto& v : violations) std::printf("VIOLATION: %s\n", v.c_str());
  fig.write_sidecar();
  if (!ok) {
    std::printf("bench_pipelining: FAIL (verification)\n");
    return 1;
  }
  if (!violations.empty()) {
    std::printf("bench_pipelining: FAIL (%zu bound violation(s))\n",
                violations.size());
    return 1;
  }
  return 0;
}
