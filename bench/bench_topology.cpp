// Topology-aware repair (DESIGN.md §11): rack-aware vs flat planning
// under cross-rack oversubscription, plus mid-repair bandwidth
// replanning under a flapping link.
//
// No paper baseline exists for any table here — FastPR (DSN'19) models
// a flat network — so every number is this repo's extension, measured
// against the flat planner on the SAME rack-disjoint layout
// (EXPERIMENTS.md records the tables with that caveat).
//
//  (a)/(b) simulation sweeps: the paper's configuration scaled to
//    M = 48 nodes arranged 12 racks x 4, RS(9,6), 64 MB chunks,
//    bd = 100 MB/s, bn = 1 Gb/s. Both planners run over one
//    rack-disjoint layout; the racked simulator charges each round for
//    its busiest shared rack link (nodes/rack * bn / oversubscription).
//    Scattered repair is ASSERTED: the rack-aware plan must beat the
//    flat plan at every oversubscription >= 2 (and tie at 1.0, where
//    the rack terms vanish by construction). Hot-standby is reported
//    unasserted — every stream funnels into the spares' overflow rack
//    for both planners, so rack-awareness has little room there.
//  (c) bandwidth flapping, real testbed: a 12x2 racked cluster with two
//    helper nodes slowed 96x by the fault plan's `slow` verb. The
//    coordinator's drift trigger (FlowMonitor EWMA vs plan rate) fires
//    and replans the remaining rounds with the stragglers
//    deprioritized; ASSERTED to repair strictly faster than the
//    identical run with replanning disabled, both byte-verified.
//
// Both assertions land in the sidecar's "assertions" section as well as
// the exit code. `--smoke` runs correctness only (flat-reduction
// equality, a racked byte-verified execute, and trigger engagement) on
// a tiny configuration; CI runs it in the release job. Timings must
// come from a release build with the machine otherwise idle.
#include "bench_common.h"

#include <cstring>

#include "net/fault_plan.h"
#include "net/topology.h"
#include "sim/simulator.h"

using namespace fastpr;

namespace {

constexpr int kRacks = 12;
constexpr int kNodesPerRack = 4;
constexpr int kStorage = kRacks * kNodesPerRack;

struct SweepPoint {
  double flat_total = 0;
  double rack_total = 0;
  int stf_chunks = 0;
};

/// One rack-disjoint layout, planned twice (flat planner vs rack-aware
/// planner), both replayed through the racked simulator.
SweepPoint run_sweep_point(core::Scenario scenario, double oversub,
                          int num_stripes, uint64_t seed) {
  ec::RsCode code(9, 6);
  Rng rng(seed);
  const auto layout = cluster::StripeLayout::random_racked(
      kStorage, code.n(), num_stripes, kNodesPerRack, rng);
  cluster::ClusterState state(
      kStorage, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  cluster::NodeId stf = 0;
  for (cluster::NodeId n = 1; n < kStorage; ++n) {
    if (layout.load(n) > layout.load(stf)) stf = n;
  }
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  const net::Topology topo(kRacks, kNodesPerRack, net::Oversub(oversub));

  const auto plan_with = [&](const net::Topology* topology) {
    core::PlannerOptions opts;
    opts.scenario = scenario;
    opts.k_repair = code.repair_fetch_count(0);
    opts.chunk_bytes = static_cast<double>(MB(64));
    opts.code = &code;
    opts.topology = topology;
    core::FastPrPlanner planner(layout, state, opts);
    return planner.plan_fastpr();
  };
  const auto simulate_with = [&](const core::RepairPlan& plan) {
    sim::SimParams sp;
    sp.chunk_bytes = static_cast<double>(MB(64));
    sp.disk_bw = MBps(100);
    sp.net_bw = Gbps(1);
    sp.k_repair = code.repair_fetch_count(0);
    sp.hot_standby = 3;
    sp.scenario = scenario;
    sp.topo_racks = kRacks;
    sp.topo_nodes_per_rack = kNodesPerRack;
    sp.oversubscription = oversub;
    return sim::simulate(plan, sp);
  };

  const auto flat_plan = plan_with(nullptr);
  const auto rack_plan = plan_with(&topo);
  // The rack-aware plan must satisfy the failure-domain invariant.
  core::validate_plan(rack_plan, layout, state, code.repair_fetch_count(0),
                      &code, 1, &topo);

  SweepPoint out;
  out.flat_total = simulate_with(flat_plan).total_time;
  out.rack_total = simulate_with(rack_plan).total_time;
  out.stf_chunks = layout.load(stf);
  return out;
}

struct FlapRun {
  bool ok = false;
  double total_seconds = 0;
  int bandwidth_replans = 0;
  int rounds = 0;
};

/// The flapping scenario: two frequently-used helper nodes slowed 96x.
/// Each agent's 4 sender workers overlap the slow verb's sleeps, so a
/// slowed link's effective rate is ~4*bn/factor against an expected
/// pace of bn/k — measured/expected lands near 4*k/96 = 0.25, well
/// under the 0.5 degrade threshold (and far enough that the penalty
/// dominates round time, not just the drift signal).
FlapRun run_flap(bool replanning, uint64_t chunk_bytes, int num_stripes,
                 uint64_t seed) {
  ec::RsCode code(9, 6);
  agent::TestbedOptions opts;
  opts.num_storage = 24;
  opts.num_standby = 3;
  opts.disk_bytes_per_sec = MBps(142) / 4;
  opts.net_bytes_per_sec = Gbps(5) / 4;
  opts.chunk_bytes = chunk_bytes;
  opts.packet_bytes = std::min<uint64_t>(chunk_bytes, 128 * kKiB);
  opts.num_stripes = num_stripes;
  opts.seed = seed;
  opts.round_timeout = std::chrono::minutes(10);
  opts.topology = net::Topology(12, 2, net::Oversub(2.0));
  if (replanning) {
    opts.bandwidth_replan.enabled = true;
    opts.bandwidth_replan.degrade_ratio = 0.5;
    opts.bandwidth_replan.min_breach_rounds = 1;
    opts.bandwidth_replan.max_replans = 1;
  }

  // Pre-derive the layout (same seed, same generator) to aim the slow
  // verb at the two most-loaded non-STF nodes — the helpers nearly
  // every round would otherwise read from.
  Rng rng(seed);
  const auto preview = cluster::StripeLayout::random_racked(
      opts.num_storage, code.n(), num_stripes, 2, rng);
  std::vector<cluster::NodeId> by_load(
      static_cast<size_t>(opts.num_storage));
  for (cluster::NodeId n = 0; n < opts.num_storage; ++n) {
    by_load[static_cast<size_t>(n)] = n;
  }
  std::stable_sort(by_load.begin(), by_load.end(),
                   [&](cluster::NodeId a, cluster::NodeId b) {
                     return preview.load(a) > preview.load(b);
                   });
  net::FaultPlan faults;
  faults.slow.push_back({by_load[1], 96.0, 0});
  faults.slow.push_back({by_load[2], 96.0, 0});
  opts.fault_plan = faults;

  agent::Testbed tb(opts, code);
  tb.flag_stf();  // == by_load[0]: slow verbs never hit the STF node
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();
  const auto report = tb.execute(plan);

  FlapRun out;
  out.ok = report.success && tb.verify(report, plan);
  if (!out.ok) {
    LOG_ERROR("flapping run failed ("
              << (report.errors.empty() ? "verify" : report.errors[0])
              << ")");
    return out;
  }
  out.total_seconds = report.total_seconds;
  out.bandwidth_replans = report.bandwidth_replans;
  out.rounds = static_cast<int>(report.round_seconds.size());
  return out;
}

int run_smoke() {
  // Flat reduction: oversubscription 1.0 must leave the rack-aware
  // plan's simulated time bit-identical to the flat plan's.
  const auto flat = run_sweep_point(core::Scenario::kScattered,
                                    /*oversub=*/1.0, /*num_stripes=*/120,
                                    /*seed=*/3);
  if (flat.rack_total != flat.flat_total) {
    std::printf("bench_topology --smoke: FAIL (oversub 1.0 not "
                "bit-identical: rack %.9f vs flat %.9f)\n",
                flat.rack_total, flat.flat_total);
    return 1;
  }

  // Racked testbed execute, byte-verified.
  {
    ec::RsCode code(9, 6);
    agent::TestbedOptions opts;
    opts.num_storage = 24;
    opts.num_standby = 2;
    opts.disk_bytes_per_sec = 0;  // unthrottled: smoke checks bytes only
    opts.net_bytes_per_sec = 0;
    opts.chunk_bytes = 64 * kKiB;
    opts.packet_bytes = 16 * kKiB;
    opts.num_stripes = 30;
    opts.seed = 7;
    opts.round_timeout = std::chrono::milliseconds(30000);
    opts.topology = net::Topology(12, 2, net::Oversub(4.0));
    agent::Testbed tb(opts, code);
    tb.flag_stf();
    const auto plan =
        tb.make_planner(core::Scenario::kScattered).plan_fastpr();
    core::validate_plan(plan, tb.layout(), tb.cluster(),
                        code.repair_fetch_count(0), &code, 1,
                        tb.topology());
    const auto report = tb.execute(plan);
    if (!report.success || !tb.verify(report, plan)) {
      std::printf("bench_topology --smoke: FAIL (racked execute)\n");
      return 1;
    }
  }

#if FASTPR_TELEMETRY_ENABLED
  // Trigger engagement: the flapping run must fire exactly one
  // bandwidth replan and still byte-verify. (The EWMA drift signal
  // needs flow telemetry; nothing to engage in a telemetry-off build.)
  const auto flap = run_flap(/*replanning=*/true,
                             /*chunk_bytes=*/256 * kKiB,
                             /*num_stripes=*/80, /*seed=*/11);
  if (!flap.ok || flap.bandwidth_replans != 1) {
    std::printf("bench_topology --smoke: FAIL (flapping run: ok=%d "
                "bandwidth_replans=%d)\n",
                flap.ok ? 1 : 0, flap.bandwidth_replans);
    return 1;
  }
#endif
  std::printf("bench_topology --smoke: PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return run_smoke();
  }

  std::printf("=== Topology-aware repair: oversubscription sweeps ===\n");
  std::printf(
      "simulation, M=48 nodes as 12 racks x 4, RS(9,6), 64 MB chunks, "
      "bd=100 MB/s, bn=1 Gb/s; both planners share one rack-disjoint "
      "layout\nno paper baseline: FastPR models a flat network; the "
      "flat planner on the same layout is the reference\n\n");

  bench::FigureEmitter fig("bench_topology");
  fig.add_config("topology", "12x4 (M=48)");
  fig.add_config("code", "RS(9,6)");
  fig.add_config("chunk", "64MB");
  fig.add_config("bandwidths", "100 MB/s disk, 1 Gb/s NIC");
  fig.add_config("baseline",
                 "flat planner on the same rack-disjoint layout "
                 "(no paper baseline exists)");
  fig.add_config("seed", "1");

  bool ok = true;
  std::vector<std::string> violations;

  fig.begin_section("(a) scattered repair vs oversubscription",
                    {"oversub", "flat total (s)", "rack-aware total (s)",
                     "saving"});
  for (const double oversub : {1.0, 2.0, 4.0, 8.0}) {
    const auto point = run_sweep_point(core::Scenario::kScattered,
                                       oversub, /*num_stripes=*/1000,
                                       /*seed=*/1);
    fig.add_row({Table::fmt(oversub, 1), Table::fmt(point.flat_total, 2),
                 Table::fmt(point.rack_total, 2),
                 bench::pct(point.rack_total, point.flat_total)});
    if (oversub >= 2.0 && point.rack_total >= point.flat_total) {
      violations.push_back(
          "scattered oversub " + Table::fmt(oversub, 1) +
          ": rack-aware " + Table::fmt(point.rack_total, 2) +
          "s does not beat flat " + Table::fmt(point.flat_total, 2) + "s");
    }
    if (oversub == 1.0 && point.rack_total != point.flat_total) {
      violations.push_back("scattered oversub 1.0: rack-aware " +
                           Table::fmt(point.rack_total, 4) +
                           "s != flat " + Table::fmt(point.flat_total, 4) +
                           "s (flat reduction broken)");
    }
  }
  fig.end_section();

  fig.begin_section(
      "(b) hot-standby repair vs oversubscription (unasserted)",
      {"oversub", "flat total (s)", "rack-aware total (s)", "saving"});
  for (const double oversub : {1.0, 2.0, 4.0, 8.0}) {
    const auto point = run_sweep_point(core::Scenario::kHotStandby,
                                       oversub, /*num_stripes=*/1000,
                                       /*seed=*/1);
    fig.add_row({Table::fmt(oversub, 1), Table::fmt(point.flat_total, 2),
                 Table::fmt(point.rack_total, 2),
                 bench::pct(point.rack_total, point.flat_total)});
  }
  fig.end_section();

  std::printf("=== Bandwidth flapping: replan vs no-replan ===\n");
  std::printf(
      "testbed, 24 storage nodes as 12 racks x 2 (oversub 2.0), "
      "RS(9,6), 1 MB chunks, bandwidths = EC2/4; two busiest helper "
      "nodes slowed 96x from the start\n\n");
  fig.begin_section("(c) flapping cross-rack links, scattered",
                    {"run", "total (s)", "rounds", "bandwidth replans"});
  const auto replan = run_flap(/*replanning=*/true,
                               /*chunk_bytes=*/MB(1),
                               /*num_stripes=*/150, /*seed=*/11);
  const auto control = run_flap(/*replanning=*/false,
                                /*chunk_bytes=*/MB(1),
                                /*num_stripes=*/150, /*seed=*/11);
  ok = ok && replan.ok && control.ok;
  fig.add_row({"replan", Table::fmt(replan.total_seconds, 2),
               std::to_string(replan.rounds),
               std::to_string(replan.bandwidth_replans)});
  fig.add_row({"no-replan", Table::fmt(control.total_seconds, 2),
               std::to_string(control.rounds),
               std::to_string(control.bandwidth_replans)});
  fig.end_section();
#if FASTPR_TELEMETRY_ENABLED
  if (ok && replan.bandwidth_replans != 1) {
    violations.push_back("flapping: expected exactly 1 bandwidth replan, "
                         "got " + std::to_string(replan.bandwidth_replans));
  }
  if (ok && control.bandwidth_replans != 0) {
    violations.push_back("flapping control: trigger disabled but " +
                         std::to_string(control.bandwidth_replans) +
                         " replans reported");
  }
  if (ok && replan.total_seconds >= control.total_seconds) {
    violations.push_back(
        "flapping: replan run " + Table::fmt(replan.total_seconds, 2) +
        "s does not beat no-replan " +
        Table::fmt(control.total_seconds, 2) + "s");
  }
#else
  std::printf("flapping assertions skipped: telemetry off, no EWMA "
              "drift signal\n");
#endif

  // The assertions themselves go to the sidecar so figures stay
  // diffable against what the bench enforced.
  fig.begin_section("assertions",
                    {"assertion", "result"});
  fig.add_row({"rack-aware beats flat at oversub >= 2 (scattered)",
               violations.empty() ? "pass" : "see violations"});
  fig.add_row({"bandwidth replan beats no-replan under flapping",
#if FASTPR_TELEMETRY_ENABLED
               violations.empty() ? "pass" : "see violations"
#else
               "skipped (telemetry off)"
#endif
  });
  fig.end_section();

  for (const auto& v : violations) std::printf("VIOLATION: %s\n", v.c_str());
  fig.write_sidecar();
  if (!ok) {
    std::printf("bench_topology: FAIL (verification)\n");
    return 1;
  }
  if (!violations.empty()) {
    std::printf("bench_topology: FAIL (%zu violation(s))\n",
                violations.size());
    return 1;
  }
  return 0;
}
