// Figure 8 (Experiment A.1): simulation, scattered repair.
// Repair time per chunk for Optimum / FastPR / Reconstruction-only /
// Migration-only, varying M, RS(n,k), bd, bn. Paper: 30 runs; we
// average over 3 seeds (single-core budget; run-to-run spread is small).
#include "bench_common.h"

using namespace fastpr;
using sim::ExperimentConfig;

namespace {

constexpr int kRuns = 3;

void emit(Table& table, const std::string& x, const ExperimentConfig& cfg) {
  const auto t = sim::run_averaged(cfg, kRuns);
  table.add_row({x, Table::fmt(t.optimum), Table::fmt(t.fastpr),
                 Table::fmt(t.reconstruction_only),
                 Table::fmt(t.migration_only)});
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("=== Figure 8 (Exp A.1): simulation, scattered repair ===\n");
  std::printf("repair time per chunk (s), avg over %d runs\n\n", kRuns);

  {
    std::printf("(a) varying number of nodes M, RS(9,6)\n");
    Table t({"M", "Optimum", "FastPR", "Reconstruction", "Migration"});
    for (int m = 20; m <= 100; m += 10) {
      auto cfg = bench::sim_defaults();
      cfg.num_nodes = m;
      emit(t, std::to_string(m), cfg);
    }
    t.print();
  }
  {
    std::printf("\n(b) varying erasure code, M=100\n");
    Table t({"code", "Optimum", "FastPR", "Reconstruction", "Migration"});
    for (auto [n, k] : {std::pair{9, 6}, {14, 10}, {16, 12}}) {
      auto cfg = bench::sim_defaults();
      cfg.n = n;
      cfg.k = k;
      emit(t, "RS(" + std::to_string(n) + "," + std::to_string(k) + ")",
           cfg);
    }
    t.print();
  }
  {
    std::printf("\n(c) varying disk bandwidth bd (MB/s)\n");
    Table t({"bd", "Optimum", "FastPR", "Reconstruction", "Migration"});
    for (int bd : {100, 200, 300, 400, 500}) {
      auto cfg = bench::sim_defaults();
      cfg.disk_bw = MBps(bd);
      emit(t, std::to_string(bd), cfg);
    }
    t.print();
  }
  {
    std::printf("\n(d) varying network bandwidth bn (Gb/s)\n");
    Table t({"bn", "Optimum", "FastPR", "Reconstruction", "Migration"});
    for (double bn : {0.5, 1.0, 2.0, 5.0, 10.0}) {
      auto cfg = bench::sim_defaults();
      cfg.net_bw = Gbps(bn);
      emit(t, Table::fmt(bn, 1), cfg);
    }
    t.print();
  }

  // Headline: RS(16,12) reductions (paper: 62.7% vs migration-only,
  // 40.6% vs reconstruction-only; FastPR within 11.4% of optimum avg).
  auto cfg = bench::sim_defaults();
  cfg.n = 16;
  cfg.k = 12;
  const auto t = sim::run_averaged(cfg, kRuns);
  std::printf(
      "\nheadline RS(16,12): FastPR reduces migration-only by %s (paper "
      "62.7%%), reconstruction-only by %s (paper 40.6%%); FastPR is %s "
      "above optimum\n",
      bench::pct(t.fastpr, t.migration_only).c_str(),
      bench::pct(t.fastpr, t.reconstruction_only).c_str(),
      Table::fmt(100.0 * (t.fastpr / t.optimum - 1.0), 1).c_str());
  return 0;
}
