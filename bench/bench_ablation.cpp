// Ablations of FastPR design choices (DESIGN.md §5):
//  1. swap optimization (Alg. 1 Lines 18-38) on/off → simulated repair time;
//  2. model-derived migration quota cm = tr/tm vs fixed quotas;
//  3. paper timing model vs resource-contention timing model;
//  4. RS generator construction: Cauchy vs column-reduced Vandermonde
//     (encode throughput sanity, identical repair semantics).
#include <chrono>

#include "bench_common.h"
#include "core/placement.h"
#include "core/recon_sets.h"
#include "sim/simulator.h"
#include "util/rng.h"

using namespace fastpr;
using cluster::NodeId;
using cluster::StripeLayout;

namespace {

struct World {
  StripeLayout layout;
  cluster::ClusterState state;
  NodeId stf;
};

World make_world(uint64_t seed) {
  Rng rng(seed);
  World w{StripeLayout::random(100, 9, 1000, rng),
          cluster::ClusterState(
              100, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)}),
          0};
  for (NodeId n = 1; n < 100; ++n) {
    if (w.layout.load(n) > w.layout.load(w.stf)) w.stf = n;
  }
  w.state.set_health(w.stf, cluster::NodeHealth::kSoonToFail);
  return w;
}

core::PlannerOptions base_options() {
  core::PlannerOptions opts;
  opts.k_repair = 6;
  opts.chunk_bytes = static_cast<double>(MB(64));
  return opts;
}

sim::SimParams sim_params() {
  sim::SimParams p;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = 6;
  p.hot_standby = 3;
  return p;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("=== Ablations (RS(9,6), M=100, 1000 stripes, scattered) ===\n\n");

  {
    std::printf("(1) Algorithm 1 swap optimization on/off\n");
    Table t({"variant", "rounds", "per-chunk (s)"});
    for (bool optimize : {true, false}) {
      auto w = make_world(3);
      auto opts = base_options();
      opts.recon.optimize = optimize;
      core::FastPrPlanner planner(w.layout, w.state, opts);
      const auto plan = planner.plan_fastpr();
      const auto r = sim::simulate(plan, sim_params());
      t.add_row({optimize ? "with swap (d_opt)" : "greedy only (d_ini)",
                 std::to_string(plan.rounds.size()),
                 Table::fmt(r.per_chunk())});
    }
    t.print();
  }

  {
    std::printf("\n(2) migration quota: model cm = tr/tm vs fixed\n");
    Table t({"quota", "rounds", "migrated", "per-chunk (s)"});
    for (int quota : {-1, 0, 1, 4, 16}) {
      auto w = make_world(3);
      auto opts = base_options();
      opts.sched.fixed_migration_quota = quota;
      core::FastPrPlanner planner(w.layout, w.state, opts);
      const auto plan = planner.plan_fastpr();
      const auto r = sim::simulate(plan, sim_params());
      t.add_row({quota < 0 ? "model (tr/tm)" : std::to_string(quota),
                 std::to_string(plan.rounds.size()),
                 std::to_string(plan.total_migrated()),
                 Table::fmt(r.per_chunk())});
    }
    t.print();
    std::printf(
        "the model quota should be at or near the per-chunk minimum: too "
        "little migration wastes the STF uplink, too much makes it the "
        "round bottleneck\n");
  }

  {
    std::printf("\n(3) timing model: paper (§III serial stages) vs "
                "resource contention\n");
    Table t({"strategy", "paper model", "resource model"});
    auto w = make_world(3);
    core::FastPrPlanner planner(w.layout, w.state, base_options());
    const auto plans = {
        std::pair{std::string("FastPR"), planner.plan_fastpr()},
        {std::string("Reconstruction"), planner.plan_reconstruction_only()},
        {std::string("Migration"), planner.plan_migration_only()},
    };
    for (const auto& [name, plan] : plans) {
      auto p = sim_params();
      const auto paper = sim::simulate(plan, p);
      p.model = sim::TimingModel::kResourceModel;
      const auto resource = sim::simulate(plan, p);
      t.add_row({name, Table::fmt(paper.per_chunk()),
                 Table::fmt(resource.per_chunk())});
    }
    t.print();
    std::printf(
        "the ordering (FastPR < Reconstruction < Migration) must hold "
        "under both models\n");
  }

  {
    std::printf("\n(4) destination selection: arbitrary vs load-balanced "
                "matching\n");
    Table t({"variant", "per-chunk (s)", "post-repair load spread"});
    for (bool balanced : {false, true}) {
      auto w = make_world(3);
      auto opts = base_options();
      opts.balance_destinations = balanced;
      core::FastPrPlanner planner(w.layout, w.state, opts);
      const auto plan = planner.plan_fastpr();
      const auto r = sim::simulate(plan, sim_params());
      for (const auto& round : plan.rounds) {
        for (const auto& task : round.migrations) {
          w.layout.move_chunk(task.chunk, task.dst);
        }
        for (const auto& task : round.reconstructions) {
          w.layout.move_chunk(task.chunk, task.dst);
        }
      }
      int max_load = 0, min_load = 1 << 30;
      for (NodeId n = 0; n < 100; ++n) {
        if (n == w.stf) continue;
        max_load = std::max(max_load, w.layout.load(n));
        min_load = std::min(min_load, w.layout.load(n));
      }
      t.add_row({balanced ? "min-cost (by load)" : "arbitrary matching",
                 Table::fmt(r.per_chunk()),
                 std::to_string(max_load - min_load)});
    }
    t.print();
    std::printf(
        "load-aware destinations cost nothing in repair time and leave "
        "the cluster flatter (less §II-B rebalancing debt)\n");
  }

  {
    std::printf("\n(5) RS generator construction: encode 64 MiB stripe\n");
    Table t({"construction", "encode (ms)", "MB/s"});
    for (auto construction : {ec::RsCode::Construction::kCauchy,
                              ec::RsCode::Construction::kVandermonde}) {
      const ec::RsCode code(9, 6, construction);
      const size_t chunk = 1 << 20;
      std::vector<std::vector<uint8_t>> data(
          6, std::vector<uint8_t>(chunk, 0x5C));
      std::vector<ec::ConstChunk> dspan(data.begin(), data.end());
      std::vector<std::vector<uint8_t>> parity(
          3, std::vector<uint8_t>(chunk));
      std::vector<ec::MutChunk> pspan(parity.begin(), parity.end());
      const auto start = std::chrono::steady_clock::now();
      for (int reps = 0; reps < 10; ++reps) code.encode(dspan, pspan);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      const double mb = 10.0 * 6 * chunk / (1 << 20);
      t.add_row({code.name(), Table::fmt(secs * 100, 2),
                 Table::fmt(mb / secs, 0)});
    }
    t.print();
  }
  return 0;
}
