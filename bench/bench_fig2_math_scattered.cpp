// Figure 2: mathematical analysis, scattered repair.
// Repair time per chunk of optimal predictive repair (Eq. 2) vs the
// conventional reactive repair (Eq. 3), varying M, RS(n,k), bd and bn.
#include "bench_common.h"

#include "core/cost_model.h"

using namespace fastpr;
using core::CostModel;
using core::ModelParams;
using core::Scenario;

namespace {

ModelParams defaults() {
  ModelParams p;
  p.num_nodes = 100;
  p.stf_chunks = 1000;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = 6;  // RS(9,6)
  p.scenario = Scenario::kScattered;
  return p;
}

void emit(Table& table, const std::string& x, const ModelParams& p) {
  const CostModel m(p);
  table.add_row({x, Table::fmt(m.predictive_time_per_chunk()),
                 Table::fmt(m.reactive_time_per_chunk()),
                 bench::pct(m.predictive_time(), m.reactive_time())});
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("=== Figure 2: mathematical analysis, scattered repair ===\n");
  std::printf("repair time per chunk (s); reduction = predictive vs reactive\n\n");

  {
    std::printf("(a) varying number of nodes M, RS(9,6)\n");
    Table t({"M", "predictive", "reactive", "reduction"});
    for (int m = 20; m <= 100; m += 10) {
      auto p = defaults();
      p.num_nodes = m;
      emit(t, std::to_string(m), p);
    }
    t.print();
  }
  {
    std::printf("\n(b) varying erasure code RS(n,k), M=100\n");
    Table t({"code", "predictive", "reactive", "reduction"});
    for (auto [n, k] : {std::pair{9, 6}, {14, 10}, {16, 12}}) {
      auto p = defaults();
      p.k_repair = k;
      emit(t, "RS(" + std::to_string(n) + "," + std::to_string(k) + ")", p);
    }
    t.print();
  }
  {
    std::printf("\n(c) varying disk bandwidth bd (MB/s)\n");
    Table t({"bd", "predictive", "reactive", "reduction"});
    for (int bd : {100, 200, 300, 400, 500}) {
      auto p = defaults();
      p.disk_bw = MBps(bd);
      emit(t, std::to_string(bd), p);
    }
    t.print();
  }
  {
    std::printf("\n(d) varying network bandwidth bn (Gb/s)\n");
    Table t({"bn", "predictive", "reactive", "reduction"});
    for (double bn : {0.5, 1.0, 2.0, 5.0, 10.0}) {
      auto p = defaults();
      p.net_bw = Gbps(bn);
      emit(t, Table::fmt(bn, 1), p);
    }
    t.print();
  }

  // §III headline claim.
  auto p = defaults();
  p.k_repair = 12;
  const CostModel m(p);
  std::printf(
      "\nheadline: RS(16,12) predictive reduces reactive by %s (paper: "
      "33.1%%)\n",
      bench::pct(m.predictive_time(), m.reactive_time()).c_str());
  return 0;
}
