// Multi-STF batch repair sweep (DESIGN.md §8): repair 1..4 soon-to-fail
// nodes as one batch on the real testbed, comparing the joint batch
// planner (shared Algorithm-1 search over the union of STF chunks,
// Algorithm-2 packing with one migration stream per STF disk) against
// the sequential baseline (each member planned alone, plans executed
// back to back). The paper has no multi-STF experiment, so `sequential`
// is the in-repo reference; at batch 1 the joint planner is
// byte-identical to the single-STF planner, and the row should match
// Figure 11's 256 KB-packet FastPR point within run-to-run noise.
#include <algorithm>

#include "bench_common.h"

using namespace fastpr;

namespace {

struct BatchRun {
  double wall = 0;       // measured repair seconds (coordinator clock)
  double per_chunk = 0;
  int rounds = 0;
  int chunks = 0;        // U = union of the batch members' chunks
  telemetry::RepairReport report;
  bool ok = false;
};

/// One execution on a fresh testbed (pristine stores/agents), verified
/// byte-for-byte before any timing is reported.
BatchRun run_batch(const agent::TestbedOptions& opts,
                   const ec::ErasureCode& code, core::Scenario scenario,
                   int batch, bool joint) {
  BatchRun out;
  agent::Testbed tb(opts, code);
  const auto stf_nodes = tb.flag_stf_batch(batch);
  auto planner = tb.make_multi_planner(scenario);
  const auto plan =
      joint ? planner.plan_fastpr() : planner.plan_sequential();
  auto report = tb.execute(plan);
  if (!report.success) {
    LOG_ERROR("testbed run failed: "
              << (report.errors.empty() ? "?" : report.errors[0]));
    return out;
  }
  if (!tb.verify(plan)) {
    LOG_ERROR("testbed verification FAILED (batch " << batch << ")");
    return out;
  }
  for (const auto node : stf_nodes) out.chunks += tb.layout().load(node);
  out.wall = report.repair.total_seconds;
  out.per_chunk = report.per_chunk();
  out.rounds = static_cast<int>(plan.rounds.size());
  report.repair.predicted = tb.predict_rounds(plan, scenario);
  out.report = std::move(report.repair);
  out.ok = true;
  return out;
}

/// Batch-1 reference through the original single-STF planner (the
/// joint planner must match it within noise).
BatchRun run_single(const agent::TestbedOptions& opts,
                    const ec::ErasureCode& code,
                    core::Scenario scenario) {
  BatchRun out;
  agent::Testbed tb(opts, code);
  const auto stf = tb.flag_stf();
  auto planner = tb.make_planner(scenario);
  const auto plan = planner.plan_fastpr();
  auto report = tb.execute(plan);
  if (!report.success || !tb.verify(plan)) {
    LOG_ERROR("single-STF reference run failed");
    return out;
  }
  out.chunks = tb.layout().load(stf);
  out.wall = report.repair.total_seconds;
  out.per_chunk = report.per_chunk();
  out.rounds = static_cast<int>(plan.rounds.size());
  out.ok = true;
  return out;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  ec::RsCode code(9, 6);
  std::printf("=== Multi-STF batch repair (no paper counterpart) ===\n");
  std::printf(
      "testbed, RS(9,6), chunk 4 MB (paper 64 MB, scaled 1/16), "
      "bandwidths = EC2/4 (35.5 MB/s disk, 1.25 Gb/s NIC)\n"
      "joint batch planner vs sequential per-node planning, "
      "wall-clock (s)\n\n");

  bench::FigureEmitter fig("bench_multi_stf");
  fig.add_config("code", "RS(9,6)");
  fig.add_config("chunk", "4MB (paper 64MB, scaled 1/16)");
  fig.add_config("bandwidths", "EC2/4 (35.5 MB/s disk, 1.25 Gb/s NIC)");
  fig.add_config("seed", "11");
  fig.add_config("baseline",
                 "sequential per-node plans (no paper baseline exists "
                 "for batch > 1)");

  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    const std::string title =
        std::string("(") +
        (scenario == core::Scenario::kScattered ? "a" : "b") + ") " +
        core::to_string(scenario) + " repair";
    fig.begin_section(title, {"batch", "joint (s)", "sequential (s)",
                              "saved", "joint rounds", "seq rounds",
                              "U", "joint s/chunk"});
    // A hot-standby batch cannot exceed the spare count: a stripe may
    // lose up to B chunks to the batch and each needs a distinct spare.
    const int max_batch =
        scenario == core::Scenario::kHotStandby
            ? std::min(4, bench::testbed_defaults(/*seed=*/11).num_standby)
            : 4;
    for (int batch = 1; batch <= max_batch; ++batch) {
      const auto opts = bench::testbed_defaults(/*seed=*/11);
      const auto joint =
          run_batch(opts, code, scenario, batch, /*joint=*/true);
      const auto sequential =
          run_batch(opts, code, scenario, batch, /*joint=*/false);
      if (!joint.ok || !sequential.ok) {
        fig.add_row({std::to_string(batch), "FAIL", "FAIL", "-", "-",
                     "-", "-", "-"});
        continue;
      }
      fig.add_row({std::to_string(batch), Table::fmt(joint.wall, 2),
                   Table::fmt(sequential.wall, 2),
                   bench::pct(joint.wall, sequential.wall),
                   std::to_string(joint.rounds),
                   std::to_string(sequential.rounds),
                   std::to_string(joint.chunks),
                   Table::fmt(joint.per_chunk, 3)});
      fig.attach_json("joint_report", joint.report.to_json());
      if (batch == 1) {
        // Degenerate-batch sanity: the original single-STF planner on
        // the same layout, for a noise-level diff against `joint`.
        const auto single = run_single(opts, code, scenario);
        if (single.ok) {
          fig.attach_json(
              "single_planner_reference",
              std::string("{\"wall_seconds\":") +
                  Table::fmt(single.wall, 4) +
                  ",\"rounds\":" + std::to_string(single.rounds) +
                  ",\"per_chunk\":" + Table::fmt(single.per_chunk, 4) +
                  "}");
        }
      }
    }
    fig.end_section();
  }
  std::printf(
      "expected shape: joint <= sequential at every batch size (shared "
      "rounds amortize reconstruction; per-disk migration streams run "
      "in parallel), gap widening with batch; batch 1 matches Fig 11's "
      "FastPR point at 256 KB packets\n");
  fig.write_sidecar();
  return 0;
}
