// GF(256) kernel throughput: GB/s for every dispatchable variant
// (scalar / ssse3 / avx2 / gfni) across the region ops, plus the
// headline fused-dot comparison — one dot_region_xor over k sources vs
// the per-source mul_region_xor loop it replaced in the decode path.
//
// Bytes accounting matches bench_algorithms: single-source ops count
// `len` per call; the k-source dot counts `k * len` (the bytes the
// decode actually consumed). Run from a release build only; report the
// kernel column that matches the host's dispatched variant.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "gf/gf256.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

using namespace fastpr;

namespace {

constexpr int kDotSources = 6;  // RS(9,6) data-chunk decode fan-in

std::vector<uint8_t> random_bytes(Rng& rng, size_t n) {
  std::vector<uint8_t> out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.uniform(0, 255));
  return out;
}

/// Best of three ~0.12 s measurement windows, in GB/s over
/// `bytes_per_call`. Best-of reports kernel capability; the mean on a
/// shared single-core host mostly measures the noisy neighbors.
double measure_gbps(size_t bytes_per_call, const std::function<void()>& op) {
  using clock = std::chrono::steady_clock;
  // Warm caches and the dispatch path.
  op();
  double best = 0;
  for (int window = 0; window < 3; ++window) {
    int64_t calls = 0;
    const auto start = clock::now();
    double elapsed = 0;
    do {
      for (int i = 0; i < 8; ++i) op();
      calls += 8;
      elapsed = std::chrono::duration<double>(clock::now() - start).count();
    } while (elapsed < 0.12);
    const double bytes =
        static_cast<double>(calls) * static_cast<double>(bytes_per_call);
    best = std::max(best, bytes / elapsed / 1e9);
  }
  return best;
}

struct Workspace {
  std::vector<std::vector<uint8_t>> srcs;
  std::vector<const uint8_t*> ptrs;
  std::vector<uint8_t> coeffs;
  std::vector<uint8_t> dst;

  Workspace(Rng& rng, size_t len) : dst(random_bytes(rng, len)) {
    for (int j = 0; j < kDotSources; ++j) {
      srcs.push_back(random_bytes(rng, len));
      coeffs.push_back(static_cast<uint8_t>(rng.uniform(2, 255)));
    }
    for (const auto& s : srcs) ptrs.push_back(s.data());
  }
};

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::vector<gf::Kernel> kernels;
  for (gf::Kernel k : {gf::Kernel::kScalar, gf::Kernel::kSsse3,
                       gf::Kernel::kAvx2, gf::Kernel::kGfni}) {
    if (gf::kernel_supported(k)) kernels.push_back(k);
  }

  std::printf("=== GF(256) kernel throughput (GB/s) ===\n");
  std::printf("host dispatch: %s   (override: FASTPR_GF_KERNEL)\n\n",
              gf::kernel_name(gf::active_kernel()));

  const std::vector<size_t> sizes = {4 * kKiB, 64 * kKiB, 1 * kMiB};

  std::vector<std::string> header = {"op", "size"};
  for (gf::Kernel k : kernels) header.emplace_back(gf::kernel_name(k));
  Table t(header);

  Rng rng(42);
  for (size_t len : sizes) {
    Workspace ws(rng, len);
    const std::string size_label =
        len >= kMiB ? std::to_string(len / kMiB) + " MiB"
                    : std::to_string(len / kKiB) + " KiB";

    auto row_for = [&](const char* op_name, size_t bytes_per_call,
                       const std::function<void()>& op) {
      std::vector<std::string> row = {op_name, size_label};
      for (gf::Kernel k : kernels) {
        gf::ScopedKernel pin(k);
        row.push_back(Table::fmt(measure_gbps(bytes_per_call, op), 2));
      }
      t.add_row(std::move(row));
    };

    row_for("xor_region", len, [&] {
      gf::xor_region(ws.dst.data(), ws.srcs[0].data(), len);
    });
    row_for("mul_region", len, [&] {
      gf::mul_region(ws.dst.data(), ws.srcs[0].data(), ws.coeffs[0], len);
    });
    row_for("mul_region_xor", len, [&] {
      gf::mul_region_xor(ws.dst.data(), ws.srcs[0].data(), ws.coeffs[0],
                         len);
    });
    row_for("dot_region_xor k=6", kDotSources * len, [&] {
      gf::dot_region_xor(ws.dst.data(), ws.ptrs.data(), ws.coeffs.data(),
                         kDotSources, len);
    });
  }
  t.print();

  // Headline: the decode-path rewrite. One fused pass over k=6 sources
  // vs k separate mul_region_xor passes (what RsCode/LrcCode/the agent
  // accumulator did before), at the 64 KiB testbed chunk scale.
  std::printf("\n=== fused dot vs per-source mul_region_xor loop "
              "(k=%d, 64 KiB) ===\n", kDotSources);
  Table h({"kernel", "per-src GB/s", "fused GB/s", "speedup"});
  const size_t len = 64 * kKiB;
  Workspace ws(rng, len);
  for (gf::Kernel k : kernels) {
    gf::ScopedKernel pin(k);
    const double loop = measure_gbps(kDotSources * len, [&] {
      for (int j = 0; j < kDotSources; ++j) {
        gf::mul_region_xor(ws.dst.data(), ws.ptrs[j], ws.coeffs[j], len);
      }
    });
    const double fused = measure_gbps(kDotSources * len, [&] {
      gf::dot_region_xor(ws.dst.data(), ws.ptrs.data(), ws.coeffs.data(),
                         kDotSources, len);
    });
    h.add_row({gf::kernel_name(k), Table::fmt(loop, 2), Table::fmt(fused, 2),
               Table::fmt(fused / loop, 2) + "x"});
  }
  h.print();

  // The decode-path headline: before this change RsCode/LrcCode and the
  // agent accumulator looped mul_region_xor per source on the repo's
  // then-best kernel (ssse3); now they issue one fused dot on whatever
  // the host dispatches. Measured as paired alternating windows so
  // turbo/noisy-neighbor drift hits both sides equally; the reported
  // speedup is the median of the per-pair ratios.
  const gf::Kernel before_kernel = gf::kernel_supported(gf::Kernel::kSsse3)
                                       ? gf::Kernel::kSsse3
                                       : gf::Kernel::kScalar;
  const gf::Kernel after_kernel = gf::best_supported_kernel();
  std::vector<double> ratios, before_gbps, after_gbps;
  for (int pair = 0; pair < 5; ++pair) {
    double before = 0, after = 0;
    {
      gf::ScopedKernel pin(before_kernel);
      before = measure_gbps(kDotSources * len, [&] {
        for (int j = 0; j < kDotSources; ++j) {
          gf::mul_region_xor(ws.dst.data(), ws.ptrs[j], ws.coeffs[j], len);
        }
      });
    }
    {
      gf::ScopedKernel pin(after_kernel);
      after = measure_gbps(kDotSources * len, [&] {
        gf::dot_region_xor(ws.dst.data(), ws.ptrs.data(), ws.coeffs.data(),
                           kDotSources, len);
      });
    }
    before_gbps.push_back(before);
    after_gbps.push_back(after);
    ratios.push_back(after / before);
  }
  std::sort(ratios.begin(), ratios.end());
  std::sort(before_gbps.begin(), before_gbps.end());
  std::sort(after_gbps.begin(), after_gbps.end());
  std::printf("\ndecode path, k=%d at 64 KiB: per-source loop (seed %s) "
              "%.2f GB/s -> fused dot (%s) %.2f GB/s = %.2fx (median of 5 "
              "paired runs)\n",
              kDotSources, gf::kernel_name(before_kernel), before_gbps[2],
              gf::kernel_name(after_kernel), after_gbps[2], ratios[2]);
  return 0;
}
