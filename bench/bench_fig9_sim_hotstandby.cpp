// Figure 9 (Experiment A.2): simulation, hot-standby repair.
// Varying M and h; RS(9,6), h=3 default.
#include "bench_common.h"

using namespace fastpr;
using sim::ExperimentConfig;

namespace {

constexpr int kRuns = 3;

void emit(Table& table, const std::string& x, const ExperimentConfig& cfg) {
  const auto t = sim::run_averaged(cfg, kRuns);
  table.add_row({x, Table::fmt(t.optimum), Table::fmt(t.fastpr),
                 Table::fmt(t.reconstruction_only),
                 Table::fmt(t.migration_only)});
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("=== Figure 9 (Exp A.2): simulation, hot-standby repair ===\n");
  std::printf("repair time per chunk (s), avg over %d runs\n\n", kRuns);

  {
    std::printf("(a) varying number of nodes M, h=3\n");
    Table t({"M", "Optimum", "FastPR", "Reconstruction", "Migration"});
    for (int m = 20; m <= 100; m += 10) {
      auto cfg = bench::sim_defaults();
      cfg.scenario = core::Scenario::kHotStandby;
      cfg.num_nodes = m;
      emit(t, std::to_string(m), cfg);
    }
    t.print();
  }
  {
    std::printf("\n(b) varying number of hot-standby nodes h, M=100\n");
    Table t({"h", "Optimum", "FastPR", "Reconstruction", "Migration"});
    for (int h = 3; h <= 9; ++h) {
      auto cfg = bench::sim_defaults();
      cfg.scenario = core::Scenario::kHotStandby;
      cfg.hot_standby = h;
      emit(t, std::to_string(h), cfg);
    }
    t.print();
  }

  auto cfg = bench::sim_defaults();
  cfg.scenario = core::Scenario::kHotStandby;
  const auto t = sim::run_averaged(cfg, kRuns);
  std::printf(
      "\nheadline h=3: FastPR reduces migration-only by %s (paper 57.7%%), "
      "reconstruction-only by %s (paper 41.0%%); FastPR is %s above "
      "optimum (paper avg 5.4%%)\n",
      bench::pct(t.fastpr, t.migration_only).c_str(),
      bench::pct(t.fastpr, t.reconstruction_only).c_str(),
      Table::fmt(100.0 * (t.fastpr / t.optimum - 1.0), 1).c_str());
  return 0;
}
