// Figure 11 (Experiment B.1): testbed — impact of the packet size.
// Real coordinator/agent runs with chunks scaled 64 MB → 4 MB; packet
// sizes scale the paper's 1/4/16/64 MB to 64 KB/256 KB/1 MB/4 MB (the
// last equals the chunk, i.e. multi-threading effectively disabled).
#include "bench_common.h"

using namespace fastpr;

int main() {
  set_log_level(LogLevel::kWarn);
  ec::RsCode code(9, 6);
  std::printf("=== Figure 11 (Exp B.1): impact of the packet size ===\n");
  std::printf(
      "testbed, RS(9,6), chunk 4 MB (paper 64 MB, scaled 1/16), "
      "bandwidths = EC2/4 (35.5 MB/s disk, 1.25 Gb/s NIC)\n"
      "repair time per chunk (s)\n\n");

  bench::FigureEmitter fig("bench_fig11_packet_size");
  fig.add_config("code", "RS(9,6)");
  fig.add_config("chunk", "4MB (paper 64MB, scaled 1/16)");
  fig.add_config("bandwidths", "EC2/4 (35.5 MB/s disk, 1.25 Gb/s NIC)");
  fig.add_config("seed", "11");
  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    const std::string title =
        std::string("(") +
        (scenario == core::Scenario::kScattered ? "a" : "b") + ") " +
        core::to_string(scenario) + " repair";
    fig.begin_section(title,
                      {"packet", "FastPR", "Reconstruction", "Migration",
                       "U"});
    for (uint64_t packet_kb : {64, 256, 1024, 4096}) {
      auto opts = bench::testbed_defaults(/*seed=*/11);
      opts.packet_bytes = packet_kb * static_cast<uint64_t>(kKiB);
      const auto r = bench::run_testbed_trio(opts, code, scenario);
      fig.add_row({std::to_string(packet_kb) + "KB", Table::fmt(r.fastpr, 3),
                   Table::fmt(r.reconstruction, 3),
                   Table::fmt(r.migration, 3),
                   std::to_string(r.stf_chunks)});
      fig.attach_json("fastpr_report", r.fastpr_report.to_json());
    }
    fig.end_section();
  }
  std::printf(
      "paper shape: repair time falls as packets shrink 64->4 MB "
      "(pipelining), then flattens at 1 MB; FastPR lowest throughout\n");
  fig.write_sidecar();
  return 0;
}
