// Lifetime evaluation (extension beyond the paper's figures): what the
// paper's motivation promises, quantified — prediction accuracy vs the
// window of vulnerability, degraded-stripe exposure and repair traffic
// over a simulated year of cluster operation.
#include "bench_common.h"

#include "lifetime/lifetime_sim.h"

using namespace fastpr;

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("=== Lifetime simulation: one year, 60 nodes, RS(9,6) ===\n");
  std::printf(
      "MTBF 600 days/node (~36 failures/yr), 64 MB chunks, bd=100 MB/s, "
      "bn=1 Gb/s,\nlead 2-10 days, 2 false alarms/yr\n\n");

  lifetime::LifetimeConfig cfg;
  cfg.num_nodes = 60;
  cfg.n = 9;
  cfg.k = 6;
  cfg.num_stripes = 400;
  cfg.chunk_bytes = static_cast<double>(MB(64));
  cfg.disk_bw = MBps(100);
  cfg.net_bw = Gbps(1);
  cfg.sim_days = 365;
  cfg.node_mtbf_days = 600;
  cfg.seed = 20260704;

  Table t({"policy / recall", "failures", "in-time", "vuln (s)",
           "degraded stripe-hrs", "traffic (chunks)", "mean repair (s)"});

  auto row = [&](const std::string& label,
                 const lifetime::LifetimeReport& r) {
    t.add_row({label, std::to_string(r.failures),
               std::to_string(r.completed_in_time),
               Table::fmt(r.vulnerability_seconds, 1),
               Table::fmt(r.degraded_stripe_seconds / 3600.0, 1),
               std::to_string(r.repair_traffic_chunks),
               r.repair_seconds.empty()
                   ? "-"
                   : Table::fmt(r.repair_seconds.mean(), 1)});
  };

  {
    auto reactive = cfg;
    reactive.predictive_enabled = false;
    row("reactive only", lifetime::simulate_lifetime(reactive));
  }
  for (double recall : {0.5, 0.8, 0.95, 1.0}) {
    auto c = cfg;
    c.prediction_recall = recall;
    row("predictive r=" + Table::fmt(recall, 2),
        lifetime::simulate_lifetime(c));
  }
  t.print();

  std::printf(
      "\nreading: 'vuln' sums seconds during which some node's data had "
      "reduced redundancy;\npredictive repair with the cited >=95%% "
      "recall eliminates nearly all of it, and\nits per-failure traffic "
      "is lower because migrated chunks cost 1x instead of kx\n");
  return 0;
}
