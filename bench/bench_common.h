// Shared helpers for the figure-reproduction benches.
//
// Conventions (documented per experiment in EXPERIMENTS.md):
//  * Simulation benches (Figs 2/3/8/9/10) use the paper's exact
//    configuration — M=100 nodes, 1000 stripes, 64 MB chunks,
//    bd=100 MB/s, bn=1 Gb/s, RS(9,6), h=3 — averaged over fewer runs
//    than the paper's 30 (single-core budget; variance is small).
//  * Testbed benches (Figs 11-14) run the real coordinator/agent
//    prototype with chunks scaled 64 MB → 4 MB (1/16) and bandwidths
//    scaled 1/4 from the EC2 instance values (142 MB/s disk, 5 Gb/s
//    NIC → 35.5 MB/s, 1.25 Gb/s). Per-chunk times are ≈ paper/4 and
//    every ratio is preserved; the milder time compression keeps the
//    shaped I/O dominant over local CPU (GF decode, content synthesis)
//    on a single-core host.
#pragma once

#include <cstdio>
#include <string>

#include "agent/testbed.h"
#include "core/fastpr.h"
#include "ec/rs_code.h"
#include "sim/strategies.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/units.h"

namespace fastpr::bench {

/// Paper §VI-A defaults for simulation experiments.
inline sim::ExperimentConfig sim_defaults() {
  sim::ExperimentConfig cfg;
  cfg.num_nodes = 100;
  cfg.num_stripes = 1000;
  cfg.n = 9;
  cfg.k = 6;
  cfg.chunk_bytes = static_cast<double>(MB(64));
  cfg.disk_bw = MBps(100);
  cfg.net_bw = Gbps(1);
  cfg.hot_standby = 3;
  cfg.seed = 1;
  return cfg;
}

/// Paper §VI-B testbed: 21 storage + 3 spares on EC2 m5.large
/// (142 MB/s disk, 5 Gb/s network); chunks scaled 1/16, bandwidths 1/4.
inline agent::TestbedOptions testbed_defaults(uint64_t seed) {
  agent::TestbedOptions opts;
  opts.num_storage = 21;
  opts.num_standby = 3;
  opts.disk_bytes_per_sec = MBps(142) / 4;
  opts.net_bytes_per_sec = Gbps(5) / 4;
  opts.chunk_bytes = static_cast<uint64_t>(MB(4));
  opts.packet_bytes = 256 * kKiB;
  // ~50 repaired chunks on the STF node, as in the paper's runs.
  opts.num_stripes = 110;
  opts.seed = seed;
  opts.round_timeout = std::chrono::minutes(10);
  return opts;
}

struct TestbedTimes {
  double fastpr = 0;
  double reconstruction = 0;
  double migration = 0;
  int stf_chunks = 0;
};

/// Runs all three strategies on fresh testbeds (per-chunk seconds).
/// A fresh testbed per strategy keeps stores/agents pristine.
inline TestbedTimes run_testbed_trio(const agent::TestbedOptions& opts,
                                     const ec::ErasureCode& code,
                                     core::Scenario scenario) {
  TestbedTimes out;
  auto run_one = [&](const char* which) {
    agent::Testbed tb(opts, code);
    const auto stf = tb.flag_stf();
    out.stf_chunks = tb.layout().load(stf);
    auto planner = tb.make_planner(scenario);
    core::RepairPlan plan;
    if (std::string(which) == "fastpr") {
      plan = planner.plan_fastpr();
    } else if (std::string(which) == "reconstruction") {
      plan = planner.plan_reconstruction_only();
    } else {
      plan = planner.plan_migration_only();
    }
    const auto report = tb.execute(plan);
    if (!report.success) {
      LOG_ERROR("testbed run failed: "
                << (report.errors.empty() ? "?" : report.errors[0]));
      return 0.0;
    }
    if (!tb.verify(plan)) {
      LOG_ERROR("testbed verification FAILED for " << which);
      return 0.0;
    }
    return report.per_chunk();
  };
  out.fastpr = run_one("fastpr");
  out.reconstruction = run_one("reconstruction");
  out.migration = run_one("migration");
  return out;
}

inline std::string pct(double smaller, double larger) {
  if (larger <= 0) return "-";
  return Table::fmt(100.0 * (1.0 - smaller / larger), 1) + "%";
}

}  // namespace fastpr::bench
