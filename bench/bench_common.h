// Shared helpers for the figure-reproduction benches.
//
// Conventions (documented per experiment in EXPERIMENTS.md):
//  * Simulation benches (Figs 2/3/8/9/10) use the paper's exact
//    configuration — M=100 nodes, 1000 stripes, 64 MB chunks,
//    bd=100 MB/s, bn=1 Gb/s, RS(9,6), h=3 — averaged over fewer runs
//    than the paper's 30 (single-core budget; variance is small).
//  * Testbed benches (Figs 11-14) run the real coordinator/agent
//    prototype with chunks scaled 64 MB → 4 MB (1/16) and bandwidths
//    scaled 1/4 from the EC2 instance values (142 MB/s disk, 5 Gb/s
//    NIC → 35.5 MB/s, 1.25 Gb/s). Per-chunk times are ≈ paper/4 and
//    every ratio is preserved; the milder time compression keeps the
//    shaped I/O dominant over local CPU (GF decode, content synthesis)
//    on a single-core host.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "agent/testbed.h"
#include "core/fastpr.h"
#include "ec/rs_code.h"
#include "sim/strategies.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/units.h"

namespace fastpr::bench {

/// Paper §VI-A defaults for simulation experiments.
inline sim::ExperimentConfig sim_defaults() {
  sim::ExperimentConfig cfg;
  cfg.num_nodes = 100;
  cfg.num_stripes = 1000;
  cfg.n = 9;
  cfg.k = 6;
  cfg.chunk_bytes = static_cast<double>(MB(64));
  cfg.disk_bw = MBps(100);
  cfg.net_bw = Gbps(1);
  cfg.hot_standby = 3;
  cfg.seed = 1;
  return cfg;
}

/// Paper §VI-B testbed: 21 storage + 3 spares on EC2 m5.large
/// (142 MB/s disk, 5 Gb/s network); chunks scaled 1/16, bandwidths 1/4.
inline agent::TestbedOptions testbed_defaults(uint64_t seed) {
  agent::TestbedOptions opts;
  opts.num_storage = 21;
  opts.num_standby = 3;
  opts.disk_bytes_per_sec = MBps(142) / 4;
  opts.net_bytes_per_sec = Gbps(5) / 4;
  opts.chunk_bytes = static_cast<uint64_t>(MB(4));
  opts.packet_bytes = 256 * kKiB;
  // ~50 repaired chunks on the STF node, as in the paper's runs.
  opts.num_stripes = 110;
  opts.seed = seed;
  opts.round_timeout = std::chrono::minutes(10);
  return opts;
}

struct TestbedTimes {
  double fastpr = 0;
  double reconstruction = 0;
  double migration = 0;
  int stf_chunks = 0;
  /// Per-round measured breakdown of the FastPR run, with the cost
  /// model's per-round prediction attached — benches embed its
  /// to_json() in their sidecar so figures stay diffable against
  /// Algorithm 2's plan structure.
  telemetry::RepairReport fastpr_report;
};

/// Runs all three strategies on fresh testbeds (per-chunk seconds).
/// A fresh testbed per strategy keeps stores/agents pristine.
inline TestbedTimes run_testbed_trio(const agent::TestbedOptions& opts,
                                     const ec::ErasureCode& code,
                                     core::Scenario scenario) {
  TestbedTimes out;
  auto run_one = [&](const char* which) {
    agent::Testbed tb(opts, code);
    const auto stf = tb.flag_stf();
    out.stf_chunks = tb.layout().load(stf);
    auto planner = tb.make_planner(scenario);
    core::RepairPlan plan;
    if (std::string(which) == "fastpr") {
      plan = planner.plan_fastpr();
    } else if (std::string(which) == "reconstruction") {
      plan = planner.plan_reconstruction_only();
    } else {
      plan = planner.plan_migration_only();
    }
    auto report = tb.execute(plan);
    if (!report.success) {
      LOG_ERROR("testbed run failed: "
                << (report.errors.empty() ? "?" : report.errors[0]));
      return 0.0;
    }
    if (!tb.verify(plan)) {
      LOG_ERROR("testbed verification FAILED for " << which);
      return 0.0;
    }
    if (std::string(which) == "fastpr") {
      report.repair.predicted = tb.predict_rounds(plan, scenario);
      out.fastpr_report = std::move(report.repair);
    }
    return report.per_chunk();
  };
  out.fastpr = run_one("fastpr");
  out.reconstruction = run_one("reconstruction");
  out.migration = run_one("migration");
  return out;
}

inline std::string pct(double smaller, double larger) {
  if (larger <= 0) return "-";
  return Table::fmt(100.0 * (1.0 - smaller / larger), 1) + "%";
}

/// One code path for a bench's figure output: every section/row goes
/// through here, which prints the human-readable table (exactly as the
/// pre-existing benches did) AND mirrors it into a structured JSON
/// sidecar — `<bench>.json` in the working directory — so the two can
/// never drift. The sidecar records the bench configuration, every row
/// keyed by its column header, any per-row attachments (e.g. a
/// RepairReport), whether telemetry was compiled in, and a final
/// metrics-registry snapshot.
class FigureEmitter {
 public:
  explicit FigureEmitter(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  /// Records one configuration fact for the sidecar (scales, code, ...).
  void add_config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, value);
  }

  /// Opens a titled table; prints the title line immediately.
  void begin_section(const std::string& title,
                     std::vector<std::string> headers) {
    FASTPR_CHECK(!in_section_);
    in_section_ = true;
    std::printf("%s\n", title.c_str());
    sections_.push_back(Section{title, std::move(headers), {}, {}});
  }

  /// Adds one row; arity must match the section's headers.
  void add_row(std::vector<std::string> cells) {
    FASTPR_CHECK(in_section_);
    auto& section = sections_.back();
    FASTPR_CHECK(cells.size() == section.headers.size());
    section.rows.push_back(std::move(cells));
    section.extras.emplace_back();
  }

  /// Attaches a raw JSON value under `key` to the last added row —
  /// sidecar-only detail that has no table column (per-round repair
  /// breakdowns, for instance).
  void attach_json(const std::string& key, const std::string& json) {
    FASTPR_CHECK(in_section_);
    FASTPR_CHECK(!sections_.back().rows.empty());
    sections_.back().extras.back().emplace_back(key, json);
  }

  /// Prints the section's table followed by a blank line.
  void end_section() {
    FASTPR_CHECK(in_section_);
    in_section_ = false;
    const auto& section = sections_.back();
    Table t(section.headers);
    for (const auto& row : section.rows) t.add_row(row);
    t.print();
    std::printf("\n");
  }

  /// Writes `<bench>.json`. Call once, after the last section.
  bool write_sidecar() const {
    FASTPR_CHECK(!in_section_);
    std::ostringstream os;
    os << "{\"bench\":" << telemetry::json_str(bench_)
       << ",\"telemetry_enabled\":"
       << (FASTPR_TELEMETRY_ENABLED != 0 ? "true" : "false") << ",\"config\":{";
    for (size_t i = 0; i < config_.size(); ++i) {
      if (i != 0) os << ",";
      os << telemetry::json_str(config_[i].first) << ":"
         << telemetry::json_str(config_[i].second);
    }
    os << "},\"sections\":[";
    for (size_t s = 0; s < sections_.size(); ++s) {
      const auto& section = sections_[s];
      if (s != 0) os << ",";
      os << "{\"title\":" << telemetry::json_str(section.title)
         << ",\"rows\":[";
      for (size_t r = 0; r < section.rows.size(); ++r) {
        if (r != 0) os << ",";
        os << "{";
        for (size_t c = 0; c < section.headers.size(); ++c) {
          if (c != 0) os << ",";
          os << telemetry::json_str(section.headers[c]) << ":"
             << telemetry::json_str(section.rows[r][c]);
        }
        for (const auto& [key, json] : section.extras[r]) {
          os << "," << telemetry::json_str(key) << ":" << json;
        }
        os << "}";
      }
      os << "]}";
    }
    os << "],\"metrics\":"
       << telemetry::MetricsRegistry::global().snapshot().to_json() << "}";

    const std::string path = bench_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out.good()) {
      LOG_WARN("cannot write bench sidecar " << path);
      return false;
    }
    out << os.str() << "\n";
    std::printf("sidecar: %s\n", path.c_str());
    return out.good();
  }

 private:
  struct Section {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
    /// Per-row (key, raw-JSON) attachments, parallel to `rows`.
    std::vector<std::vector<std::pair<std::string, std::string>>> extras;
  };

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Section> sections_;
  bool in_section_ = false;
};

}  // namespace fastpr::bench
