// Figure 10 (Experiment A.3): repair time per chunk vs number of
// stripes — FastPR against the analytic optimum only. More stripes give
// Algorithm 1 more freedom, closing the gap to the optimum.
#include "bench_common.h"

using namespace fastpr;

namespace {
constexpr int kRuns = 3;
}

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("=== Figure 10 (Exp A.3): impact of the number of stripes ===\n");
  std::printf("repair time per chunk (s), avg over %d runs\n\n", kRuns);

  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    std::printf("(%s) %s repair\n",
                scenario == core::Scenario::kScattered ? "a" : "b",
                core::to_string(scenario).c_str());
    Table t({"stripes", "Optimum", "FastPR", "gap"});
    for (int stripes : {200, 400, 600, 800, 1000}) {
      auto cfg = bench::sim_defaults();
      cfg.scenario = scenario;
      cfg.num_stripes = stripes;
      const auto r = sim::run_averaged(cfg, kRuns);
      t.add_row({std::to_string(stripes), Table::fmt(r.optimum),
                 Table::fmt(r.fastpr),
                 Table::fmt(100.0 * (r.fastpr / r.optimum - 1.0), 1) + "%"});
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "paper: gap within 15%% once >= 400 stripes (scattered); the gap "
      "shrinks with more stripes in both scenarios\n");
  return 0;
}
