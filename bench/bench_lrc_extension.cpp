// §III "Extension for LRCs" and the §II-A repair-efficient codes: the
// analysis with k substituted by k' = k/l (LRC) and, for MSR codes, d
// helpers each shipping 1/(d-k+1) of a chunk; plus end-to-end
// simulation of the code-aware FastPR planner on LRC(12, 2, 2) vs
// RS(16, 12) (both n=16).
#include "bench_common.h"

#include "core/cost_model.h"
#include "ec/lrc_code.h"
#include "sim/simulator.h"
#include "util/rng.h"

using namespace fastpr;
using core::CostModel;
using core::ModelParams;

namespace {

ModelParams model(int k_repair, int num_nodes) {
  ModelParams p;
  p.num_nodes = num_nodes;
  p.stf_chunks = 1000;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = k_repair;
  return p;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("=== LRC extension of the SIII analysis ===\n");
  std::printf(
      "RS(16,12): repairs fetch k=12 chunks; LRC(12,2,2): k'=6 within the "
      "local group\nrepair time per chunk (s), scattered\n\n");

  {
    Table t({"M", "RS predictive", "RS reactive", "LRC predictive",
             "LRC reactive"});
    for (int m = 40; m <= 100; m += 20) {
      const CostModel rs(model(12, m));
      const CostModel lrc(model(6, m));
      t.add_row({std::to_string(m),
                 Table::fmt(rs.predictive_time_per_chunk()),
                 Table::fmt(rs.reactive_time_per_chunk()),
                 Table::fmt(lrc.predictive_time_per_chunk()),
                 Table::fmt(lrc.reactive_time_per_chunk())});
    }
    t.print();
  }

  // End-to-end: the code-aware planner on real layouts (one seed,
  // simulated timing).
  std::printf("\nplanner + simulator, M=80, 600 stripes of n=16:\n");
  {
    ec::RsCode rs(16, 12);
    ec::LrcCode lrc(12, 2, 2);
    Table t({"code", "FastPR", "Reconstruction", "Optimum"});
    struct Row {
      const ec::ErasureCode* code;
      int k_repair;
    };
    for (const auto& row : {Row{&rs, 12}, Row{&lrc, 6}}) {
      Rng rng(5);
      auto layout = cluster::StripeLayout::random(80, 16, 600, rng);
      cluster::ClusterState state(
          80, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
      cluster::NodeId stf = 0;
      for (cluster::NodeId n = 1; n < 80; ++n) {
        if (layout.load(n) > layout.load(stf)) stf = n;
      }
      state.set_health(stf, cluster::NodeHealth::kSoonToFail);
      core::PlannerOptions popts;
      popts.k_repair = row.k_repair;
      popts.chunk_bytes = static_cast<double>(MB(64));
      popts.code = row.code;
      core::FastPrPlanner planner(layout, state, popts);
      sim::SimParams sp;
      sp.chunk_bytes = popts.chunk_bytes;
      sp.disk_bw = MBps(100);
      sp.net_bw = Gbps(1);
      sp.k_repair = row.k_repair;
      const auto fast = sim::simulate(planner.plan_fastpr(), sp);
      const auto recon =
          sim::simulate(planner.plan_reconstruction_only(), sp);
      t.add_row({row.code->name(), Table::fmt(fast.per_chunk()),
                 Table::fmt(recon.per_chunk()),
                 Table::fmt(planner.cost_model()
                                .predictive_time_per_chunk())});
    }
    t.print();
  }
  std::printf(
      "\nLRC locality halves the repair fetch and roughly halves both "
      "FastPR and reactive repair times, as the SIII substitution "
      "predicts\n");

  // MSR extension: d = n-1 helpers, each shipping 1/(d-k+1) of a chunk.
  std::printf("\nMSR extension (model): RS(14,10) vs MSR(14,10,d=13), "
              "M=100\n");
  {
    Table t({"code", "repair traffic (chunks)", "predictive", "reactive"});
    {
      const CostModel rs(model(10, 100));
      t.add_row({"RS(14,10)", "10.00",
                 Table::fmt(rs.predictive_time_per_chunk()),
                 Table::fmt(rs.reactive_time_per_chunk())});
    }
    {
      auto p = model(13, 100);       // d = 13 helpers...
      p.helper_bytes_fraction = 0.25;  // ...each ships 1/(d-k+1) = 1/4
      const CostModel msr(p);
      t.add_row({"MSR(14,10,d=13)", "3.25",
                 Table::fmt(msr.predictive_time_per_chunk()),
                 Table::fmt(msr.reactive_time_per_chunk())});
    }
    t.print();
    std::printf(
        "MSR's minimized repair traffic shrinks the reactive penalty and "
        "with it FastPR's margin — matching the paper's note that the "
        "amplification issue persists (traffic 3.25x > 1x migration) but "
        "is milder\n");
  }
  return 0;
}
