// Figure 15 (Experiment B.5): microbenchmarks on Algorithm 1.
// (a) reduction of d_opt (with the swap optimization) vs d_ini
//     (greedy only), varying the number of repaired chunks |C|;
// (b) running time of Algorithm 1 vs |C|.
// The paper sweeps to 1000 chunks (254.63 s on an EC2 m5.large at
// 1000); we sweep to 500 on this single-core box — the shape
// (superlinear growth, stable ~13% reduction) is what matters — and
// additionally show the §IV-D chunk-grouping mitigation.
#include <chrono>

#include "bench_common.h"
#include "core/recon_sets.h"
#include "util/rng.h"

using namespace fastpr;
using cluster::NodeId;
using cluster::StripeLayout;

namespace {

/// Layout where the STF node (0) stores exactly `num_chunks` chunks:
/// every stripe pins node 0 plus n-1 random others.
StripeLayout pinned_layout(int num_nodes, int n, int num_chunks, Rng& rng) {
  StripeLayout layout(num_nodes, n);
  for (int s = 0; s < num_chunks; ++s) {
    std::vector<NodeId> nodes = {0};
    const auto picks = rng.sample_distinct(num_nodes - 1, n - 1);
    for (int p : picks) nodes.push_back(p + 1);
    layout.add_stripe(nodes);
  }
  return layout;
}

std::vector<NodeId> healthy(int num_nodes) {
  std::vector<NodeId> nodes;
  for (NodeId i = 1; i < num_nodes; ++i) nodes.push_back(i);
  return nodes;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  const int kM = 100;
  const int kN = 9, kK = 6;
  std::printf("=== Figure 15 (Exp B.5): Algorithm 1 microbenchmarks ===\n");
  std::printf("M=%d nodes, RS(%d,%d); STF node pinned into every stripe\n\n",
              kM, kN, kK);

  {
    std::printf("(a) reduction of d_opt vs d_ini (avg over 3 runs)\n");
    Table t({"|C|", "d_ini", "d_opt", "reduction"});
    for (int chunks : {100, 200, 300, 400, 500}) {
      double dini_sum = 0, dopt_sum = 0;
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        Rng rng(seed * 101);
        const auto layout = pinned_layout(kM, kN, chunks, rng);
        core::ReconSetOptions on, off;
        on.optimize = true;
        off.optimize = false;
        dopt_sum += static_cast<double>(
            core::find_reconstruction_sets(layout, 0, healthy(kM), kK, on)
                .size());
        dini_sum += static_cast<double>(
            core::find_reconstruction_sets(layout, 0, healthy(kM), kK, off)
                .size());
      }
      t.add_row({std::to_string(chunks), Table::fmt(dini_sum / 3, 1),
                 Table::fmt(dopt_sum / 3, 1),
                 Table::fmt(100.0 * (1.0 - dopt_sum / dini_sum), 1) + "%"});
    }
    t.print();
    std::printf("paper: d_opt ~13%% below d_ini, stable beyond 200 chunks\n");
  }

  {
    std::printf("\n(b) running time of Algorithm 1 (one run per point)\n");
    Table t({"|C|", "time (s)", "match calls"});
    for (int chunks : {100, 200, 300, 400, 500}) {
      Rng rng(7);
      const auto layout = pinned_layout(kM, kN, chunks, rng);
      core::ReconSetStats stats;
      const auto start = std::chrono::steady_clock::now();
      (void)core::find_reconstruction_sets(layout, 0, healthy(kM), kK, {},
                                           &stats);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      t.add_row({std::to_string(chunks), Table::fmt(secs, 2),
                 std::to_string(stats.match_calls)});
    }
    t.print();
    std::printf(
        "paper: 0.84 s at 100 chunks growing superlinearly to 254.63 s at "
        "1000 (their EC2 instance)\n");
  }

  {
    std::printf("\n(extra) §IV-D chunk-grouping mitigation at |C|=500\n");
    Table t({"group size", "time (s)", "sets"});
    for (int group : {0, 250, 100, 50}) {
      Rng rng(7);
      const auto layout = pinned_layout(kM, kN, 500, rng);
      core::ReconSetOptions opts;
      opts.chunk_group_size = group;
      const auto start = std::chrono::steady_clock::now();
      const auto sets = core::find_reconstruction_sets(layout, 0,
                                                       healthy(kM), kK, opts);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      t.add_row({group == 0 ? "all" : std::to_string(group),
                 Table::fmt(secs, 2), std::to_string(sets.size())});
    }
    t.print();
    std::printf(
        "grouping trades a few extra reconstruction sets for a much "
        "smaller planning time, as §IV-D suggests\n");
  }
  return 0;
}
