# Empty compiler generated dependencies file for fastpr_cli.
# This may be replaced when dependencies are built.
