file(REMOVE_RECURSE
  "CMakeFiles/fastpr_cli.dir/fastpr_cli.cpp.o"
  "CMakeFiles/fastpr_cli.dir/fastpr_cli.cpp.o.d"
  "fastpr_cli"
  "fastpr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
