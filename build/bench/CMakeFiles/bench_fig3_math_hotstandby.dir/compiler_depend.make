# Empty compiler generated dependencies file for bench_fig3_math_hotstandby.
# This may be replaced when dependencies are built.
