file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_math_hotstandby.dir/bench_fig3_math_hotstandby.cpp.o"
  "CMakeFiles/bench_fig3_math_hotstandby.dir/bench_fig3_math_hotstandby.cpp.o.d"
  "bench_fig3_math_hotstandby"
  "bench_fig3_math_hotstandby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_math_hotstandby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
