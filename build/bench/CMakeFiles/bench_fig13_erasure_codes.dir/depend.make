# Empty dependencies file for bench_fig13_erasure_codes.
# This may be replaced when dependencies are built.
