file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_erasure_codes.dir/bench_fig13_erasure_codes.cpp.o"
  "CMakeFiles/bench_fig13_erasure_codes.dir/bench_fig13_erasure_codes.cpp.o.d"
  "bench_fig13_erasure_codes"
  "bench_fig13_erasure_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_erasure_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
