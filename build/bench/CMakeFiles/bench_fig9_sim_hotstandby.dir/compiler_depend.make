# Empty compiler generated dependencies file for bench_fig9_sim_hotstandby.
# This may be replaced when dependencies are built.
