file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sim_hotstandby.dir/bench_fig9_sim_hotstandby.cpp.o"
  "CMakeFiles/bench_fig9_sim_hotstandby.dir/bench_fig9_sim_hotstandby.cpp.o.d"
  "bench_fig9_sim_hotstandby"
  "bench_fig9_sim_hotstandby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sim_hotstandby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
