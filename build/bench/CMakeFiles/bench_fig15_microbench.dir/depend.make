# Empty dependencies file for bench_fig15_microbench.
# This may be replaced when dependencies are built.
