file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sim_stripes.dir/bench_fig10_sim_stripes.cpp.o"
  "CMakeFiles/bench_fig10_sim_stripes.dir/bench_fig10_sim_stripes.cpp.o.d"
  "bench_fig10_sim_stripes"
  "bench_fig10_sim_stripes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sim_stripes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
