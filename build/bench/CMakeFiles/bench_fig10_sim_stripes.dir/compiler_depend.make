# Empty compiler generated dependencies file for bench_fig10_sim_stripes.
# This may be replaced when dependencies are built.
