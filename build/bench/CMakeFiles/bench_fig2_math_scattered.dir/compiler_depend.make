# Empty compiler generated dependencies file for bench_fig2_math_scattered.
# This may be replaced when dependencies are built.
