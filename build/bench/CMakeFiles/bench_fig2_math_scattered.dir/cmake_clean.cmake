file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_math_scattered.dir/bench_fig2_math_scattered.cpp.o"
  "CMakeFiles/bench_fig2_math_scattered.dir/bench_fig2_math_scattered.cpp.o.d"
  "bench_fig2_math_scattered"
  "bench_fig2_math_scattered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_math_scattered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
