file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sim_scattered.dir/bench_fig8_sim_scattered.cpp.o"
  "CMakeFiles/bench_fig8_sim_scattered.dir/bench_fig8_sim_scattered.cpp.o.d"
  "bench_fig8_sim_scattered"
  "bench_fig8_sim_scattered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sim_scattered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
