# Empty dependencies file for bench_lrc_extension.
# This may be replaced when dependencies are built.
