file(REMOVE_RECURSE
  "CMakeFiles/bench_lrc_extension.dir/bench_lrc_extension.cpp.o"
  "CMakeFiles/bench_lrc_extension.dir/bench_lrc_extension.cpp.o.d"
  "bench_lrc_extension"
  "bench_lrc_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lrc_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
