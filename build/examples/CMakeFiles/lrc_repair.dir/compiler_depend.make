# Empty compiler generated dependencies file for lrc_repair.
# This may be replaced when dependencies are built.
