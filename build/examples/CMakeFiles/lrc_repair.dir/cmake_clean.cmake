file(REMOVE_RECURSE
  "CMakeFiles/lrc_repair.dir/lrc_repair.cpp.o"
  "CMakeFiles/lrc_repair.dir/lrc_repair.cpp.o.d"
  "lrc_repair"
  "lrc_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrc_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
