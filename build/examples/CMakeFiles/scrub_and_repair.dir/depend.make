# Empty dependencies file for scrub_and_repair.
# This may be replaced when dependencies are built.
