file(REMOVE_RECURSE
  "CMakeFiles/testbed_cluster.dir/testbed_cluster.cpp.o"
  "CMakeFiles/testbed_cluster.dir/testbed_cluster.cpp.o.d"
  "testbed_cluster"
  "testbed_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
