# Empty compiler generated dependencies file for testbed_cluster.
# This may be replaced when dependencies are built.
