file(REMOVE_RECURSE
  "CMakeFiles/test_stripe_layout.dir/test_stripe_layout.cpp.o"
  "CMakeFiles/test_stripe_layout.dir/test_stripe_layout.cpp.o.d"
  "test_stripe_layout"
  "test_stripe_layout.pdb"
  "test_stripe_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stripe_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
