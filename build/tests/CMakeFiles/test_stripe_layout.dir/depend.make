# Empty dependencies file for test_stripe_layout.
# This may be replaced when dependencies are built.
