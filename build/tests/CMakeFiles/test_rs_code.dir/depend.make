# Empty dependencies file for test_rs_code.
# This may be replaced when dependencies are built.
