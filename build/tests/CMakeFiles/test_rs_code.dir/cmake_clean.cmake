file(REMOVE_RECURSE
  "CMakeFiles/test_rs_code.dir/test_rs_code.cpp.o"
  "CMakeFiles/test_rs_code.dir/test_rs_code.cpp.o.d"
  "test_rs_code"
  "test_rs_code.pdb"
  "test_rs_code[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rs_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
