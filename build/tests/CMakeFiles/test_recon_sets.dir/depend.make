# Empty dependencies file for test_recon_sets.
# This may be replaced when dependencies are built.
