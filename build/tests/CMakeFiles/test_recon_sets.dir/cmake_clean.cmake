file(REMOVE_RECURSE
  "CMakeFiles/test_recon_sets.dir/test_recon_sets.cpp.o"
  "CMakeFiles/test_recon_sets.dir/test_recon_sets.cpp.o.d"
  "test_recon_sets"
  "test_recon_sets.pdb"
  "test_recon_sets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recon_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
