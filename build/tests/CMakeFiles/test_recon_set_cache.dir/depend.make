# Empty dependencies file for test_recon_set_cache.
# This may be replaced when dependencies are built.
