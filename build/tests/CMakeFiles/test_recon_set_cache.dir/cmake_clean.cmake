file(REMOVE_RECURSE
  "CMakeFiles/test_recon_set_cache.dir/test_recon_set_cache.cpp.o"
  "CMakeFiles/test_recon_set_cache.dir/test_recon_set_cache.cpp.o.d"
  "test_recon_set_cache"
  "test_recon_set_cache.pdb"
  "test_recon_set_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recon_set_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
