file(REMOVE_RECURSE
  "CMakeFiles/test_chunk_store.dir/test_chunk_store.cpp.o"
  "CMakeFiles/test_chunk_store.dir/test_chunk_store.cpp.o.d"
  "test_chunk_store"
  "test_chunk_store.pdb"
  "test_chunk_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
