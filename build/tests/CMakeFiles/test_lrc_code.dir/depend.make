# Empty dependencies file for test_lrc_code.
# This may be replaced when dependencies are built.
