file(REMOVE_RECURSE
  "CMakeFiles/test_lrc_code.dir/test_lrc_code.cpp.o"
  "CMakeFiles/test_lrc_code.dir/test_lrc_code.cpp.o.d"
  "test_lrc_code"
  "test_lrc_code.pdb"
  "test_lrc_code[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrc_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
