# Empty dependencies file for test_rebalancer.
# This may be replaced when dependencies are built.
