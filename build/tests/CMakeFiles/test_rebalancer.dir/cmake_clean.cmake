file(REMOVE_RECURSE
  "CMakeFiles/test_rebalancer.dir/test_rebalancer.cpp.o"
  "CMakeFiles/test_rebalancer.dir/test_rebalancer.cpp.o.d"
  "test_rebalancer"
  "test_rebalancer.pdb"
  "test_rebalancer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rebalancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
