# Empty compiler generated dependencies file for test_fastpr_planner.
# This may be replaced when dependencies are built.
