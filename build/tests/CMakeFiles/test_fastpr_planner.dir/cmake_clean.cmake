file(REMOVE_RECURSE
  "CMakeFiles/test_fastpr_planner.dir/test_fastpr_planner.cpp.o"
  "CMakeFiles/test_fastpr_planner.dir/test_fastpr_planner.cpp.o.d"
  "test_fastpr_planner"
  "test_fastpr_planner.pdb"
  "test_fastpr_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastpr_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
