file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_state.dir/test_cluster_state.cpp.o"
  "CMakeFiles/test_cluster_state.dir/test_cluster_state.cpp.o.d"
  "test_cluster_state"
  "test_cluster_state.pdb"
  "test_cluster_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
