# Empty dependencies file for test_cluster_state.
# This may be replaced when dependencies are built.
