file(REMOVE_RECURSE
  "CMakeFiles/test_min_cost_matching.dir/test_min_cost_matching.cpp.o"
  "CMakeFiles/test_min_cost_matching.dir/test_min_cost_matching.cpp.o.d"
  "test_min_cost_matching"
  "test_min_cost_matching.pdb"
  "test_min_cost_matching[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_min_cost_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
