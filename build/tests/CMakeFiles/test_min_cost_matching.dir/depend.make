# Empty dependencies file for test_min_cost_matching.
# This may be replaced when dependencies are built.
