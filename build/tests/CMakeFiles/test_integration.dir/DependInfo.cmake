
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agent/CMakeFiles/fastpr_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fastpr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lifetime/CMakeFiles/fastpr_lifetime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fastpr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fastpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/fastpr_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fastpr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/fastpr_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/fastpr_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/fastpr_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fastpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
