# Empty compiler generated dependencies file for test_agent_testbed.
# This may be replaced when dependencies are built.
