file(REMOVE_RECURSE
  "CMakeFiles/test_agent_testbed.dir/test_agent_testbed.cpp.o"
  "CMakeFiles/test_agent_testbed.dir/test_agent_testbed.cpp.o.d"
  "test_agent_testbed"
  "test_agent_testbed.pdb"
  "test_agent_testbed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agent_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
