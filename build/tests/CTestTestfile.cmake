# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_gf256[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_rs_code[1]_include.cmake")
include("/root/repo/build/tests/test_lrc_code[1]_include.cmake")
include("/root/repo/build/tests/test_matching[1]_include.cmake")
include("/root/repo/build/tests/test_min_cost_matching[1]_include.cmake")
include("/root/repo/build/tests/test_stripe_layout[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_state[1]_include.cmake")
include("/root/repo/build/tests/test_rebalancer[1]_include.cmake")
include("/root/repo/build/tests/test_predict[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_recon_sets[1]_include.cmake")
include("/root/repo/build/tests/test_recon_set_cache[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_fastpr_planner[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_sim_properties[1]_include.cmake")
include("/root/repo/build/tests/test_message[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_chunk_store[1]_include.cmake")
include("/root/repo/build/tests/test_agent_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_reactive[1]_include.cmake")
include("/root/repo/build/tests/test_lifetime[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
