file(REMOVE_RECURSE
  "libfastpr_net.a"
)
