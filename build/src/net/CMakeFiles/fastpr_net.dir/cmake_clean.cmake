file(REMOVE_RECURSE
  "CMakeFiles/fastpr_net.dir/inproc_transport.cpp.o"
  "CMakeFiles/fastpr_net.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/fastpr_net.dir/message.cpp.o"
  "CMakeFiles/fastpr_net.dir/message.cpp.o.d"
  "CMakeFiles/fastpr_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/fastpr_net.dir/tcp_transport.cpp.o.d"
  "libfastpr_net.a"
  "libfastpr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
