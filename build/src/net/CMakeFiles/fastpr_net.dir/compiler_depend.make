# Empty compiler generated dependencies file for fastpr_net.
# This may be replaced when dependencies are built.
