file(REMOVE_RECURSE
  "libfastpr_predict.a"
)
