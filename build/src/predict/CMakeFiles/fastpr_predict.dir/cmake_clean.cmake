file(REMOVE_RECURSE
  "CMakeFiles/fastpr_predict.dir/predictor.cpp.o"
  "CMakeFiles/fastpr_predict.dir/predictor.cpp.o.d"
  "CMakeFiles/fastpr_predict.dir/trace_generator.cpp.o"
  "CMakeFiles/fastpr_predict.dir/trace_generator.cpp.o.d"
  "CMakeFiles/fastpr_predict.dir/trained_predictor.cpp.o"
  "CMakeFiles/fastpr_predict.dir/trained_predictor.cpp.o.d"
  "libfastpr_predict.a"
  "libfastpr_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
