# Empty compiler generated dependencies file for fastpr_predict.
# This may be replaced when dependencies are built.
