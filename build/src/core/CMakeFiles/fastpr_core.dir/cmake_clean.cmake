file(REMOVE_RECURSE
  "CMakeFiles/fastpr_core.dir/cost_model.cpp.o"
  "CMakeFiles/fastpr_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/fastpr_core.dir/fastpr.cpp.o"
  "CMakeFiles/fastpr_core.dir/fastpr.cpp.o.d"
  "CMakeFiles/fastpr_core.dir/placement.cpp.o"
  "CMakeFiles/fastpr_core.dir/placement.cpp.o.d"
  "CMakeFiles/fastpr_core.dir/reactive.cpp.o"
  "CMakeFiles/fastpr_core.dir/reactive.cpp.o.d"
  "CMakeFiles/fastpr_core.dir/recon_set_cache.cpp.o"
  "CMakeFiles/fastpr_core.dir/recon_set_cache.cpp.o.d"
  "CMakeFiles/fastpr_core.dir/recon_sets.cpp.o"
  "CMakeFiles/fastpr_core.dir/recon_sets.cpp.o.d"
  "CMakeFiles/fastpr_core.dir/repair_plan.cpp.o"
  "CMakeFiles/fastpr_core.dir/repair_plan.cpp.o.d"
  "CMakeFiles/fastpr_core.dir/scheduler.cpp.o"
  "CMakeFiles/fastpr_core.dir/scheduler.cpp.o.d"
  "libfastpr_core.a"
  "libfastpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
