
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/fastpr_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/fastpr_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/fastpr.cpp" "src/core/CMakeFiles/fastpr_core.dir/fastpr.cpp.o" "gcc" "src/core/CMakeFiles/fastpr_core.dir/fastpr.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/fastpr_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/fastpr_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/reactive.cpp" "src/core/CMakeFiles/fastpr_core.dir/reactive.cpp.o" "gcc" "src/core/CMakeFiles/fastpr_core.dir/reactive.cpp.o.d"
  "/root/repo/src/core/recon_set_cache.cpp" "src/core/CMakeFiles/fastpr_core.dir/recon_set_cache.cpp.o" "gcc" "src/core/CMakeFiles/fastpr_core.dir/recon_set_cache.cpp.o.d"
  "/root/repo/src/core/recon_sets.cpp" "src/core/CMakeFiles/fastpr_core.dir/recon_sets.cpp.o" "gcc" "src/core/CMakeFiles/fastpr_core.dir/recon_sets.cpp.o.d"
  "/root/repo/src/core/repair_plan.cpp" "src/core/CMakeFiles/fastpr_core.dir/repair_plan.cpp.o" "gcc" "src/core/CMakeFiles/fastpr_core.dir/repair_plan.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/fastpr_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/fastpr_core.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fastpr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fastpr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/fastpr_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/fastpr_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/fastpr_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
