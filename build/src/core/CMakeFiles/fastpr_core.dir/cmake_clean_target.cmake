file(REMOVE_RECURSE
  "libfastpr_core.a"
)
