# Empty dependencies file for fastpr_core.
# This may be replaced when dependencies are built.
