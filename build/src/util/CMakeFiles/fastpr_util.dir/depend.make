# Empty dependencies file for fastpr_util.
# This may be replaced when dependencies are built.
