file(REMOVE_RECURSE
  "CMakeFiles/fastpr_util.dir/crc32c.cpp.o"
  "CMakeFiles/fastpr_util.dir/crc32c.cpp.o.d"
  "CMakeFiles/fastpr_util.dir/logging.cpp.o"
  "CMakeFiles/fastpr_util.dir/logging.cpp.o.d"
  "CMakeFiles/fastpr_util.dir/stats.cpp.o"
  "CMakeFiles/fastpr_util.dir/stats.cpp.o.d"
  "CMakeFiles/fastpr_util.dir/table.cpp.o"
  "CMakeFiles/fastpr_util.dir/table.cpp.o.d"
  "CMakeFiles/fastpr_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fastpr_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/fastpr_util.dir/token_bucket.cpp.o"
  "CMakeFiles/fastpr_util.dir/token_bucket.cpp.o.d"
  "libfastpr_util.a"
  "libfastpr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
