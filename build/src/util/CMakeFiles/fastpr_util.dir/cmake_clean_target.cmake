file(REMOVE_RECURSE
  "libfastpr_util.a"
)
