# Empty compiler generated dependencies file for fastpr_lifetime.
# This may be replaced when dependencies are built.
