file(REMOVE_RECURSE
  "CMakeFiles/fastpr_lifetime.dir/lifetime_sim.cpp.o"
  "CMakeFiles/fastpr_lifetime.dir/lifetime_sim.cpp.o.d"
  "libfastpr_lifetime.a"
  "libfastpr_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
