file(REMOVE_RECURSE
  "libfastpr_lifetime.a"
)
