
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent.cpp" "src/agent/CMakeFiles/fastpr_agent.dir/agent.cpp.o" "gcc" "src/agent/CMakeFiles/fastpr_agent.dir/agent.cpp.o.d"
  "/root/repo/src/agent/chunk_store.cpp" "src/agent/CMakeFiles/fastpr_agent.dir/chunk_store.cpp.o" "gcc" "src/agent/CMakeFiles/fastpr_agent.dir/chunk_store.cpp.o.d"
  "/root/repo/src/agent/coordinator.cpp" "src/agent/CMakeFiles/fastpr_agent.dir/coordinator.cpp.o" "gcc" "src/agent/CMakeFiles/fastpr_agent.dir/coordinator.cpp.o.d"
  "/root/repo/src/agent/testbed.cpp" "src/agent/CMakeFiles/fastpr_agent.dir/testbed.cpp.o" "gcc" "src/agent/CMakeFiles/fastpr_agent.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/fastpr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fastpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/fastpr_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fastpr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fastpr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/fastpr_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/fastpr_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
