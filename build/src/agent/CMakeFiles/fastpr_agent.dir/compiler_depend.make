# Empty compiler generated dependencies file for fastpr_agent.
# This may be replaced when dependencies are built.
