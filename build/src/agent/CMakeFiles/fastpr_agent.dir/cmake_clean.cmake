file(REMOVE_RECURSE
  "CMakeFiles/fastpr_agent.dir/agent.cpp.o"
  "CMakeFiles/fastpr_agent.dir/agent.cpp.o.d"
  "CMakeFiles/fastpr_agent.dir/chunk_store.cpp.o"
  "CMakeFiles/fastpr_agent.dir/chunk_store.cpp.o.d"
  "CMakeFiles/fastpr_agent.dir/coordinator.cpp.o"
  "CMakeFiles/fastpr_agent.dir/coordinator.cpp.o.d"
  "CMakeFiles/fastpr_agent.dir/testbed.cpp.o"
  "CMakeFiles/fastpr_agent.dir/testbed.cpp.o.d"
  "libfastpr_agent.a"
  "libfastpr_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
