file(REMOVE_RECURSE
  "libfastpr_agent.a"
)
