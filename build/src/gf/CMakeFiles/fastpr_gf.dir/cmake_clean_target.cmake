file(REMOVE_RECURSE
  "libfastpr_gf.a"
)
