# Empty dependencies file for fastpr_gf.
# This may be replaced when dependencies are built.
