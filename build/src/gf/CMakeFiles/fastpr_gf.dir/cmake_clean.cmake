file(REMOVE_RECURSE
  "CMakeFiles/fastpr_gf.dir/gf256.cpp.o"
  "CMakeFiles/fastpr_gf.dir/gf256.cpp.o.d"
  "libfastpr_gf.a"
  "libfastpr_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
