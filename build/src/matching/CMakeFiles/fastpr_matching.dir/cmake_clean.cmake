file(REMOVE_RECURSE
  "CMakeFiles/fastpr_matching.dir/brute_force.cpp.o"
  "CMakeFiles/fastpr_matching.dir/brute_force.cpp.o.d"
  "CMakeFiles/fastpr_matching.dir/hopcroft_karp.cpp.o"
  "CMakeFiles/fastpr_matching.dir/hopcroft_karp.cpp.o.d"
  "CMakeFiles/fastpr_matching.dir/incremental_matching.cpp.o"
  "CMakeFiles/fastpr_matching.dir/incremental_matching.cpp.o.d"
  "CMakeFiles/fastpr_matching.dir/min_cost_matching.cpp.o"
  "CMakeFiles/fastpr_matching.dir/min_cost_matching.cpp.o.d"
  "libfastpr_matching.a"
  "libfastpr_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
