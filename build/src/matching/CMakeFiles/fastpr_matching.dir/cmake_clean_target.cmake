file(REMOVE_RECURSE
  "libfastpr_matching.a"
)
