
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/brute_force.cpp" "src/matching/CMakeFiles/fastpr_matching.dir/brute_force.cpp.o" "gcc" "src/matching/CMakeFiles/fastpr_matching.dir/brute_force.cpp.o.d"
  "/root/repo/src/matching/hopcroft_karp.cpp" "src/matching/CMakeFiles/fastpr_matching.dir/hopcroft_karp.cpp.o" "gcc" "src/matching/CMakeFiles/fastpr_matching.dir/hopcroft_karp.cpp.o.d"
  "/root/repo/src/matching/incremental_matching.cpp" "src/matching/CMakeFiles/fastpr_matching.dir/incremental_matching.cpp.o" "gcc" "src/matching/CMakeFiles/fastpr_matching.dir/incremental_matching.cpp.o.d"
  "/root/repo/src/matching/min_cost_matching.cpp" "src/matching/CMakeFiles/fastpr_matching.dir/min_cost_matching.cpp.o" "gcc" "src/matching/CMakeFiles/fastpr_matching.dir/min_cost_matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fastpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
