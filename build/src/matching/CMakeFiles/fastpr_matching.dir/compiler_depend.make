# Empty compiler generated dependencies file for fastpr_matching.
# This may be replaced when dependencies are built.
