file(REMOVE_RECURSE
  "libfastpr_ec.a"
)
