
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/erasure_code.cpp" "src/ec/CMakeFiles/fastpr_ec.dir/erasure_code.cpp.o" "gcc" "src/ec/CMakeFiles/fastpr_ec.dir/erasure_code.cpp.o.d"
  "/root/repo/src/ec/lrc_code.cpp" "src/ec/CMakeFiles/fastpr_ec.dir/lrc_code.cpp.o" "gcc" "src/ec/CMakeFiles/fastpr_ec.dir/lrc_code.cpp.o.d"
  "/root/repo/src/ec/matrix.cpp" "src/ec/CMakeFiles/fastpr_ec.dir/matrix.cpp.o" "gcc" "src/ec/CMakeFiles/fastpr_ec.dir/matrix.cpp.o.d"
  "/root/repo/src/ec/rs_code.cpp" "src/ec/CMakeFiles/fastpr_ec.dir/rs_code.cpp.o" "gcc" "src/ec/CMakeFiles/fastpr_ec.dir/rs_code.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/fastpr_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fastpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
