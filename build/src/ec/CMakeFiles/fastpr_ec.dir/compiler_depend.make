# Empty compiler generated dependencies file for fastpr_ec.
# This may be replaced when dependencies are built.
