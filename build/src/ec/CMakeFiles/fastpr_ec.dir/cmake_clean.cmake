file(REMOVE_RECURSE
  "CMakeFiles/fastpr_ec.dir/erasure_code.cpp.o"
  "CMakeFiles/fastpr_ec.dir/erasure_code.cpp.o.d"
  "CMakeFiles/fastpr_ec.dir/lrc_code.cpp.o"
  "CMakeFiles/fastpr_ec.dir/lrc_code.cpp.o.d"
  "CMakeFiles/fastpr_ec.dir/matrix.cpp.o"
  "CMakeFiles/fastpr_ec.dir/matrix.cpp.o.d"
  "CMakeFiles/fastpr_ec.dir/rs_code.cpp.o"
  "CMakeFiles/fastpr_ec.dir/rs_code.cpp.o.d"
  "libfastpr_ec.a"
  "libfastpr_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
