file(REMOVE_RECURSE
  "libfastpr_sim.a"
)
