# Empty dependencies file for fastpr_sim.
# This may be replaced when dependencies are built.
