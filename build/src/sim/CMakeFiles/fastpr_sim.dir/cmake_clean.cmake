file(REMOVE_RECURSE
  "CMakeFiles/fastpr_sim.dir/simulator.cpp.o"
  "CMakeFiles/fastpr_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/fastpr_sim.dir/strategies.cpp.o"
  "CMakeFiles/fastpr_sim.dir/strategies.cpp.o.d"
  "libfastpr_sim.a"
  "libfastpr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
