file(REMOVE_RECURSE
  "libfastpr_cluster.a"
)
