file(REMOVE_RECURSE
  "CMakeFiles/fastpr_cluster.dir/cluster_state.cpp.o"
  "CMakeFiles/fastpr_cluster.dir/cluster_state.cpp.o.d"
  "CMakeFiles/fastpr_cluster.dir/rebalancer.cpp.o"
  "CMakeFiles/fastpr_cluster.dir/rebalancer.cpp.o.d"
  "CMakeFiles/fastpr_cluster.dir/stripe_layout.cpp.o"
  "CMakeFiles/fastpr_cluster.dir/stripe_layout.cpp.o.d"
  "libfastpr_cluster.a"
  "libfastpr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastpr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
