
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_state.cpp" "src/cluster/CMakeFiles/fastpr_cluster.dir/cluster_state.cpp.o" "gcc" "src/cluster/CMakeFiles/fastpr_cluster.dir/cluster_state.cpp.o.d"
  "/root/repo/src/cluster/rebalancer.cpp" "src/cluster/CMakeFiles/fastpr_cluster.dir/rebalancer.cpp.o" "gcc" "src/cluster/CMakeFiles/fastpr_cluster.dir/rebalancer.cpp.o.d"
  "/root/repo/src/cluster/stripe_layout.cpp" "src/cluster/CMakeFiles/fastpr_cluster.dir/stripe_layout.cpp.o" "gcc" "src/cluster/CMakeFiles/fastpr_cluster.dir/stripe_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fastpr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/fastpr_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/fastpr_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
