# Empty dependencies file for fastpr_cluster.
# This may be replaced when dependencies are built.
