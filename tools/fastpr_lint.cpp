// fastpr_lint — mechanical enforcement of repo conventions (CLAUDE.md).
//
// Walks src/ bench/ tests/ tools/ under the repo root given as argv[1]
// and checks every .h/.cpp against the rules below. Registered as a
// ctest test, so a convention regression fails tier-1 verification just
// like a unit test would.
//
// Rules (rule ids in parentheses):
//  * units        — bandwidth/size configuration lines must use the
//                   util/units.h helpers (MB/MBps/Gbps/kMiB...) instead
//                   of raw magnitude literals like `1 << 20` or `1e9`.
//                   A line counts as configuration when it mentions a
//                   config token (bytes_per_sec, disk_bw, net_bw,
//                   bandwidth(, burst_bytes, chunk_bytes, packet_bytes).
//  * check-macro  — no assert()/abort(); invariants go through
//                   FASTPR_CHECK so misuse throws CheckFailure in every
//                   build type (tests rely on catching it).
//  * rng          — no rand()/srand()/rand_r(); all randomness flows
//                   through the seeded util/rng.h so runs reproduce.
//  * pragma-once  — every header starts include guarding with
//                   #pragma once.
//  * naked-new    — no naked new/delete outside src/util; ownership
//                   lives in containers and smart pointers.
//  * raw-timing   — no direct steady_clock use in src/ outside
//                   src/telemetry/; measurements go through
//                   telemetry::trace_now() / TraceSpan so they land in
//                   the trace (and tids/epochs stay consistent).
//  * ack-tracking — every `transport_.send` in src/agent/ must either
//                   feed a pending/ack map the event loop later
//                   consumes, or carry a reviewed
//                   `fastpr-lint: allow(ack-tracking)` marker saying
//                   how non-delivery is detected (DESIGN.md §7). The
//                   marker may sit on the send line itself or on the
//                   comment block immediately above it.
//  * trace-context — span ids are minted by src/telemetry only: no
//                   next_span_id() calls and no `span_id = ...`
//                   assignments outside src/telemetry/. Hand-rolled
//                   span ids break the causal parent/child chain the
//                   cross-node trace merge depends on (DESIGN.md §5c);
//                   propagate telemetry::current_trace_context()
//                   through Message.trace instead.
//  * oversub      — a numeric literal assigned to an identifier
//                   containing "oversub" must flow through the
//                   net::Oversub() named constructor (units-rule
//                   discipline for the cross-rack oversubscription
//                   factor: Oversub validates f >= 1 at every
//                   configuration boundary, DESIGN.md §11).
//                   Comparisons (==, >=) and variable-to-variable
//                   copies are not configuration and do not match.
//  * condvar-predicate — CondVar waits must use the predicate overload:
//                   `.wait(mu)` with one argument and `.wait_for(mu,
//                   dur)` with two are lost-wakeup bait (the while
//                   loop around them re-implements the predicate the
//                   overload already provides). src/util/mutex.h is
//                   exempt (it implements the overloads); reviewed
//                   pacing loops carry the allow marker.
//
// Intentional exceptions:
//  * src/util/units.h is exempt from `units` (it defines the helpers).
//  * src/util/** is exempt from `naked-new` (low-level utilities may
//    need placement new; nothing else does).
//  * src/telemetry/** is exempt from `raw-timing` (it owns the clock);
//    bench/ tests/ tools/ are exempt too — the rule protects the
//    product's measurement discipline, not harness code.
//  * Any line may carry `fastpr-lint: allow(<rule>)` in a comment to
//    document a reviewed exception; the marker is the allowlist.
//
// Comments and string literals are stripped before matching, so prose
// mentioning assert() or rand() does not trip the lint.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string detail;
};

/// True if `token` occurs in `s` with no identifier character on either
/// side (a poor man's \b regex, enough for C++ token matching).
bool has_word(const std::string& s, const std::string& token) {
  size_t pos = 0;
  const auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  while ((pos = s.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// `token(` with optional whitespace before the paren, word-bounded left.
bool has_call(const std::string& s, const std::string& name) {
  size_t pos = 0;
  const auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  while ((pos = s.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    size_t end = pos + name.size();
    while (end < s.size() &&
           (s[end] == ' ' || s[end] == '\t')) {
      ++end;
    }
    if (left_ok && end < s.size() && s[end] == '(') return true;
    pos += 1;
  }
  return false;
}

/// Word-bounded `token` followed (after optional whitespace) by a
/// single `=` — an assignment, not an `==` comparison. `!=`/`<=`/`>=`
/// cannot match: their operator character sits where the `=` is
/// required to be.
bool has_assignment(const std::string& s, const std::string& token) {
  size_t pos = 0;
  const auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  while ((pos = s.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    size_t end = pos + token.size();
    const bool right_ok = end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) {
      size_t i = end;
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
      if (i < s.size() && s[i] == '=' &&
          (i + 1 >= s.size() || s[i + 1] != '=')) {
        return true;
      }
    }
    pos += 1;
  }
  return false;
}

/// Strips string/char literals and comments from one line, carrying
/// block-comment state across lines. Literal contents become spaces so
/// column-free matching still works.
std::string sanitize(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  size_t i = 0;
  while (i < line.size()) {
    if (in_block_comment) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block_comment = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (line.compare(i, 2, "//") == 0) break;  // rest is comment
    if (line.compare(i, 2, "/*") == 0) {
      in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

bool path_has_prefix(const fs::path& p, const std::string& prefix) {
  return p.generic_string().rfind(prefix, 0) == 0;
}

const char* kConfigTokens[] = {"bytes_per_sec", "disk_bw", "net_bw",
                               "burst_bytes",   "chunk_bytes", "packet_bytes"};
const char* kMagnitudes[] = {"<< 10",      "<< 20",      "<< 30",
                             "1e6",        "50e6",       "1e9",
                             "1024",       "1048576",    "1073741824",
                             "1000000",    "1000000000"};
const char* kUnitHelpers[] = {"MB(", "MBps(", "Gbps(", "kKiB", "kMiB",
                              "kGiB"};

/// Counts top-level (paren-depth-zero) arguments of the call whose
/// opening paren is at `lines[row][col]`; joins following sanitized
/// lines when the call spans lines. Returns 0 when the parens never
/// balance within the lookahead window.
int count_call_args(const std::vector<std::string>& lines, size_t row,
                    size_t col) {
  int depth = 0;
  int commas = 0;
  bool any_content = false;
  for (size_t r = row; r < lines.size() && r < row + 8; ++r) {
    const std::string& s = lines[r];
    for (size_t i = r == row ? col : 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) return any_content ? commas + 1 : 0;
      }
      if (depth >= 1 && c == ',' && depth == 1) ++commas;
      if (depth >= 1 && c != ' ' && c != '\t' && c != '(') {
        any_content = true;
      }
    }
  }
  return 0;
}

void check_line(const fs::path& rel, int lineno, const std::string& raw,
                const std::string& code, const std::string& markers_above,
                std::vector<Violation>& out) {
  const auto allowed = [&](const char* rule) {
    const std::string marker =
        std::string("fastpr-lint: allow(") + rule + ")";
    return raw.find(marker) != std::string::npos ||
           markers_above.find(marker) != std::string::npos;
  };

  // ack-tracking
  if (path_has_prefix(rel, "src/agent/") && !allowed("ack-tracking")) {
    if (code.find("transport_.send") != std::string::npos) {
      out.push_back({rel.generic_string(), lineno, "ack-tracking",
                     "fire-and-forget transport_.send in src/agent; "
                     "track the reply in a pending map or mark the "
                     "reviewed exception with "
                     "fastpr-lint: allow(ack-tracking)"});
    }
  }

  // units
  if (!path_has_prefix(rel, "src/util/units.h") && !allowed("units")) {
    bool config_line = false;
    for (const char* tok : kConfigTokens) {
      if (code.find(tok) != std::string::npos) config_line = true;
    }
    if (!config_line && has_call(code, "set_node_bandwidth")) {
      config_line = true;
    }
    if (config_line) {
      bool has_magnitude = false;
      for (const char* mag : kMagnitudes) {
        if (code.find(mag) != std::string::npos) has_magnitude = true;
      }
      bool has_helper = false;
      for (const char* helper : kUnitHelpers) {
        if (code.find(helper) != std::string::npos) has_helper = true;
      }
      if (has_magnitude && !has_helper) {
        out.push_back({rel.generic_string(), lineno, "units",
                       "raw size/bandwidth literal at a configuration "
                       "boundary; use util/units.h (MB/MBps/Gbps/kMiB)"});
      }
    }
  }

  // oversub: `<ident-containing-oversub> = <numeric literal>` without
  // net::Oversub() on the line. The lowercase search cannot collide
  // with the `Oversub(` helper itself (capital O), and `==`/`>=` fail
  // the single-`=` test below. src/net/topology.* defines the helper.
  if (!path_has_prefix(rel, "src/net/topology") && !allowed("oversub")) {
    const auto is_ident = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
    };
    size_t pos = code.find("oversub");
    bool raw_literal = false;
    while (pos != std::string::npos && !raw_literal) {
      size_t end = pos + 7;
      while (end < code.size() && is_ident(code[end])) ++end;
      size_t i = end;
      while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
      if (i < code.size() && code[i] == '=' &&
          (i + 1 >= code.size() || code[i + 1] != '=')) {
        ++i;
        while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
        const bool literal =
            i < code.size() &&
            (std::isdigit(static_cast<unsigned char>(code[i])) != 0 ||
             (code[i] == '.' && i + 1 < code.size() &&
              std::isdigit(static_cast<unsigned char>(code[i + 1])) != 0));
        if (literal && code.find("Oversub(") == std::string::npos) {
          raw_literal = true;
        }
      }
      pos = code.find("oversub", pos + 1);
    }
    if (raw_literal) {
      out.push_back({rel.generic_string(), lineno, "oversub",
                     "raw oversubscription literal at a configuration "
                     "boundary; wrap it in net::Oversub() so f >= 1 is "
                     "validated"});
    }
  }

  // check-macro
  if (!allowed("check-macro")) {
    if (has_call(code, "assert") || has_call(code, "abort")) {
      out.push_back({rel.generic_string(), lineno, "check-macro",
                     "use FASTPR_CHECK / FASTPR_CHECK_MSG instead of "
                     "assert()/abort()"});
    }
  }

  // rng
  if (!allowed("rng")) {
    if (has_call(code, "rand") || has_call(code, "srand") ||
        has_call(code, "rand_r")) {
      out.push_back({rel.generic_string(), lineno, "rng",
                     "use the seeded fastpr::Rng (util/rng.h) instead of "
                     "rand()/srand()"});
    }
  }

  // raw-timing
  if (path_has_prefix(rel, "src/") &&
      !path_has_prefix(rel, "src/telemetry/") && !allowed("raw-timing")) {
    if (has_word(code, "steady_clock")) {
      out.push_back({rel.generic_string(), lineno, "raw-timing",
                     "no raw steady_clock in src/ outside telemetry; use "
                     "telemetry::trace_now() or a TraceSpan"});
    }
  }

  // trace-context
  if (!path_has_prefix(rel, "src/telemetry/") &&
      !allowed("trace-context")) {
    if (has_call(code, "next_span_id") ||
        has_assignment(code, "span_id")) {
      out.push_back({rel.generic_string(), lineno, "trace-context",
                     "manual span-id construction outside "
                     "src/telemetry breaks the causal trace chain; "
                     "propagate telemetry::current_trace_context() "
                     "via Message.trace"});
    }
  }

  // naked-new
  if (!path_has_prefix(rel, "src/util/") && !allowed("naked-new")) {
    if (has_word(code, "new") || has_word(code, "delete")) {
      // Deleted/defaulted special members are idiomatic, not ownership.
      const bool deleted_fn = code.find("= delete") != std::string::npos;
      if (!deleted_fn) {
        out.push_back({rel.generic_string(), lineno, "naked-new",
                       "no naked new/delete outside src/util; use "
                       "containers or std::make_unique"});
      }
    }
  }
}

void check_file(const fs::path& root, const fs::path& rel,
                std::vector<Violation>& out) {
  std::ifstream in(root / rel);
  if (!in.good()) {
    out.push_back({rel.generic_string(), 0, "io", "cannot open file"});
    return;
  }
  const bool is_header = rel.extension() == ".h";
  bool saw_pragma_once = false;
  bool in_block_comment = false;

  // Read and sanitize the whole file up front: the condvar-predicate
  // rule counts arguments of calls that may span lines.
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("#pragma once") != std::string::npos) {
      saw_pragma_once = true;
    }
    raw_lines.push_back(line);
    code_lines.push_back(sanitize(line, in_block_comment));
  }

  // `allow(<rule>)` markers on comment lines cover the next code line,
  // surviving the rest of their comment block (multi-line
  // justifications put the marker on any comment line above the code).
  std::string markers_above;
  for (size_t idx = 0; idx < raw_lines.size(); ++idx) {
    const std::string& raw = raw_lines[idx];
    const std::string& code = code_lines[idx];
    const int lineno = static_cast<int>(idx) + 1;
    check_line(rel, lineno, raw, code, markers_above, out);

    // condvar-predicate: `.wait(mu)` (1 arg) and `.wait_for(mu, dur)`
    // (2 args) park without a predicate.
    if (rel.generic_string() != "src/util/mutex.h") {
      const auto allowed_cv =
          raw.find("fastpr-lint: allow(condvar-predicate)") !=
              std::string::npos ||
          markers_above.find("fastpr-lint: allow(condvar-predicate)") !=
              std::string::npos;
      if (!allowed_cv) {
        for (const auto& [token, naked_args] :
             {std::pair<const char*, int>{".wait_for(", 2},
              std::pair<const char*, int>{".wait(", 1}}) {
          const size_t pos = code.find(token);
          if (pos == std::string::npos) continue;
          const size_t open = code.find('(', pos);
          if (count_call_args(code_lines, idx, open) == naked_args) {
            out.push_back(
                {rel.generic_string(), lineno, "condvar-predicate",
                 "predicate-less CondVar wait; use the predicate "
                 "overload (wait(mu, pred) / wait_for(mu, dur, pred)) "
                 "so spurious wakeups and lost notifies cannot hang "
                 "the loop"});
          }
          break;  // a line has one wait call; wait_for checked first
        }
      }
    }

    if (raw.find("fastpr-lint: allow(") != std::string::npos &&
        code.find_first_not_of(" \t") == std::string::npos) {
      markers_above += raw;
      markers_above += '\n';
    } else if (code.find_first_not_of(" \t") != std::string::npos) {
      markers_above.clear();  // a code line consumes the markers
    }
  }
  if (is_header && !saw_pragma_once) {
    out.push_back({rel.generic_string(), 1, "pragma-once",
                   "header is missing #pragma once"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: fastpr_lint <repo-root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  const char* kDirs[] = {"src", "bench", "tests", "tools"};

  std::vector<Violation> violations;
  int files_checked = 0;
  for (const char* dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".h" && ext != ".cpp") continue;
      const fs::path rel = fs::relative(entry.path(), root);
      // Golden bad-snippet trees deliberately violate the rules; they
      // are linted by their own ctest entries with their own roots.
      if (rel.generic_string().find("lint_fixtures") !=
          std::string::npos) {
        continue;
      }
      ++files_checked;
      check_file(root, rel, violations);
    }
  }

  for (const auto& v : violations) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.detail << "\n";
  }
  // Zero files means the root was wrong (typo, or run from the wrong
  // directory); succeeding here would let CI pass vacuously.
  if (files_checked == 0) {
    std::cerr << "fastpr_lint: no .h/.cpp files under " << root
              << " (src/ bench/ tests/ tools/) -- wrong repo root?\n";
    return 2;
  }
  std::cout << "fastpr_lint: " << files_checked << " files, "
            << violations.size() << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}
