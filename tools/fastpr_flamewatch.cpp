// fastpr_flamewatch — terminal renderer for flow + drift telemetry.
//
// Reads one or more JSON files produced by the pipeline —
//   * `fastpr_cli execute --flow-out=...` sidecars ({"links":[...]}),
//   * RepairReport JSON (fastpr_cli --report-out, or the `repair`
//     object embedded in bench sidecars),
// and renders two tables per file:
//   * per-link utilization: tx/rx bytes, EWMA vs expected bandwidth,
//     utilization %, injected chaos delay, straggler flag;
//   * per-round prediction drift: measured vs modelled round time and
//     the tr/tm phase ratios, when predictions were attached.
//
// Reporting discipline (CLAUDE.md / EXPERIMENTS.md): drift tables are
// only meaningful from a `release` build — never quote numbers rendered
// from a sanitizer run — and published tables must name the build
// preset and kernel variant they came from.
//
// The repo's telemetry layer is a JSON *writer* only, so this tool
// carries its own minimal recursive-descent parser: tolerant of the
// subset our emitters produce (objects, arrays, strings, numbers,
// bools, null), not a general validator.
//
// Usage: fastpr_flamewatch <report-or-flow.json>...

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------
// Minimal JSON value + parser.

struct JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonPtr> arr;
  std::map<std::string, JsonPtr> obj;

  const JsonValue* get(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : it->second.get();
  }
  double num_or(const std::string& key, double fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->num : fallback;
  }
  bool bool_or(const std::string& key, bool fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::kBool ? v->b : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Returns nullptr (with error()) on malformed input.
  JsonPtr parse() {
    JsonPtr v = value();
    if (v == nullptr) return nullptr;
    skip_ws();
    if (pos_ != s_.size()) {
      fail("trailing characters after document");
      return nullptr;
    }
    return v;
  }

  const std::string& error() const { return error_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  JsonPtr value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return bool_value();
    if (c == 'n') return null_value();
    return number();
  }

  JsonPtr object() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        fail("expected object key");
        return nullptr;
      }
      JsonPtr key = string_value();
      if (key == nullptr) return nullptr;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        fail("expected ':'");
        return nullptr;
      }
      ++pos_;
      JsonPtr val = value();
      if (val == nullptr) return nullptr;
      v->obj[key->str] = val;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
      return nullptr;
    }
  }

  JsonPtr array() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonPtr item = value();
      if (item == nullptr) return nullptr;
      v->arr.push_back(item);
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
      return nullptr;
    }
  }

  JsonPtr string_value() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kString;
    ++pos_;  // '"'
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        const char esc = s_[pos_ + 1];
        switch (esc) {
          case 'n':
            v->str.push_back('\n');
            break;
          case 't':
            v->str.push_back('\t');
            break;
          case 'r':
            v->str.push_back('\r');
            break;
          case 'u':
            // Our emitters only \u-escape control chars; render as '?'.
            v->str.push_back('?');
            pos_ += 4 <= s_.size() - pos_ - 2 ? 4 : 0;
            break;
          default:
            v->str.push_back(esc);
        }
        pos_ += 2;
        continue;
      }
      v->str.push_back(s_[pos_]);
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      fail("unterminated string");
      return nullptr;
    }
    ++pos_;  // closing '"'
    return v;
  }

  JsonPtr bool_value() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v->b = true;
      pos_ += 4;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      v->b = false;
      pos_ += 5;
      return v;
    }
    fail("bad literal");
    return nullptr;
  }

  JsonPtr null_value() {
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_shared<JsonValue>();
    }
    fail("bad literal");
    return nullptr;
  }

  JsonPtr number() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return nullptr;
    }
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kNumber;
    try {
      v->num = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
      return nullptr;
    }
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------
// Locating the interesting arrays, wherever the file nests them: a
// --flow-out sidecar has `links` at top level, a RepairReport has
// `links`/`rounds` at top level, a bench sidecar nests both under
// `repair` inside per-figure entries.

void find_arrays(const JsonValue& v, const std::string& key,
                 std::vector<const JsonValue*>& out) {
  if (v.kind == JsonValue::Kind::kObject) {
    for (const auto& [k, child] : v.obj) {
      if (k == key && child->kind == JsonValue::Kind::kArray) {
        out.push_back(child.get());
      } else {
        find_arrays(*child, key, out);
      }
    }
  } else if (v.kind == JsonValue::Kind::kArray) {
    for (const auto& child : v.arr) find_arrays(*child, key, out);
  }
}

// ---------------------------------------------------------------------
// Rendering.

std::string fmt_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f kB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string fmt_rate(double bytes_per_sec) {
  char buf[32];
  // Display formatting, not a configuration boundary.
  // fastpr-lint: allow(units)
  std::snprintf(buf, sizeof(buf), "%.2f MB/s", bytes_per_sec / 1e6);
  return buf;
}

/// ASCII bar, 20 cells, clamped at 100%.
std::string util_bar(double frac) {
  if (frac < 0) frac = 0;
  const int cells = 20;
  int filled = static_cast<int>(frac * cells + 0.5);
  if (filled > cells) filled = cells;
  std::string bar(static_cast<size_t>(filled), '#');
  bar.append(static_cast<size_t>(cells - filled), '.');
  return bar;
}

void render_links(const JsonValue& links) {
  if (links.arr.empty()) return;
  std::printf("  per-link flow (EWMA vs expected):\n");
  std::printf("  %-9s %12s %12s %12s %12s %6s  %-20s %s\n", "link",
              "tx", "rx", "ewma", "expected", "util", "", "flags");
  int stragglers = 0;
  for (const auto& l : links.arr) {
    const int src = static_cast<int>(l->num_or("src", -1));
    const int dst = static_cast<int>(l->num_or("dst", -1));
    const double tx = l->num_or("tx_bytes", 0);
    const double rx = l->num_or("rx_bytes", 0);
    const double ewma = l->num_or("ewma_bytes_per_sec", 0);
    const double expected = l->num_or("expected_bytes_per_sec", 0);
    const double delay_us = l->num_or("injected_delay_us", 0);
    const bool straggler = l->bool_or("straggler", false);
    const double util = expected > 0 ? ewma / expected : 0;
    std::string flags;
    if (straggler) {
      flags += "STRAGGLER ";
      ++stragglers;
    }
    if (delay_us > 0) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "injected=%.1fms",
                    delay_us / 1e3);
      flags += buf;
    }
    char linkbuf[24];
    std::snprintf(linkbuf, sizeof(linkbuf), "%d->%d", src, dst);
    std::printf("  %-9s %12s %12s %12s %12s %5.0f%%  %-20s %s\n",
                linkbuf, fmt_bytes(tx).c_str(), fmt_bytes(rx).c_str(),
                fmt_rate(ewma).c_str(), fmt_rate(expected).c_str(),
                util * 100, util_bar(util).c_str(), flags.c_str());
  }
  std::printf("  %zu link(s), %d straggler(s)\n", links.arr.size(),
              stragglers);
}

void render_drift(const JsonValue& rounds) {
  bool any_drift = false;
  for (const auto& r : rounds.arr) {
    if (r->get("drift") != nullptr) any_drift = true;
  }
  if (!any_drift) return;
  std::printf("  prediction drift (measured / modelled):\n");
  std::printf("  %5s %5s %5s %11s %11s %7s %8s %8s\n", "round", "cr",
              "cm", "measured", "predicted", "ratio", "tr_ratio",
              "tm_ratio");
  for (const auto& r : rounds.arr) {
    const JsonValue* drift = r->get("drift");
    const JsonValue* pred = r->get("predicted");
    if (drift == nullptr || pred == nullptr) continue;
    const double ratio = drift->num_or("round_time_ratio", 0);
    const double tr_ratio = drift->num_or("tr_ratio", 0);
    const double tm_ratio = drift->num_or("tm_ratio", 0);
    char trbuf[16] = "-";
    char tmbuf[16] = "-";
    if (tr_ratio > 0) {
      std::snprintf(trbuf, sizeof(trbuf), "%.2f", tr_ratio);
    }
    if (tm_ratio > 0) {
      std::snprintf(tmbuf, sizeof(tmbuf), "%.2f", tm_ratio);
    }
    std::printf("  %5d %5d %5d %10.3fs %10.3fs %6.2fx %8s %8s\n",
                static_cast<int>(r->num_or("round", 0)),
                static_cast<int>(r->num_or("cr", 0)),
                static_cast<int>(r->num_or("cm", 0)),
                r->num_or("duration_seconds", 0),
                pred->num_or("duration_seconds", 0), ratio, trbuf,
                tmbuf);
  }
}

int render_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "fastpr_flamewatch: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonParser parser(text);
  JsonPtr doc = parser.parse();
  if (doc == nullptr) {
    std::cerr << "fastpr_flamewatch: " << path << ": "
              << parser.error() << "\n";
    return 1;
  }
  std::printf("%s:\n", path.c_str());
  std::vector<const JsonValue*> link_arrays;
  std::vector<const JsonValue*> round_arrays;
  find_arrays(*doc, "links", link_arrays);
  find_arrays(*doc, "rounds", round_arrays);
  bool rendered = false;
  for (const JsonValue* links : link_arrays) {
    // A trace file's Chrome `traceEvents` never collides here: only
    // flow sidecars and repair reports carry a `links` array whose
    // rows have src/dst.
    if (!links->arr.empty() &&
        links->arr.front()->get("src") == nullptr) {
      continue;
    }
    render_links(*links);
    rendered = rendered || !links->arr.empty();
  }
  for (const JsonValue* rounds : round_arrays) {
    render_drift(*rounds);
    if (!rounds->arr.empty()) rendered = true;
  }
  if (!rendered) {
    std::printf(
        "  no links/rounds telemetry found (telemetry off, or not a "
        "flow/report JSON)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: fastpr_flamewatch <report-or-flow.json>...\n";
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (render_file(argv[i]) != 0) rc = 1;
  }
  return rc;
}
