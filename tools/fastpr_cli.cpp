// fastpr_cli — plan, simulate and explore FastPR repairs from a plain
// text cluster description.
//
// Usage:
//   fastpr_cli analyze  <spec>   # §III cost-model summary
//   fastpr_cli plan     <spec>   # build and print a FastPR repair plan
//   fastpr_cli simulate <spec>   # strategy comparison (simulated times)
//   fastpr_cli lifetime <spec>   # one simulated year of failures
//   fastpr_cli execute  <spec>   # run the plan on the in-process
//                                # testbed (real bytes, byte-verified)
//   fastpr_cli trace merge <out.json> <in.json...>
//                                # merge Chrome trace files (e.g. per-
//                                # process exports) into one timeline
//
// Flags (may appear anywhere after the command):
//   --metrics-out=<file.json>    # dump the metrics registry at exit
//   --metrics-format=json|csv|prom
//                                # format of --metrics-out (default
//                                # json; prom = Prometheus text format)
//   --trace-out=<file.json>      # enable tracing; write a Chrome
//                                # trace_event file at exit (load in
//                                # chrome://tracing or Perfetto).
//                                # `execute` writes the merged,
//                                # clock-offset-corrected multi-node
//                                # timeline (DESIGN.md §5c).
//   --flow-out=<file.json>       # execute only: per-link flow
//                                # telemetry (EWMA bandwidth, straggler
//                                # flags) from the run
//   --fault-plan <file>          # execute only: scripted fault
//                                # injection (net/fault_plan.h format;
//                                # see examples/chaos.fault).
//   --stf=<id[,id...]>           # execute only: flag these nodes as
//                                # the STF batch instead of the single
//                                # most-loaded node; two or more ids
//                                # run the joint multi-STF planner
//                                # (DESIGN.md §8) and print per-STF
//                                # progress.
//   --repair-strategy=fanin|chain|auto
//                                # reconstruction shape for plan,
//                                # simulate and execute: star fan-in
//                                # (paper default), partial-sum helper
//                                # chains (repair pipelining), or the
//                                # cost model's per-round pick.
//   --repair-budget=<MBps>       # execute only: cap cluster-wide
//                                # repair bandwidth; the coordinator
//                                # leases per-agent shares (DESIGN.md
//                                # §10) instead of letting repair use
//                                # the full NIC.
//   --slo-ms=<ms>                # execute only, with --repair-budget:
//                                # foreground p99 SLO target; enables
//                                # the AIMD budget ramp (needs
//                                # --foreground-ops for the feedback
//                                # signal).
//   --stf-deadline=<seconds>     # execute only, with --repair-budget:
//                                # predicted STF death this many
//                                # seconds after execution starts;
//                                # arms panic mode.
//   --foreground-ops=<per_sec>   # execute only: run an open-loop
//                                # foreground workload (reads/writes,
//                                # degraded reads on the STF node) at
//                                # this rate during the repair and
//                                # report its latency percentiles.
//   --topology=<racks>x<nodes>   # rack model (DESIGN.md §11): storage
//                                # nodes grouped into racks of <nodes>;
//                                # racks*nodes must equal the spec's
//                                # node count. Layouts become rack-
//                                # disjoint and the planners rack-aware.
//   --oversub=<factor>           # cross-rack oversubscription factor
//                                # (>= 1; requires --topology). The
//                                # rack uplink shares nodes*net/factor.
//
// `execute` exit codes: 0 = every chunk repaired and byte-verified;
// 3 = accounting consistent but some chunks abandoned as unrepairable
// (they are enumerated); 1 = verification or execution failure.
//
// Spec format (one `key value...` pair per line; '#' starts a comment):
//   nodes 100          # storage nodes
//   standby 3          # hot-standby spares
//   code rs 9 6        # or: code lrc 12 2 2
//   chunk_mb 64
//   disk_mbps 100
//   net_gbps 1
//   stripes 1000
//   scenario scattered # or hotstandby
//   stf auto           # or an explicit node id
//   seed 1
//   # execute-only (defaults in parentheses):
//   packet_kb 64
//   round_timeout_ms 120000
//   max_attempts 4
//   retry_backoff_ms 50
//   probe_timeout_ms 250
//   max_round_extensions 3
//   stf_failure_threshold 3
//   # lifetime-only:
//   sim_days 365
//   mtbf_days 1000
//   recall 0.95
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "agent/testbed.h"
#include "core/fastpr.h"
#include "core/repair_throttler.h"
#include "ec/lrc_code.h"
#include "ec/rs_code.h"
#include "lifetime/lifetime_sim.h"
#include "load/foreground.h"
#include "net/fault_plan.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

using namespace fastpr;

namespace {

struct Spec {
  int nodes = 100;
  int standby = 3;
  std::unique_ptr<ec::ErasureCode> code =
      std::make_unique<ec::RsCode>(9, 6);
  double chunk_bytes = static_cast<double>(MB(64));
  double disk_bw = MBps(100);
  double net_bw = Gbps(1);
  int stripes = 1000;
  core::Scenario scenario = core::Scenario::kScattered;
  int stf = -1;  // -1 = auto (most loaded)
  uint64_t seed = 1;
  double sim_days = 365;
  double mtbf_days = 1000;
  double recall = 0.95;
  // Reconstruction strategy (--repair-strategy flag, not a spec key).
  core::StrategyChoice strategy = core::StrategyChoice::kFanIn;
  // Chain-hop store-and-forward cost fed to the cost model and shaped
  // transports; mirrors the agent::TestbedOptions default.
  double chain_hop_overhead_seconds = 500e-6;
  // execute-only knobs (agent::TestbedOptions defaults).
  double packet_kb = 64;
  int round_timeout_ms = 120000;
  int max_attempts = 4;
  int retry_backoff_ms = 50;
  int probe_timeout_ms = 250;
  int max_round_extensions = 3;
  int stf_failure_threshold = 3;
  // Throttling / foreground knobs (flags, not spec keys).
  double repair_budget_mbps = 0;  // 0 = unthrottled
  double slo_ms = 0;              // 0 = no AIMD target
  double stf_deadline_s = 0;      // 0 = no deadline (no panic mode)
  double foreground_ops = 0;      // 0 = no foreground workload
  // Rack model (--topology / --oversub flags). Unset = flat network.
  std::optional<net::Topology> topology;

  const net::Topology* topology_ptr() const {
    return topology.has_value() ? &*topology : nullptr;
  }
};

bool parse_spec(const std::string& path, Spec& spec, std::string& error) {
  std::ifstream in(path);
  if (!in.good()) {
    error = "cannot open spec file: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key)) continue;  // blank
    auto fail = [&](const std::string& why) {
      error = path + ":" + std::to_string(lineno) + ": " + why;
      return false;
    };
    if (key == "nodes") {
      if (!(tokens >> spec.nodes)) return fail("nodes <int>");
    } else if (key == "standby") {
      if (!(tokens >> spec.standby)) return fail("standby <int>");
    } else if (key == "code") {
      std::string kind;
      if (!(tokens >> kind)) return fail("code rs|lrc ...");
      if (kind == "rs") {
        int n = 0, k = 0;
        if (!(tokens >> n >> k)) return fail("code rs <n> <k>");
        spec.code = std::make_unique<ec::RsCode>(n, k);
      } else if (kind == "lrc") {
        int k = 0, l = 0, g = 0;
        if (!(tokens >> k >> l >> g)) return fail("code lrc <k> <l> <g>");
        spec.code = std::make_unique<ec::LrcCode>(k, l, g);
      } else {
        return fail("unknown code kind '" + kind + "'");
      }
    } else if (key == "chunk_mb") {
      double v = 0;
      if (!(tokens >> v) || v <= 0) return fail("chunk_mb <num>");
      spec.chunk_bytes = v * static_cast<double>(kMiB);
    } else if (key == "disk_mbps") {
      double v = 0;
      if (!(tokens >> v) || v <= 0) return fail("disk_mbps <num>");
      spec.disk_bw = MBps(v);
    } else if (key == "net_gbps") {
      double v = 0;
      if (!(tokens >> v) || v <= 0) return fail("net_gbps <num>");
      spec.net_bw = Gbps(v);
    } else if (key == "stripes") {
      if (!(tokens >> spec.stripes)) return fail("stripes <int>");
    } else if (key == "scenario") {
      std::string v;
      tokens >> v;
      if (v == "scattered") {
        spec.scenario = core::Scenario::kScattered;
      } else if (v == "hotstandby") {
        spec.scenario = core::Scenario::kHotStandby;
      } else {
        return fail("scenario scattered|hotstandby");
      }
    } else if (key == "stf") {
      std::string v;
      tokens >> v;
      spec.stf = v == "auto" ? -1 : std::atoi(v.c_str());
    } else if (key == "seed") {
      if (!(tokens >> spec.seed)) return fail("seed <int>");
    } else if (key == "packet_kb") {
      double v = 0;
      if (!(tokens >> v) || v <= 0) return fail("packet_kb <num>");
      spec.packet_kb = v;
    } else if (key == "round_timeout_ms") {
      if (!(tokens >> spec.round_timeout_ms) || spec.round_timeout_ms <= 0)
        return fail("round_timeout_ms <int>");
    } else if (key == "max_attempts") {
      if (!(tokens >> spec.max_attempts) || spec.max_attempts < 1)
        return fail("max_attempts <int>=1>");
    } else if (key == "retry_backoff_ms") {
      if (!(tokens >> spec.retry_backoff_ms) || spec.retry_backoff_ms < 0)
        return fail("retry_backoff_ms <int>");
    } else if (key == "probe_timeout_ms") {
      if (!(tokens >> spec.probe_timeout_ms) || spec.probe_timeout_ms <= 0)
        return fail("probe_timeout_ms <int>");
    } else if (key == "max_round_extensions") {
      if (!(tokens >> spec.max_round_extensions) ||
          spec.max_round_extensions < 0)
        return fail("max_round_extensions <int>");
    } else if (key == "stf_failure_threshold") {
      if (!(tokens >> spec.stf_failure_threshold) ||
          spec.stf_failure_threshold < 1)
        return fail("stf_failure_threshold <int>=1>");
    } else if (key == "sim_days") {
      if (!(tokens >> spec.sim_days)) return fail("sim_days <num>");
    } else if (key == "mtbf_days") {
      if (!(tokens >> spec.mtbf_days)) return fail("mtbf_days <num>");
    } else if (key == "recall") {
      if (!(tokens >> spec.recall)) return fail("recall <num>");
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  return true;
}

struct World {
  cluster::StripeLayout layout;
  cluster::ClusterState state;
  cluster::NodeId stf;
};

World build_world(const Spec& spec) {
  Rng rng(spec.seed);
  const bool racked =
      spec.topology.has_value() && !spec.topology->is_flat();
  if (racked && spec.topology->num_nodes() != spec.nodes) {
    throw std::runtime_error("--topology " + spec.topology->to_string() +
                             " must cover exactly the spec's " +
                             std::to_string(spec.nodes) + " nodes");
  }
  World w{racked ? cluster::StripeLayout::random_racked(
                       spec.nodes, spec.code->n(), spec.stripes,
                       spec.topology->nodes_per_rack(), rng)
                 : cluster::StripeLayout::random(
                       spec.nodes, spec.code->n(), spec.stripes, rng),
          cluster::ClusterState(
              spec.nodes, spec.standby,
              cluster::BandwidthProfile{spec.disk_bw, spec.net_bw}),
          0};
  if (spec.stf >= 0) {
    w.stf = spec.stf;
  } else {
    for (cluster::NodeId n = 1; n < spec.nodes; ++n) {
      if (w.layout.load(n) > w.layout.load(w.stf)) w.stf = n;
    }
  }
  w.state.set_health(w.stf, cluster::NodeHealth::kSoonToFail);
  return w;
}

core::FastPrPlanner make_planner(const Spec& spec, World& w) {
  core::PlannerOptions opts;
  opts.scenario = spec.scenario;
  opts.k_repair = spec.code->repair_fetch_count(0);
  opts.chunk_bytes = spec.chunk_bytes;
  opts.code = spec.code.get();
  opts.packet_bytes = spec.packet_kb * static_cast<double>(kKiB);
  opts.chain_hop_overhead_seconds = spec.chain_hop_overhead_seconds;
  opts.sched.strategy = spec.strategy;
  opts.topology = spec.topology_ptr();
  return core::FastPrPlanner(w.layout, w.state, opts);
}

int cmd_analyze(const Spec& spec) {
  core::ModelParams p;
  p.num_nodes = spec.nodes;
  p.stf_chunks = std::max(
      1, spec.stripes * spec.code->n() / std::max(1, spec.nodes));
  p.chunk_bytes = spec.chunk_bytes;
  p.disk_bw = spec.disk_bw;
  p.net_bw = spec.net_bw;
  p.k_repair = spec.code->repair_fetch_count(0);
  p.hot_standby = std::max(1, spec.standby);
  p.scenario = spec.scenario;
  if (spec.topology.has_value() && !spec.topology->is_flat()) {
    p.oversubscription = spec.topology->oversubscription();
    p.cross_rack_helper_fraction = 1.0;
    p.cross_rack_migration_fraction =
        spec.scenario == core::Scenario::kHotStandby ? 1.0 : 0.0;
  }
  const core::CostModel m(p);
  std::printf("cost model (%s, %s, U=%d chunks):\n",
              spec.code->name().c_str(),
              core::to_string(spec.scenario).c_str(), p.stf_chunks);
  std::printf("  tm (migrate one chunk)            %.4f s\n", m.tm());
  std::printf("  tr (reconstruction round)         %.4f s\n",
              m.tr(m.max_parallel_groups()));
  std::printf("  optimal predictive repair (Eq.2)  %.2f s total, %.4f "
              "s/chunk\n",
              m.predictive_time(), m.predictive_time_per_chunk());
  std::printf("  reactive repair (Eq.3)            %.2f s total, %.4f "
              "s/chunk\n",
              m.reactive_time(), m.reactive_time_per_chunk());
  std::printf("  migration-only                    %.2f s total\n",
              m.migration_only_time());
  std::printf("  predictive reduction              %.1f %%\n",
              100.0 * (1.0 - m.predictive_time() / m.reactive_time()));
  return 0;
}

int cmd_plan(const Spec& spec) {
  World w = build_world(spec);
  auto planner = make_planner(spec, w);
  const auto plan = planner.plan_fastpr();
  core::validate_plan(plan, w.layout, w.state,
                      spec.code->repair_fetch_count(0), spec.code.get(), 1,
                      spec.topology_ptr());
  std::printf("STF node %d holds %d chunks; %s\n\n", w.stf,
              w.layout.load(w.stf), plan.to_string().c_str());
  Table t({"round", "reconstructed", "migrated", "example task"});
  for (size_t i = 0; i < plan.rounds.size(); ++i) {
    const auto& round = plan.rounds[i];
    std::string example = "-";
    if (!round.reconstructions.empty()) {
      const auto& task = round.reconstructions.front();
      std::ostringstream os;
      os << "stripe " << task.chunk.stripe << " -> node " << task.dst
         << " (" << task.sources.size() << " helpers)";
      example = os.str();
    } else if (!round.migrations.empty()) {
      const auto& task = round.migrations.front();
      std::ostringstream os;
      os << "stripe " << task.chunk.stripe << " moved to node "
         << task.dst;
      example = os.str();
    }
    t.add_row({std::to_string(i + 1),
               std::to_string(round.reconstructions.size()),
               std::to_string(round.migrations.size()), example});
  }
  t.print();
  return 0;
}

int cmd_simulate(const Spec& spec) {
  World w = build_world(spec);
  auto planner = make_planner(spec, w);
  sim::SimParams sp;
  sp.chunk_bytes = spec.chunk_bytes;
  sp.disk_bw = spec.disk_bw;
  sp.net_bw = spec.net_bw;
  sp.k_repair = spec.code->repair_fetch_count(0);
  sp.hot_standby = std::max(1, spec.standby);
  sp.scenario = spec.scenario;
  sp.packet_bytes = spec.packet_kb * static_cast<double>(kKiB);
  sp.chain_hop_overhead_seconds = spec.chain_hop_overhead_seconds;
  if (spec.topology.has_value() && !spec.topology->is_flat()) {
    sp.topo_racks = spec.topology->racks();
    sp.topo_nodes_per_rack = spec.topology->nodes_per_rack();
    sp.oversubscription = spec.topology->oversubscription();
  }

  Table t({"strategy", "total (s)", "per chunk (s)", "traffic (chunks)"});
  auto row = [&](const std::string& name, const core::RepairPlan& plan) {
    const auto r = sim::simulate(plan, sp);
    t.add_row({name, Table::fmt(r.total_time, 2),
               Table::fmt(r.per_chunk(), 4),
               std::to_string(r.repair_traffic_chunks)});
  };
  row("FastPR", planner.plan_fastpr());
  row("reconstruction-only", planner.plan_reconstruction_only());
  row("migration-only", planner.plan_migration_only());
  std::printf("STF node %d, %d chunks, %s repair:\n", w.stf,
              w.layout.load(w.stf),
              core::to_string(spec.scenario).c_str());
  t.print();
  std::printf("analytic optimum: %.4f s/chunk\n",
              planner.cost_model().predictive_time_per_chunk());
  return 0;
}

int cmd_lifetime(const Spec& spec) {
  lifetime::LifetimeConfig cfg;
  cfg.num_nodes = spec.nodes;
  cfg.n = spec.code->n();
  cfg.k = spec.code->repair_fetch_count(0);
  cfg.num_stripes = spec.stripes;
  cfg.chunk_bytes = spec.chunk_bytes;
  cfg.disk_bw = spec.disk_bw;
  cfg.net_bw = spec.net_bw;
  cfg.sim_days = spec.sim_days;
  cfg.node_mtbf_days = spec.mtbf_days;
  cfg.prediction_recall = spec.recall;
  cfg.seed = spec.seed;
  const auto report = lifetime::simulate_lifetime(cfg);
  std::printf("%.0f simulated days, recall %.2f:\n", spec.sim_days,
              spec.recall);
  std::printf("  failures                 %d (%d predicted, %d repaired "
              "in time)\n",
              report.failures, report.predicted,
              report.completed_in_time);
  std::printf("  false alarms repaired    %d\n", report.false_alarms);
  std::printf("  vulnerability            %.1f s total\n",
              report.vulnerability_seconds);
  std::printf("  degraded stripe-hours    %.2f\n",
              report.degraded_stripe_seconds / 3600.0);
  std::printf("  repair traffic           %ld chunks\n",
              report.repair_traffic_chunks);
  std::printf("  data-loss stripes        %d\n", report.data_loss_stripes);
  return 0;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << content << "\n";
  return out.good();
}

int cmd_execute(const Spec& spec, const std::string& fault_plan_path,
                const std::vector<int>& stf_batch,
                const std::string& flow_out,
                std::vector<std::pair<int, int64_t>>* clock_offsets) {
  agent::TestbedOptions opts;
  opts.num_storage = spec.nodes;
  opts.num_standby = spec.standby;
  opts.disk_bytes_per_sec = spec.disk_bw;
  opts.net_bytes_per_sec = spec.net_bw;
  opts.chunk_bytes = static_cast<uint64_t>(spec.chunk_bytes);
  opts.packet_bytes = static_cast<uint64_t>(spec.packet_kb *
                                            static_cast<double>(kKiB));
  opts.num_stripes = spec.stripes;
  opts.seed = spec.seed;
  opts.repair_strategy = spec.strategy;
  opts.chain_hop_overhead_seconds = spec.chain_hop_overhead_seconds;
  opts.round_timeout = std::chrono::milliseconds(spec.round_timeout_ms);
  opts.max_attempts = spec.max_attempts;
  opts.retry_backoff = std::chrono::milliseconds(spec.retry_backoff_ms);
  opts.probe_timeout = std::chrono::milliseconds(spec.probe_timeout_ms);
  opts.max_round_extensions = spec.max_round_extensions;
  opts.stf_failure_threshold = spec.stf_failure_threshold;
  opts.topology = spec.topology;
  if (spec.repair_budget_mbps > 0) {
    core::ThrottlerOptions throttle;
    throttle.total_bytes_per_sec = MBps(spec.repair_budget_mbps);
    throttle.slo_p99_seconds = spec.slo_ms / 1000.0;
    throttle.adaptive = spec.slo_ms > 0;
    opts.throttle = throttle;
    opts.stf_deadline_seconds = spec.stf_deadline_s;
  }
  if (!fault_plan_path.empty()) {
    std::ifstream in(fault_plan_path);
    if (!in.good()) {
      std::fprintf(stderr, "error: cannot open fault plan %s\n",
                   fault_plan_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    opts.fault_plan = net::FaultPlan::parse(text.str());
  }

  agent::Testbed tb(opts, *spec.code);
  std::vector<cluster::NodeId> batch;
  if (stf_batch.empty()) {
    batch.push_back(tb.flag_stf());
  } else {
    batch = tb.flag_stf_nodes(
        std::vector<cluster::NodeId>(stf_batch.begin(), stf_batch.end()));
  }

  core::RepairPlan plan;
  if (batch.size() > 1) {
    auto planner = tb.make_multi_planner(spec.scenario);
    plan = planner.plan_fastpr();
  } else {
    auto planner = tb.make_planner(spec.scenario);
    plan = planner.plan_fastpr();
  }
  for (const cluster::NodeId stf : batch) {
    std::printf("STF node %d holds %d chunks\n", stf,
                tb.layout().load(stf));
  }
  std::printf("%s\n", plan.to_string().c_str());

  // Optional open-loop foreground workload running beside the repair;
  // its per-node pressure closes the throttler's AIMD loop.
  std::unique_ptr<load::ForegroundWorkload> foreground;
  if (spec.foreground_ops > 0) {
    load::WorkloadOptions wopts;
    wopts.ops_per_sec = spec.foreground_ops;
    wopts.seed = spec.seed;
    foreground =
        std::make_unique<load::ForegroundWorkload>(tb, *spec.code, wopts);
    for (const cluster::NodeId stf : batch) foreground->set_degraded(stf);
    tb.set_pressure_source(foreground.get());
    foreground->start();
  }

  const auto report = tb.execute(plan);
  if (foreground) foreground->stop();
  // A degraded-read decode mismatch is a verification failure too.
  const bool verified =
      tb.verify(report, plan) &&
      (foreground == nullptr || foreground->stats().verify_failures == 0);
  *clock_offsets = tb.clock_offsets();
  if (!flow_out.empty() &&
      !write_file(flow_out, "{\"links\":" +
                                telemetry::links_to_json(report.repair.links) +
                                "}")) {
    return 1;
  }

  std::printf("\nexecution: %s in %.3f s\n",
              report.success ? "complete" : "incomplete",
              report.repair.total_seconds);
  std::printf("  repaired                 %d of %d chunks\n",
              static_cast<int>(report.completions.size()),
              plan.total_repaired());
  std::printf("  fallback reconstructions %d\n",
              report.fallback_reconstructions);
  std::printf("  retries                  %d\n", report.retries);
  std::printf("  round extensions         %d\n", report.round_extensions);
  std::printf("  replans                  %d\n", report.replans);
  std::printf("  degraded to reactive     %s\n",
              report.degraded_to_reactive
                  ? ("yes (round " +
                     std::to_string(report.degraded_at_round) + ")")
                        .c_str()
                  : "no");
  for (const auto& progress : report.stf_progress) {
    std::printf("  stf %-4d                 %d planned, %d migrated, "
                "%d reconstructed, %d unrepaired%s\n",
                progress.stf, progress.planned, progress.migrated,
                progress.reconstructed, progress.unrepaired,
                progress.died
                    ? (" (died round " +
                       std::to_string(progress.died_at_round) + ")")
                          .c_str()
                    : "");
  }
  if (!report.failed_nodes.empty()) {
    std::string nodes;
    for (const auto n : report.failed_nodes) {
      if (!nodes.empty()) nodes += " ";
      nodes += std::to_string(n);
    }
    std::printf("  nodes declared failed    %s\n", nodes.c_str());
  }
  for (const auto& chunk : report.unrepaired) {
    std::printf("  UNREPAIRED stripe %d index %d\n", chunk.stripe,
                chunk.index);
  }
  for (const auto& err : report.errors) {
    std::printf("  error: %s\n", err.c_str());
  }
  if (tb.throttler() != nullptr) {
    const auto ts = tb.throttler()->stats();
    // Display conversion, not a configuration boundary.
    std::printf("  repair budget            %.1f MB/s final%s\n",
                ts.budget_bytes_per_sec / 1e6,  // fastpr-lint: allow(units)
                ts.panic ? " (PANIC: deadline overrode SLO)" : "");
    std::printf("  leases                   %lld granted, %lld expired, "
                "%lld SLO breaches\n",
                static_cast<long long>(ts.leases_granted),
                static_cast<long long>(ts.leases_expired),
                static_cast<long long>(ts.slo_breaches));
  }
  if (foreground) {
    const auto fs = foreground->stats();
    std::printf("  foreground               %lld reads (%lld degraded), "
                "%lld writes, %lld failed\n",
                static_cast<long long>(fs.reads),
                static_cast<long long>(fs.degraded_reads),
                static_cast<long long>(fs.writes),
                static_cast<long long>(fs.failed_ops));
    std::printf("  foreground latency       p50 %.1f ms, p99 %.1f ms, "
                "p999 %.1f ms at %.0f op/s\n",
                fs.p50_seconds * 1e3, fs.p99_seconds * 1e3,
                fs.p999_seconds * 1e3, fs.achieved_ops_per_sec);
    if (fs.verify_failures > 0) {
      std::printf("  FOREGROUND VERIFY FAILURES %lld\n",
                  static_cast<long long>(fs.verify_failures));
    }
  }
  std::printf("  byte verification        %s\n",
              verified ? "PASS" : "FAIL");
  if (!verified) return 1;
  return report.success ? 0 : 3;
}

int usage() {
  std::fprintf(stderr,
               "usage: fastpr_cli analyze|plan|simulate|lifetime|execute "
               "<spec-file> [--metrics-out=<file.json>] "
               "[--metrics-format=json|csv|prom] "
               "[--trace-out=<file.json>] [--flow-out=<file.json>] "
               "[--fault-plan <file>] [--stf=<id[,id...]>] "
               "[--repair-strategy=fanin|chain|auto] "
               "[--repair-budget=<MBps>] [--slo-ms=<ms>] "
               "[--stf-deadline=<s>] [--foreground-ops=<per_sec>] "
               "[--topology=<racks>x<nodes>] [--oversub=<factor>]\n"
               "       fastpr_cli trace merge <out.json> <in.json...>\n");
  return 2;
}

/// `trace merge <out> <in...>`: splices the traceEvents arrays of the
/// inputs (each a {"traceEvents":[...]} file as written by --trace-out)
/// into one Chrome trace. Purely textual — events pass through verbatim.
int cmd_trace_merge(const std::vector<const char*>& positional) {
  if (positional.size() < 4) return usage();
  const std::string out_path = positional[2];
  std::string merged;
  for (size_t i = 3; i < positional.size(); ++i) {
    std::ifstream in(positional[i]);
    if (!in.good()) {
      std::fprintf(stderr, "error: cannot open trace %s\n", positional[i]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string s = text.str();
    // Accept both the bare {"traceEvents":[...]} form and the
    // {"displayTimeUnit":"ms","traceEvents":[...]} form that
    // events_to_chrome_json / --trace-out write.
    const std::string key = "\"traceEvents\":[";
    const auto start = s.find(key);
    const auto end = s.rfind("]}");
    if (start == std::string::npos || end == std::string::npos ||
        end < start + key.size()) {
      std::fprintf(stderr, "error: %s is not a Chrome trace file\n",
                   positional[i]);
      return 1;
    }
    const std::string body =
        s.substr(start + key.size(), end - (start + key.size()));
    if (body.empty()) continue;
    if (!merged.empty()) merged += ",";
    merged += body;
  }
  return write_file(out_path,
                    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[" +
                        merged + "]}")
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string metrics_format = "json";
  std::string trace_out;
  std::string flow_out;
  std::string fault_plan_path;
  core::StrategyChoice strategy = core::StrategyChoice::kFanIn;
  std::vector<int> stf_batch;
  double repair_budget_mbps = 0;
  double slo_ms = 0;
  double stf_deadline_s = 0;
  double foreground_ops = 0;
  std::string topology_spec;
  double oversub_factor = net::Oversub(1.0);
  // Parses `--flag=<positive number>` into `out`; 0 and negatives are
  // rejected (omit the flag to disable the feature).
  auto parse_positive = [&](const std::string& arg, const char* flag,
                            double* out) {
    const std::string v = arg.substr(std::strlen(flag));
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (v.empty() || end == nullptr || *end != '\0' || parsed <= 0) {
      std::fprintf(stderr, "error: bad %s value '%s'\n", flag, v.c_str());
      return false;
    }
    *out = parsed;
    return true;
  };
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--stf=", 0) == 0) {
      std::istringstream ids(arg.substr(std::strlen("--stf=")));
      std::string token;
      while (std::getline(ids, token, ',')) {
        char* end = nullptr;
        const long id = std::strtol(token.c_str(), &end, 10);
        if (token.empty() || end == nullptr || *end != '\0' || id < 0) {
          std::fprintf(stderr, "error: bad --stf id '%s'\n",
                       token.c_str());
          return usage();
        }
        stf_batch.push_back(static_cast<int>(id));
      }
      if (stf_batch.empty()) return usage();
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
      if (metrics_out.empty()) return usage();
    } else if (arg.rfind("--metrics-format=", 0) == 0) {
      metrics_format = arg.substr(std::strlen("--metrics-format="));
      if (metrics_format != "json" && metrics_format != "csv" &&
          metrics_format != "prom") {
        std::fprintf(stderr, "error: bad --metrics-format '%s'\n",
                     metrics_format.c_str());
        return usage();
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
      if (trace_out.empty()) return usage();
    } else if (arg.rfind("--flow-out=", 0) == 0) {
      flow_out = arg.substr(std::strlen("--flow-out="));
      if (flow_out.empty()) return usage();
    } else if (arg.rfind("--repair-strategy=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--repair-strategy="));
      if (v == "fanin") {
        strategy = core::StrategyChoice::kFanIn;
      } else if (v == "chain") {
        strategy = core::StrategyChoice::kChain;
      } else if (v == "auto") {
        strategy = core::StrategyChoice::kAuto;
      } else {
        std::fprintf(stderr, "error: bad --repair-strategy '%s'\n",
                     v.c_str());
        return usage();
      }
    } else if (arg.rfind("--repair-budget=", 0) == 0) {
      if (!parse_positive(arg, "--repair-budget=", &repair_budget_mbps))
        return usage();
    } else if (arg.rfind("--slo-ms=", 0) == 0) {
      if (!parse_positive(arg, "--slo-ms=", &slo_ms)) return usage();
    } else if (arg.rfind("--stf-deadline=", 0) == 0) {
      if (!parse_positive(arg, "--stf-deadline=", &stf_deadline_s))
        return usage();
    } else if (arg.rfind("--foreground-ops=", 0) == 0) {
      if (!parse_positive(arg, "--foreground-ops=", &foreground_ops))
        return usage();
    } else if (arg.rfind("--topology=", 0) == 0) {
      topology_spec = arg.substr(std::strlen("--topology="));
      if (topology_spec.empty()) return usage();
    } else if (arg.rfind("--oversub=", 0) == 0) {
      if (!parse_positive(arg, "--oversub=", &oversub_factor))
        return usage();
    } else if (arg.rfind("--fault-plan=", 0) == 0) {
      fault_plan_path = arg.substr(std::strlen("--fault-plan="));
      if (fault_plan_path.empty()) return usage();
    } else if (arg == "--fault-plan") {
      if (i + 1 >= argc) return usage();
      fault_plan_path = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() >= 2 && std::strcmp(positional[0], "trace") == 0 &&
      std::strcmp(positional[1], "merge") == 0) {
    return cmd_trace_merge(positional);
  }
  if (positional.size() != 2) return usage();
  const char* command = positional[0];
  const char* spec_path = positional[1];

  set_log_level(LogLevel::kWarn);
  if (!trace_out.empty()) {
    telemetry::TraceLog::global().set_enabled(true);
  }
  Spec spec;
  std::string error;
  if (!parse_spec(spec_path, spec, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  spec.strategy = strategy;
  spec.repair_budget_mbps = repair_budget_mbps;
  spec.slo_ms = slo_ms;
  spec.stf_deadline_s = stf_deadline_s;
  spec.foreground_ops = foreground_ops;
  if (!topology_spec.empty()) {
    try {
      spec.topology = net::Topology::parse(topology_spec,
                                           net::Oversub(oversub_factor));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad --topology/--oversub: %s\n",
                   e.what());
      return usage();
    }
  } else if (oversub_factor != 1.0) {
    std::fprintf(stderr, "error: --oversub requires --topology\n");
    return usage();
  }
  std::vector<std::pair<int, int64_t>> clock_offsets;
  int rc = 2;
  try {
    if (std::strcmp(command, "analyze") == 0) {
      rc = cmd_analyze(spec);
    } else if (std::strcmp(command, "plan") == 0) {
      rc = cmd_plan(spec);
    } else if (std::strcmp(command, "simulate") == 0) {
      rc = cmd_simulate(spec);
    } else if (std::strcmp(command, "lifetime") == 0) {
      rc = cmd_lifetime(spec);
    } else if (std::strcmp(command, "execute") == 0) {
      rc = cmd_execute(spec, fault_plan_path, stf_batch, flow_out,
                       &clock_offsets);
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!metrics_out.empty()) {
    const auto snap = telemetry::MetricsRegistry::global().snapshot();
    const std::string rendered = metrics_format == "csv"
                                     ? snap.to_csv()
                                     : metrics_format == "prom"
                                           ? snap.to_prometheus()
                                           : snap.to_json();
    if (!write_file(metrics_out, rendered)) return 1;
  }
  if (!trace_out.empty()) {
    // `execute` learned per-node clock offsets from its probe traffic;
    // export the merged timeline offset-corrected (a no-op otherwise).
    const std::string trace_json =
        clock_offsets.empty()
            ? telemetry::TraceLog::global().to_chrome_json()
            : telemetry::events_to_chrome_json(
                  telemetry::TraceLog::global().snapshot(), clock_offsets);
    if (!write_file(trace_out, trace_json)) return 1;
  }
  return rc;
}
