// fastpr_analyze — cross-file concurrency-correctness analyzer.
//
// Where fastpr_lint checks single lines against repo conventions, this
// tool builds a cross-file model of the lock discipline and the message
// protocol from the sources under <repo-root>/src and enforces:
//
//  * lock-rank     — every fastpr::Mutex declared in src/ must carry a
//                    rank from util/lock_order.h
//                    (`Mutex m_{lock_order::kSomething};`), so the
//                    declared hierarchy stays total.
//  * lock-order    — the acquisition graph extracted from MutexLock
//                    scopes and FASTPR_REQUIRES annotations must
//                    ascend the declared hierarchy strictly (acquiring
//                    a lower- or equal-ranked mutex while a higher one
//                    is held is an error) and must be acyclic, even
//                    across unranked mutexes.
//  * lock-held-blocking — no blocking call while any lock is held:
//                    transport send/recv, chunk-store disk I/O and
//                    token-bucket acquisition, raw socket
//                    connect/write/read, thread joins, sleeps, and
//                    CondVar waits on a *different* mutex than one
//                    already held.
//  * msgtype-exhaustive — every net::MessageType enumerator must
//                    appear in the agent/coordinator dispatch code
//                    (src/agent/agent.cpp ∪ src/agent/coordinator.cpp)
//                    and in the wire codec (src/net/message.cpp), so a
//                    new message type cannot ship half-wired.
//
// The model is deliberately a line-based heuristic parser (same family
// as fastpr_lint), not a libclang pass: it understands the repo's
// idioms — `MutexLock l(expr);`, rank-braced Mutex members,
// FASTPR_REQUIRES on declarations and inline lambdas — which is enough
// to make the checks sound for this codebase while keeping the tool a
// single dependency-free TU that runs in milliseconds as a ctest test.
//
// Mutex name resolution: a MutexLock names its mutex by trailing
// identifier (`ep.conn_mutex` → conn_mutex). Names are resolved against
// the declarations of the same header/source pair first (member names
// like `mutex` repeat across classes but are unique within a pair),
// then against a globally unique declaration; unresolvable names are
// skipped rather than guessed.
//
// Reviewed exceptions use the same inline marker grammar as
// fastpr_lint: `fastpr-lint: allow(<rule>)` on the offending line, or
// in the comment block immediately above it (covering through the end
// of the next statement, so a marker can bless a multi-line call).
//
// Runtime counterpart: the debug lock-order tracker in util/mutex.cpp
// enforces the same hierarchy on real interleavings (including lock
// nesting that only materializes through function calls, which this
// static pass does not chase).

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string detail;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Word-bounded token search (see fastpr_lint).
bool has_word(const std::string& s, const std::string& token) {
  size_t pos = 0;
  while ((pos = s.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Strips string/char literals and comments; carries block-comment
/// state across lines (identical contract to fastpr_lint).
std::string sanitize(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  size_t i = 0;
  while (i < line.size()) {
    if (in_block_comment) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block_comment = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (line.compare(i, 2, "//") == 0) break;
    if (line.compare(i, 2, "/*") == 0) {
      in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

/// Last identifier in an expression: `window->mutex` → "mutex",
/// `ep.conn_mutex` → "conn_mutex", `send_mutex_` → itself.
std::string trailing_ident(const std::string& expr) {
  size_t end = expr.size();
  while (end > 0 && !is_ident_char(expr[end - 1])) --end;
  size_t begin = end;
  while (begin > 0 && is_ident_char(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

/// Captures the balanced `(...)` starting at s[open] (which must be
/// '('); returns the contents, or nullopt if unbalanced on this line.
std::optional<std::string> capture_parens(const std::string& s,
                                          size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')') {
      --depth;
      if (depth == 0) return s.substr(open + 1, i - open - 1);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------
// Model

struct RankDef {
  int order = 0;
  std::string dotted;  // "net.inbox"
};

struct MutexRecord {
  std::string rank_const;  // "kNetInbox", empty when unranked
};

struct Analyzer {
  fs::path root;
  std::vector<Violation> violations;
  int files_checked = 0;

  std::map<std::string, RankDef> rank_table;
  // pair key ("src/net/tcp_transport") → mutex name → record
  std::map<std::string, std::map<std::string, MutexRecord>> pair_mutexes;
  // mutex name → set of pair keys declaring it (for unique fallback)
  std::map<std::string, std::set<std::string>> name_sites;
  // pair key → function name → mutex name (FASTPR_REQUIRES on decls)
  std::map<std::string, std::map<std::string, std::string>> requires_fns;

  // Acquisition graph over node identities. Identity is the rank
  // constant for ranked mutexes (all instances of a rank are one
  // hierarchy level) and "pairkey::name" for unranked ones.
  struct EdgeInfo {
    std::string file;
    int line = 0;
  };
  std::map<std::string, std::map<std::string, EdgeInfo>> edges;
  std::map<std::string, std::string> node_label;  // identity → pretty name

  void report(const fs::path& rel, int line, const std::string& rule,
              const std::string& detail) {
    violations.push_back({rel.generic_string(), line, rule, detail});
  }
};

std::string pair_key(const fs::path& rel) {
  fs::path p = rel;
  p.replace_extension();
  return p.generic_string();
}

/// Resolves a mutex name used in `pair` to (identity, rank) — see the
/// header comment for the pair-then-global-unique strategy.
struct Resolved {
  std::string identity;
  std::string label;
  const RankDef* rank = nullptr;  // null when unranked
};

std::optional<Resolved> resolve_mutex(Analyzer& a, const std::string& pair,
                                      const std::string& name) {
  const std::map<std::string, MutexRecord>* site = nullptr;
  std::string site_key;
  const auto it = a.pair_mutexes.find(pair);
  if (it != a.pair_mutexes.end() && it->second.count(name) != 0) {
    site = &it->second;
    site_key = pair;
  } else {
    const auto sites = a.name_sites.find(name);
    if (sites == a.name_sites.end() || sites->second.size() != 1) {
      return std::nullopt;  // unknown or ambiguous: do not guess
    }
    site_key = *sites->second.begin();
    site = &a.pair_mutexes.at(site_key);
  }
  const MutexRecord& rec = site->at(name);
  Resolved r;
  if (!rec.rank_const.empty()) {
    const auto rank_it = a.rank_table.find(rec.rank_const);
    if (rank_it != a.rank_table.end()) {
      r.identity = rec.rank_const;
      r.label = rank_it->second.dotted;
      r.rank = &rank_it->second;
      return r;
    }
  }
  r.identity = site_key + "::" + name;
  r.label = r.identity;
  return r;
}

// ---------------------------------------------------------------------
// Pass 0: the declared hierarchy

void parse_lock_order(Analyzer& a) {
  std::ifstream in(a.root / "src/util/lock_order.h");
  if (!in.good()) return;  // fixtures without a hierarchy: empty table
  bool in_block = false;
  std::string line;
  while (std::getline(in, line)) {
    // inline constexpr Rank kName{order, "dotted.name"};
    const std::string code = sanitize(line, in_block);
    const size_t rank_pos = code.find("Rank k");
    if (rank_pos == std::string::npos) continue;
    size_t i = rank_pos + 5;  // at 'k'
    std::string name;
    while (i < code.size() && is_ident_char(code[i])) name += code[i++];
    while (i < code.size() && code[i] == ' ') ++i;
    if (i >= code.size() || code[i] != '{') continue;
    int order = 0;
    bool neg = false;
    ++i;
    while (i < code.size() && (code[i] == ' ' || code[i] == '-')) {
      if (code[i] == '-') neg = true;
      ++i;
    }
    bool got_digit = false;
    while (i < code.size() &&
           std::isdigit(static_cast<unsigned char>(code[i])) != 0) {
      order = order * 10 + (code[i] - '0');
      got_digit = true;
      ++i;
    }
    if (!got_digit) continue;
    // The dotted name lives in a string literal, which sanitize()
    // blanked; re-read it from the raw line.
    std::string dotted;
    const size_t q1 = line.find('"');
    const size_t q2 = q1 == std::string::npos ? std::string::npos
                                              : line.find('"', q1 + 1);
    if (q2 != std::string::npos) dotted = line.substr(q1 + 1, q2 - q1 - 1);
    if (dotted.empty()) dotted = name;
    a.rank_table[name] = RankDef{neg ? -order : order, dotted};
  }
}

// ---------------------------------------------------------------------
// Allow-marker carry: a marker in a comment-only line covers following
// code lines through the end of the next statement (first line whose
// code contains ';', '{' or '}').

struct MarkerCarry {
  std::string carried;

  bool allowed(const std::string& raw, const char* rule) const {
    const std::string marker =
        std::string("fastpr-lint: allow(") + rule + ")";
    return raw.find(marker) != std::string::npos ||
           carried.find(marker) != std::string::npos;
  }

  void advance(const std::string& raw, const std::string& code) {
    const bool comment_only =
        code.find_first_not_of(" \t") == std::string::npos;
    if (comment_only) {
      if (raw.find("fastpr-lint: allow(") != std::string::npos) {
        carried += raw;
        carried += '\n';
      }
      return;
    }
    if (code.find_first_of(";{}") != std::string::npos) carried.clear();
  }
};

// ---------------------------------------------------------------------
// Pass 1: declarations (mutex members + FASTPR_REQUIRES signatures)

void collect_declarations(Analyzer& a, const fs::path& rel) {
  std::ifstream in(a.root / rel);
  if (!in.good()) {
    a.report(rel, 0, "io", "cannot open file");
    return;
  }
  const bool exempt_decl = rel.generic_string() == "src/util/mutex.h" ||
                           rel.generic_string() == "src/util/mutex.cpp";
  const std::string key = pair_key(rel);
  bool in_block = false;
  MarkerCarry carry;
  std::string line, prev_code;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string code = sanitize(line, in_block);

    // Mutex declarations: `Mutex name;` / `Mutex name{...};`, with an
    // optional `mutable` prefix. `MutexLock`, `Mutex&` parameters and
    // the class definition itself do not match.
    size_t pos = 0;
    while ((pos = code.find("Mutex", pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
      size_t i = pos + 5;
      if (!left_ok || (i < code.size() && is_ident_char(code[i]))) {
        pos += 5;
        continue;
      }
      while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
      std::string name;
      while (i < code.size() && is_ident_char(code[i])) name += code[i++];
      while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
      if (name.empty() || i >= code.size() ||
          (code[i] != ';' && code[i] != '{')) {
        pos += 5;
        continue;
      }
      std::string rank_const;
      if (code[i] == '{') {
        const size_t lo = code.find("lock_order::k", i);
        if (lo != std::string::npos) {
          size_t j = lo + 12;  // at 'k'
          while (j < code.size() && is_ident_char(code[j])) {
            rank_const += code[j++];
          }
        }
      }
      a.pair_mutexes[key][name] = MutexRecord{rank_const};
      a.name_sites[name].insert(key);
      if (rank_const.empty() && !exempt_decl &&
          !carry.allowed(line, "lock-rank")) {
        a.report(rel, lineno, "lock-rank",
                 "Mutex `" + name +
                     "` has no rank; construct it with a "
                     "lock_order:: rank (util/lock_order.h) so the "
                     "declared hierarchy stays total");
      }
      pos += 5;
    }

    // FASTPR_REQUIRES on a pure declaration (line ends in `;`): the
    // named function's out-of-line definition runs with the mutex held.
    const size_t req = code.find("FASTPR_REQUIRES");
    if (req != std::string::npos) {
      const size_t open = code.find('(', req);
      if (open != std::string::npos) {
        const auto arg = capture_parens(code, open);
        const size_t after =
            open + (arg.has_value() ? arg->size() + 2 : 1);
        if (arg.has_value() &&
            code.find(';', after) != std::string::npos &&
            code.find('{', after) == std::string::npos) {
          // Function name: last `ident(` before the annotation, on
          // this line or (multi-line signature) the previous one.
          const std::string sig = prev_code + " " + code.substr(0, req);
          std::string fn;
          for (size_t j = 0; j + 1 < sig.size(); ++j) {
            if (is_ident_char(sig[j]) &&
                (j == 0 || !is_ident_char(sig[j - 1]))) {
              size_t e = j;
              while (e < sig.size() && is_ident_char(sig[e])) ++e;
              size_t k = e;
              while (k < sig.size() && sig[k] == ' ') ++k;
              if (k < sig.size() && sig[k] == '(') {
                fn = sig.substr(j, e - j);
              }
            }
          }
          if (!fn.empty() && fn != "FASTPR_REQUIRES") {
            a.requires_fns[key][fn] = trailing_ident(*arg);
          }
        }
      }
    }

    carry.advance(line, code);
    if (code.find_first_not_of(" \t") != std::string::npos) {
      prev_code = code;
    }
  }
  ++a.files_checked;
}

// ---------------------------------------------------------------------
// Pass 2: lock scopes, acquisition edges, blocking calls

/// Calls that can block for I/O, shaping, scheduling or indefinitely.
/// Curated for this codebase (see the rule catalog in DESIGN.md §6b).
const char* kBlockingTokens[] = {
    "transport_.send", "transport_.recv", "transport.send",
    "transport.recv",  "inner_.send",     "inner_.recv",
    "write_all(",      "read_all(",       "::connect(",
    "::accept(",       "sleep_for(",      ".join(",
    "tx->acquire(",    "rx->acquire(",    "disk_->acquire(",
    ".charge_io(",     "->charge_io(",    "store_.read(",
    "store_.write(",
};

struct Hold {
  Resolved mutex;
  int depth = 0;  // active while brace depth >= this
};

void analyze_file(Analyzer& a, const fs::path& rel) {
  std::ifstream in(a.root / rel);
  if (!in.good()) return;  // reported in pass 1
  const std::string rel_str = rel.generic_string();
  const bool exempt_blocking = rel_str == "src/util/mutex.h" ||
                               rel_str == "src/util/mutex.cpp";
  const std::string key = pair_key(rel);

  // Annotated functions visible to this TU: its own pair's (header
  // declarations resolve against the sibling .cpp definitions).
  const std::map<std::string, std::string>* req_fns = nullptr;
  const auto rf = a.requires_fns.find(key);
  if (rf != a.requires_fns.end()) req_fns = &rf->second;

  bool in_block = false;
  MarkerCarry carry;
  std::string line;
  int lineno = 0;
  int depth = 0;
  int ns_depth = 0;  // brace depth contributed by enclosing namespaces
  std::vector<Hold> holds;

  const auto held = [&](const std::string& identity) {
    return std::any_of(holds.begin(), holds.end(), [&](const Hold& h) {
      return h.mutex.identity == identity;
    });
  };

  const auto push_hold = [&](const Resolved& r, int at_depth,
                             int at_line) {
    if (held(r.identity)) return;  // re-entry via REQUIRES lambda etc.
    if (!holds.empty()) {
      const Hold& top = holds.back();
      // Rank discipline: strictly ascending against everything held.
      for (const Hold& h : holds) {
        if (h.mutex.rank != nullptr && r.rank != nullptr &&
            r.rank->order <= h.mutex.rank->order &&
            !carry.allowed(line, "lock-order")) {
          std::ostringstream os;
          os << "acquires " << r.label << "(order " << r.rank->order
             << ") while holding " << h.mutex.label << "(order "
             << h.mutex.rank->order
             << "); util/lock_order.h requires strictly ascending "
                "acquisition";
          a.report(rel, at_line, "lock-order", os.str());
        }
      }
      a.node_label[top.mutex.identity] = top.mutex.label;
      a.node_label[r.identity] = r.label;
      a.edges[top.mutex.identity].emplace(
          r.identity, Analyzer::EdgeInfo{rel_str, at_line});
    }
    holds.push_back(Hold{r, at_depth});
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::string code = sanitize(line, in_block);

    const int opens =
        static_cast<int>(std::count(code.begin(), code.end(), '{'));
    const int closes =
        static_cast<int>(std::count(code.begin(), code.end(), '}'));
    const int depth_after = depth + opens - closes;

    // Blocking calls under any held lock.
    if (!holds.empty() && !exempt_blocking &&
        !carry.allowed(line, "lock-held-blocking")) {
      for (const char* token : kBlockingTokens) {
        if (code.find(token) != std::string::npos) {
          a.report(rel, lineno, "lock-held-blocking",
                   std::string("blocking call `") + token +
                       "` while holding " + holds.back().mutex.label +
                       "; move the blocking work outside the lock or "
                       "mark the reviewed exception");
          break;
        }
      }
      // CondVar wait on a different mutex than one already held: the
      // held lock stays locked for the whole (unbounded) wait.
      for (const char* wait_tok : {".wait(", ".wait_for("}) {
        const size_t wp = code.find(wait_tok);
        if (wp == std::string::npos) continue;
        const size_t open = code.find('(', wp);
        const std::string inside =
            capture_parens(code, open).value_or(code.substr(open + 1));
        const std::string waited =
            trailing_ident(inside.substr(0, inside.find(',')));
        const auto rw = resolve_mutex(a, key, waited);
        for (const Hold& h : holds) {
          if (!rw.has_value() || rw->identity != h.mutex.identity) {
            a.report(rel, lineno, "lock-held-blocking",
                     "CondVar wait on `" + waited +
                         "` while also holding " + h.mutex.label +
                         "; the held lock stays locked across the "
                         "unbounded wait");
            break;
          }
        }
        break;
      }
    }

    // New MutexLock scopes.
    size_t pos = 0;
    while ((pos = code.find("MutexLock", pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
      size_t i = pos + 9;
      if (!left_ok || (i < code.size() && is_ident_char(code[i]))) {
        pos += 9;
        continue;
      }
      while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
      while (i < code.size() && is_ident_char(code[i])) ++i;  // var name
      while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
      if (i < code.size() && code[i] == '(') {
        const auto expr = capture_parens(code, i);
        if (expr.has_value()) {
          const auto r = resolve_mutex(a, key, trailing_ident(*expr));
          if (r.has_value()) push_hold(*r, depth_after, lineno);
        }
      }
      pos += 9;
    }

    // Inline FASTPR_REQUIRES with a body on the same line (lambdas,
    // header-inline methods): the body runs with the mutex held.
    const size_t req = code.find("FASTPR_REQUIRES");
    if (req != std::string::npos) {
      const size_t open = code.find('(', req);
      if (open != std::string::npos) {
        const auto arg = capture_parens(code, open);
        if (arg.has_value() &&
            code.find('{', open) != std::string::npos) {
          const auto r = resolve_mutex(a, key, trailing_ident(*arg));
          if (r.has_value()) push_hold(*r, depth_after, lineno);
        }
      }
    }

    // Namespace braces do not open scopes of interest; function
    // definitions live at the current namespace depth.
    if (has_word(code, "namespace") && opens > closes) {
      ns_depth += opens - closes;
    }

    // Top-level definition of a function whose declaration carries
    // FASTPR_REQUIRES: its whole body runs with the mutex held.
    if (req_fns != nullptr && depth == ns_depth && depth_after > depth) {
      for (const auto& [fn, mutex_name] : *req_fns) {
        if (!has_word(code, fn)) continue;
        const auto r = resolve_mutex(a, key, mutex_name);
        if (r.has_value()) push_hold(*r, depth_after, lineno);
        break;
      }
    }

    depth = depth_after;
    ns_depth = std::min(ns_depth, depth);
    while (!holds.empty() && depth < holds.back().depth) holds.pop_back();
    if (depth <= 0) {
      depth = std::max(depth, 0);
      holds.clear();
    }

    carry.advance(line, code);
  }
}

// ---------------------------------------------------------------------
// Cycle detection over the acquisition graph

void check_cycles(Analyzer& a) {
  // Iterative DFS with colors; report each back edge as one cycle.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack_path;

  struct Frame {
    std::string node;
    std::map<std::string, Analyzer::EdgeInfo>::const_iterator next, end;
  };

  static const std::map<std::string, Analyzer::EdgeInfo> kNoEdges;
  const auto edges_of = [&](const std::string& n)
      -> const std::map<std::string, Analyzer::EdgeInfo>& {
    const auto it = a.edges.find(n);
    return it == a.edges.end() ? kNoEdges : it->second;
  };

  for (const auto& kv : a.edges) {
    const std::string& start = kv.first;
    if (color[start] != 0) continue;
    std::vector<Frame> frames;
    frames.push_back({start, edges_of(start).begin(), edges_of(start).end()});
    color[start] = 1;
    stack_path.push_back(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next == f.end) {
        color[f.node] = 2;
        stack_path.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string to = f.next->first;
      const Analyzer::EdgeInfo info = f.next->second;
      ++f.next;
      if (color[to] == 1) {
        // Back edge: the grey path from `to` to f.node plus this edge
        // is a cycle.
        std::ostringstream os;
        os << "lock acquisition cycle: ";
        const auto begin =
            std::find(stack_path.begin(), stack_path.end(), to);
        for (auto it = begin; it != stack_path.end(); ++it) {
          os << a.node_label[*it] << " -> ";
        }
        os << a.node_label[to]
           << " (some interleaving of these scopes deadlocks)";
        a.violations.push_back({info.file, info.line, "lock-order",
                                os.str()});
        continue;
      }
      if (color[to] == 0) {
        color[to] = 1;
        stack_path.push_back(to);
        frames.push_back({to, edges_of(to).begin(), edges_of(to).end()});
      }
    }
  }
}

// ---------------------------------------------------------------------
// Protocol exhaustiveness

std::string read_sanitized(const fs::path& path) {
  std::ifstream in(path);
  std::string out, line;
  bool in_block = false;
  while (std::getline(in, line)) {
    out += sanitize(line, in_block);
    out += '\n';
  }
  return out;
}

void check_msgtype(Analyzer& a) {
  const fs::path header = a.root / "src/net/message.h";
  std::ifstream in(header);
  if (!in.good()) return;  // tree without the protocol: rule is moot

  std::vector<std::string> enumerators;
  bool in_block = false, in_enum = false;
  std::string line;
  while (std::getline(in, line)) {
    const std::string code = sanitize(line, in_block);
    if (code.find("enum class MessageType") != std::string::npos) {
      in_enum = true;
      continue;
    }
    if (!in_enum) continue;
    if (code.find("};") != std::string::npos) break;
    const size_t k = code.find_first_not_of(" \t");
    if (k == std::string::npos || code[k] != 'k') continue;
    size_t e = k;
    while (e < code.size() && is_ident_char(code[e])) ++e;
    enumerators.push_back(code.substr(k, e - k));
  }

  std::string dispatch;
  for (const char* f : {"src/agent/agent.cpp", "src/agent/coordinator.cpp"}) {
    if (fs::exists(a.root / f)) dispatch += read_sanitized(a.root / f);
  }
  std::string codec;
  if (fs::exists(a.root / "src/net/message.cpp")) {
    codec = read_sanitized(a.root / "src/net/message.cpp");
  }

  for (const std::string& e : enumerators) {
    if (!dispatch.empty() && !has_word(dispatch, e)) {
      a.violations.push_back(
          {"src/net/message.h", 0, "msgtype-exhaustive",
           "MessageType::" + e +
               " is never handled in the agent/coordinator dispatch "
               "(src/agent/agent.cpp, src/agent/coordinator.cpp)"});
    }
    if (!codec.empty() && !has_word(codec, e)) {
      a.violations.push_back(
          {"src/net/message.h", 0, "msgtype-exhaustive",
           "MessageType::" + e +
               " is not wired into the codec switch in "
               "src/net/message.cpp (valid_message_type)"});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: fastpr_analyze <repo-root>\n";
    return 2;
  }
  Analyzer a;
  a.root = argv[1];

  parse_lock_order(a);

  std::vector<fs::path> sources;
  const fs::path base = a.root / "src";
  if (fs::exists(base)) {
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".h" && ext != ".cpp") continue;
      const fs::path rel = fs::relative(entry.path(), a.root);
      if (rel.generic_string().find("lint_fixtures") != std::string::npos) {
        continue;
      }
      sources.push_back(rel);
    }
  }
  std::sort(sources.begin(), sources.end());

  for (const fs::path& rel : sources) collect_declarations(a, rel);
  for (const fs::path& rel : sources) analyze_file(a, rel);
  check_cycles(a);
  check_msgtype(a);

  for (const auto& v : a.violations) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.detail << "\n";
  }
  if (a.files_checked == 0) {
    std::cerr << "fastpr_analyze: no .h/.cpp files under " << a.root
              << "/src -- wrong repo root?\n";
    return 2;
  }
  std::cout << "fastpr_analyze: " << a.files_checked << " files, "
            << a.edges.size() << " lock-graph node(s), "
            << a.violations.size() << " violation(s)\n";
  return a.violations.empty() ? 0 : 1;
}
