// Minimal thread-safe leveled logger.
//
// Usage:
//   LOG_INFO("repaired " << n << " chunks");
// Levels are filtered by a process-global threshold (default kInfo);
// benches raise it to kWarn to keep figure output clean.
//
// Each line carries a wall-clock timestamp, a monotonic offset (seconds
// since the trace epoch, aligning log lines with trace spans), and the
// telemetry thread id:  [12:00:01.003 +1.234567 T2 INFO ] msg
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace fastpr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives each formatted log line (without trailing newline) at or
/// above the threshold.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Redirects log output to `sink` instead of stderr — tests use this to
/// capture and assert on log lines. Pass nullptr to restore stderr. The
/// sink is invoked under the logger's mutex: keep it fast and never log
/// from inside it.
void set_log_sink(LogSink sink);

namespace detail {
/// Writes one formatted line to stderr under a global mutex.
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace fastpr

#define FASTPR_LOG(level, expr)                                   \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::fastpr::log_level())) {                \
      std::ostringstream os_;                                     \
      os_ << expr;                                                \
      ::fastpr::detail::log_line(level, os_.str());               \
    }                                                             \
  } while (0)

#define LOG_DEBUG(expr) FASTPR_LOG(::fastpr::LogLevel::kDebug, expr)
#define LOG_INFO(expr) FASTPR_LOG(::fastpr::LogLevel::kInfo, expr)
#define LOG_WARN(expr) FASTPR_LOG(::fastpr::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) FASTPR_LOG(::fastpr::LogLevel::kError, expr)
