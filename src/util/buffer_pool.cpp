#include "util/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "telemetry/metrics.h"
#include "util/check.h"

namespace fastpr {

namespace {

// Mirror of BufferPool::Stats in the process-wide metrics registry, so
// --metrics-out / bench sidecars report pool behaviour without a
// BufferPool handle. Counting stays inside the pool's existing critical
// section: the adds are relaxed atomics, negligible next to the lock.
struct PoolCounters {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& recycled;
  telemetry::Counter& dropped;

  static PoolCounters& get() {
    static PoolCounters counters{
        telemetry::MetricsRegistry::global().counter("buffer_pool.hits"),
        telemetry::MetricsRegistry::global().counter("buffer_pool.misses"),
        telemetry::MetricsRegistry::global().counter("buffer_pool.recycled"),
        telemetry::MetricsRegistry::global().counter("buffer_pool.dropped")};
    return counters;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// PooledBuffer

PooledBuffer::PooledBuffer(PooledBuffer&& other) noexcept
    : storage_(std::move(other.storage_)),
      size_(other.size_),
      home_(std::move(other.home_)) {
  other.storage_.clear();
  other.size_ = 0;
}

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    release();
    storage_ = std::move(other.storage_);
    size_ = other.size_;
    home_ = std::move(other.home_);
    other.storage_.clear();
    other.size_ = 0;
  }
  return *this;
}

PooledBuffer::~PooledBuffer() { release(); }

void PooledBuffer::release() {
  if (home_ && !storage_.empty()) {
    home_->put_back(std::move(storage_));
  }
  storage_.clear();
  size_ = 0;
  home_.reset();
}

void PooledBuffer::assign(const uint8_t* src, size_t len) {
  if (len == 0) {  // control messages: no payload, no pool traffic
    size_ = 0;
    return;
  }
  if (storage_.size() < len || !home_) {
    *this = BufferPool::global()->acquire(len);
  } else {
    size_ = len;
  }
  if (len != 0) std::memcpy(storage_.data(), src, len);
}

void PooledBuffer::assign(size_t count, uint8_t value) {
  if (count == 0) {
    size_ = 0;
    return;
  }
  if (storage_.size() < count || !home_) {
    *this = BufferPool::global()->acquire(count);
  } else {
    size_ = count;
  }
  std::memset(storage_.data(), value, count);
}

void PooledBuffer::resize_uninitialized(size_t len) {
  if (len == 0) {
    size_ = 0;
    return;
  }
  if (storage_.size() < len || !home_) {
    *this = BufferPool::global()->acquire(len);
  } else {
    size_ = len;
  }
}

PooledBuffer& PooledBuffer::operator=(std::initializer_list<uint8_t> bytes) {
  *this = BufferPool::global()->acquire(bytes.size());
  std::copy(bytes.begin(), bytes.end(), storage_.data());
  return *this;
}

PooledBuffer PooledBuffer::clone() const {
  if (size_ == 0) return {};
  const auto& pool = home_ ? home_ : BufferPool::global();
  PooledBuffer copy = pool->acquire(size_);
  if (size_ != 0) std::memcpy(copy.data(), data(), size_);
  return copy;
}

bool operator==(const PooledBuffer& a, const PooledBuffer& b) {
  return a.size_ == b.size_ &&
         (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
}

bool operator==(const PooledBuffer& a, const std::vector<uint8_t>& b) {
  return a.size() == b.size() &&
         (b.empty() || std::memcmp(a.data(), b.data(), b.size()) == 0);
}

// ---------------------------------------------------------------------------
// BufferPool

BufferPool::BufferPool(size_t max_shelf_buffers)
    : max_shelf_buffers_(max_shelf_buffers) {}

std::shared_ptr<BufferPool> BufferPool::create(size_t max_shelf_buffers) {
  // Private constructor: go through a make_shared-compatible shim.
  struct Shim : BufferPool {
    explicit Shim(size_t cap) : BufferPool(cap) {}
  };
  return std::make_shared<Shim>(max_shelf_buffers);
}

const std::shared_ptr<BufferPool>& BufferPool::global() {
  static const std::shared_ptr<BufferPool> pool = create();
  return pool;
}

int BufferPool::shelf_for(size_t len) {
  const size_t clamped = std::max<size_t>(len, size_t{1} << kMinShelf);
  const int shelf = std::bit_width(clamped - 1);  // ceil(log2(clamped))
  FASTPR_CHECK_MSG(shelf <= kMaxShelf,
                   "buffer of " << len << " bytes exceeds pool maximum");
  return shelf - kMinShelf;
}

PooledBuffer BufferPool::acquire(size_t len) {
  const int shelf = shelf_for(len);
  PooledBuffer out;
  {
    MutexLock lock(mutex_);
    auto& cached = shelves_[shelf];
    if (!cached.empty()) {
      out.storage_ = std::move(cached.back());
      cached.pop_back();
      ++stats_.hits;
      PoolCounters::get().hits.add();
    } else {
      ++stats_.misses;
      PoolCounters::get().misses.add();
    }
  }
  if (out.storage_.empty()) {
    // Size the storage to the full capacity class once; reuses then
    // never resize (resize would zero-fill every acquire).
    out.storage_.resize(size_t{1} << (shelf + kMinShelf));
  }
  out.size_ = len;
  out.home_ = shared_from_this();
  return out;
}

void BufferPool::put_back(std::vector<uint8_t>&& storage) {
  const int shelf = shelf_for(storage.size());
  MutexLock lock(mutex_);
  auto& cached = shelves_[shelf];
  if (cached.size() < max_shelf_buffers_) {
    cached.push_back(std::move(storage));
    ++stats_.recycled;
    PoolCounters::get().recycled.add();
  } else {
    ++stats_.dropped;
    PoolCounters::get().dropped.add();
  }
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void BufferPool::trim() {
  MutexLock lock(mutex_);
  for (auto& shelf : shelves_) shelf.clear();
}

}  // namespace fastpr
