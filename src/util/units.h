// Unit helpers. All bandwidths inside the codebase are bytes/second and
// all sizes are bytes; these helpers keep bench/test setup readable and
// mirror the units the paper quotes (MB chunks, MB/s disks, Gb/s NICs).
#pragma once

#include <cstdint>

namespace fastpr {

constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;

/// Megabytes (binary, as chunk sizes are typically 64 MiB) to bytes.
constexpr int64_t MB(int64_t v) { return v * kMiB; }

/// Disk bandwidth quoted in MB/s to bytes/s.
constexpr double MBps(double v) { return v * static_cast<double>(kMiB); }

/// Network bandwidth quoted in Gb/s (decimal gigabits) to bytes/s.
constexpr double Gbps(double v) { return v * 1e9 / 8.0; }

}  // namespace fastpr
