// Small numeric summary used when averaging repair times over runs.
#pragma once

#include <cstddef>
#include <vector>

namespace fastpr {

/// Accumulates samples and reports mean / min / max / stddev / percentiles.
class Summary {
 public:
  void add(double sample);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// p in [0,1]; nearest-rank percentile.
  double percentile(double p) const;
  double sum() const { return sum_; }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

}  // namespace fastpr
