// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// Thin, zero-overhead shims over std::mutex and std::condition_variable
// that carry the Clang thread-safety capability attributes from
// util/annotations.h, so `-Wthread-safety` can verify that every access
// to a FASTPR_GUARDED_BY member happens under its lock. CondVar waits on
// a fastpr::Mutex directly (via adopt/release of the underlying
// std::mutex), keeping the plain std::condition_variable fast path —
// no condition_variable_any indirection.
//
// Every named mutex in src/ is constructed with a rank from
// util/lock_order.h. When FASTPR_LOCK_TRACKING is defined (the
// asan-ubsan/tsan presets; never release), lock()/unlock() additionally
// feed a runtime lock-order tracker (bottom of this header — it must
// stay header-only, fastpr_telemetry sits below fastpr_util in the link
// graph and links no other fastpr target): a per-thread held-lock
// stack plus a global acquisition-order graph. Acquiring against rank
// order, recursively, or along an edge that closes a cycle in the graph
// raises CheckFailure — before blocking — with both acquisition stacks.
// Without the macro every hook compiles away and Mutex is the same
// zero-overhead shim as before (the rank member itself is compiled out).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.h"
#include "util/lock_order.h"

#if defined(FASTPR_LOCK_TRACKING)
#define FASTPR_LOCK_TRACKING_ENABLED 1
#else
#define FASTPR_LOCK_TRACKING_ENABLED 0
#endif

#if FASTPR_LOCK_TRACKING_ENABLED
#include <deque>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#endif

namespace fastpr {

class CondVar;
class Mutex;

#if FASTPR_LOCK_TRACKING_ENABLED
namespace lock_tracking {
/// Rank + cycle checks; throws CheckFailure on a would-deadlock
/// acquisition. Called before the underlying lock blocks.
void before_lock(const Mutex* mu, const lock_order::Rank* rank);
/// Pushes the now-held mutex onto the calling thread's stack.
void after_lock(const Mutex* mu, const lock_order::Rank* rank);
/// Pops the mutex from the calling thread's stack (any position:
/// out-of-order manual unlock is legal).
void on_unlock(const Mutex* mu);
/// Purges the mutex from the global order graph; heap-recycled mutex
/// addresses (per-transfer SendWindows) must not inherit stale edges.
void on_destroy(const Mutex* mu);
}  // namespace lock_tracking
#endif

/// std::mutex annotated as a thread-safety capability.
class FASTPR_CAPABILITY("mutex") Mutex {
 public:
  /// Unranked: exempt from hierarchy checks (still cycle-checked under
  /// tracking). For tests and scratch locks; mutexes in src/ must use
  /// the ranked constructor (enforced by tools/fastpr_analyze).
  Mutex() = default;
#if FASTPR_LOCK_TRACKING_ENABLED
  explicit Mutex(const lock_order::Rank& rank) : rank_(&rank) {}
  ~Mutex() { lock_tracking::on_destroy(this); }
#else
  explicit Mutex(const lock_order::Rank& /*rank*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FASTPR_ACQUIRE() {
#if FASTPR_LOCK_TRACKING_ENABLED
    lock_tracking::before_lock(this, rank_);
    mu_.lock();
    lock_tracking::after_lock(this, rank_);
#else
    mu_.lock();
#endif
  }

  void unlock() FASTPR_RELEASE() {
#if FASTPR_LOCK_TRACKING_ENABLED
    lock_tracking::on_unlock(this);
#endif
    mu_.unlock();
  }

  bool try_lock() FASTPR_TRY_ACQUIRE(true) {
#if FASTPR_LOCK_TRACKING_ENABLED
    // try_lock cannot deadlock, so no before_lock checks; a successful
    // acquisition still lands on the held stack so later blocking
    // acquisitions see it.
    if (!mu_.try_lock()) return false;
    lock_tracking::after_lock(this, rank_);
    return true;
#else
    return mu_.try_lock();
#endif
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if FASTPR_LOCK_TRACKING_ENABLED
  const lock_order::Rank* rank_ = nullptr;
#endif
};

/// RAII lock, the annotated analogue of std::lock_guard<std::mutex>.
class FASTPR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FASTPR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FASTPR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on a fastpr::Mutex the caller holds.
/// All wait overloads require the mutex held (and hold it again on
/// return), exactly like std::condition_variable with unique_lock.
///
/// The waits adopt/release the raw std::mutex and bypass Mutex::lock/
/// unlock on purpose: the waiter still logically owns the lock for
/// hierarchy purposes, so the tracker's held stack must keep it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Predicate-less wait: exposed for util-internal pacing loops only
  /// (see TokenBucket); product code must use the predicate overloads
  /// (fastpr_lint rule condvar-predicate).
  void wait(Mutex& mu) FASTPR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) FASTPR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      FASTPR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const auto status = cv_.wait_for(lock, dur);
    lock.release();
    return status;
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Pred pred) FASTPR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, dur, std::move(pred));
    lock.release();
    return satisfied;
  }

 private:
  std::condition_variable cv_;
};

#if FASTPR_LOCK_TRACKING_ENABLED

// --- Runtime lock-order tracker (absl DeadlockCheck style) -----------------
//
// Each thread keeps a stack of the mutexes it currently holds. On every
// blocking acquisition while at least one lock is held, the tracker
//  1. rejects recursive acquisition of the same mutex,
//  2. rejects any acquisition whose lock_order rank is not strictly
//     greater than every held rank (the util/lock_order.h hierarchy),
//  3. records the edge top-of-stack → acquiree in a global order graph
//     and rejects the acquisition if the reverse direction is already
//     reachable — a cycle, i.e. a deadlock some interleaving can hit —
//     reporting this thread's stack AND the stack recorded when the
//     opposing edge was first seen.
// All three raise CheckFailure before the underlying std::mutex blocks,
// so the offending interleaving is caught deterministically even when
// the schedule never actually wedges.
//
// The fast path (no locks held) touches only a thread_local and takes
// no global lock. The graph itself is guarded by a plain std::mutex —
// deliberately NOT a fastpr::Mutex, which would recurse into the
// tracker. Everything lives in a named `internal` namespace (NOT an
// anonymous one): the held stack must be one variable across all TUs.

namespace lock_tracking::internal {

struct Held {
  const Mutex* mu;
  const lock_order::Rank* rank;
};

// Retirement flag for the per-thread held stack. TLS destructors run
// in an order we don't control: another thread_local's destructor
// (e.g. the trace log's thread-exit flush) may lock a Mutex AFTER the
// held stack below has been destroyed. The flag is trivially
// destructible, so it stays readable for the whole thread teardown;
// once set, every tracker hook becomes a no-op instead of touching a
// dead vector. Locks taken during teardown are simply untracked.
inline thread_local bool t_held_retired = false;

struct HeldStack {
  std::vector<Held> v;
  ~HeldStack() { t_held_retired = true; }
};

inline thread_local HeldStack t_held_stack;

/// The calling thread's held-lock stack, or nullptr once TLS teardown
/// has retired it.
inline std::vector<Held>* held_or_null() {
  if (t_held_retired) return nullptr;
  return &t_held_stack.v;
}

inline std::string rank_label(const lock_order::Rank* rank) {
  if (rank == nullptr) return "<unranked>";
  std::ostringstream os;
  os << rank->name << "(" << rank->order << ")";
  return os.str();
}

inline std::string describe_stack(const std::vector<Held>& stack) {
  std::ostringstream os;
  for (size_t i = 0; i < stack.size(); ++i) {
    if (i != 0) os << " -> ";
    os << rank_label(stack[i].rank);
  }
  return os.str();
}

/// Representative acquisition: who first held `from` while taking `to`.
struct Edge {
  std::string holder_stack;
};

struct Graph {
  std::mutex mu;
  std::unordered_map<const Mutex*,
                     std::unordered_map<const Mutex*, Edge>>
      out;
  std::unordered_map<const Mutex*, const lock_order::Rank*> ranks;
};

inline Graph& graph() {
  // Leaked on purpose: mutexes with static storage duration unlock
  // during static destruction, after any non-leaked graph would be
  // gone. fastpr-lint: allow(naked-new) — src/util is exempt anyway.
  static Graph* g = new Graph();
  return *g;
}

/// BFS under g.mu: path from → ... → to, empty if unreachable.
inline std::vector<const Mutex*> find_path(Graph& g, const Mutex* from,
                                           const Mutex* to) {
  std::unordered_map<const Mutex*, const Mutex*> parent;
  std::deque<const Mutex*> frontier{from};
  parent[from] = nullptr;
  while (!frontier.empty()) {
    const Mutex* cur = frontier.front();
    frontier.pop_front();
    if (cur == to) {
      std::vector<const Mutex*> path;
      for (const Mutex* n = to; n != nullptr; n = parent[n]) {
        path.push_back(n);
      }
      return {path.rbegin(), path.rend()};
    }
    const auto it = g.out.find(cur);
    if (it == g.out.end()) continue;
    for (const auto& kv : it->second) {
      if (parent.emplace(kv.first, cur).second) frontier.push_back(kv.first);
    }
  }
  return {};
}

}  // namespace lock_tracking::internal

namespace lock_tracking {

inline void before_lock(const Mutex* mu, const lock_order::Rank* rank) {
  using namespace internal;
  std::vector<Held>* stack = held_or_null();
  if (stack == nullptr) return;  // thread teardown: tracking retired
  std::vector<Held>& t_held = *stack;
  if (t_held.empty()) return;  // fast path: nothing to order against

  for (const Held& held : t_held) {
    FASTPR_CHECK_MSG(held.mu != mu,
                     "lock tracker: recursive acquisition of "
                         << rank_label(rank) << " (held stack: "
                         << describe_stack(t_held) << ")");
    if (rank != nullptr && held.rank != nullptr) {
      FASTPR_CHECK_MSG(
          rank->order > held.rank->order,
          "lock tracker: rank-order violation acquiring "
              << rank_label(rank) << " while holding "
              << rank_label(held.rank)
              << " (util/lock_order.h requires strictly ascending "
                 "acquisition; held stack: "
              << describe_stack(t_held) << ")");
    }
  }

  // Record top-of-stack → mu; transitive order is captured by
  // reachability, so one edge per nesting step keeps the graph sparse.
  const Held& top = t_held.back();
  Graph& g = graph();
  std::lock_guard<std::mutex> graph_lock(g.mu);
  g.ranks[mu] = rank;
  g.ranks[top.mu] = top.rank;
  auto& edges = g.out[top.mu];
  if (edges.find(mu) != edges.end()) return;  // known-good edge

  const auto cycle = find_path(g, mu, top.mu);
  if (!cycle.empty()) {
    std::ostringstream os;
    os << "lock tracker: acquisition would deadlock: "
       << rank_label(top.rank) << " -> " << rank_label(rank)
       << " closes the cycle ";
    for (const Mutex* n : cycle) os << rank_label(g.ranks[n]) << " -> ";
    os << rank_label(top.rank) << ". this thread holds: "
       << describe_stack(t_held);
    const auto rev = g.out.find(cycle.front());
    if (rev != g.out.end() && cycle.size() > 1) {
      const auto hop = rev->second.find(cycle[1]);
      if (hop != rev->second.end()) {
        os << "; opposing acquisition held: " << hop->second.holder_stack;
      }
    }
    FASTPR_CHECK_MSG(false, os.str());
  }
  edges.emplace(mu, Edge{describe_stack(t_held)});
}

inline void after_lock(const Mutex* mu, const lock_order::Rank* rank) {
  std::vector<internal::Held>* stack = internal::held_or_null();
  if (stack == nullptr) return;
  stack->push_back(internal::Held{mu, rank});
}

inline void on_unlock(const Mutex* mu) {
  std::vector<internal::Held>* stack = internal::held_or_null();
  if (stack == nullptr) return;
  auto& t_held = *stack;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

inline void on_destroy(const Mutex* mu) {
  internal::Graph& g = internal::graph();
  std::lock_guard<std::mutex> graph_lock(g.mu);
  g.out.erase(mu);
  g.ranks.erase(mu);
  for (auto& kv : g.out) kv.second.erase(mu);
}

}  // namespace lock_tracking

#endif  // FASTPR_LOCK_TRACKING_ENABLED

}  // namespace fastpr
