// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// Thin, zero-overhead shims over std::mutex and std::condition_variable
// that carry the Clang thread-safety capability attributes from
// util/annotations.h, so `-Wthread-safety` can verify that every access
// to a FASTPR_GUARDED_BY member happens under its lock. CondVar waits on
// a fastpr::Mutex directly (via adopt/release of the underlying
// std::mutex), keeping the plain std::condition_variable fast path —
// no condition_variable_any indirection.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.h"

namespace fastpr {

class CondVar;

/// std::mutex annotated as a thread-safety capability.
class FASTPR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FASTPR_ACQUIRE() { mu_.lock(); }
  void unlock() FASTPR_RELEASE() { mu_.unlock(); }
  bool try_lock() FASTPR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock, the annotated analogue of std::lock_guard<std::mutex>.
class FASTPR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FASTPR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FASTPR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on a fastpr::Mutex the caller holds.
/// All wait overloads require the mutex held (and hold it again on
/// return), exactly like std::condition_variable with unique_lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) FASTPR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) FASTPR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      FASTPR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const auto status = cv_.wait_for(lock, dur);
    lock.release();
    return status;
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Pred pred) FASTPR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, dur, std::move(pred));
    lock.release();
    return satisfied;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace fastpr
