// Lightweight invariant-checking macros.
//
// FASTPR_CHECK is always on (release builds included): these guard
// invariants whose violation means the repair plan would be wrong, and
// correctness matters more than the branch cost on these paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fastpr {

/// Thrown when a FASTPR_CHECK fails. Carries the failing expression and
/// source location in what().
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace fastpr

#define FASTPR_CHECK(expr)                                               \
  do {                                                                   \
    if (!(expr))                                                         \
      ::fastpr::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define FASTPR_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg;                                                        \
      ::fastpr::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                     os_.str());                         \
    }                                                                    \
  } while (0)
