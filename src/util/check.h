// Lightweight invariant-checking macros.
//
// FASTPR_CHECK is always on (release builds included): these guard
// invariants whose violation means the repair plan would be wrong, and
// correctness matters more than the branch cost on these paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fastpr {

/// Thrown when a FASTPR_CHECK fails. what() carries the formatted
/// message; the failing expression and source location are also exposed
/// as structured fields so handlers (test harnesses, crash reporters)
/// can match on them without parsing the string.
class CheckFailure : public std::logic_error {
 public:
  CheckFailure(std::string what, std::string expression, std::string file,
               int line, std::string message)
      : std::logic_error(std::move(what)),
        expression_(std::move(expression)),
        file_(std::move(file)),
        line_(line),
        message_(std::move(message)) {}

  /// The failing expression text, e.g. "bytes >= 0".
  const std::string& expression() const noexcept { return expression_; }
  /// Source file of the failing check.
  const std::string& file() const noexcept { return file_; }
  /// Source line of the failing check.
  int line() const noexcept { return line_; }
  /// The extra FASTPR_CHECK_MSG message (empty for plain FASTPR_CHECK).
  const std::string& message() const noexcept { return message_; }

 private:
  std::string expression_;
  std::string file_;
  int line_;
  std::string message_;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str(), expr, file, line, msg);
}
}  // namespace detail

}  // namespace fastpr

#define FASTPR_CHECK(expr)                                               \
  do {                                                                   \
    if (!(expr))                                                         \
      ::fastpr::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

// The message expression is only streamed when the check fails, so an
// expensive msg (string concatenation, map lookups) costs nothing on the
// passing path.
#define FASTPR_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg;                                                        \
      ::fastpr::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                     os_.str());                         \
    }                                                                    \
  } while (0)
