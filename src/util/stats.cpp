#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fastpr {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
}

double Summary::mean() const {
  FASTPR_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const {
  FASTPR_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  FASTPR_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  FASTPR_CHECK(!samples_.empty());
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Summary::percentile(double p) const {
  FASTPR_CHECK(!samples_.empty());
  FASTPR_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  const size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace fastpr
