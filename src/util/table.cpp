#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace fastpr {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FASTPR_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  FASTPR_CHECK_MSG(row.size() == header_.size(),
                   "row arity " << row.size() << " != header arity "
                                << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = header_.size() > 0 ? 2 * (header_.size() - 1) : 0;
  for (size_t w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace fastpr
