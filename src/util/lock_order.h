// Declared lock hierarchy for every named mutex in the repo.
//
// Each fastpr::Mutex is constructed with one of the ranks below; a
// thread may only acquire a mutex whose order is STRICTLY GREATER than
// every mutex it already holds. Two enforcement layers consume this
// table:
//
//  * tools/fastpr_analyze (static) extracts MutexLock scopes and
//    FASTPR_REQUIRES annotations from the sources and rejects any
//    acquisition edge that descends the hierarchy or forms a cycle;
//  * the debug lock-order tracker in util/mutex.h (runtime, compiled in
//    when FASTPR_LOCK_TRACKING is set — the asan-ubsan/tsan presets)
//    maintains a per-thread held-lock stack and a global order graph
//    and raises CheckFailure on a rank violation or a would-deadlock
//    cycle, printing both acquisition stacks.
//
// Ordering rationale (low rank = acquired first / outermost):
// control-plane caches come first, then the agent's data-plane flow
// control, then transport internals, then the utility substrate the
// upper layers call into (thread pool, shaping buckets, buffer pool),
// and finally the observability sinks (metrics, trace, logging) that
// every layer may invoke from under its own lock. Leaf facilities MUST
// therefore never call back up the stack while holding their lock.
//
// Ranks are spaced by 10 so a future mutex can slot between two layers
// without renumbering the world. DESIGN.md §6b reproduces this table
// with the per-rank justification.
#pragma once

namespace fastpr::lock_order {

/// One level of the lock hierarchy. Instances are the inline constexpr
/// constants below; Mutex stores a pointer to its rank, so identity
/// comparison works and the table is the single source of truth.
struct Rank {
  int order;         // strictly ascending acquisition order
  const char* name;  // stable dotted name, used in diagnostics
};

// -- control plane -------------------------------------------------------
/// core::ReconSetCache entry install. Algorithm 1 runs outside the
/// lock; holders only splice a computed entry, never call out.
inline constexpr Rank kReconCache{10, "core.recon_cache"};
/// core::RepairThrottler lease/AIMD state. The coordinator thread ticks
/// it and agents' pressure reports fold into it; holders only update
/// budget arithmetic, never send or block.
inline constexpr Rank kCoreThrottler{14, "core.throttler"};
/// core::BandwidthReplanTrigger hysteresis state (DESIGN.md §11). The
/// coordinator thread feeds end-of-round drift ratios and tests the
/// trigger; holders only update counters, never call out.
inline constexpr Rank kCoreReplanTrigger{15, "core.replan_trigger"};
/// load::ForegroundWorkload op log + latency windows. Client threads
/// record completed ops under it; the shaped charges (store.chunks,
/// util.token_bucket) happen outside by contract.
inline constexpr Rank kLoadWorkload{16, "load.workload"};

// -- agent data plane ----------------------------------------------------
/// Agent::SendWindow per-transfer flow control. A reader task reserves
/// a slot under it (predicate wait on the window cv), releases, then
/// enqueues under agent.send_queue; the ranks keep that sequence legal
/// even if a future change nests them.
inline constexpr Rank kAgentSendWindow{20, "agent.send_window"};
/// agent::RepairBudget lease bookkeeping (seq / expiry / floor rate).
/// Sender workers check lease freshness under it, release, and only
/// then block on the underlying util.token_bucket.
inline constexpr Rank kAgentRepairBudget{25, "agent.repair_budget"};
/// Agent sender-worker queue (send_mutex_). Senders drop it before
/// touching the transport.
inline constexpr Rank kAgentSendQueue{30, "agent.send_queue"};

// -- transport -----------------------------------------------------------
/// net::FaultyTransport fault plan + RNG. decide() bumps fault counters
/// (telemetry.metrics) under it; the faulted send runs outside it.
inline constexpr Rank kNetFault{40, "net.fault"};
/// net::TcpTransport per-endpoint connection map (dst → Conn).
inline constexpr Rank kNetConnMap{50, "net.conn_map"};
/// net::TcpTransport per-connection frame-write serialization. Taken
/// after the map lookup releases kNetConnMap; held across the socket
/// write so frames from concurrent senders never interleave mid-frame.
inline constexpr Rank kNetConnWrite{60, "net.conn_write"};
/// TCP reader-thread registry (accept loop appends, shutdown joins).
inline constexpr Rank kNetReader{70, "net.reader"};
/// Per-endpoint inbox (both transports). Message destruction under it
/// recycles payloads into util.buffer_pool.
inline constexpr Rank kNetInbox{80, "net.inbox"};

// -- storage -------------------------------------------------------------
/// agent::ChunkStore chunk/checksum maps. Disk shaping (charge_io) and
/// file I/O are done outside it by contract.
inline constexpr Rank kStoreChunks{90, "store.chunks"};

// -- utility substrate ---------------------------------------------------
/// fastpr::ThreadPool task queue.
inline constexpr Rank kUtilThreadPool{100, "util.thread_pool"};
/// fastpr::TokenBucket shaping state. acquire() parks on its own cv
/// under this lock; callers must not hold anything above it that the
/// waker needs (set_rate only takes this same lock).
inline constexpr Rank kUtilTokenBucket{110, "util.token_bucket"};
/// fastpr::BufferPool shelves. Reached from inbox drains and packet
/// recycling; takes nothing further.
inline constexpr Rank kUtilBufferPool{120, "util.buffer_pool"};

// -- observability (leaf-most: callable from under any lock above) -------
/// telemetry::MetricsRegistry name → instrument map.
inline constexpr Rank kTelemetryMetrics{130, "telemetry.metrics"};
/// telemetry::FlowMonitor per-link window state. Transport tx/rx hooks
/// report into it from sender and reader threads; holders only fold
/// arithmetic, never call out.
inline constexpr Rank kTelemetryFlow{132, "telemetry.flow"};
/// telemetry::TraceLog buffer registry; snapshot() drains per-thread
/// buffers under it, nesting telemetry.trace_buffer.
inline constexpr Rank kTelemetryTrace{140, "telemetry.trace"};
/// telemetry per-thread trace buffers (TraceLog::ThreadBuffer).
inline constexpr Rank kTelemetryTraceBuffer{150, "telemetry.trace_buffer"};
/// util/logging sink serialization. The absolute leaf: LOG_* fires from
/// under arbitrary locks, so this rank must dominate everything.
inline constexpr Rank kUtilLogging{160, "util.logging"};

}  // namespace fastpr::lock_order
