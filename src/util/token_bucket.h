// Blocking token-bucket rate limiter.
//
// Used by the testbed substrate to emulate bounded disk bandwidth (one
// bucket per chunk store) and bounded NIC bandwidth (one bucket per node),
// playing the role Wonder Shaper plays in the paper's EC2 experiments.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/mutex.h"
#include "util/units.h"

namespace fastpr {

/// Thread-safe token bucket. acquire(n) blocks the caller until n tokens
/// (bytes) are available at the configured rate. A burst capacity bounds
/// how far the bucket can fill while idle.
///
/// Waiters are served FIFO: each burst-sized slice takes a ticket, and
/// tickets drain strictly in arrival order, so a stream of small
/// acquirers cannot starve a large one (or vice versa) under contention.
/// Time blocked in acquire() is exported as the
/// `tokenbucket.wait_ns` histogram so throttle-induced queueing is
/// visible in the metrics snapshot.
class TokenBucket {
 public:
  /// rate_bytes_per_sec <= 0 means unlimited (acquire never blocks).
  explicit TokenBucket(double rate_bytes_per_sec,
                       int64_t burst_bytes = 4 * kMiB);

  /// Blocks until `bytes` tokens are consumed.
  void acquire(int64_t bytes) FASTPR_EXCLUDES(mutex_);

  /// Changes the rate; takes effect for subsequent acquisitions and
  /// wakes waiters (so flipping to unlimited releases them).
  void set_rate(double rate_bytes_per_sec) FASTPR_EXCLUDES(mutex_);

  double rate() const FASTPR_EXCLUDES(mutex_);

 private:
  // The bucket IS the shaping clock, not a measurement of the repair
  // path — tracing it would recurse.
  using Clock = std::chrono::steady_clock;  // fastpr-lint: allow(raw-timing)

  void refill_locked(Clock::time_point now) FASTPR_REQUIRES(mutex_);

  mutable Mutex mutex_{lock_order::kUtilTokenBucket};
  CondVar cv_;
  double rate_ FASTPR_GUARDED_BY(mutex_);  // bytes/s; <=0 => unlimited
  const int64_t burst_;                    // max accumulated tokens
  double tokens_ FASTPR_GUARDED_BY(mutex_);
  Clock::time_point last_refill_ FASTPR_GUARDED_BY(mutex_);
  /// FIFO ticket lock over slices: a slice may drain tokens only when
  /// serving_ has reached its ticket. serving_ can run ahead of
  /// individual tickets after an unlimited interval bulk-retires the
  /// queue, hence the >= comparisons at the wait sites.
  uint64_t next_ticket_ FASTPR_GUARDED_BY(mutex_) = 0;
  uint64_t serving_ FASTPR_GUARDED_BY(mutex_) = 0;
};

}  // namespace fastpr
