// Blocking token-bucket rate limiter.
//
// Used by the testbed substrate to emulate bounded disk bandwidth (one
// bucket per chunk store) and bounded NIC bandwidth (one bucket per node),
// playing the role Wonder Shaper plays in the paper's EC2 experiments.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace fastpr {

/// Thread-safe token bucket. acquire(n) blocks the caller until n tokens
/// (bytes) are available at the configured rate. A burst capacity bounds
/// how far the bucket can fill while idle.
class TokenBucket {
 public:
  /// rate_bytes_per_sec <= 0 means unlimited (acquire never blocks).
  explicit TokenBucket(double rate_bytes_per_sec,
                       int64_t burst_bytes = 4 << 20);

  /// Blocks until `bytes` tokens are consumed.
  void acquire(int64_t bytes);

  /// Changes the rate; takes effect for subsequent acquisitions.
  void set_rate(double rate_bytes_per_sec);

  double rate() const;

 private:
  using Clock = std::chrono::steady_clock;

  void refill_locked(Clock::time_point now);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  double rate_;          // bytes per second; <=0 => unlimited
  int64_t burst_;        // max accumulated tokens
  double tokens_;        // current tokens
  Clock::time_point last_refill_;
};

}  // namespace fastpr
