// Plain-text table printer for the benchmark harness.
//
// Every bench binary prints the series a paper figure plots; this keeps
// the output format uniform (aligned columns, one header row) so
// EXPERIMENTS.md can quote it directly.
#pragma once

#include <string>
#include <vector>

namespace fastpr {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string fmt(double v, int precision = 4);

  /// Renders the aligned table (ends with a newline).
  std::string render() const;

  /// Renders to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fastpr
