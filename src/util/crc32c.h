// CRC-32C (Castagnoli) — the checksum storage systems use for on-disk
// chunk integrity (latent sector errors are a core motivation of
// predictive repair: disks go bad gradually, not atomically).
//
// Software implementation with an 8-way slicing table; no hardware
// dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace fastpr {

/// CRC-32C of `data`, seeded by `crc` (pass 0 for a fresh checksum;
/// chain calls to checksum streamed data).
uint32_t crc32c(std::span<const uint8_t> data, uint32_t crc = 0);

}  // namespace fastpr
