// Clang thread-safety-analysis attribute macros.
//
// These annotate which mutex guards which state so `clang -Wthread-safety`
// proves lock discipline at compile time (the root CMakeLists turns the
// analysis into an error on Clang builds). On compilers without the
// attributes (GCC) every macro expands to nothing, so annotated code
// stays portable. Use them through the fastpr::Mutex / MutexLock /
// CondVar wrappers in util/mutex.h — std::mutex itself carries no
// capability attribute, so the analysis cannot see through it.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FASTPR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FASTPR_THREAD_ANNOTATION
#define FASTPR_THREAD_ANNOTATION(x)  // not supported by this compiler
#endif

/// Marks a type as a lockable capability ("mutex").
#define FASTPR_CAPABILITY(name) FASTPR_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define FASTPR_SCOPED_CAPABILITY FASTPR_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a member is protected by the given mutex.
#define FASTPR_GUARDED_BY(mutex) FASTPR_THREAD_ANNOTATION(guarded_by(mutex))

/// Declares that the pointed-to data is protected by the given mutex.
#define FASTPR_PT_GUARDED_BY(mutex) \
  FASTPR_THREAD_ANNOTATION(pt_guarded_by(mutex))

/// Declares that a function may only be called with the mutexes held.
#define FASTPR_REQUIRES(...) \
  FASTPR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that a function must NOT be called with the mutexes held
/// (it acquires them itself; calling with them held would deadlock).
#define FASTPR_EXCLUDES(...) \
  FASTPR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define FASTPR_ACQUIRE(...) \
  FASTPR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define FASTPR_RELEASE(...) \
  FASTPR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define FASTPR_TRY_ACQUIRE(result, ...) \
  FASTPR_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Asserts (to the analysis, not at runtime) that the capability is held.
#define FASTPR_ASSERT_CAPABILITY(x) \
  FASTPR_THREAD_ANNOTATION(assert_capability(x))

/// Returns the capability that guards the annotated function's result.
#define FASTPR_RETURN_CAPABILITY(x) \
  FASTPR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only for
/// code the analysis cannot express (e.g. lock handoff across threads),
/// with a comment explaining why it is sound.
#define FASTPR_NO_THREAD_SAFETY_ANALYSIS \
  FASTPR_THREAD_ANNOTATION(no_thread_safety_analysis)
