// Deterministic random-number helper used across placement, workload
// generation and tests. Every simulation takes an explicit seed so runs
// are reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

namespace fastpr {

/// Seeded RNG wrapper with the sampling helpers the codebase needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform(int64_t lo, int64_t hi) {
    FASTPR_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal sample.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Chooses `count` distinct values uniformly from [0, universe).
  std::vector<int> sample_distinct(int universe, int count) {
    FASTPR_CHECK_MSG(count <= universe,
                     "cannot sample " << count << " from " << universe);
    // Partial Fisher–Yates over an index vector.
    std::vector<int> idx(universe);
    for (int i = 0; i < universe; ++i) idx[i] = i;
    for (int i = 0; i < count; ++i) {
      const int j = static_cast<int>(uniform(i, universe - 1));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(count);
    return idx;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fastpr
