#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "telemetry/trace.h"
#include "util/mutex.h"

namespace fastpr {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
// Serializes stderr writes so concurrent agents emit whole lines.
Mutex g_mutex{lock_order::kUtilLogging};
LogSink& sink_slot() {
  // Leaked: loggers may fire during static destruction.
  static LogSink* sink = new LogSink();  // fastpr-lint: allow(naked-new)
  return *sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) {
  MutexLock lock(g_mutex);
  sink_slot() = std::move(sink);
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto tt = system_clock::to_time_t(now);
  const auto ms = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  std::tm tm_buf{};
  localtime_r(&tt, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);

  // Monotonic offset since the trace epoch: lets a log line be placed
  // next to trace spans from the same run. Same tid scheme as traces.
  const double mono =
      duration<double>(telemetry::trace_now() -
                       telemetry::TraceLog::global().epoch())
          .count();
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%s.%03d +%.6f T%u %s] ", ts,
                static_cast<int>(ms.count()), mono,
                telemetry::this_thread_id(), level_name(level));
  const std::string line = prefix + msg;

  MutexLock lock(g_mutex);
  if (sink_slot()) {
    sink_slot()(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace detail
}  // namespace fastpr
