#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "util/mutex.h"

namespace fastpr {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
// Serializes stderr writes so concurrent agents emit whole lines.
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto tt = system_clock::to_time_t(now);
  const auto ms = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  std::tm tm_buf{};
  localtime_r(&tt, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);

  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s.%03d %s] %s\n", ts, static_cast<int>(ms.count()),
               level_name(level), msg.c_str());
}

}  // namespace detail
}  // namespace fastpr
