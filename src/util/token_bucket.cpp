#include "util/token_bucket.h"

#include <algorithm>

#include "util/check.h"

namespace fastpr {

TokenBucket::TokenBucket(double rate_bytes_per_sec, int64_t burst_bytes)
    : rate_(rate_bytes_per_sec),
      burst_(burst_bytes),
      tokens_(static_cast<double>(burst_bytes)),
      last_refill_(Clock::now()) {
  FASTPR_CHECK(burst_bytes > 0);
}

void TokenBucket::refill_locked(Clock::time_point now) {
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + elapsed * rate_);
}

void TokenBucket::acquire(int64_t bytes) {
  FASTPR_CHECK(bytes >= 0);
  MutexLock lock(mutex_);
  if (rate_ <= 0) return;  // unlimited
  // Large requests are consumed in burst-sized slices so that several
  // streams sharing one bucket interleave fairly instead of one stream
  // draining minutes of tokens at once.
  int64_t remaining = bytes;
  while (remaining > 0) {
    const int64_t slice = std::min(remaining, burst_);
    refill_locked(Clock::now());
    while (tokens_ < static_cast<double>(slice)) {
      const double deficit = static_cast<double>(slice) - tokens_;
      const auto wait = std::chrono::duration<double>(deficit / rate_);
      // Deliberately predicate-less: the "condition" (enough tokens) is
      // a function of elapsed time recomputed by refill_locked() each
      // iteration, not a flag a notifier flips — a predicate would just
      // duplicate the enclosing while. Spurious wakeups only re-check
      // the deficit and sleep again. fastpr-lint: allow(condvar-predicate)
      cv_.wait_for(mutex_,
                   std::chrono::duration_cast<std::chrono::nanoseconds>(wait));
      if (rate_ <= 0) return;  // became unlimited while waiting
      refill_locked(Clock::now());
    }
    tokens_ -= static_cast<double>(slice);
    remaining -= slice;
  }
}

void TokenBucket::set_rate(double rate_bytes_per_sec) {
  {
    MutexLock lock(mutex_);
    refill_locked(Clock::now());
    rate_ = rate_bytes_per_sec;
  }
  cv_.notify_all();
}

double TokenBucket::rate() const {
  MutexLock lock(mutex_);
  return rate_;
}

}  // namespace fastpr
