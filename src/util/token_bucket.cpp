#include "util/token_bucket.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "util/check.h"

namespace fastpr {

namespace {

/// Queueing visibility: total nanoseconds a single acquire() spent
/// blocked (ticket wait + token deficit). Unblocked acquisitions are
/// not recorded, so the histogram reads as "when shaping bites, by how
/// much". No-op (like all metrics) under -DFASTPR_TELEMETRY=OFF.
telemetry::Histogram& wait_histogram() {
  static telemetry::Histogram& h =
      telemetry::MetricsRegistry::global().histogram("tokenbucket.wait_ns");
  return h;
}

}  // namespace

TokenBucket::TokenBucket(double rate_bytes_per_sec, int64_t burst_bytes)
    : rate_(rate_bytes_per_sec),
      burst_(burst_bytes),
      tokens_(static_cast<double>(burst_bytes)),
      last_refill_(Clock::now()) {
  FASTPR_CHECK(burst_bytes > 0);
}

void TokenBucket::refill_locked(Clock::time_point now) {
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + elapsed * rate_);
}

void TokenBucket::acquire(int64_t bytes) {
  FASTPR_CHECK(bytes >= 0);
  auto& wait_ns = wait_histogram();
  const auto entered = Clock::now();
  bool blocked = false;
  {
    MutexLock lock(mutex_);
    if (rate_ <= 0) return;  // unlimited
    // Large requests are consumed in burst-sized slices so that several
    // streams sharing one bucket interleave fairly instead of one stream
    // draining minutes of tokens at once. Each slice takes its own FIFO
    // ticket, so concurrent acquirers alternate slice-by-slice in
    // arrival order — no waiter can be starved by luckier wakeups.
    int64_t remaining = bytes;
    while (remaining > 0) {
      const int64_t slice = std::min(remaining, burst_);
      const uint64_t ticket = next_ticket_++;
      if (serving_ < ticket) {
        blocked = true;
        const auto my_turn = [&]() FASTPR_REQUIRES(mutex_) {
          return serving_ >= ticket || rate_ <= 0;
        };
        cv_.wait(mutex_, my_turn);
      }
      if (rate_ <= 0) break;  // became unlimited while queued
      refill_locked(Clock::now());
      while (tokens_ < static_cast<double>(slice)) {
        blocked = true;
        const double deficit = static_cast<double>(slice) - tokens_;
        const auto wait = std::chrono::duration<double>(deficit / rate_);
        // Deliberately predicate-less: the "condition" (enough tokens) is
        // a function of elapsed time recomputed by refill_locked() each
        // iteration, not a flag a notifier flips — a predicate would just
        // duplicate the enclosing while. Spurious wakeups only re-check
        // the deficit and sleep again. fastpr-lint: allow(condvar-predicate)
        cv_.wait_for(mutex_,
                     std::chrono::duration_cast<std::chrono::nanoseconds>(wait));
        if (rate_ <= 0) break;  // became unlimited while waiting
        refill_locked(Clock::now());
      }
      if (rate_ <= 0) break;
      tokens_ -= static_cast<double>(slice);
      remaining -= slice;
      if (serving_ <= ticket) serving_ = ticket + 1;
      cv_.notify_all();
    }
    if (rate_ <= 0) {
      // Unlimited interval: retire every outstanding ticket (their
      // holders bail through this same branch) so the ticket counter is
      // consistent when the bucket is throttled again later.
      serving_ = next_ticket_;
      cv_.notify_all();
    }
  }
  if (blocked) {
    wait_ns.observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - entered)
                        .count());
  }
}

void TokenBucket::set_rate(double rate_bytes_per_sec) {
  {
    MutexLock lock(mutex_);
    refill_locked(Clock::now());
    rate_ = rate_bytes_per_sec;
  }
  cv_.notify_all();
}

double TokenBucket::rate() const {
  MutexLock lock(mutex_);
  return rate_;
}

}  // namespace fastpr
