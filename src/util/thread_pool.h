// Fixed-size thread pool with future-returning submission.
//
// The testbed coordinator fans a repair round out to many agents at once;
// the pool bounds thread churn while keeping rounds fully parallel.
#pragma once

#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "telemetry/trace.h"
#include "util/mutex.h"

namespace fastpr {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Fire-and-forget scheduling: no future, no packaged_task wrapper.
  /// An exception escaping fn terminates (same contract as a detached
  /// thread) instead of being silently parked in an unread future —
  /// the agent data plane wants that loudness for FASTPR_CHECK trips.
  void post(std::function<void()> fn) FASTPR_EXCLUDES(mutex_);

  /// Schedules fn and returns a future for its result. Safe to call from
  /// worker tasks; tasks queued before the destructor drains are run.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>>
      FASTPR_EXCLUDES(mutex_) {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    auto future = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.push(make_task([task] { (*task)(); }));
    }
    cv_.notify_one();
    return future;
  }

  size_t size() const { return workers_.size(); }

 private:
  /// A queued task plus (telemetry builds only) its enqueue timestamp,
  /// feeding the "threadpool.queue_wait_us" histogram.
  struct QueuedTask {
    std::function<void()> fn;
#if FASTPR_TELEMETRY_ENABLED
    telemetry::TraceClock::time_point enqueued;
#endif
  };

  static QueuedTask make_task(std::function<void()> fn) {
    QueuedTask task;
    task.fn = std::move(fn);
#if FASTPR_TELEMETRY_ENABLED
    task.enqueued = telemetry::trace_now();
#endif
    return task;
  }

  void worker_loop() FASTPR_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_{lock_order::kUtilThreadPool};
  CondVar cv_;
  std::queue<QueuedTask> queue_ FASTPR_GUARDED_BY(mutex_);
  bool stopping_ FASTPR_GUARDED_BY(mutex_) = false;
};

}  // namespace fastpr
