// Fixed-size thread pool with future-returning submission.
//
// The testbed coordinator fans a repair round out to many agents at once;
// the pool bounds thread churn while keeping rounds fully parallel.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fastpr {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules fn and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    auto future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace fastpr
