#include "util/crc32c.h"

#include <array>

namespace fastpr {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // 8 slicing tables: table[0] is the classic byte table; table[j]
  // advances a byte processed j bytes ago.
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (int j = 1; j < 8; ++j) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

uint32_t crc32c(std::span<const uint8_t> data, uint32_t crc) {
  const auto& t = tables().t;
  crc = ~crc;
  const uint8_t* p = data.data();
  size_t len = data.size();

  // 8-byte slices.
  while (len >= 8) {
    const uint32_t low = crc ^ (static_cast<uint32_t>(p[0]) |
                                (static_cast<uint32_t>(p[1]) << 8) |
                                (static_cast<uint32_t>(p[2]) << 16) |
                                (static_cast<uint32_t>(p[3]) << 24));
    crc = t[7][low & 0xFF] ^ t[6][(low >> 8) & 0xFF] ^
          t[5][(low >> 16) & 0xFF] ^ t[4][low >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace fastpr
