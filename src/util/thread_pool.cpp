#include "util/thread_pool.h"

#include "util/check.h"

namespace fastpr {

ThreadPool::ThreadPool(size_t num_threads) {
  FASTPR_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::post(std::function<void()> fn) {
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace fastpr
