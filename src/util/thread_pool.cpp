#include "util/thread_pool.h"

#include "telemetry/metrics.h"
#include "util/check.h"

namespace fastpr {

ThreadPool::ThreadPool(size_t num_threads) {
  FASTPR_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::post(std::function<void()> fn) {
  {
    MutexLock lock(mutex_);
    queue_.push(make_task(std::move(fn)));
  }
  cv_.notify_one();
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(mutex_);
      const auto ready = [&]() FASTPR_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      };
      cv_.wait(mutex_, ready);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
#if FASTPR_TELEMETRY_ENABLED
    static telemetry::Histogram& queue_wait =
        telemetry::MetricsRegistry::global().histogram(
            "threadpool.queue_wait_us");
    queue_wait.observe(std::chrono::duration_cast<std::chrono::microseconds>(
                           telemetry::trace_now() - task.enqueued)
                           .count());
#endif
    task.fn();
  }
}

}  // namespace fastpr
