// Pooled packet-buffer arena for the repair data plane.
//
// Every data packet the testbed moves used to heap-allocate (and zero)
// a fresh payload vector; at 256 KiB per packet and thousands of
// packets per repair that allocation traffic dominates the data-plane
// CPU that is not GF arithmetic. BufferPool keeps freed buffers on
// power-of-two "shelves" and hands them back on the next acquire, so a
// steady-state transfer recycles a handful of buffers instead of
// touching the allocator per packet.
//
// PooledBuffer is the RAII handle: move-only, returns its storage to
// the owning pool on destruction. The backing storage is always sized
// to its capacity class and a logical length is tracked separately, so
// acquire() never memsets or resizes — the producer overwrites the
// bytes it uses and consumers only see size() of them.
//
// The pool core is held by shared_ptr from both the pool object and
// every live handle, so buffers may safely outlive the pool (they then
// free instead of recycling). All operations are thread-safe; hit and
// miss counters let tests assert that a steady-state path allocates
// nothing per packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace fastpr {

class BufferPool;

/// Move-only handle over pool-owned bytes. Default-constructed and
/// moved-from handles are empty (size() == 0, data() == nullptr).
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&& other) noexcept;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer();

  uint8_t* data() { return storage_.data(); }
  const uint8_t* data() const { return storage_.data(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t& operator[](size_t i) { return storage_[i]; }
  const uint8_t& operator[](size_t i) const { return storage_[i]; }

  /// Pointer iterators so serialize()/std::equal-style code works.
  uint8_t* begin() { return storage_.data(); }
  uint8_t* end() { return storage_.data() + size_; }
  const uint8_t* begin() const { return storage_.data(); }
  const uint8_t* end() const { return storage_.data() + size_; }

  std::span<uint8_t> span() { return {storage_.data(), size_}; }
  std::span<const uint8_t> span() const { return {storage_.data(), size_}; }

  /// Vector-style fills; acquire storage from the global pool when the
  /// handle has none (convenience for tests and message construction).
  void assign(const uint8_t* src, size_t len);
  void assign(size_t count, uint8_t value);
  PooledBuffer& operator=(std::initializer_list<uint8_t> bytes);

  /// Sets size() to len leaving the contents unspecified — the receive
  /// staging path, where the producer overwrites every byte. Reuses the
  /// current storage when it fits; otherwise re-acquires from the pool.
  void resize_uninitialized(size_t len);

  /// Deep copy (storage drawn from the same pool as the source, or the
  /// global pool for unpooled handles).
  PooledBuffer clone() const;

  /// Returns the storage to its pool and leaves the handle empty.
  void release();

  /// Byte-wise equality over the logical contents.
  friend bool operator==(const PooledBuffer& a, const PooledBuffer& b);

 private:
  friend class BufferPool;

  std::vector<uint8_t> storage_;  // always capacity-class sized
  size_t size_ = 0;               // logical length <= storage_.size()
  std::shared_ptr<BufferPool> home_;  // null: plain heap storage
};

bool operator==(const PooledBuffer& a, const PooledBuffer& b);
bool operator==(const PooledBuffer& a, const std::vector<uint8_t>& b);
inline bool operator==(const std::vector<uint8_t>& a, const PooledBuffer& b) {
  return b == a;
}

/// Thread-safe free-list arena. Construct directly for an isolated pool
/// (tests), or use BufferPool::global() — the process-wide arena the
/// data plane shares so a buffer acquired by a sending agent is
/// recycled after the receiving agent drops it.
class BufferPool : public std::enable_shared_from_this<BufferPool> {
 public:
  struct Stats {
    int64_t hits = 0;      // acquires served from a shelf
    int64_t misses = 0;    // acquires that had to allocate
    int64_t recycled = 0;  // buffers returned to a shelf
    int64_t dropped = 0;   // returns rejected by a full shelf (freed)
  };

  /// At most `max_shelf_buffers` cached buffers per capacity class;
  /// further returns free their storage instead of shelving it.
  static std::shared_ptr<BufferPool> create(size_t max_shelf_buffers = 64);

  /// Process-wide pool used by Message payloads and the transports.
  static const std::shared_ptr<BufferPool>& global();

  /// A buffer with size() == len and unspecified contents.
  PooledBuffer acquire(size_t len);

  Stats stats() const FASTPR_EXCLUDES(mutex_);

  /// Frees every shelved buffer (cached memory, not live handles).
  void trim() FASTPR_EXCLUDES(mutex_);

 private:
  friend class PooledBuffer;

  explicit BufferPool(size_t max_shelf_buffers);

  /// Capacity classes are powers of two from 2^kMinShelf (512 B) to
  /// 2^kMaxShelf (256 MiB, one full testbed frame above any packet).
  static constexpr int kMinShelf = 9;
  static constexpr int kMaxShelf = 28;

  static int shelf_for(size_t len);

  void put_back(std::vector<uint8_t>&& storage) FASTPR_EXCLUDES(mutex_);

  const size_t max_shelf_buffers_;
  mutable Mutex mutex_{lock_order::kUtilBufferPool};
  std::vector<std::vector<uint8_t>> shelves_[kMaxShelf - kMinShelf + 1]
      FASTPR_GUARDED_BY(mutex_);
  Stats stats_ FASTPR_GUARDED_BY(mutex_);
};

}  // namespace fastpr
