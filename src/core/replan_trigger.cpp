#include "core/replan_trigger.h"

#include "util/check.h"
#include "util/logging.h"

namespace fastpr::core {

namespace {

BandwidthReplanOptions validated(const BandwidthReplanOptions& o) {
  FASTPR_CHECK(o.degrade_ratio > 0 && o.degrade_ratio < 1);
  FASTPR_CHECK_MSG(o.rearm_ratio > o.degrade_ratio,
                   "rearm_ratio must exceed degrade_ratio or the trigger "
                   "re-arms inside the degraded band");
  FASTPR_CHECK(o.min_breach_rounds >= 1);
  FASTPR_CHECK(o.max_replans >= 0);
  return o;
}

}  // namespace

BandwidthReplanTrigger::BandwidthReplanTrigger(
    const BandwidthReplanOptions& options)
    : options_(validated(options)) {}

bool BandwidthReplanTrigger::feed(int64_t epoch, double ratio) {
  MutexLock lock(mutex_);
  if (disabled_ || !options_.enabled) return false;
  if (epoch <= last_epoch_) return false;  // stale-epoch sample
  last_epoch_ = epoch;
  ++samples_;
  FASTPR_CHECK_MSG(ratio >= 0, "drift ratio must be non-negative");

  if (cooldown_) {
    if (ratio >= options_.rearm_ratio) cooldown_ = false;
    return false;
  }
  if (ratio >= options_.degrade_ratio) {
    // A single healthy round resets the streak — breaches must be
    // consecutive to fire (no replan thrash on noisy estimates).
    breach_streak_ = 0;
    return false;
  }
  ++breaches_;
  if (++breach_streak_ < options_.min_breach_rounds) return false;
  if (replans_ >= options_.max_replans) return false;
  ++replans_;
  breach_streak_ = 0;
  cooldown_ = true;
  LOG_INFO("bandwidth replan trigger fired: epoch=" << epoch << " ratio="
                                                    << ratio);
  return true;
}

void BandwidthReplanTrigger::disable() {
  MutexLock lock(mutex_);
  disabled_ = true;
}

bool BandwidthReplanTrigger::enabled() const {
  MutexLock lock(mutex_);
  return options_.enabled && !disabled_;
}

BandwidthReplanStats BandwidthReplanTrigger::stats() const {
  MutexLock lock(mutex_);
  return BandwidthReplanStats{samples_, breaches_, replans_};
}

}  // namespace fastpr::core
