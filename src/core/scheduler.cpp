#include "core/scheduler.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/check.h"

namespace fastpr::core {

RepairStrategy resolve_strategy(StrategyChoice choice,
                                const CostModel& model, int cr) {
  switch (choice) {
    case StrategyChoice::kFanIn: return RepairStrategy::kFanIn;
    case StrategyChoice::kChain: return RepairStrategy::kChain;
    case StrategyChoice::kAuto:
      return model.choose_strategy(
          static_cast<double>(std::max(1, cr)));
  }
  return RepairStrategy::kFanIn;
}

std::vector<ScheduledRound> schedule_repair(
    std::vector<std::vector<cluster::ChunkRef>> recon_sets,
    const CostModel& model, const SchedulerOptions& options) {
  std::vector<ScheduledRound> rounds;
  if (recon_sets.empty()) return rounds;
  for (const auto& set : recon_sets) FASTPR_CHECK(!set.empty());

  // Line 1: sort by size, descending (stable for determinism).
  std::stable_sort(recon_sets.begin(), recon_sets.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() > b.size();
                   });

  // Line 2: l points at the largest unscheduled set, u at the smallest.
  size_t l = 0;
  size_t u = recon_sets.size() - 1;

  for (;;) {
    ScheduledRound round;
    round.reconstruct = recon_sets[l];
    const int cr = static_cast<int>(round.reconstruct.size());
    round.strategy = resolve_strategy(options.strategy, model, cr);
    int cm = options.fixed_migration_quota >= 0
                 ? options.fixed_migration_quota
                 : model.migration_quota(cr, round.strategy);
    if (options.max_round_repairs > 0) {
      // Keep cr + cm within the destination-matching guarantee.
      cm = std::min(cm, std::max(0, options.max_round_repairs - cr));
    }

    // Chunks remaining in sets l+1..u.
    size_t remaining = 0;
    for (size_t i = l + 1; i <= u && u >= l + 1; ++i) {
      remaining += recon_sets[i].size();
    }

    if (remaining <= static_cast<size_t>(cm)) {
      // Lines 5–8: everything left fits in this round's migration quota.
      for (size_t i = l + 1; i <= u && u >= l + 1; ++i) {
        for (auto c : recon_sets[i]) round.migrate.push_back(c);
      }
      rounds.push_back(std::move(round));
      break;
    }

    // Line 9: largest x with sum_{i=x..u} |R_i| > cm. Scanning from the
    // smallest set upward, stop as soon as the suffix total exceeds cm.
    size_t suffix = 0;
    size_t x = u;
    for (size_t i = u; i > l; --i) {
      suffix += recon_sets[i].size();
      if (suffix > static_cast<size_t>(cm)) {
        x = i;
        break;
      }
    }

    // Lines 10–12: move all of R_{x+1..u} plus a top-up slice of R_x.
    size_t below_x = 0;
    for (size_t i = x + 1; i <= u && u >= x + 1; ++i) {
      below_x += recon_sets[i].size();
      for (auto c : recon_sets[i]) round.migrate.push_back(c);
    }
    const size_t slice = static_cast<size_t>(cm) - below_x;
    FASTPR_CHECK(slice < recon_sets[x].size());
    auto& rx = recon_sets[x];
    for (size_t t = 0; t < slice; ++t) {
      round.migrate.push_back(rx.back());
      rx.pop_back();
    }

    rounds.push_back(std::move(round));

    // Lines 13–14.
    l += 1;
    u = x;
    FASTPR_CHECK(l < recon_sets.size());
    if (l > u) break;  // defensive; the break above should fire first
  }

  return rounds;
}

std::vector<ScheduledRound> schedule_repair_multi(
    std::vector<std::vector<cluster::ChunkRef>> recon_sets,
    const CostModel& model,
    const std::function<cluster::NodeId(cluster::ChunkRef)>& owner_of,
    const std::vector<cluster::NodeId>& stf_batch,
    const SchedulerOptions& options) {
  FASTPR_CHECK(!stf_batch.empty());
  std::vector<ScheduledRound> rounds;
  if (recon_sets.empty()) return rounds;
  for (const auto& set : recon_sets) FASTPR_CHECK(!set.empty());

  while (!recon_sets.empty()) {
    // Line 1 generalized: the sets only ever shrink from the tail, so an
    // already-sorted sequence passes through unchanged (this keeps the
    // one-node batch byte-identical to schedule_repair, which sorts
    // exactly once).
    std::stable_sort(recon_sets.begin(), recon_sets.end(),
                     [](const auto& a, const auto& b) {
                       return a.size() > b.size();
                     });

    ScheduledRound round;
    round.reconstruct = recon_sets[0];
    const int cr = static_cast<int>(round.reconstruct.size());
    round.strategy = resolve_strategy(options.strategy, model, cr);

    // Per-STF migration quota (each disk drains independently) plus the
    // shared destination-capacity cap on the whole round.
    const int quota = options.fixed_migration_quota >= 0
                          ? options.fixed_migration_quota
                          : model.migration_quota(cr, round.strategy);
    std::unordered_map<cluster::NodeId, int> budget;
    for (cluster::NodeId s : stf_batch) budget[s] = quota;
    int total_left = options.max_round_repairs > 0
                         ? std::max(0, options.max_round_repairs - cr)
                         : std::numeric_limits<int>::max();

    // Mark migrations smallest-set-first, back to front — the suffix the
    // single-STF Algorithm 2 would slice — skipping chunks whose owner's
    // disk quota is already spent.
    std::vector<std::vector<char>> marked(recon_sets.size());
    std::vector<size_t> marked_count(recon_sets.size(), 0);
    for (size_t i = recon_sets.size(); i-- > 1 && total_left > 0;) {
      marked[i].assign(recon_sets[i].size(), 0);
      for (size_t p = recon_sets[i].size(); p-- > 0 && total_left > 0;) {
        auto it = budget.find(owner_of(recon_sets[i][p]));
        FASTPR_CHECK_MSG(it != budget.end(),
                         "chunk owner is not in the STF batch");
        if (it->second <= 0) continue;
        --it->second;
        --total_left;
        marked[i][p] = 1;
        ++marked_count[i];
      }
    }

    // Emit in the single-path order: fully migrated sets ascending,
    // forward; then partially migrated sets ascending, back to front.
    for (size_t i = 1; i < recon_sets.size(); ++i) {
      if (marked_count[i] != recon_sets[i].size()) continue;
      for (auto c : recon_sets[i]) round.migrate.push_back(c);
    }
    for (size_t i = 1; i < recon_sets.size(); ++i) {
      if (marked_count[i] == 0 || marked_count[i] == recon_sets[i].size()) {
        continue;
      }
      for (size_t p = recon_sets[i].size(); p-- > 0;) {
        if (marked[i][p]) round.migrate.push_back(recon_sets[i][p]);
      }
    }
    rounds.push_back(std::move(round));

    // Drop the reconstructed set and every migrated chunk.
    std::vector<std::vector<cluster::ChunkRef>> next;
    next.reserve(recon_sets.size());
    for (size_t i = 1; i < recon_sets.size(); ++i) {
      if (marked_count[i] == recon_sets[i].size()) continue;
      if (marked_count[i] == 0) {
        next.push_back(std::move(recon_sets[i]));
        continue;
      }
      std::vector<cluster::ChunkRef> kept;
      kept.reserve(recon_sets[i].size() - marked_count[i]);
      for (size_t p = 0; p < recon_sets[i].size(); ++p) {
        if (!marked[i][p]) kept.push_back(recon_sets[i][p]);
      }
      next.push_back(std::move(kept));
    }
    recon_sets.swap(next);
  }
  return rounds;
}

}  // namespace fastpr::core
