#include "core/scheduler.h"

#include <algorithm>

#include "util/check.h"

namespace fastpr::core {

std::vector<ScheduledRound> schedule_repair(
    std::vector<std::vector<cluster::ChunkRef>> recon_sets,
    const CostModel& model, const SchedulerOptions& options) {
  std::vector<ScheduledRound> rounds;
  if (recon_sets.empty()) return rounds;
  for (const auto& set : recon_sets) FASTPR_CHECK(!set.empty());

  // Line 1: sort by size, descending (stable for determinism).
  std::stable_sort(recon_sets.begin(), recon_sets.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() > b.size();
                   });

  // Line 2: l points at the largest unscheduled set, u at the smallest.
  size_t l = 0;
  size_t u = recon_sets.size() - 1;

  for (;;) {
    ScheduledRound round;
    round.reconstruct = recon_sets[l];
    const int cr = static_cast<int>(round.reconstruct.size());
    int cm = options.fixed_migration_quota >= 0
                 ? options.fixed_migration_quota
                 : model.migration_quota(cr);
    if (options.max_round_repairs > 0) {
      // Keep cr + cm within the destination-matching guarantee.
      cm = std::min(cm, std::max(0, options.max_round_repairs - cr));
    }

    // Chunks remaining in sets l+1..u.
    size_t remaining = 0;
    for (size_t i = l + 1; i <= u && u >= l + 1; ++i) {
      remaining += recon_sets[i].size();
    }

    if (remaining <= static_cast<size_t>(cm)) {
      // Lines 5–8: everything left fits in this round's migration quota.
      for (size_t i = l + 1; i <= u && u >= l + 1; ++i) {
        for (auto c : recon_sets[i]) round.migrate.push_back(c);
      }
      rounds.push_back(std::move(round));
      break;
    }

    // Line 9: largest x with sum_{i=x..u} |R_i| > cm. Scanning from the
    // smallest set upward, stop as soon as the suffix total exceeds cm.
    size_t suffix = 0;
    size_t x = u;
    for (size_t i = u; i > l; --i) {
      suffix += recon_sets[i].size();
      if (suffix > static_cast<size_t>(cm)) {
        x = i;
        break;
      }
    }

    // Lines 10–12: move all of R_{x+1..u} plus a top-up slice of R_x.
    size_t below_x = 0;
    for (size_t i = x + 1; i <= u && u >= x + 1; ++i) {
      below_x += recon_sets[i].size();
      for (auto c : recon_sets[i]) round.migrate.push_back(c);
    }
    const size_t slice = static_cast<size_t>(cm) - below_x;
    FASTPR_CHECK(slice < recon_sets[x].size());
    auto& rx = recon_sets[x];
    for (size_t t = 0; t < slice; ++t) {
      round.migrate.push_back(rx.back());
      rx.pop_back();
    }

    rounds.push_back(std::move(round));

    // Lines 13–14.
    l += 1;
    u = x;
    FASTPR_CHECK(l < recon_sets.size());
    if (l > u) break;  // defensive; the break above should fire first
  }

  return rounds;
}

}  // namespace fastpr::core
