// Mid-repair bandwidth replan trigger (DESIGN.md §11).
//
// The coordinator compares each round's measured per-link throughput
// (FlowMonitor EWMAs) against the rate the plan priced in, and feeds the
// worst measured/expected ratio here. When the ratio stays below the
// degrade threshold for enough consecutive rounds — hysteresis, so one
// noisy window never thrashes the plan — the trigger fires and the
// coordinator replans the remaining rounds around the degraded links
// (FastPrPlanner::plan_fastpr_remaining), the bandwidth-drift analog of
// PR 4's one-time reactive replan. After firing, the trigger stays in
// cooldown until the ratio recovers above the re-arm threshold, and a
// cap bounds total replans per run (each one re-runs Algorithms 1 + 2).
//
// Pure control logic with explicit epochs instead of a clock: feed()
// ignores ratios from epochs at or before the last one seen, so a
// stale end-of-round sample that raced a replan cannot re-fire it.
// Thread-safe: the coordinator is thread-confined today, but the
// trigger is shared with Testbed accessors in tests.
#pragma once

#include <cstdint>

#include "util/annotations.h"
#include "util/mutex.h"

namespace fastpr::core {

struct BandwidthReplanOptions {
  /// Master switch; disabled triggers never fire (the control arm of
  /// bench_topology's flapping scenario).
  bool enabled = false;
  /// Fire when worst-link measured/expected drops below this...
  double degrade_ratio = 0.5;
  /// ...for this many CONSECUTIVE rounds (hysteresis floor).
  int min_breach_rounds = 2;
  /// After firing, re-arm only once the ratio recovers above this
  /// (> degrade_ratio, else the trigger re-arms inside the degraded
  /// band and thrashes).
  double rearm_ratio = 0.8;
  /// Replans per run; each costs a full Algorithm 1 + 2 pass.
  int max_replans = 1;
};

struct BandwidthReplanStats {
  int64_t samples = 0;   // accepted (fresh-epoch) feeds
  int64_t breaches = 0;  // samples below degrade_ratio
  int replans = 0;       // times the trigger fired
};

class BandwidthReplanTrigger {
 public:
  explicit BandwidthReplanTrigger(const BandwidthReplanOptions& options);

  /// Folds one end-of-round observation: `epoch` is the round index (or
  /// any monotone counter), `ratio` the worst-link measured/expected.
  /// Returns true when the caller should replan NOW. Samples with epoch
  /// <= the last accepted one are dropped (stale after a replan spliced
  /// the round list). Never fires while disabled, exhausted, or in
  /// cooldown.
  bool feed(int64_t epoch, double ratio) FASTPR_EXCLUDES(mutex_);

  /// Permanently disarms the trigger (the run degraded to reactive
  /// repair — the plan being monitored no longer exists).
  void disable() FASTPR_EXCLUDES(mutex_);

  bool enabled() const FASTPR_EXCLUDES(mutex_);
  BandwidthReplanStats stats() const FASTPR_EXCLUDES(mutex_);

 private:
  const BandwidthReplanOptions options_;

  mutable Mutex mutex_{lock_order::kCoreReplanTrigger};
  bool disabled_ FASTPR_GUARDED_BY(mutex_) = false;
  bool cooldown_ FASTPR_GUARDED_BY(mutex_) = false;
  int breach_streak_ FASTPR_GUARDED_BY(mutex_) = 0;
  int64_t last_epoch_ FASTPR_GUARDED_BY(mutex_) = -1;
  int64_t samples_ FASTPR_GUARDED_BY(mutex_) = 0;
  int64_t breaches_ FASTPR_GUARDED_BY(mutex_) = 0;
  int replans_ FASTPR_GUARDED_BY(mutex_) = 0;
};

}  // namespace fastpr::core
