// Cluster-wide adaptive repair-bandwidth throttler (DESIGN.md §10).
//
// The coordinator owns one global repair budget and leases per-agent
// shares with TTLs, in the style of ytsaurus's distributed throttler:
// each tick re-leases every agent's share, sized by the foreground
// pressure that agent last reported (FlowMonitor EWMAs relayed over
// kPressureReport / kPong piggybacks), and the global budget ramps via
// AIMD against a foreground p99 SLO target. Leases that expire
// un-renewed — the agent is silent, crashed, or partitioned — return
// their share to the pool so one stuck agent cannot strand budget.
//
// Panic mode reproduces the paper's motivating trade-off: when a
// deadline (the predictor's remaining-lifetime estimate, or an explicit
// CLI bound) says the STF node will die before repair finishes at the
// current pace, the throttler deliberately breaches the SLO, logs the
// decision once, and pins the budget at the ceiling until the run ends.
//
// Pure control logic: no clock (callers pass `now_us` on one monotonic
// timebase — the coordinator uses telemetry::trace_now_us()), no
// transport (tick() returns the grants to send). That keeps every edge
// case unit-testable with synthetic time.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/types.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace fastpr::core {

struct ThrottlerOptions {
  /// Ceiling: the cluster-wide repair budget (bytes/s). Must be > 0.
  double total_bytes_per_sec = 0;
  /// AIMD never cuts the global budget below this; <= 0 defaults to
  /// total / 20 (repair always makes *some* progress — liveness).
  double floor_bytes_per_sec = 0;
  /// Foreground p99 SLO target (seconds). <= 0 disables AIMD even when
  /// `adaptive` is set (there is no target to compare against).
  double slo_p99_seconds = 0;
  /// false = fixed budget (initial_fraction of the ceiling, forever) —
  /// the "polite cap" baseline of bench_foreground.
  bool adaptive = true;
  /// Additive ramp per tick while under the SLO; <= 0 defaults to
  /// total / 20.
  double increase_bytes_per_sec = 0;
  /// Multiplicative cut on an SLO breach, in (0, 1).
  double decrease_factor = 0.5;
  /// Lease lifetime. An agent whose last pressure report is older than
  /// this is considered silent and its share returns to the pool; the
  /// coordinator should tick at ~ttl/3 so healthy leases renew well
  /// before expiring.
  int64_t lease_ttl_us = 200'000;
  /// Starting budget as a fraction of the ceiling.
  double initial_fraction = 0.5;
};

/// One per-agent lease, to be delivered as a kLeaseGrant message.
struct LeaseGrant {
  cluster::NodeId agent = cluster::kNoNode;
  uint64_t seq = 0;            // globally monotonic across all grants
  double bytes_per_sec = 0;    // the leased repair rate
  int64_t ttl_us = 0;
};

struct ThrottlerStats {
  bool panic = false;
  int64_t leases_granted = 0;
  int64_t leases_expired = 0;
  int64_t slo_breaches = 0;
  double budget_bytes_per_sec = 0;
};

class RepairThrottler {
 public:
  explicit RepairThrottler(const ThrottlerOptions& options);

  /// Arms the throttler for one repair run: `total_repair_bytes` is the
  /// estimated bytes still to send (drives the panic-mode finish-time
  /// estimate), `now_us` starts every agent's lease clock. The grant
  /// sequence number keeps rising across resets so a stale grant from a
  /// previous run can never be applied by an agent.
  void reset(int64_t now_us, double total_repair_bytes)
      FASTPR_EXCLUDES(mutex_);

  /// Registers an agent in the pool (idempotent).
  void add_agent(cluster::NodeId node) FASTPR_EXCLUDES(mutex_);

  /// Folds one foreground-pressure observation from `node`. `seq` is the
  /// highest grant sequence the agent has applied (stale reports — seq
  /// older than the latest grant minus one full re-lease — still renew
  /// the lease; the payload is what matters). Re-admits an expired
  /// agent.
  void report_pressure(cluster::NodeId node, uint64_t seq,
                       double p99_seconds, double fg_bytes_per_sec,
                       int64_t now_us) FASTPR_EXCLUDES(mutex_);

  /// Repair progress: `bytes_done` more repair bytes have landed.
  void on_progress(double bytes_done) FASTPR_EXCLUDES(mutex_);

  /// Re-estimates the outstanding repair bytes (after a replan, say).
  void set_remaining(double bytes) FASTPR_EXCLUDES(mutex_);

  /// Absolute deadline (same timebase as now_us) by which repair must
  /// finish — the predicted STF death. Enables panic mode.
  void set_deadline(int64_t deadline_us) FASTPR_EXCLUDES(mutex_);

  /// One throttle step: expires silent leases, runs the AIMD update
  /// against the freshest pressure reports, evaluates the panic
  /// predicate, and returns a fresh lease for every known agent.
  std::vector<LeaseGrant> tick(int64_t now_us) FASTPR_EXCLUDES(mutex_);

  int64_t lease_ttl_us() const { return options_.lease_ttl_us; }
  bool panic() const FASTPR_EXCLUDES(mutex_);
  double budget_bytes_per_sec() const FASTPR_EXCLUDES(mutex_);
  ThrottlerStats stats() const FASTPR_EXCLUDES(mutex_);

 private:
  struct AgentState {
    int64_t last_report_us = 0;
    uint64_t last_seq_granted = 0;
    double p99_seconds = 0;
    double fg_bytes_per_sec = 0;
    bool live = true;        // false once the lease expired un-renewed
    bool reported = false;   // any report since the last tick
  };

  /// Current finish-time estimate vs the deadline; flips panic_ (sticky
  /// for the rest of the run) and logs the decision once.
  void evaluate_panic_locked(int64_t now_us) FASTPR_REQUIRES(mutex_);

  const ThrottlerOptions options_;

  mutable Mutex mutex_{lock_order::kCoreThrottler};
  std::map<cluster::NodeId, AgentState> agents_ FASTPR_GUARDED_BY(mutex_);
  double budget_ FASTPR_GUARDED_BY(mutex_);  // bytes/s, in [floor, total]
  double bytes_remaining_ FASTPR_GUARDED_BY(mutex_) = 0;
  int64_t deadline_us_ FASTPR_GUARDED_BY(mutex_) = 0;  // 0 = none
  bool panic_ FASTPR_GUARDED_BY(mutex_) = false;
  uint64_t next_seq_ FASTPR_GUARDED_BY(mutex_) = 0;
  int64_t leases_granted_ FASTPR_GUARDED_BY(mutex_) = 0;
  int64_t leases_expired_ FASTPR_GUARDED_BY(mutex_) = 0;
  int64_t slo_breaches_ FASTPR_GUARDED_BY(mutex_) = 0;
};

}  // namespace fastpr::core
