#include "core/multi_stf.h"

#include <algorithm>
#include <unordered_set>

#include "core/placement.h"
#include "core/scheduler.h"
#include "telemetry/trace.h"
#include "util/check.h"

namespace fastpr::core {

using cluster::ChunkRef;
using cluster::NodeId;

namespace {

/// Spreads migration-only chunks over the scheduled rounds, respecting
/// the per-round repair cap (scattered destination feasibility); rounds
/// are appended when every existing one is full. Deterministic
/// round-robin so plans stay reproducible.
void distribute_forced_migrations(std::vector<ScheduledRound>& rounds,
                                  const std::vector<ChunkRef>& forced,
                                  int round_cap) {
  if (forced.empty()) return;
  if (rounds.empty()) rounds.emplace_back();
  size_t next = 0;
  for (ChunkRef chunk : forced) {
    size_t tried = 0;
    while (round_cap > 0 && tried < rounds.size()) {
      const auto& r = rounds[next % rounds.size()];
      if (static_cast<int>(r.reconstruct.size() + r.migrate.size()) <
          round_cap) {
        break;
      }
      ++next;
      ++tried;
    }
    if (round_cap > 0 && tried == rounds.size()) {
      rounds.emplace_back();
      next = rounds.size() - 1;
    }
    rounds[next % rounds.size()].migrate.push_back(chunk);
    ++next;
  }
}

}  // namespace

MultiStfPlanner::MultiStfPlanner(const cluster::StripeLayout& layout,
                                 const cluster::ClusterState& cluster,
                                 const PlannerOptions& options)
    : layout_(layout),
      cluster_(cluster),
      options_(options),
      batch_(cluster.stf_nodes()) {
  FASTPR_CHECK_MSG(!batch_.empty(), "no STF node flagged in the cluster");
  FASTPR_CHECK(options.k_repair >= 1);
  FASTPR_CHECK(options.chunk_bytes > 0);
  if (options.scenario == Scenario::kHotStandby) {
    FASTPR_CHECK_MSG(cluster.num_hot_standby() >= 1,
                     "hot-standby repair needs spare nodes");
    // A stripe may lose up to B chunks to the batch, and §IV-A demands
    // they land on B distinct spares — so a hot-standby batch can never
    // exceed the spare count (conceptually each spare replaces one
    // member).
    FASTPR_CHECK_MSG(
        static_cast<size_t>(cluster.num_hot_standby()) >= batch_.size(),
        "hot-standby batch of " << batch_.size() << " needs at least "
                                << batch_.size() << " spares, have "
                                << cluster.num_hot_standby());
  }
}

std::vector<NodeId> MultiStfPlanner::source_nodes() const {
  // Healthy storage nodes only — every batch member is flagged, so STF
  // nodes never serve as helpers for each other.
  return cluster_.healthy_storage_nodes();
}

std::vector<NodeId> MultiStfPlanner::dest_nodes() const {
  return options_.scenario == Scenario::kScattered
             ? cluster_.healthy_storage_nodes()
             : cluster_.hot_standby_nodes();
}

int MultiStfPlanner::scattered_round_capacity() const {
  // Hall bound per stripe across the whole plan: a stripe with b STF
  // chunks excludes its n-b surviving holders plus at most b-1
  // previously used destinations — n-1 total, same as single-STF.
  const int cap = static_cast<int>(cluster_.healthy_storage_nodes().size()) -
                  (layout_.chunks_per_stripe() - 1);
  FASTPR_CHECK_MSG(cap >= 1,
                   "cluster too small for scattered repair: need M - n >= 1");
  return cap;
}

ReconSetOptions MultiStfPlanner::effective_recon_options() const {
  ReconSetOptions opts = options_.recon;
  if (options_.scenario == Scenario::kScattered) {
    const int cap = scattered_round_capacity();
    opts.max_set_size =
        opts.max_set_size > 0 ? std::min(opts.max_set_size, cap) : cap;
  }
  if (opts.topology == nullptr) opts.topology = options_.topology;
  return opts;
}

void MultiStfPlanner::apply_topology(ModelParams& params) const {
  if (options_.topology == nullptr || options_.topology->is_flat()) return;
  // Same reasoning as FastPrPlanner::cost_model (DESIGN.md §11).
  params.oversubscription = options_.topology->oversubscription();
  params.cross_rack_helper_fraction = 1.0;
  params.cross_rack_migration_fraction =
      options_.scenario == Scenario::kHotStandby ? 1.0 : 0.0;
}

std::vector<ChunkRef> MultiStfPlanner::split_forced_migrations(
    std::vector<ChunkRef>& chunks) const {
  // A stripe can lose several chunks to the batch at once; when fewer
  // than k' healthy helpers survive, reconstruction is impossible and
  // the chunk MUST be migrated while its member disk is still alive
  // (batch of one never hits this — the single-STF pipeline's n-1 >= k'
  // assumption). Order-stable so the degenerate batch stays identical.
  std::unordered_set<NodeId> healthy;
  for (NodeId node : cluster_.healthy_storage_nodes()) healthy.insert(node);
  std::vector<ChunkRef> searchable;
  std::vector<ChunkRef> forced;
  searchable.reserve(chunks.size());
  for (ChunkRef chunk : chunks) {
    const auto& nodes = layout_.stripe_nodes(chunk.stripe);
    int helpers = 0;
    if (options_.code != nullptr) {
      for (int idx : options_.code->helper_candidates(chunk.index)) {
        helpers += healthy.count(nodes[static_cast<size_t>(idx)]) != 0;
      }
    } else {
      for (NodeId node : nodes) helpers += healthy.count(node) != 0;
    }
    const int fetch = options_.code != nullptr
                          ? options_.code->repair_fetch_count(chunk.index)
                          : options_.k_repair;
    (helpers >= fetch ? searchable : forced).push_back(chunk);
  }
  chunks.swap(searchable);
  return forced;
}

CostModel MultiStfPlanner::cost_model() const {
  ModelParams params;
  params.num_nodes = cluster_.num_storage_nodes();
  int total = 0;
  for (NodeId s : batch_) {
    total += static_cast<int>(layout_.chunks_on(s).size());
  }
  params.stf_chunks = std::max(1, total);
  params.chunk_bytes = options_.chunk_bytes;
  params.disk_bw = cluster_.bandwidth().disk_bytes_per_sec;
  params.net_bw = cluster_.bandwidth().net_bytes_per_sec;
  params.k_repair = options_.k_repair;
  params.batch = static_cast<int>(batch_.size());
  params.hot_standby = std::max(1, cluster_.num_hot_standby());
  params.scenario = options_.scenario;
  params.packet_bytes = options_.packet_bytes;
  params.chain_hop_overhead_seconds = options_.chain_hop_overhead_seconds;
  params.repair_bw_fraction = options_.repair_bw_fraction;
  apply_topology(params);
  return CostModel(params);
}

CostModel MultiStfPlanner::member_cost_model(NodeId stf) const {
  ModelParams params;
  params.num_nodes = cluster_.num_storage_nodes();
  params.stf_chunks =
      std::max(1, static_cast<int>(layout_.chunks_on(stf).size()));
  params.chunk_bytes = options_.chunk_bytes;
  params.disk_bw = cluster_.bandwidth().disk_bytes_per_sec;
  params.net_bw = cluster_.bandwidth().net_bytes_per_sec;
  params.k_repair = options_.k_repair;
  params.hot_standby = std::max(1, cluster_.num_hot_standby());
  params.scenario = options_.scenario;
  params.packet_bytes = options_.packet_bytes;
  params.chain_hop_overhead_seconds = options_.chain_hop_overhead_seconds;
  params.repair_bw_fraction = options_.repair_bw_fraction;
  apply_topology(params);
  return CostModel(params);
}

RepairPlan MultiStfPlanner::plan_fastpr() {
  FASTPR_TRACE_SPAN("planner.plan_multi_stf", "planner");
  const auto sources = source_nodes();
  const auto dests = dest_nodes();

  // Algorithm 1 over the union of the batch's chunks, member order.
  std::vector<ChunkRef> union_chunks;
  for (NodeId s : batch_) {
    const auto chunks = layout_.chunks_on(s);
    union_chunks.insert(union_chunks.end(), chunks.begin(), chunks.end());
  }
  recon_stats_ = {};
  const auto forced = split_forced_migrations(union_chunks);
  auto sets = find_reconstruction_sets_for(
      std::move(union_chunks), layout_, sources, options_.k_repair,
      effective_recon_options(), &recon_stats_, options_.code);

  SchedulerOptions sched = options_.sched;
  if (options_.scenario == Scenario::kScattered) {
    sched.max_round_repairs = scattered_round_capacity();
  }
  const auto owner_of = [this](ChunkRef chunk) {
    return layout_.node_of(chunk);
  };
  auto rounds = schedule_repair_multi(std::move(sets), cost_model(),
                                      owner_of, batch_, sched);
  distribute_forced_migrations(rounds, forced, sched.max_round_repairs);

  RepairPlan plan;
  plan.stf_node = batch_.front();
  plan.stf_nodes = batch_;
  PlacedOverlay placed;
  int standby_cursor = 0;
  for (const auto& round : rounds) {
    plan.rounds.push_back(assign_round_multi(
        layout_, batch_, sources, dests, options_.scenario,
        options_.k_repair, round, &standby_cursor, options_.code,
        options_.balance_destinations, &placed,
        options_.recon.helper_reads_per_node, options_.topology));
  }
  return plan;
}

RepairPlan MultiStfPlanner::plan_sequential() {
  FASTPR_TRACE_SPAN("planner.plan_multi_stf_sequential", "planner");
  const auto sources = source_nodes();
  const auto dests = dest_nodes();

  RepairPlan plan;
  plan.stf_node = batch_.front();
  plan.stf_nodes = batch_;
  PlacedOverlay placed;
  int standby_cursor = 0;
  recon_stats_ = {};
  for (NodeId stf : batch_) {
    auto member_chunks = layout_.chunks_on(stf);
    const auto forced = split_forced_migrations(member_chunks);
    auto sets = find_reconstruction_sets_for(
        std::move(member_chunks), layout_, sources, options_.k_repair,
        effective_recon_options(), &recon_stats_, options_.code);
    SchedulerOptions sched = options_.sched;
    if (options_.scenario == Scenario::kScattered) {
      sched.max_round_repairs = scattered_round_capacity();
    }
    auto rounds =
        schedule_repair(std::move(sets), member_cost_model(stf), sched);
    distribute_forced_migrations(rounds, forced, sched.max_round_repairs);
    for (const auto& round : rounds) {
      plan.rounds.push_back(assign_round_multi(
          layout_, batch_, sources, dests, options_.scenario,
          options_.k_repair, round, &standby_cursor, options_.code,
          options_.balance_destinations, &placed,
          options_.recon.helper_reads_per_node, options_.topology));
    }
  }
  return plan;
}

}  // namespace fastpr::core
