// §IV-D mitigation #2: "run Algorithm 1 for each possible STF node in
// advance and store the results when they are required".
//
// Algorithm 1 costs seconds-to-minutes for large |C| (Experiment B.5),
// which is dead time once a predictor flags a node. This cache
// precomputes the reconstruction sets for every candidate STF node in
// the background; when the flag arrives, the planner starts from the
// stored partition immediately. Entries are invalidated by the layout's
// version counter (any chunk movement changes the matching problem).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/recon_sets.h"
#include "util/mutex.h"

namespace fastpr::core {

class ReconSetCache {
 public:
  struct Options {
    int k_repair = 6;
    ReconSetOptions recon;
    const ec::ErasureCode* code = nullptr;
  };

  explicit ReconSetCache(const Options& options);

  /// Runs Algorithm 1 for `node` as the hypothetical STF (helpers =
  /// every healthy storage node except it) and stores the partition.
  /// Thread-safe: the sweep runs on a background thread while a flagged
  /// planner may already be calling lookup(). Algorithm 1 itself runs
  /// outside the lock; only the entry install is serialized.
  void precompute(const cluster::StripeLayout& layout,
                  const cluster::ClusterState& cluster, cluster::NodeId node)
      FASTPR_EXCLUDES(mutex_);

  /// Precomputes every healthy storage node (the background sweep).
  void precompute_all(const cluster::StripeLayout& layout,
                      const cluster::ClusterState& cluster)
      FASTPR_EXCLUDES(mutex_);

  /// Stored reconstruction sets for `node`, or nullopt when absent or
  /// stale (layout changed since precomputation).
  std::optional<std::vector<std::vector<cluster::ChunkRef>>> lookup(
      const cluster::StripeLayout& layout, cluster::NodeId node) const
      FASTPR_EXCLUDES(mutex_);

  /// Drops entries whose layout version is older than `layout`'s.
  void evict_stale(const cluster::StripeLayout& layout)
      FASTPR_EXCLUDES(mutex_);

  size_t size() const FASTPR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_.size();
  }

 private:
  struct Entry {
    uint64_t layout_version = 0;
    std::vector<std::vector<cluster::ChunkRef>> sets;
  };

  Options options_;
  mutable Mutex mutex_{lock_order::kReconCache};
  std::unordered_map<cluster::NodeId, Entry> entries_
      FASTPR_GUARDED_BY(mutex_);
};

}  // namespace fastpr::core
