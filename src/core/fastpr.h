// FastPR planner facade: cluster metadata + STF node in, RepairPlan out.
//
// Also builds the two baseline plans the paper evaluates against:
//  * migration-only — every chunk relocated off the STF node;
//  * reconstruction-only — every chunk decoded (this is the conventional
//    reactive repair, executed proactively).
#pragma once

#include <cstdint>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/cost_model.h"
#include "core/recon_sets.h"
#include "core/repair_plan.h"
#include "core/scheduler.h"

namespace fastpr::core {

/// Output of the mid-repair reactive replan (the STF node died during
/// plan execution).
struct ReactiveReplan {
  /// Reconstruction-only rounds for the chunks not yet handled.
  RepairPlan plan;
  /// Chunks whose stripes retain fewer than k live chunks — data loss.
  std::vector<cluster::ChunkRef> unrepairable;
  /// Chunks rebuilt through the code's degraded path (LRC global
  /// parities when the local group is damaged).
  int degraded_repairs = 0;
};

struct PlannerOptions {
  Scenario scenario = Scenario::kScattered;
  /// Helper chunks fetched per repaired chunk (k for RS, k/l for LRC).
  /// Feeds the cost model; also the matching fetch count when no `code`
  /// is given.
  int k_repair = 6;
  double chunk_bytes = 0;
  /// Wire packet size, needed by the chain strategy's round-time model
  /// (0 = unknown → StrategyChoice::kAuto resolves to fan-in).
  double packet_bytes = 0;
  /// Per-forward overhead of a chain hop (ModelParams field of the same
  /// name); keep equal to the testbed's charge so kAuto decides on the
  /// same numbers the execution will show.
  double chain_hop_overhead_seconds = 0;
  /// Fraction of the NIC rate repair may use (ModelParams field of the
  /// same name). Set to the throttler's budget fraction so migration
  /// quotas and round predictions match the execution's leased pace.
  double repair_bw_fraction = 1.0;
  /// Optional erasure code: when set, the matching honors the code's
  /// per-chunk helper counts and candidate sets (LRC locality). Must
  /// outlive the planner.
  const ec::ErasureCode* code = nullptr;
  /// Load-aware scattered destinations (min-cost matching on current
  /// chunk counts) instead of an arbitrary maximum matching.
  bool balance_destinations = false;
  /// Rack topology (DESIGN.md §11). When multi-rack, the cost model
  /// charges cross-rack transfers the oversubscription penalty, helper
  /// reads are rack-interleaved, and scattered placement turns
  /// rack-aware (failure-domain invariant + in-rack migrations +
  /// destination spreading). Null or single-rack: flat planning,
  /// bit-identical to the legacy path. Must outlive the planner.
  const net::Topology* topology = nullptr;
  ReconSetOptions recon;
  SchedulerOptions sched;
};

class FastPrPlanner {
 public:
  /// The STF node must already be flagged in `cluster`. Both references
  /// must outlive the planner.
  FastPrPlanner(const cluster::StripeLayout& layout,
                const cluster::ClusterState& cluster,
                const PlannerOptions& options);

  /// The coupled migration+reconstruction plan (Algorithms 1 and 2).
  RepairPlan plan_fastpr();

  /// Baseline: one reconstruction set per round, no migration.
  RepairPlan plan_reconstruction_only();

  /// Baseline: migrate everything, destinations spread for balance.
  RepairPlan plan_migration_only();

  /// Mid-repair degradation (DESIGN.md §7): the STF node died after
  /// `already_repaired` chunks were handled (repaired or abandoned);
  /// `failed` lists every other node declared dead during execution.
  /// Plans pure reactive reconstruction of the remaining STF chunks,
  /// drawing helpers and destinations only from nodes still alive.
  ReactiveReplan plan_reactive(
      const std::vector<cluster::ChunkRef>& already_repaired,
      const std::vector<cluster::NodeId>& failed);

  /// Mid-repair bandwidth replan (DESIGN.md §11): the STF node is still
  /// alive but measured link bandwidth drifted far from the model, so
  /// the remaining rounds are replanned from scratch. Re-runs Algorithm
  /// 1 + 2 over the chunks not in `already_repaired`, planning around
  /// the `deprioritized` nodes (the straggling-link endpoints)
  /// structurally: chunks that can reach k' helpers without them form
  /// their reconstruction sets over the reduced source list, so those
  /// rounds carry zero straggler reads by construction; chunks whose
  /// stripes need a straggler fall back to the full list with the
  /// stragglers ordered last in every adjacency. Never sacrifices
  /// repairability — only read placement.
  RepairPlan plan_fastpr_remaining(
      const std::vector<cluster::ChunkRef>& already_repaired,
      const std::vector<cluster::NodeId>& deprioritized);

  /// The §III analysis instantiated for this cluster (U = chunks on the
  /// STF node, M = storage-node count, bandwidths from the cluster).
  CostModel cost_model() const;

  /// §IV-D: seed the planner with precomputed reconstruction sets
  /// (e.g. from a ReconSetCache) instead of running Algorithm 1 now.
  /// The sets must exactly cover the STF node's chunks and respect the
  /// scattered destination capacity; both are checked.
  void use_reconstruction_sets(
      std::vector<std::vector<cluster::ChunkRef>> sets);

  /// Stats of the last find_reconstruction_sets run.
  const ReconSetStats& recon_stats() const { return recon_stats_; }

 private:
  std::vector<cluster::NodeId> source_nodes() const;
  std::vector<cluster::NodeId> dest_nodes() const;
  /// Largest per-round repair count for which a scattered destination
  /// matching is guaranteed (Hall): |dest| - (n-1).
  int scattered_round_capacity() const;

  ReconSetOptions effective_recon_options() const;

  /// Algorithm 1 output, computed once and shared by plan_fastpr and
  /// plan_reconstruction_only (both partition the same chunk set).
  const std::vector<std::vector<cluster::ChunkRef>>& recon_sets();

  const cluster::StripeLayout& layout_;
  const cluster::ClusterState& cluster_;
  PlannerOptions options_;
  cluster::NodeId stf_;
  ReconSetStats recon_stats_;
  std::vector<std::vector<cluster::ChunkRef>> cached_sets_;
  bool sets_ready_ = false;
};

}  // namespace fastpr::core
