// The paper's repair-time model (§III, Equations 1–6).
//
// Times are seconds; sizes bytes; bandwidths bytes/second. A repair
// operation decomposes into sequential read → transmit → write stages,
// coding cost and disk interference are neglected (the paper's stated
// simplifications). Both repair scenarios are covered, and the LRC
// extension substitutes k' = k/l and G' = (M-1)/k'.
#pragma once

#include <string>
#include <vector>

#include "net/topology.h"

namespace fastpr::core {

enum class Scenario {
  kScattered,   // repaired chunks spread over existing healthy nodes
  kHotStandby,  // repaired chunks written to h dedicated spare nodes
};

std::string to_string(Scenario s);

/// How one chunk is reconstructed from its k helpers.
enum class RepairStrategy {
  /// All k helper streams converge on the destination, which computes
  /// the fused dot once per packet index (the paper's §III model; the
  /// destination NIC serializes k chunks of traffic).
  kFanIn,
  /// Packet-level partial-sum chain (repair pipelining): helpers form a
  /// path h0 → h1 → … → h(k-1) → dest; each hop multiplies its own
  /// packet by its decode coefficient and XORs it into the partial sum
  /// received from the previous hop. Every link carries ONE chunk of
  /// traffic, so per-chunk time approaches the single-transfer bound.
  kChain,
};

/// Planner-facing strategy knob: fixed, or model-chosen per round.
enum class StrategyChoice { kFanIn, kChain, kAuto };

std::string to_string(RepairStrategy s);
std::string to_string(StrategyChoice s);

/// Inputs of the analysis. `k_repair` is the number of chunks fetched to
/// repair one chunk: k for RS(n,k); k/l for LRC (§III extension).
struct ModelParams {
  int num_nodes = 100;          // M (storage nodes incl. the STF nodes)
  int stf_chunks = 1000;        // U, chunks across all STF nodes
  double chunk_bytes = 0;      // c
  double disk_bw = 0;          // bd, bytes/s
  double net_bw = 0;           // bn, bytes/s
  int k_repair = 6;             // k (or k' for LRC; d for MSR)
  /// Number of STF nodes repaired concurrently (DESIGN.md §8). The
  /// multi-STF closed forms degenerate exactly to Equations 1–6 at 1:
  /// G = (M-B)/k parallel groups, B independent migration streams.
  int batch = 1;
  /// Fraction of a chunk each helper ships. 1.0 for RS and LRC; MSR
  /// codes (§II-A) read d = k_repair helpers but each sends only
  /// 1/(d-k+1) of a chunk, e.g. 0.25 for MSR(n=14, k=10, d=13).
  double helper_bytes_fraction = 1.0;
  int hot_standby = 3;          // h (hot-standby scenario only)
  Scenario scenario = Scenario::kScattered;
  /// Wire packet size p used by the chain strategy's pipelined transfer
  /// (0 = unknown → tr_chain unavailable, choose_strategy stays fan-in).
  double packet_bytes = 0;
  /// Per-hop, per-packet store-and-forward cost o of a chain forward
  /// (receive → fuse → re-send: syscalls, interrupts, cache traffic).
  /// Fan-in helpers stream sequentially and do not pay it, which is why
  /// chains lose at small packet sizes — the fan-in/chain crossover.
  /// The testbed charges the same constant on every chain forward
  /// (InprocOptions.chain_hop_overhead_seconds) so measurement and
  /// model agree; see bench_pipelining.
  double chain_hop_overhead_seconds = 0;
  /// Fraction of bn the repair traffic is allowed to use (DESIGN.md
  /// §10): under SLO-aware throttling, repair sees only its leased
  /// share of each NIC while foreground keeps the rest. Scales every
  /// network term; disk terms are unscaled (the throttler gates sends,
  /// not reads/writes). 1.0 = unthrottled, exactly Equations 1–6.
  double repair_bw_fraction = 1.0;
  /// Cross-rack oversubscription factor f of the topology (DESIGN.md
  /// §11): a transfer crossing racks sees bn / f under the
  /// saturated-uplink worst case the closed forms assume. Set via
  /// net::Oversub at configuration boundaries. With the default 1.0
  /// (or both cross-rack fractions 0) every term reduces exactly to
  /// Equations 1–6.
  double oversubscription = net::Oversub(1.0);
  /// Fraction of helper (reconstruction-fetch) traffic that crosses
  /// racks. Rack-disjoint placement pins this at 1.0 — every helper of
  /// a stripe lives in a different failure domain than the repaired
  /// chunk's destination; 0.0 (default) is the flat network.
  double cross_rack_helper_fraction = 0.0;
  /// Fraction of migration traffic that crosses racks. Rack-aware
  /// placement prefers an in-rack destination for migrations (the
  /// stripe's rack occupancy is unchanged by an in-rack move), driving
  /// this to 0; flat planning on R racks of m nodes sees roughly
  /// (M - m) / (M - 1).
  double cross_rack_migration_fraction = 0.0;
};

class CostModel {
 public:
  explicit CostModel(const ModelParams& params);

  const ModelParams& params() const { return params_; }

  /// Eq. (4): migrate one chunk = read + transmit + write.
  double tm() const;

  /// Reconstruction time of a round repairing `g` chunks in parallel.
  /// Scattered (Eq. 5) is independent of g; hot-standby (Eq. 6) funnels
  /// g·k transmissions and g writes into the h spares.
  double tr(double g) const;

  /// Chain (repair-pipelining) reconstruction time of a round of g
  /// chunks: read + pipelined transfer + write, where the transfer is
  /// the single-transfer bound c/bn plus (k-1) per-hop packet latencies
  /// of pipeline fill plus the per-forward overhead o on each of the
  /// N + k - 1 slots (N = ceil(c/p)). Hot-standby funnels g/h chains
  /// and g/h writes into each spare. Requires packet_bytes > 0. Chains
  /// forward full-size partial sums, so helper_bytes_fraction does not
  /// apply (MSR sub-chunk savings are a fan-in property).
  double tr_chain(double g) const;

  /// tr under a chosen strategy.
  double tr(double g, RepairStrategy strategy) const;

  /// The faster strategy for a round of g chunks (fan-in when
  /// packet_bytes is unset). This is what StrategyChoice::kAuto
  /// resolves to in Algorithm 2.
  RepairStrategy choose_strategy(double g) const;

  /// The analysis' parallelism bound G = (M-B)/k (continuous, as §III
  /// assumes the maximum number of non-overlapping groups exists). B is
  /// the STF batch size, so this is Eq. (1)'s (M-1)/k at batch 1.
  double max_parallel_groups() const;

  /// Eq. (1): total time when x chunks migrate (split evenly over the B
  /// STF disks) and U-x reconstruct, both streams running in parallel
  /// (g groups per reconstruction round).
  double total_time(double x, double g) const;

  /// Optimal migration share x* = U·B·tr / (G·tm + B·tr) at g = G
  /// (Eq. 2's x* = U·tr/(G·tm + tr) at batch 1).
  double optimal_migration_chunks() const;

  /// Eq. (2): minimum predictive repair time T_P. Multi-STF closed form
  /// T_P = U·tr·tm / (G·tm + B·tr); exactly Eq. (2) at batch 1.
  double predictive_time() const;

  /// Eq. (3): reactive (reconstruction-only) repair time T_R = U·tr/G.
  double reactive_time() const;

  /// Migration-only repair time U·tm/B (each STF node drains its own
  /// disk; U·tm at batch 1).
  double migration_only_time() const;

  /// Per-chunk variants (what every paper figure plots).
  double predictive_time_per_chunk() const;
  double reactive_time_per_chunk() const;
  double migration_only_time_per_chunk() const;

  /// Scheduler hook (§IV-C): chunks to migrate during one reconstruction
  /// round of cr chunks, cm = tr(cr)/tm, floored to whole chunks. The
  /// strategy overload uses the chosen strategy's tr — a faster chain
  /// round leaves less time to migrate alongside it.
  int migration_quota(int cr) const;
  int migration_quota(int cr, RepairStrategy strategy) const;

  /// Modelled wall time of one executed round repairing cr chunks by
  /// reconstruction while cm migrate concurrently: max(tr(cr), cm·tm).
  /// This is what telemetry::PredictedRound diffs measured rounds
  /// against (DESIGN.md §5c).
  double round_time(int cr, int cm) const;
  double round_time(int cr, int cm, RepairStrategy strategy) const;

  /// Multi-STF round time (DESIGN.md §8): the B migration streams run on
  /// independent disks, so the round ends when the slowest stream and
  /// the reconstruction both finish — max(tr(cr), max_s cm_s·tm).
  /// Equals round_time(cr, cm_per_stf[0]) for a single-element vector.
  double round_time_multi(int cr, const std::vector<int>& cm_per_stf) const;
  double round_time_multi(int cr, const std::vector<int>& cm_per_stf,
                          RepairStrategy strategy) const;

 private:
  /// bn as repair actually experiences it: net_bw × repair_bw_fraction.
  double repair_net_bw() const;

  /// Cross-rack multipliers on network terms (DESIGN.md §11):
  /// 1 + (f - 1) · cross_rack_fraction, exactly 1.0 on a flat network.
  double helper_penalty() const;
  double migration_penalty() const;

  ModelParams params_;
};

}  // namespace fastpr::core
