#include "core/reactive.h"

#include <algorithm>
#include <unordered_set>

#include "core/placement.h"
#include "util/check.h"

namespace fastpr::core {

using cluster::ChunkRef;
using cluster::NodeId;

ReactivePlanner::ReactivePlanner(const cluster::StripeLayout& layout,
                                 const cluster::ClusterState& cluster,
                                 const ReactiveOptions& options)
    : layout_(layout), cluster_(cluster), options_(options) {
  FASTPR_CHECK(options.k_repair >= 1);
  FASTPR_CHECK(options.chunk_bytes > 0);
}

ReactiveResult ReactivePlanner::plan(const std::vector<NodeId>& failed) {
  FASTPR_CHECK(!failed.empty());
  std::vector<ChunkRef> lost;
  for (NodeId node : failed) {
    for (ChunkRef chunk : layout_.chunks_on(node)) lost.push_back(chunk);
  }
  return plan_chunks(lost, failed);
}

ReactiveResult ReactivePlanner::plan_chunks(
    const std::vector<ChunkRef>& lost, const std::vector<NodeId>& dead) {
  FASTPR_CHECK(!dead.empty());
  std::unordered_set<NodeId> dead_set(dead.begin(), dead.end());

  // Sources: healthy storage nodes that did not die. Destinations get
  // the same filter — a dead hot-standby spare cannot absorb chunks.
  std::vector<NodeId> healthy;
  for (NodeId n : cluster_.healthy_storage_nodes()) {
    if (dead_set.count(n) == 0) healthy.push_back(n);
  }
  std::unordered_set<NodeId> healthy_set(healthy.begin(), healthy.end());
  std::vector<NodeId> dests;
  if (options_.scenario == Scenario::kScattered) {
    dests = healthy;
  } else {
    for (NodeId n : cluster_.hot_standby_nodes()) {
      if (dead_set.count(n) == 0) dests.push_back(n);
    }
  }

  ReactiveResult result;
  result.plan.stf_node = dead.front();  // representative id for reports

  // Classify every lost chunk.
  std::vector<ChunkRef> matchable;
  struct Degraded {
    ChunkRef chunk;
    std::vector<int> helpers;  // stripe indices
  };
  std::vector<Degraded> degraded;

  for (ChunkRef chunk : lost) {
    const auto& nodes = layout_.stripe_nodes(chunk.stripe);

    // Availability by stripe index.
    std::vector<bool> available(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      available[i] = healthy_set.count(nodes[i]) != 0;
    }

    // Preferred candidates that survived.
    int surviving_candidates = 0;
    if (options_.code != nullptr) {
      for (int idx : options_.code->helper_candidates(chunk.index)) {
        if (available[static_cast<size_t>(idx)]) ++surviving_candidates;
      }
    } else {
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (static_cast<int>(i) != chunk.index && available[i]) {
          ++surviving_candidates;
        }
      }
    }
    const int needed = options_.code != nullptr
                           ? options_.code->repair_fetch_count(chunk.index)
                           : options_.k_repair;

    if (surviving_candidates >= needed) {
      matchable.push_back(chunk);
      continue;
    }
    // Degraded path: let the code pick any decodable helper set
    // (LRC rebuilds through global parities when a local group is
    // damaged). Unrecoverable when even that fails.
    if (options_.code != nullptr) {
      try {
        degraded.push_back(Degraded{
            chunk, options_.code->repair_helpers(chunk.index, available)});
        continue;
      } catch (const CheckFailure&) {
        // fall through to unrecoverable
      }
    }
    result.unrecoverable.push_back(chunk);
  }

  // Matched chunks: partition into reconstruction sets, one round each.
  ReconSetOptions recon = options_.recon;
  if (options_.scenario == Scenario::kScattered) {
    const int cap = static_cast<int>(dests.size()) -
                    (layout_.chunks_per_stripe() - 1);
    FASTPR_CHECK_MSG(cap >= 1, "cluster too small for scattered repair");
    recon.max_set_size =
        recon.max_set_size > 0 ? std::min(recon.max_set_size, cap) : cap;
  }
  const auto sets = find_reconstruction_sets_for(
      matchable, layout_, healthy, options_.k_repair, recon, nullptr,
      options_.code);

  int standby_cursor = 0;
  for (const auto& set : sets) {
    ScheduledRound round;
    round.reconstruct = set;
    result.plan.rounds.push_back(
        assign_round(layout_, cluster::kNoNode, healthy, dests,
                     options_.scenario, options_.k_repair, round,
                     &standby_cursor, options_.code));
  }

  // Degraded chunks: one dedicated round each (their helper sets are
  // hand-picked by the code and may not fit the matching's candidate
  // structure).
  for (const auto& d : degraded) {
    ++result.degraded_repairs;
    ReconstructionTask task;
    task.chunk = d.chunk;
    const auto& nodes = layout_.stripe_nodes(d.chunk.stripe);
    for (int idx : d.helpers) {
      task.sources.push_back(SourceRead{
          nodes[static_cast<size_t>(idx)], ChunkRef{d.chunk.stripe, idx}});
    }
    // Destination: least-loaded eligible node (scattered) or round-robin
    // spare.
    if (options_.scenario == Scenario::kHotStandby) {
      FASTPR_CHECK(!dests.empty());
      task.dst = dests[static_cast<size_t>(standby_cursor++) %
                       dests.size()];
    } else {
      NodeId best = cluster::kNoNode;
      for (NodeId n : dests) {
        if (layout_.stripe_uses_node(d.chunk.stripe, n)) continue;
        if (best == cluster::kNoNode ||
            layout_.load(n) < layout_.load(best)) {
          best = n;
        }
      }
      FASTPR_CHECK_MSG(best != cluster::kNoNode,
                       "no destination for degraded repair");
      task.dst = best;
    }
    RepairRound round;
    round.reconstructions.push_back(std::move(task));
    result.plan.rounds.push_back(std::move(round));
  }
  return result;
}

void validate_reactive_plan(const ReactiveResult& result,
                            const cluster::StripeLayout& layout,
                            const cluster::ClusterState& cluster,
                            const std::vector<NodeId>& failed) {
  std::unordered_set<NodeId> failed_set(failed.begin(), failed.end());

  std::unordered_set<ChunkRef, cluster::ChunkRefHash> expected;
  for (NodeId node : failed) {
    for (ChunkRef c : layout.chunks_on(node)) expected.insert(c);
  }
  for (ChunkRef c : result.unrecoverable) {
    FASTPR_CHECK_MSG(expected.erase(c) == 1,
                     "unrecoverable chunk was not actually lost");
  }

  std::unordered_set<ChunkRef, cluster::ChunkRefHash> seen;
  for (const auto& round : result.plan.rounds) {
    FASTPR_CHECK_MSG(round.migrations.empty(),
                     "reactive repair cannot migrate from dead nodes");
    std::unordered_set<NodeId> round_sources;
    std::unordered_set<NodeId> round_dests;
    for (const auto& task : round.reconstructions) {
      FASTPR_CHECK_MSG(failed_set.count(layout.node_of(task.chunk)) == 1,
                       "repaired chunk was not lost");
      FASTPR_CHECK_MSG(seen.insert(task.chunk).second,
                       "chunk repaired twice");
      FASTPR_CHECK(!task.sources.empty());
      for (const auto& src : task.sources) {
        FASTPR_CHECK_MSG(failed_set.count(src.node) == 0,
                         "helper read from a failed node");
        FASTPR_CHECK(cluster.health(src.node) ==
                     cluster::NodeHealth::kHealthy);
        FASTPR_CHECK(src.chunk.stripe == task.chunk.stripe);
        FASTPR_CHECK(src.chunk.index != task.chunk.index);
        FASTPR_CHECK(layout.node_of(src.chunk) == src.node);
        FASTPR_CHECK_MSG(round_sources.insert(src.node).second,
                         "node reads twice in one round");
      }
      FASTPR_CHECK(task.dst != cluster::kNoNode);
      FASTPR_CHECK(failed_set.count(task.dst) == 0);
      if (!cluster.is_hot_standby(task.dst)) {
        FASTPR_CHECK_MSG(
            !layout.stripe_uses_node(task.chunk.stripe, task.dst),
            "destination breaks stripe distinctness");
        FASTPR_CHECK_MSG(round_dests.insert(task.dst).second,
                         "scattered destination reused in round");
      }
    }
  }
  FASTPR_CHECK_MSG(seen.size() == expected.size(),
                   "plan repairs " << seen.size() << " of "
                                   << expected.size()
                                   << " recoverable chunks");
}

}  // namespace fastpr::core
