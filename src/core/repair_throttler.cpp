#include "core/repair_throttler.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace fastpr::core {

namespace {

ThrottlerOptions normalized(ThrottlerOptions o) {
  FASTPR_CHECK(o.total_bytes_per_sec > 0);
  FASTPR_CHECK(o.decrease_factor > 0 && o.decrease_factor < 1);
  FASTPR_CHECK(o.lease_ttl_us > 0);
  if (o.floor_bytes_per_sec <= 0) {
    o.floor_bytes_per_sec = o.total_bytes_per_sec / 20;
  }
  if (o.increase_bytes_per_sec <= 0) {
    o.increase_bytes_per_sec = o.total_bytes_per_sec / 20;
  }
  o.floor_bytes_per_sec =
      std::min(o.floor_bytes_per_sec, o.total_bytes_per_sec);
  o.initial_fraction = std::clamp(o.initial_fraction, 0.0, 1.0);
  return o;
}

}  // namespace

RepairThrottler::RepairThrottler(const ThrottlerOptions& options)
    : options_(normalized(options)),
      budget_(std::clamp(options_.initial_fraction *
                             options_.total_bytes_per_sec,
                         options_.floor_bytes_per_sec,
                         options_.total_bytes_per_sec)) {}

void RepairThrottler::reset(int64_t now_us, double total_repair_bytes) {
  MutexLock lock(mutex_);
  bytes_remaining_ = std::max(0.0, total_repair_bytes);
  budget_ = std::clamp(
      options_.initial_fraction * options_.total_bytes_per_sec,
      options_.floor_bytes_per_sec, options_.total_bytes_per_sec);
  panic_ = false;
  // next_seq_ deliberately NOT reset: grants stay globally monotonic so
  // an agent can never apply a stale lease from an earlier run.
  for (auto& [node, state] : agents_) {
    state = AgentState{};
    state.last_report_us = now_us;
  }
}

void RepairThrottler::add_agent(cluster::NodeId node) {
  MutexLock lock(mutex_);
  agents_.emplace(node, AgentState{});
}

void RepairThrottler::report_pressure(cluster::NodeId node, uint64_t seq,
                                      double p99_seconds,
                                      double fg_bytes_per_sec,
                                      int64_t now_us) {
  MutexLock lock(mutex_);
  const auto it = agents_.find(node);
  if (it == agents_.end()) return;  // unknown sender: ignore
  AgentState& state = it->second;
  (void)seq;  // any reply renews the lease; seq is diagnostic only here
  state.last_report_us = std::max(state.last_report_us, now_us);
  state.p99_seconds = p99_seconds;
  state.fg_bytes_per_sec = std::max(0.0, fg_bytes_per_sec);
  state.live = true;
  state.reported = true;
}

void RepairThrottler::on_progress(double bytes_done) {
  MutexLock lock(mutex_);
  bytes_remaining_ = std::max(0.0, bytes_remaining_ - bytes_done);
}

void RepairThrottler::set_remaining(double bytes) {
  MutexLock lock(mutex_);
  bytes_remaining_ = std::max(0.0, bytes);
}

void RepairThrottler::set_deadline(int64_t deadline_us) {
  MutexLock lock(mutex_);
  deadline_us_ = deadline_us;
}

void RepairThrottler::evaluate_panic_locked(int64_t now_us) {
  if (panic_ || deadline_us_ == 0 || bytes_remaining_ <= 0) return;
  // Finish-time estimate at the current pace cap. A budget at (or
  // below) the floor with a near deadline is exactly the paper's
  // motivating scenario: politeness would lose the race to the failure.
  const double finish_seconds = bytes_remaining_ / budget_;
  const int64_t finish_us =
      now_us + static_cast<int64_t>(finish_seconds * 1e6);
  if (finish_us <= deadline_us_) return;
  panic_ = true;
  budget_ = options_.total_bytes_per_sec;
  LOG_WARN("repair throttler PANIC: estimated finish in "
           << finish_seconds << "s misses the STF deadline by "
           << static_cast<double>(finish_us - deadline_us_) / 1e6
           << "s; deliberately breaching the foreground SLO and pinning "
              "repair at "
           << budget_ << " B/s");
}

std::vector<LeaseGrant> RepairThrottler::tick(int64_t now_us) {
  MutexLock lock(mutex_);

  // 1. Expire silent leases: their share returns to the pool below
  //    (expired agents drop out of the weight normalization).
  for (auto& [node, state] : agents_) {
    if (state.live && now_us - state.last_report_us > options_.lease_ttl_us) {
      state.live = false;
      ++leases_expired_;
      LOG_WARN("repair lease for agent " << node
                                         << " expired un-renewed; share "
                                            "returns to the pool");
    }
  }

  // 2. AIMD against the SLO, driven by the worst fresh p99 any live
  //    agent reported since the previous tick. No fresh report → hold.
  if (!panic_ && options_.adaptive && options_.slo_p99_seconds > 0) {
    double worst_p99 = 0;
    bool fresh = false;
    for (auto& [node, state] : agents_) {
      if (!state.live || !state.reported) continue;
      fresh = true;
      worst_p99 = std::max(worst_p99, state.p99_seconds);
    }
    if (fresh) {
      if (worst_p99 > options_.slo_p99_seconds) {
        ++slo_breaches_;
        budget_ = std::max(options_.floor_bytes_per_sec,
                           budget_ * options_.decrease_factor);
      } else {
        budget_ = std::min(options_.total_bytes_per_sec,
                           budget_ + options_.increase_bytes_per_sec);
      }
    }
  }
  for (auto& [node, state] : agents_) state.reported = false;

  // 3. Panic predicate (sticky; pins budget_ at the ceiling).
  evaluate_panic_locked(now_us);

  // 4. Re-lease: live agents split the budget weighted by foreground
  //    headroom — an agent whose foreground throughput runs hotter than
  //    the live average gets a proportionally smaller repair share.
  //    Expired agents still receive a minimal re-admission lease (their
  //    first pressure report revives them) but do not dilute the pool.
  std::vector<LeaseGrant> grants;
  if (agents_.empty()) return grants;
  int live_count = 0;
  double total_fg = 0;
  for (const auto& [node, state] : agents_) {
    if (!state.live) continue;
    ++live_count;
    total_fg += state.fg_bytes_per_sec;
  }
  const double mean_fg = live_count > 0 ? total_fg / live_count : 0;
  double weight_sum = 0;
  std::map<cluster::NodeId, double> weights;
  for (const auto& [node, state] : agents_) {
    if (!state.live) continue;
    // 1.0 at the mean load, → 0.5 at 2x the mean, → 2.0 when idle
    // while others are loaded. In panic mode pressure is ignored:
    // every live agent gets an equal slice of the full ceiling.
    const double relative =
        mean_fg > 0 ? state.fg_bytes_per_sec / mean_fg : 1.0;
    const double w = panic_ ? 1.0 : 2.0 / (1.0 + relative);
    weights[node] = w;
    weight_sum += w;
  }
  const double readmit_rate = std::max(
      1.0, options_.floor_bytes_per_sec /
               static_cast<double>(agents_.size()));
  for (auto& [node, state] : agents_) {
    LeaseGrant grant;
    grant.agent = node;
    grant.seq = ++next_seq_;
    grant.ttl_us = options_.lease_ttl_us;
    if (state.live && weight_sum > 0) {
      grant.bytes_per_sec = budget_ * weights[node] / weight_sum;
    } else {
      grant.bytes_per_sec = readmit_rate;
    }
    state.last_seq_granted = grant.seq;
    ++leases_granted_;
    grants.push_back(grant);
  }
  return grants;
}

bool RepairThrottler::panic() const {
  MutexLock lock(mutex_);
  return panic_;
}

double RepairThrottler::budget_bytes_per_sec() const {
  MutexLock lock(mutex_);
  return budget_;
}

ThrottlerStats RepairThrottler::stats() const {
  MutexLock lock(mutex_);
  ThrottlerStats s;
  s.panic = panic_;
  s.leases_granted = leases_granted_;
  s.leases_expired = leases_expired_;
  s.slo_breaches = slo_breaches_;
  s.budget_bytes_per_sec = budget_;
  return s;
}

}  // namespace fastpr::core
