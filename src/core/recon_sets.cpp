#include "core/recon_sets.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "matching/incremental_matching.h"
#include "util/check.h"

namespace fastpr::core {

namespace {

using cluster::ChunkRef;
using cluster::NodeId;
using cluster::StripeLayout;
using matching::IncrementalMatcher;

/// Shared context: node→left-index mapping and per-stripe adjacency.
class MatchContext {
 public:
  MatchContext(const StripeLayout& layout, NodeId stf,
               const std::vector<NodeId>& healthy, int k_repair,
               int max_set_size, int helper_reads_per_node,
               ReconSetStats* stats, const ec::ErasureCode* code,
               const net::Topology* topology = nullptr,
               const std::vector<NodeId>* deprioritized = nullptr)
      : layout_(layout),
        stf_(stf),
        k_(k_repair),
        max_set_size_(max_set_size),
        reads_(helper_reads_per_node),
        stats_(stats),
        code_(code),
        healthy_(healthy) {
    FASTPR_CHECK(helper_reads_per_node >= 1);
    left_of_node_.reserve(healthy.size());
    for (size_t i = 0; i < healthy.size(); ++i) {
      FASTPR_CHECK(stf == cluster::kNoNode || healthy[i] != stf);
      left_of_node_[healthy[i]] = static_cast<int>(i);
    }
    left_count_ = static_cast<int>(healthy.size());
    if (topology != nullptr && !topology->is_flat()) topology_ = topology;
    if (deprioritized != nullptr && !deprioritized->empty()) {
      deprioritized_.insert(deprioritized->begin(), deprioritized->end());
    }
  }

  int left_count() const { return left_count_; }
  int k() const { return k_; }

  /// Fresh matcher over the source nodes with the configured per-node
  /// helper-read capacity.
  IncrementalMatcher make_matcher() const {
    return IncrementalMatcher(left_count_, reads_);
  }

  /// Helper chunks this particular chunk's repair fetches.
  int fetch_count(ChunkRef chunk) const {
    return code_ != nullptr ? code_->repair_fetch_count(chunk.index) : k_;
  }

  /// Max chunks any reconstruction set can hold: floor(slots/k) where
  /// slots = sources × reads-per-node (the paper's floor((M-1)/k) at one
  /// read per node), further capped by the planner's
  /// destination-feasibility bound.
  int capacity() const {
    const int matching_cap = left_count_ * reads_ / k_;
    return max_set_size_ > 0 ? std::min(matching_cap, max_set_size_)
                             : matching_cap;
  }

  /// Adjacency of one helper slot for `chunk`: left indices of eligible
  /// nodes storing a VALID helper chunk (code-aware for LRC locality;
  /// excludes the STF node and nodes outside the healthy source list).
  const std::vector<int>& slot_adjacency(ChunkRef chunk) {
    auto it = chunk_adj_.find(chunk);
    if (it != chunk_adj_.end()) return it->second;
    const auto& nodes = layout_.stripe_nodes(chunk.stripe);
    std::vector<int> adj;
    auto consider = [&](NodeId node) {
      if (node == stf_) return;
      const auto li = left_of_node_.find(node);
      if (li != left_of_node_.end()) adj.push_back(li->second);
    };
    if (code_ != nullptr) {
      for (int idx : code_->helper_candidates(chunk.index)) {
        consider(nodes[static_cast<size_t>(idx)]);
      }
    } else {
      for (NodeId node : nodes) consider(node);
    }
    FASTPR_CHECK_MSG(static_cast<int>(adj.size()) >= fetch_count(chunk),
                     "stripe " << chunk.stripe
                               << " has fewer than k' healthy sources");
    reorder_preference(adj);
    return chunk_adj_.emplace(chunk, std::move(adj)).first->second;
  }

  /// The MATCH function: can `chunk` join the set held by `matcher`?
  /// On success the k slot vertices stay committed.
  bool try_match(IncrementalMatcher& matcher, ChunkRef chunk) {
    if (stats_ != nullptr) ++stats_->match_calls;
    const int k_this = fetch_count(chunk);
    // Arithmetic prune: no room for k' more helper-read slots.
    if (matcher.right_count() + k_this > matcher.total_capacity()) {
      return false;
    }
    // Chunk adjacency is cached in chunk_adj_ (stable storage), so the
    // matcher may hold it by pointer.
    return matcher.try_add_group(slot_adjacency(chunk), k_this);
  }

 private:
  /// Preference-only adjacency reorder (DESIGN.md §11): deprioritized
  /// helpers sink to the back; with a rack topology the rest are
  /// round-robin interleaved by rack so the matcher's earlier-first
  /// preference spreads reads over rack uplinks. No entry is ever added
  /// or dropped, and with neither knob set the list is left untouched —
  /// flat runs stay bit-identical.
  void reorder_preference(std::vector<int>& adj) const {
    if (topology_ == nullptr && deprioritized_.empty()) return;
    const auto avoided = [&](int left) {
      return deprioritized_.count(healthy_[static_cast<size_t>(left)]) > 0;
    };
    std::stable_partition(adj.begin(), adj.end(),
                          [&](int left) { return !avoided(left); });
    if (topology_ == nullptr) return;
    const auto preferred_end =
        std::find_if(adj.begin(), adj.end(), avoided);
    // Bucket the preferred prefix by rack (stable), then deal the
    // buckets out round-robin.
    std::map<int, std::vector<int>> by_rack;
    for (auto it = adj.begin(); it != preferred_end; ++it) {
      by_rack[topology_->rack_of(healthy_[static_cast<size_t>(*it)])]
          .push_back(*it);
    }
    auto out = adj.begin();
    size_t depth = 0;
    bool emitted = true;
    while (emitted) {
      emitted = false;
      for (auto& [rack, lefts] : by_rack) {
        (void)rack;
        if (depth < lefts.size()) {
          *out++ = lefts[depth];
          emitted = true;
        }
      }
      ++depth;
    }
  }

  const StripeLayout& layout_;
  NodeId stf_;
  int k_;
  int max_set_size_;
  int reads_;
  ReconSetStats* stats_;
  const ec::ErasureCode* code_;
  std::vector<NodeId> healthy_;
  const net::Topology* topology_ = nullptr;
  std::unordered_set<NodeId> deprioritized_;
  int left_count_ = 0;
  std::unordered_map<NodeId, int> left_of_node_;
  std::unordered_map<ChunkRef, std::vector<int>, cluster::ChunkRefHash>
      chunk_adj_;
};

/// The FIND function of Algorithm 1. Extracts one reconstruction set
/// from `chunks` (removing its members) and returns it.
std::vector<ChunkRef> find_one_set(MatchContext& ctx,
                                   std::vector<ChunkRef>& chunks,
                                   const ReconSetOptions& options,
                                   ReconSetStats* stats) {
  std::vector<ChunkRef> r;
  IncrementalMatcher matcher = ctx.make_matcher();

  // Lines 10–17: greedy initial set.
  {
    std::vector<ChunkRef> residual;
    residual.reserve(chunks.size());
    for (ChunkRef c : chunks) {
      if (static_cast<int>(r.size()) < ctx.capacity() &&
          ctx.try_match(matcher, c)) {
        r.push_back(c);
      } else {
        residual.push_back(c);
      }
    }
    chunks.swap(residual);
  }

  // Lines 18–38: swap optimization. Skipped when the set already has the
  // maximum conceivable size — no swap can grow it further.
  long swaps_committed = 0;
  while (options.optimize && !chunks.empty() &&
         static_cast<int>(r.size()) < ctx.capacity()) {
    const int max_gain = ctx.capacity() - static_cast<int>(r.size());
    size_t best_i = 0, best_j = 0;
    std::vector<ChunkRef> best_gain_set;

    for (size_t i = 0; i < r.size(); ++i) {
      // Base matcher over R − {Ci}, shared by every j (the probe for
      // R' = R ∪ {Cj} − {Ci} is a copy plus one group insertion).
      IncrementalMatcher base = ctx.make_matcher();
      bool feasible = true;
      for (size_t t = 0; t < r.size() && feasible; ++t) {
        if (t == i) continue;
        feasible = ctx.try_match(base, r[t]);
      }
      if (!feasible) continue;  // cannot happen for subsets, defensive
      for (size_t j = 0; j < chunks.size(); ++j) {
        IncrementalMatcher probe = base;
        if (!ctx.try_match(probe, chunks[j])) continue;

        // Grow R' with whatever residual chunks now fit (Lines 24–29).
        std::vector<ChunkRef> gain_set;
        for (size_t l = 0; l < chunks.size(); ++l) {
          if (l == j) continue;
          // |R'| = |R| + gains; stop once the set-size cap is reached.
          if (static_cast<int>(r.size() + gain_set.size()) >=
              ctx.capacity()) {
            break;
          }
          if (ctx.try_match(probe, chunks[l])) {
            gain_set.push_back(chunks[l]);
          }
        }
        if (gain_set.size() > best_gain_set.size()) {
          best_i = i;
          best_j = j;
          best_gain_set = std::move(gain_set);
          if (static_cast<int>(best_gain_set.size()) >= max_gain) break;
        }
      }
      if (static_cast<int>(best_gain_set.size()) >= max_gain) break;
    }

    if (best_gain_set.empty()) break;  // Line 36: no further expansion
    ++swaps_committed;
    if (stats != nullptr) ++stats->swaps;

    // Lines 33–35: commit the swap. Ci* returns to the residual pool,
    // Cj* and the gain set join R.
    const ChunkRef swapped_out = r[best_i];
    const ChunkRef swapped_in = chunks[best_j];
    r.erase(r.begin() + static_cast<ptrdiff_t>(best_i));
    r.push_back(swapped_in);
    for (ChunkRef c : best_gain_set) r.push_back(c);

    std::vector<ChunkRef> residual;
    residual.reserve(chunks.size());
    for (ChunkRef c : chunks) {
      if (c == swapped_in) continue;
      if (std::find(best_gain_set.begin(), best_gain_set.end(), c) !=
          best_gain_set.end()) {
        continue;
      }
      residual.push_back(c);
    }
    residual.push_back(swapped_out);
    chunks.swap(residual);

    // Rebuild the committed matcher to reflect the new R.
    matcher.reset();
    for (ChunkRef c : r) {
      FASTPR_CHECK_MSG(ctx.try_match(matcher, c),
                       "swap produced an inconsistent reconstruction set");
    }
  }

  // Maximality sweep: a committed swap replays the residual pool against
  // a different matching than the greedy pass saw, so a residual chunk
  // skipped in Lines 24–29 of the LAST accepted swap (the gain scan stops
  // at the cap or at chunks preceding the swap target) may still fit.
  // One pure-addition pass restores the greedy invariant — every residual
  // chunk provably fails MATCH(R ∪ {C}) — without touching the zero-swap
  // output, which already has it.
  if (swaps_committed > 0) {
    std::vector<ChunkRef> residual;
    residual.reserve(chunks.size());
    for (ChunkRef c : chunks) {
      if (static_cast<int>(r.size()) < ctx.capacity() &&
          ctx.try_match(matcher, c)) {
        r.push_back(c);
        if (stats != nullptr) ++stats->sweep_adds;
      } else {
        residual.push_back(c);
      }
    }
    chunks.swap(residual);
  }

  FASTPR_CHECK_MSG(!r.empty(),
                   "FIND produced an empty reconstruction set — some chunk "
                   "has no k healthy sources");
  return r;
}

}  // namespace

std::vector<std::vector<ChunkRef>> find_reconstruction_sets(
    const StripeLayout& layout, NodeId stf,
    const std::vector<NodeId>& healthy_sources, int k_repair,
    const ReconSetOptions& options, ReconSetStats* stats,
    const ec::ErasureCode* code) {
  return find_reconstruction_sets_for(layout.chunks_on(stf), layout,
                                      healthy_sources, k_repair, options,
                                      stats, code);
}

std::vector<std::vector<ChunkRef>> find_reconstruction_sets_for(
    std::vector<ChunkRef> all_chunks, const StripeLayout& layout,
    const std::vector<NodeId>& healthy_sources, int k_repair,
    const ReconSetOptions& options, ReconSetStats* stats,
    const ec::ErasureCode* code) {
  FASTPR_CHECK(k_repair >= 1);
  FASTPR_CHECK_MSG(static_cast<int>(healthy_sources.size()) >= k_repair,
                   "need at least k healthy source nodes");

  MatchContext ctx(layout, cluster::kNoNode, healthy_sources, k_repair,
                   options.max_set_size, options.helper_reads_per_node,
                   stats, code, options.topology, &options.deprioritized);

  std::vector<std::vector<ChunkRef>> sets;

  // §IV-D mitigation: operate on chunk groups independently.
  const int group_size = options.chunk_group_size > 0
                             ? options.chunk_group_size
                             : static_cast<int>(all_chunks.size());
  for (size_t start = 0; start < all_chunks.size();
       start += static_cast<size_t>(group_size)) {
    const size_t end =
        std::min(all_chunks.size(), start + static_cast<size_t>(group_size));
    std::vector<ChunkRef> group(all_chunks.begin() + static_cast<ptrdiff_t>(start),
                                all_chunks.begin() + static_cast<ptrdiff_t>(end));
    while (!group.empty()) {
      sets.push_back(find_one_set(ctx, group, options, stats));
    }
  }
  return sets;
}

bool is_valid_reconstruction_set(const StripeLayout& layout, NodeId stf,
                                 const std::vector<NodeId>& healthy,
                                 int k_repair,
                                 const std::vector<ChunkRef>& set,
                                 const ec::ErasureCode* code,
                                 int helper_reads_per_node) {
  MatchContext ctx(layout, stf, healthy, k_repair, 0, helper_reads_per_node,
                   nullptr, code);
  IncrementalMatcher matcher = ctx.make_matcher();
  for (ChunkRef c : set) {
    if (!ctx.try_match(matcher, c)) return false;
  }
  return true;
}

}  // namespace fastpr::core
