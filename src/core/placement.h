// Turns a scheduled round into executable tasks (§IV-A):
//  * source selection — a bipartite matching assigns each reconstructed
//    chunk k helper reads on k distinct healthy nodes (at most one read
//    per node per round);
//  * destination selection — scattered repair matches each repaired
//    stripe to a healthy node that holds none of its chunks (Hall's
//    theorem guarantees a perfect matching when M - n >= cm + cr);
//    hot-standby repair spreads destinations round-robin over the spares.
#pragma once

#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/cost_model.h"
#include "core/repair_plan.h"
#include "core/scheduler.h"
#include "ec/erasure_code.h"

namespace fastpr::core {

/// Assigns sources and destinations for one scheduled round.
/// `source_nodes`: healthy nodes eligible for helper reads.
/// `dest_nodes`: scattered → healthy storage nodes; hot-standby → spares.
/// `standby_cursor`: round-robin state across rounds (hot-standby only).
/// When `code` is given, per-chunk helper counts and candidate indices
/// come from it (LRC locality); otherwise RS semantics with k_repair.
/// `balance_destinations`: pick the scattered destination matching that
/// minimizes total destination load (min-cost matching over current
/// chunk counts) instead of an arbitrary maximum matching.
RepairRound assign_round(const cluster::StripeLayout& layout,
                         cluster::NodeId stf,
                         const std::vector<cluster::NodeId>& source_nodes,
                         const std::vector<cluster::NodeId>& dest_nodes,
                         Scenario scenario, int k_repair,
                         const ScheduledRound& round, int* standby_cursor,
                         const ec::ErasureCode* code = nullptr,
                         bool balance_destinations = false);

}  // namespace fastpr::core
