// Turns a scheduled round into executable tasks (§IV-A):
//  * source selection — a bipartite matching assigns each reconstructed
//    chunk k helper reads on k distinct healthy nodes (at most one read
//    per node per round);
//  * destination selection — scattered repair matches each repaired
//    stripe to a healthy node that holds none of its chunks (Hall's
//    theorem guarantees a perfect matching when M - n >= cm + cr);
//    hot-standby repair spreads destinations round-robin over the spares.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/cost_model.h"
#include "core/repair_plan.h"
#include "core/scheduler.h"
#include "ec/erasure_code.h"
#include "net/topology.h"

namespace fastpr::core {

/// Cross-round destination memory for multi-STF plans (DESIGN.md §8). A
/// stripe that loses chunks on several STF nodes is repaired across
/// rounds; §IV-A distinctness then requires that no destination receive
/// two of its chunks over the WHOLE plan, not just within one round.
/// Single-STF plans repair each stripe at most once, so the overlay
/// never fires there.
class PlacedOverlay {
 public:
  bool used(cluster::StripeId stripe, cluster::NodeId node) const {
    const auto it = placed_.find(stripe);
    return it != placed_.end() && it->second.count(node) > 0;
  }
  void record(cluster::StripeId stripe, cluster::NodeId node) {
    placed_[stripe].insert(node);
  }

  /// Rack-level analog for topology-aware plans (DESIGN.md §11): racks
  /// that already received a repaired chunk of `stripe` earlier in the
  /// plan. Recorded only by the rack-aware scattered path; hot-standby
  /// spares are exempt from the rack invariant.
  bool used_rack(cluster::StripeId stripe, int rack) const {
    const auto it = racks_.find(stripe);
    return it != racks_.end() && it->second.count(rack) > 0;
  }
  void record_rack(cluster::StripeId stripe, int rack) {
    racks_[stripe].insert(rack);
  }

 private:
  std::unordered_map<cluster::StripeId,
                     std::unordered_set<cluster::NodeId>>
      placed_;
  std::unordered_map<cluster::StripeId, std::unordered_set<int>> racks_;
};

/// Assigns sources and destinations for one scheduled round.
/// `source_nodes`: healthy nodes eligible for helper reads.
/// `dest_nodes`: scattered → healthy storage nodes; hot-standby → spares.
/// `standby_cursor`: round-robin state across rounds (hot-standby only).
/// When `code` is given, per-chunk helper counts and candidate indices
/// come from it (LRC locality); otherwise RS semantics with k_repair.
/// `balance_destinations`: pick the scattered destination matching that
/// minimizes total destination load (min-cost matching over current
/// chunk counts) instead of an arbitrary maximum matching.
/// `deprioritized` (optional, DESIGN.md §11): nodes whose helper reads
/// the matching should avoid when any alternative exists — degraded
/// links reported by the bandwidth replan trigger. A preference, never
/// a feasibility constraint: a chunk whose only eligible helpers are
/// deprioritized still gets them. Null/empty leaves the assignment
/// bit-identical.
RepairRound assign_round(const cluster::StripeLayout& layout,
                         cluster::NodeId stf,
                         const std::vector<cluster::NodeId>& source_nodes,
                         const std::vector<cluster::NodeId>& dest_nodes,
                         Scenario scenario, int k_repair,
                         const ScheduledRound& round, int* standby_cursor,
                         const ec::ErasureCode* code = nullptr,
                         bool balance_destinations = false,
                         const net::Topology* topology = nullptr,
                         const std::vector<cluster::NodeId>* deprioritized =
                             nullptr);

/// Multi-STF generalization (DESIGN.md §8): every node in `stf_batch` is
/// excluded from sources and destinations, each migration's src is the
/// batch member actually storing the chunk, `placed` (optional) vetoes
/// destinations already used for the same stripe earlier in the plan and
/// records this round's assignments, and source nodes may each serve
/// `helper_reads_per_node` reads. A one-node batch with no overlay and
/// one read per node is exactly assign_round.
///
/// `topology` (optional, DESIGN.md §11) activates rack-aware placement
/// when it names more than one rack: scattered destinations additionally
/// honor the failure-domain invariant (no rack ends up with two chunks
/// of one stripe after the plan applies) and are chosen greedily to
/// prefer in-rack migrations and to spread each round's repaired chunks
/// across racks (balancing the shared rack downlinks); helper reads are
/// biased toward racks with fewer scheduled reads this round. Flat or
/// single-rack topologies take the exact legacy code path, bit-identical
/// plans included. Hot-standby spares stay exempt from the rack
/// invariant (they live in an overflow rack of their own).
RepairRound assign_round_multi(
    const cluster::StripeLayout& layout,
    const std::vector<cluster::NodeId>& stf_batch,
    const std::vector<cluster::NodeId>& source_nodes,
    const std::vector<cluster::NodeId>& dest_nodes, Scenario scenario,
    int k_repair, const ScheduledRound& round, int* standby_cursor,
    const ec::ErasureCode* code = nullptr,
    bool balance_destinations = false, PlacedOverlay* placed = nullptr,
    int helper_reads_per_node = 1,
    const net::Topology* topology = nullptr,
    const std::vector<cluster::NodeId>* deprioritized = nullptr);

}  // namespace fastpr::core
