#include "core/placement.h"

#include <algorithm>
#include <deque>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "matching/bipartite_graph.h"
#include "matching/hopcroft_karp.h"
#include "matching/min_cost_matching.h"
#include "matching/incremental_matching.h"
#include "util/check.h"

namespace fastpr::core {

namespace {

using cluster::ChunkRef;
using cluster::NodeId;
using cluster::StripeLayout;

/// Helper chunk stored by `node` for `stripe` (node must hold exactly
/// one — stripes never co-locate).
ChunkRef chunk_of_stripe_on(const StripeLayout& layout,
                            cluster::StripeId stripe, NodeId node) {
  const auto& nodes = layout.stripe_nodes(stripe);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == node) {
      return ChunkRef{stripe, static_cast<int32_t>(i)};
    }
  }
  FASTPR_CHECK_MSG(false, "node " << node << " holds no chunk of stripe "
                                  << stripe);
  return {};
}

}  // namespace

RepairRound assign_round(const StripeLayout& layout, NodeId stf,
                         const std::vector<NodeId>& source_nodes,
                         const std::vector<NodeId>& dest_nodes,
                         Scenario scenario, int k_repair,
                         const ScheduledRound& round, int* standby_cursor,
                         const ec::ErasureCode* code,
                         bool balance_destinations,
                         const net::Topology* topology,
                         const std::vector<NodeId>* deprioritized) {
  return assign_round_multi(layout, {stf}, source_nodes, dest_nodes,
                            scenario, k_repair, round, standby_cursor, code,
                            balance_destinations, nullptr, 1, topology,
                            deprioritized);
}

RepairRound assign_round_multi(const StripeLayout& layout,
                               const std::vector<NodeId>& stf_batch,
                               const std::vector<NodeId>& source_nodes,
                               const std::vector<NodeId>& dest_nodes,
                               Scenario scenario, int k_repair,
                               const ScheduledRound& round,
                               int* standby_cursor,
                               const ec::ErasureCode* code,
                               bool balance_destinations,
                               PlacedOverlay* placed,
                               int helper_reads_per_node,
                               const net::Topology* topology,
                               const std::vector<NodeId>* deprioritized) {
  FASTPR_CHECK(!stf_batch.empty());
  FASTPR_CHECK(helper_reads_per_node >= 1);
  const bool rack_aware = topology != nullptr && !topology->is_flat();
  std::unordered_set<NodeId> avoid;
  if (deprioritized != nullptr) {
    avoid.insert(deprioritized->begin(), deprioritized->end());
  }
  const std::unordered_set<NodeId> stf_set(stf_batch.begin(),
                                           stf_batch.end());
  RepairRound out;
  out.strategy = round.strategy;

  // ---- Source selection (Figure 4(b) matching). ----
  std::unordered_map<NodeId, int> left_of_node;
  for (size_t i = 0; i < source_nodes.size(); ++i) {
    left_of_node[source_nodes[i]] = static_cast<int>(i);
  }
  const auto fetch_count = [&](ChunkRef chunk) {
    return code != nullptr ? code->repair_fetch_count(chunk.index)
                           : k_repair;
  };
  matching::IncrementalMatcher matcher(
      static_cast<int>(source_nodes.size()), helper_reads_per_node);
  std::deque<std::vector<int>> adjacency_store;  // stable for the matcher
  // Rack-aware helper bias (DESIGN.md §11): the matcher prefers earlier
  // adjacency entries, so listing candidates from lightly-read racks
  // first spreads the round's helper reads over rack uplinks. The
  // counts are approximate (later augmenting paths may reroute earlier
  // reads) — this is a preference, never a feasibility constraint.
  //
  // Deprioritized helpers (bandwidth-replan stragglers): one pass tries
  // the whole round with the avoided nodes REMOVED from every adjacency
  // — ordering alone is too weak once the round's matching saturates,
  // because augmenting paths reroute onto whatever is left regardless
  // of preference. Only if that round-wide attempt is infeasible does
  // the round fall back to the full adjacency (avoided candidates
  // last), keeping the preference-not-constraint contract.
  const auto try_build = [&](bool filtered) -> bool {
    std::unordered_map<int, int> rack_reads;
    int rack_right = 0;
    for (ChunkRef chunk : round.reconstruct) {
      const auto& nodes = layout.stripe_nodes(chunk.stripe);
      std::vector<int> adj;
      auto consider = [&](NodeId node) {
        if (stf_set.count(node) > 0) return;
        if (filtered && avoid.count(node) > 0) return;
        const auto it = left_of_node.find(node);
        if (it != left_of_node.end()) adj.push_back(it->second);
      };
      if (code != nullptr) {
        for (int idx : code->helper_candidates(chunk.index)) {
          consider(nodes[static_cast<size_t>(idx)]);
        }
      } else {
        for (NodeId node : nodes) consider(node);
      }
      const int k_this = fetch_count(chunk);
      if (filtered && static_cast<int>(adj.size()) < k_this) return false;
      if (rack_aware || !avoid.empty()) {
        const auto avoided = [&](int left) {
          return avoid.count(source_nodes[static_cast<size_t>(left)]) > 0;
        };
        std::stable_sort(adj.begin(), adj.end(), [&](int a, int b) {
          const bool av_a = avoided(a);
          const bool av_b = avoided(b);
          if (av_a != av_b) return !av_a;
          if (!rack_aware) return false;
          const int ra =
              topology->rack_of(source_nodes[static_cast<size_t>(a)]);
          const int rb =
              topology->rack_of(source_nodes[static_cast<size_t>(b)]);
          return rack_reads[ra] < rack_reads[rb];
        });
      }
      adjacency_store.push_back(std::move(adj));
      if (!matcher.try_add_group(adjacency_store.back(), k_this)) {
        if (filtered) return false;
        FASTPR_CHECK_MSG(
            false,
            "scheduled reconstruction set is not matchable — Algorithm 1 "
            "invariant violated");
      }
      if (rack_aware) {
        for (int t = 0; t < k_this; ++t, ++rack_right) {
          const int left = matcher.matched_left(rack_right);
          ++rack_reads[topology->rack_of(
              source_nodes[static_cast<size_t>(left)])];
        }
      }
    }
    return true;
  };
  if (avoid.empty() || !try_build(/*filtered=*/true)) {
    matcher.reset();
    adjacency_store.clear();
    try_build(/*filtered=*/false);
  }
  // Extract the k helper reads per reconstructed chunk.
  {
    int right = 0;
    for (ChunkRef chunk : round.reconstruct) {
      ReconstructionTask task;
      task.chunk = chunk;
      task.strategy = round.strategy;
      const int k_this = fetch_count(chunk);
      for (int t = 0; t < k_this; ++t, ++right) {
        const int left = matcher.matched_left(right);
        const NodeId node = source_nodes[static_cast<size_t>(left)];
        task.sources.push_back(
            SourceRead{node, chunk_of_stripe_on(layout, chunk.stripe, node)});
      }
      out.reconstructions.push_back(std::move(task));
    }
  }

  // ---- Migration tasks (destinations filled below). ----
  // A one-node batch keeps the historical contract of reading from the
  // caller's STF node unconditionally (reactive rounds pass kNoNode and
  // never migrate); a real batch reads each chunk off the member disk
  // that stores it.
  for (ChunkRef chunk : round.migrate) {
    NodeId src = stf_batch[0];
    if (stf_batch.size() > 1) {
      src = layout.node_of(chunk);
      FASTPR_CHECK_MSG(stf_set.count(src) > 0,
                       "migrated chunk is not stored on an STF batch node");
    }
    out.migrations.push_back(MigrationTask{chunk, src, cluster::kNoNode});
  }

  const auto commit = [&](cluster::StripeId stripe, NodeId dst) {
    if (placed != nullptr) placed->record(stripe, dst);
  };

  // ---- Destination selection. ----
  if (scenario == Scenario::kHotStandby) {
    FASTPR_CHECK(!dest_nodes.empty());
    FASTPR_CHECK(standby_cursor != nullptr);
    auto next_spare = [&](cluster::StripeId stripe) {
      const size_t base = static_cast<size_t>(*standby_cursor);
      ++*standby_cursor;
      for (size_t o = 0; o < dest_nodes.size(); ++o) {
        const NodeId node = dest_nodes[(base + o) % dest_nodes.size()];
        if (placed != nullptr && placed->used(stripe, node)) continue;
        commit(stripe, node);
        return node;
      }
      FASTPR_CHECK_MSG(false, "every hot-standby spare already holds a "
                              "repaired chunk of stripe "
                                  << stripe);
      return cluster::kNoNode;
    };
    for (auto& task : out.reconstructions) {
      task.dst = next_spare(task.chunk.stripe);
    }
    for (auto& task : out.migrations) {
      task.dst = next_spare(task.chunk.stripe);
    }
    return out;
  }

  const auto dest_eligible = [&](cluster::StripeId stripe, NodeId node) {
    if (stf_set.count(node) > 0) return false;
    if (layout.stripe_uses_node(stripe, node)) return false;
    if (placed != nullptr && placed->used(stripe, node)) return false;
    return true;
  };

  if (rack_aware) {
    // Rack-aware scattered destinations (DESIGN.md §11). The hard
    // invariant — no rack ends up holding two chunks of one stripe —
    // is per-(stripe, rack), which a node-level bipartite matching
    // cannot express when one stripe is repaired twice in a round, so
    // destinations are picked greedily: in-rack migrations first (the
    // chunk vacates its rack's node, so staying keeps rack-disjointness
    // and the transfer off the spine), then the rack with the fewest
    // repaired chunks this round (spreading load over the shared rack
    // downlinks), then the least-loaded node.
    std::unordered_map<cluster::StripeId, std::unordered_set<int>>
        round_racks;
    std::unordered_set<NodeId> used_nodes;
    std::unordered_map<int, int> rack_assigned;
    const auto holder_racks = [&](cluster::StripeId stripe) {
      // Racks holding a chunk of the stripe after the plan applies:
      // batch members' chunks are lost (reconstruction) or vacating
      // (migration), so their racks don't count.
      std::unordered_set<int> racks;
      for (NodeId node : layout.stripe_nodes(stripe)) {
        if (stf_set.count(node) > 0) continue;
        racks.insert(topology->rack_of(node));
      }
      return racks;
    };
    const auto pick_dest = [&](cluster::StripeId stripe,
                               NodeId migration_src) {
      const auto racks = holder_racks(stripe);
      const auto& stripe_round_racks = round_racks[stripe];
      NodeId best = cluster::kNoNode;
      std::tuple<int, int, int, NodeId> best_key;
      for (NodeId node : dest_nodes) {
        if (!dest_eligible(stripe, node)) continue;
        if (used_nodes.count(node) > 0) continue;
        const int rack = topology->rack_of(node);
        if (racks.count(rack) > 0) continue;
        if (stripe_round_racks.count(rack) > 0) continue;
        if (placed != nullptr && placed->used_rack(stripe, rack)) continue;
        const int cross = migration_src != cluster::kNoNode &&
                                  topology->same_rack(node, migration_src)
                              ? 0
                              : 1;
        const auto key = std::make_tuple(cross, rack_assigned[rack],
                                         layout.load(node), node);
        if (best == cluster::kNoNode || key < best_key) {
          best = node;
          best_key = key;
        }
      }
      FASTPR_CHECK_MSG(best != cluster::kNoNode,
                       "no rack-disjoint destination exists for stripe "
                           << stripe << " (need a rack holding none of "
                                        "its chunks with a free node)");
      const int rack = topology->rack_of(best);
      used_nodes.insert(best);
      ++rack_assigned[rack];
      round_racks[stripe].insert(rack);
      if (placed != nullptr) placed->record_rack(stripe, rack);
      commit(stripe, best);
      return best;
    };
    for (auto& task : out.reconstructions) {
      task.dst = pick_dest(task.chunk.stripe, cluster::kNoNode);
    }
    for (auto& task : out.migrations) {
      task.dst = pick_dest(task.chunk.stripe, task.src);
    }
    return out;
  }

  if (balance_destinations) {
    // Load-aware variant: min-cost matching with cost = current chunk
    // count of the candidate destination.
    matching::WeightedBipartiteGraph graph;
    graph.left_count = static_cast<int>(dest_nodes.size());
    auto weighted_adjacency = [&](cluster::StripeId stripe) {
      std::vector<std::pair<int, double>> adj;
      for (size_t i = 0; i < dest_nodes.size(); ++i) {
        const NodeId node = dest_nodes[i];
        if (dest_eligible(stripe, node)) {
          adj.emplace_back(static_cast<int>(i),
                           static_cast<double>(layout.load(node)));
        }
      }
      return adj;
    };
    for (const auto& task : out.reconstructions) {
      graph.add_right_vertex(weighted_adjacency(task.chunk.stripe));
    }
    for (const auto& task : out.migrations) {
      graph.add_right_vertex(weighted_adjacency(task.chunk.stripe));
    }
    const auto assignment = matching::min_cost_matching(graph);
    FASTPR_CHECK_MSG(assignment.has_value(),
                     "no destination assignment exists (balanced)");
    int right = 0;
    for (auto& task : out.reconstructions) {
      task.dst =
          dest_nodes[static_cast<size_t>((*assignment)[static_cast<size_t>(
              right++)])];
      commit(task.chunk.stripe, task.dst);
    }
    for (auto& task : out.migrations) {
      task.dst =
          dest_nodes[static_cast<size_t>((*assignment)[static_cast<size_t>(
              right++)])];
      commit(task.chunk.stripe, task.dst);
    }
    return out;
  }

  // Scattered (Figure 4(c) matching): one stripe vertex per repaired
  // chunk, adjacent to every destination candidate that holds none of
  // the stripe's chunks.
  matching::BipartiteGraph graph;
  graph.left_count = static_cast<int>(dest_nodes.size());
  auto stripe_adjacency = [&](cluster::StripeId stripe) {
    std::vector<int> adj;
    for (size_t i = 0; i < dest_nodes.size(); ++i) {
      const NodeId node = dest_nodes[i];
      if (dest_eligible(stripe, node)) {
        adj.push_back(static_cast<int>(i));
      }
    }
    return adj;
  };
  for (const auto& task : out.reconstructions) {
    graph.add_right_vertex(stripe_adjacency(task.chunk.stripe));
  }
  for (const auto& task : out.migrations) {
    graph.add_right_vertex(stripe_adjacency(task.chunk.stripe));
  }
  const auto matching = matching::hopcroft_karp(graph);
  FASTPR_CHECK_MSG(
      matching.is_perfect_on_right(),
      "no destination assignment exists: need M - n >= cm + cr (round of "
          << graph.right_count() << " repairs over " << dest_nodes.size()
          << " candidates)");
  int right = 0;
  for (auto& task : out.reconstructions) {
    task.dst = dest_nodes[static_cast<size_t>(
        matching.right_to_left[static_cast<size_t>(right++)])];
    commit(task.chunk.stripe, task.dst);
  }
  for (auto& task : out.migrations) {
    task.dst = dest_nodes[static_cast<size_t>(
        matching.right_to_left[static_cast<size_t>(right++)])];
    commit(task.chunk.stripe, task.dst);
  }
  return out;
}

}  // namespace fastpr::core
