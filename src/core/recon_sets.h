// Algorithm 1 of the paper: partition the STF node's chunks into
// reconstruction sets.
//
// A reconstruction set R is a group of STF chunks whose k·|R| helper
// chunks can be fetched from k·|R| DISTINCT healthy nodes in one round
// (at most one read per node). Membership is tested by bipartite
// matching (MATCH); FIND greedily grows an initial set and then runs the
// paper's swap-based optimization (Lines 18–38) that trades one member
// for an outsider whenever that unlocks a net gain of chunks.
#pragma once

#include <vector>

#include "cluster/stripe_layout.h"
#include "cluster/types.h"
#include "ec/erasure_code.h"
#include "net/topology.h"

namespace fastpr::core {

struct ReconSetOptions {
  /// Run the swap optimization (Lines 18–38). Disabling it yields the
  /// d_ini baseline of Experiment B.5.
  bool optimize = true;
  /// §IV-D mitigation: partition C into groups of this size and find
  /// sets per group (0 = process all chunks at once).
  int chunk_group_size = 0;
  /// Upper bound on a set's size beyond the matching-derived
  /// floor((M-1)/k). The scattered-repair planner caps sets so that a
  /// round always admits a destination matching (Hall: M - n >= cm + cr).
  /// 0 = no extra cap.
  int max_set_size = 0;
  /// Helper reads one node may serve per round (DESIGN.md §8). The paper
  /// fixes this at 1; the multi-STF planner can relax it to trade round
  /// count against per-node read contention.
  int helper_reads_per_node = 1;
  /// Rack topology (DESIGN.md §11). When it names more than one rack,
  /// each chunk's helper candidates are rack-interleaved (round-robin
  /// over racks) so the matcher — which prefers earlier adjacency
  /// entries — spreads a set's helper reads over rack uplinks. Pure
  /// preference: the candidate SET is unchanged, so feasibility and
  /// maximality of Algorithm 1 are untouched, and a flat/absent
  /// topology leaves the ordering bit-identical to the legacy code.
  const net::Topology* topology = nullptr;
  /// Helpers to avoid when possible (e.g. nodes behind a degraded link
  /// at bandwidth-replan time): ordered last in every adjacency list, so
  /// they serve reads only when no other candidate keeps the matching
  /// saturating. Preference only, same guarantee as `topology`.
  std::vector<cluster::NodeId> deprioritized;
};

/// Counters for the microbenchmarks.
struct ReconSetStats {
  long match_calls = 0;  // MATCH invocations
  long swaps = 0;        // accepted swap optimizations
  long sweep_adds = 0;   // chunks added by the post-swap maximality sweep
};

/// Returns reconstruction sets covering every chunk the STF node stores,
/// ordered as found. `healthy_sources` are the nodes eligible to serve
/// helper reads (healthy storage nodes, excluding the STF node).
/// `k_repair` is the per-chunk helper count (k for RS, k/l for LRC).
/// When `code` is given, each chunk's helper count and candidate set
/// come from it (repair_fetch_count / helper_candidates) — this is what
/// makes the matching honor LRC locality; without it, RS semantics with
/// a uniform k_repair apply.
std::vector<std::vector<cluster::ChunkRef>> find_reconstruction_sets(
    const cluster::StripeLayout& layout, cluster::NodeId stf,
    const std::vector<cluster::NodeId>& healthy_sources, int k_repair,
    const ReconSetOptions& options = {}, ReconSetStats* stats = nullptr,
    const ec::ErasureCode* code = nullptr);

/// Generalized form over an explicit chunk list (multi-failure reactive
/// repair partitions the union of several nodes' lost chunks).
/// `healthy_sources` must exclude every node whose chunks are lost.
std::vector<std::vector<cluster::ChunkRef>> find_reconstruction_sets_for(
    std::vector<cluster::ChunkRef> chunks,
    const cluster::StripeLayout& layout,
    const std::vector<cluster::NodeId>& healthy_sources, int k_repair,
    const ReconSetOptions& options = {}, ReconSetStats* stats = nullptr,
    const ec::ErasureCode* code = nullptr);

/// Checks that `set` is a valid reconstruction set (the saturating
/// matching exists). Exposed for tests.
bool is_valid_reconstruction_set(const cluster::StripeLayout& layout,
                                 cluster::NodeId stf,
                                 const std::vector<cluster::NodeId>& healthy,
                                 int k_repair,
                                 const std::vector<cluster::ChunkRef>& set,
                                 const ec::ErasureCode* code = nullptr,
                                 int helper_reads_per_node = 1);

}  // namespace fastpr::core
