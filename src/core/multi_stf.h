// Multi-STF batch planner (DESIGN.md §8): several soon-to-fail nodes
// repaired concurrently by ONE joint plan.
//
// The paper plans for a single STF node; predictive models often flag a
// correlated batch (same vintage, same rack). This planner runs
// Algorithm 1 over the union of every batch member's chunks — the
// bipartite matching naturally keeps helpers disjoint across members,
// because all STF nodes are excluded from the source side — and a
// generalized Algorithm 2 that packs one reconstruction set plus an
// independent migration stream PER member disk into each round. With a
// batch of one the whole pipeline degenerates to FastPrPlanner
// byte-for-byte.
#pragma once

#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/cost_model.h"
#include "core/fastpr.h"
#include "core/recon_sets.h"
#include "core/repair_plan.h"

namespace fastpr::core {

class MultiStfPlanner {
 public:
  /// Plans for every node flagged soon-to-fail in `cluster` (at least
  /// one). Both references must outlive the planner.
  MultiStfPlanner(const cluster::StripeLayout& layout,
                  const cluster::ClusterState& cluster,
                  const PlannerOptions& options);

  const std::vector<cluster::NodeId>& batch() const { return batch_; }

  /// Joint plan: Algorithm 1 over the union of the batch's chunks,
  /// Algorithm 2 with per-member migration quotas sharing each round.
  RepairPlan plan_fastpr();

  /// Baseline for the batch sweep: plan each member independently with
  /// the single-STF algorithms and execute the plans back to back
  /// (concatenated rounds, shared cross-round destination memory).
  RepairPlan plan_sequential();

  /// The §III analysis generalized to the batch (B = batch size,
  /// U = chunks across all members; DESIGN.md §8).
  CostModel cost_model() const;

  /// Stats of the last joint Algorithm 1 run.
  const ReconSetStats& recon_stats() const { return recon_stats_; }

 private:
  std::vector<cluster::NodeId> source_nodes() const;
  std::vector<cluster::NodeId> dest_nodes() const;
  int scattered_round_capacity() const;
  ReconSetOptions effective_recon_options() const;
  /// Removes and returns the chunks whose stripes the batch itself left
  /// with fewer than k' healthy helpers — reconstruction is impossible,
  /// so they are scheduled as migrations (order-stable partition).
  std::vector<cluster::ChunkRef> split_forced_migrations(
      std::vector<cluster::ChunkRef>& chunks) const;
  CostModel member_cost_model(cluster::NodeId stf) const;
  /// Fills the ModelParams topology terms from options_.topology
  /// (no-op for flat/absent topologies; DESIGN.md §11).
  void apply_topology(ModelParams& params) const;

  const cluster::StripeLayout& layout_;
  const cluster::ClusterState& cluster_;
  PlannerOptions options_;
  std::vector<cluster::NodeId> batch_;
  ReconSetStats recon_stats_;
};

}  // namespace fastpr::core
