#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fastpr::core {

std::string to_string(Scenario s) {
  return s == Scenario::kScattered ? "scattered" : "hot-standby";
}

std::string to_string(RepairStrategy s) {
  return s == RepairStrategy::kFanIn ? "fanin" : "chain";
}

std::string to_string(StrategyChoice s) {
  switch (s) {
    case StrategyChoice::kFanIn: return "fanin";
    case StrategyChoice::kChain: return "chain";
    case StrategyChoice::kAuto: return "auto";
  }
  return "fanin";
}

CostModel::CostModel(const ModelParams& params) : params_(params) {
  FASTPR_CHECK(params.num_nodes >= 2);
  FASTPR_CHECK(params.stf_chunks >= 1);
  FASTPR_CHECK(params.chunk_bytes > 0);
  FASTPR_CHECK(params.disk_bw > 0);
  FASTPR_CHECK(params.net_bw > 0);
  FASTPR_CHECK(params.k_repair >= 1);
  FASTPR_CHECK(params.batch >= 1);
  FASTPR_CHECK(params.batch <= params.num_nodes - 1);
  FASTPR_CHECK(params.k_repair <= params.num_nodes - params.batch);
  FASTPR_CHECK(params.helper_bytes_fraction > 0 &&
               params.helper_bytes_fraction <= 1.0);
  if (params.scenario == Scenario::kHotStandby) {
    FASTPR_CHECK(params.hot_standby >= 1);
  }
  FASTPR_CHECK(params.packet_bytes >= 0);
  FASTPR_CHECK(params.chain_hop_overhead_seconds >= 0);
  FASTPR_CHECK(params.repair_bw_fraction > 0 &&
               params.repair_bw_fraction <= 1.0);
  FASTPR_CHECK(params.oversubscription >= 1.0);
  FASTPR_CHECK(params.cross_rack_helper_fraction >= 0 &&
               params.cross_rack_helper_fraction <= 1.0);
  FASTPR_CHECK(params.cross_rack_migration_fraction >= 0 &&
               params.cross_rack_migration_fraction <= 1.0);
}

double CostModel::repair_net_bw() const {
  return params_.net_bw * params_.repair_bw_fraction;
}

double CostModel::helper_penalty() const {
  // 1 + (f-1)·x is exactly 1.0 at f = 1 or x = 0, so multiplying a
  // network term by it keeps the flat model bit-identical (DESIGN.md
  // §11: differential tests rely on this).
  return 1.0 + (params_.oversubscription - 1.0) *
                   params_.cross_rack_helper_fraction;
}

double CostModel::migration_penalty() const {
  return 1.0 + (params_.oversubscription - 1.0) *
                   params_.cross_rack_migration_fraction;
}

double CostModel::tm() const {
  const double c = params_.chunk_bytes;
  return c / params_.disk_bw + migration_penalty() * (c / repair_net_bw()) +
         c / params_.disk_bw;
}

double CostModel::tr(double g) const {
  const double c = params_.chunk_bytes;
  const double bn = repair_net_bw();
  // Effective helper traffic: k chunks for RS/LRC; MSR helpers each
  // ship helper_bytes_fraction of a chunk (sub-chunk reads, §II-A).
  const double k = params_.k_repair * params_.helper_bytes_fraction;
  const double hx = helper_penalty();
  if (params_.scenario == Scenario::kScattered) {
    // Eq. (5): parallel reads, k (effective) chunks into the
    // destination NIC, one write — independent of the round size. Under
    // rack-disjoint placement every helper stream crosses racks, so the
    // transfer term pays the oversubscription penalty.
    return c / params_.disk_bw + hx * (k * c / bn) + c / params_.disk_bw;
  }
  // Eq. (6): the h spares absorb g·k received chunks and g writes.
  FASTPR_CHECK(g > 0);
  const double h = params_.hot_standby;
  return c / params_.disk_bw + hx * (g * k * c / (h * bn)) +
         g * c / (h * params_.disk_bw);
}

double CostModel::tr_chain(double g) const {
  FASTPR_CHECK_MSG(params_.packet_bytes > 0,
                   "chain round time needs packet_bytes in ModelParams");
  const double c = params_.chunk_bytes;
  const double p = std::min(params_.packet_bytes, c);
  const double k = params_.k_repair;
  const double o = params_.chain_hop_overhead_seconds;
  const double bn = repair_net_bw();
  // Store-and-forward overhead: the paced hop forwards N = ceil(c/p)
  // packets and the pipeline fill adds k-1 more forward slots. A
  // one-helper "chain" is a plain coefficient-scaled stream, which pays
  // no forwarding at all.
  const double packets = std::ceil(c / p);
  const double overhead =
      params_.k_repair >= 2 ? (packets + k - 1.0) * o : 0.0;
  const double hx = helper_penalty();
  if (params_.scenario == Scenario::kScattered) {
    // Single-transfer bound plus (k-1) per-hop packet latencies: every
    // link carries one chunk, the fill is one packet per extra hop.
    // Chain hops inherit the helper traffic's cross-rack fraction: a
    // rack-disjoint stripe's chain crosses racks on every hop.
    return c / params_.disk_bw + hx * (c / bn + (k - 1.0) * p / bn) +
           overhead + c / params_.disk_bw;
  }
  // Hot-standby: the h spares absorb g single-chunk chain tails (vs
  // g·k fan-in streams in Eq. 6) and g writes.
  FASTPR_CHECK(g > 0);
  const double h = params_.hot_standby;
  return c / params_.disk_bw + hx * (g * c / (h * bn) +
         (k - 1.0) * p / bn) + overhead +
         g * c / (h * params_.disk_bw);
}

double CostModel::tr(double g, RepairStrategy strategy) const {
  return strategy == RepairStrategy::kChain ? tr_chain(g) : tr(g);
}

RepairStrategy CostModel::choose_strategy(double g) const {
  if (params_.packet_bytes <= 0) return RepairStrategy::kFanIn;
  return tr_chain(g) < tr(g) ? RepairStrategy::kChain
                             : RepairStrategy::kFanIn;
}

double CostModel::max_parallel_groups() const {
  return static_cast<double>(params_.num_nodes - params_.batch) /
         static_cast<double>(params_.k_repair);
}

double CostModel::total_time(double x, double g) const {
  FASTPR_CHECK(x >= 0 && x <= params_.stf_chunks);
  const double u = params_.stf_chunks;
  const double b = params_.batch;
  return std::max(x / b * tm(), (u - x) / g * tr(g));
}

double CostModel::optimal_migration_chunks() const {
  const double g = max_parallel_groups();
  const double t_r = tr(g);
  const double b = params_.batch;
  return params_.stf_chunks * b * t_r / (g * tm() + b * t_r);
}

double CostModel::predictive_time() const {
  // Eq. (2): U·tr·tm / (G·tm + B·tr) — the B migration streams drain in
  // parallel, each carrying x*/B chunks (Eq. 2 exactly at B = 1).
  const double g = max_parallel_groups();
  const double t_r = tr(g);
  const double t_m = tm();
  const double b = params_.batch;
  return params_.stf_chunks * t_r * t_m / (g * t_m + b * t_r);
}

double CostModel::reactive_time() const {
  const double g = max_parallel_groups();
  return params_.stf_chunks * tr(g) / g;
}

double CostModel::migration_only_time() const {
  return params_.stf_chunks * tm() / params_.batch;
}

double CostModel::predictive_time_per_chunk() const {
  return predictive_time() / params_.stf_chunks;
}

double CostModel::reactive_time_per_chunk() const {
  return reactive_time() / params_.stf_chunks;
}

double CostModel::migration_only_time_per_chunk() const {
  return migration_only_time() / params_.stf_chunks;
}

int CostModel::migration_quota(int cr) const {
  return migration_quota(cr, RepairStrategy::kFanIn);
}

int CostModel::migration_quota(int cr, RepairStrategy strategy) const {
  if (cr <= 0) return 0;
  const double quota = tr(static_cast<double>(cr), strategy) / tm();
  return static_cast<int>(std::floor(quota));
}

double CostModel::round_time(int cr, int cm) const {
  return round_time(cr, cm, RepairStrategy::kFanIn);
}

double CostModel::round_time(int cr, int cm,
                             RepairStrategy strategy) const {
  FASTPR_CHECK(cr >= 0 && cm >= 0);
  // Migrations serialize through the STF node's disk; reconstructions of
  // one round run in parallel groups. The round ends when both finish.
  const double recon =
      cr > 0 ? tr(static_cast<double>(cr), strategy) : 0.0;
  const double migrate = cm * tm();
  return std::max(recon, migrate);
}

double CostModel::round_time_multi(int cr,
                                   const std::vector<int>& cm_per_stf) const {
  return round_time_multi(cr, cm_per_stf, RepairStrategy::kFanIn);
}

double CostModel::round_time_multi(int cr,
                                   const std::vector<int>& cm_per_stf,
                                   RepairStrategy strategy) const {
  int slowest = 0;
  for (int cm : cm_per_stf) {
    FASTPR_CHECK(cm >= 0);
    slowest = std::max(slowest, cm);
  }
  return round_time(cr, slowest, strategy);
}

}  // namespace fastpr::core
