// Conventional reactive repair after ACTUAL failures (single or multi).
//
// This is the paper's baseline world — what a cluster must do when a
// failure was not predicted (or when several nodes fail within a
// stripe, where §II-B says FastPR "resorts to the conventional reactive
// repair"). Lost chunks are reconstructed from surviving helpers only;
// migration is impossible because the failed nodes are gone. The same
// reconstruction-set machinery parallelizes rounds, and stripes that
// lost more chunks than the code tolerates are reported as data loss.
#pragma once

#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/cost_model.h"
#include "core/recon_sets.h"
#include "core/repair_plan.h"

namespace fastpr::core {

struct ReactiveOptions {
  Scenario scenario = Scenario::kScattered;
  /// Helper chunks per repair (k for RS; per-chunk counts when `code`
  /// is set).
  int k_repair = 6;
  double chunk_bytes = 0;
  const ec::ErasureCode* code = nullptr;
  ReconSetOptions recon;
};

struct ReactiveResult {
  RepairPlan plan;
  /// Chunks whose stripes lost more than the code tolerates — data loss.
  std::vector<cluster::ChunkRef> unrecoverable;
  /// Chunks scheduled in dedicated degraded rounds because their
  /// preferred helper candidates are partly gone (LRC local group
  /// damaged and rebuilt through global parities).
  int degraded_repairs = 0;
};

class ReactivePlanner {
 public:
  /// Every node in `failed` is treated as dead: its chunks are lost and
  /// it cannot serve reads. `failed` nodes should also be kFailed in
  /// `cluster` (destinations/ helpers are drawn from healthy nodes).
  ReactivePlanner(const cluster::StripeLayout& layout,
                  const cluster::ClusterState& cluster,
                  const ReactiveOptions& options);

  ReactiveResult plan(const std::vector<cluster::NodeId>& failed);

  /// Plans an explicit chunk list instead of "everything on the failed
  /// nodes" — the mid-repair degradation path (DESIGN.md §7): `lost`
  /// are the chunks still needing repair, `dead` the nodes that cannot
  /// serve reads or receive chunks (the dead STF plus any helper or
  /// destination that stopped responding). plan(failed) is the special
  /// case lost = all chunks on `failed`.
  ReactiveResult plan_chunks(const std::vector<cluster::ChunkRef>& lost,
                             const std::vector<cluster::NodeId>& dead);

 private:
  const cluster::StripeLayout& layout_;
  const cluster::ClusterState& cluster_;
  ReactiveOptions options_;
};

/// Validation for reactive plans: every recoverable lost chunk repaired
/// exactly once from surviving nodes, fault tolerance preserved.
void validate_reactive_plan(const ReactiveResult& result,
                            const cluster::StripeLayout& layout,
                            const cluster::ClusterState& cluster,
                            const std::vector<cluster::NodeId>& failed);

}  // namespace fastpr::core
