#include "core/repair_plan.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace fastpr::core {

int RepairPlan::total_migrated() const {
  int total = 0;
  for (const auto& round : rounds) {
    total += static_cast<int>(round.migrations.size());
  }
  return total;
}

int RepairPlan::total_reconstructed() const {
  int total = 0;
  for (const auto& round : rounds) {
    total += static_cast<int>(round.reconstructions.size());
  }
  return total;
}

std::string RepairPlan::to_string() const {
  std::ostringstream os;
  os << "plan{stf=" << stf_node << ", rounds=" << rounds.size()
     << ", migrated=" << total_migrated()
     << ", reconstructed=" << total_reconstructed() << "}";
  return os.str();
}

void validate_plan(const RepairPlan& plan,
                   const cluster::StripeLayout& layout,
                   const cluster::ClusterState& cluster, int k_repair,
                   const ec::ErasureCode* code, int helper_reads_per_node,
                   const net::Topology* topology) {
  using cluster::ChunkRef;
  using cluster::ChunkRefHash;
  using cluster::NodeId;

  FASTPR_CHECK(helper_reads_per_node >= 1);
  const NodeId stf = plan.stf_node;
  FASTPR_CHECK(stf != cluster::kNoNode);
  std::vector<NodeId> batch = plan.stf_nodes;
  if (batch.empty()) batch.push_back(stf);
  FASTPR_CHECK_MSG(batch.front() == stf,
                   "stf_node must be the first batch member");
  const std::unordered_set<NodeId> stf_set(batch.begin(), batch.end());
  FASTPR_CHECK_MSG(stf_set.size() == batch.size(),
                   "duplicate node in STF batch");

  // Every chunk of every batch member repaired exactly once.
  std::unordered_set<ChunkRef, ChunkRefHash> expected;
  for (NodeId s : batch) {
    FASTPR_CHECK(s != cluster::kNoNode);
    for (ChunkRef c : layout.chunks_on(s)) expected.insert(c);
  }
  std::unordered_set<ChunkRef, ChunkRefHash> seen;
  // Cross-round §IV-A: a stripe losing chunks on several batch members
  // is repaired across rounds, and no destination may collect two of
  // them (single-STF plans touch each stripe once, so this cannot fire).
  std::unordered_map<cluster::StripeId, std::unordered_set<NodeId>> landed;
  const auto land = [&](ChunkRef chunk, NodeId dst) {
    FASTPR_CHECK_MSG(landed[chunk.stripe].insert(dst).second,
                     "two repaired chunks of stripe " << chunk.stripe
                                                      << " land on node "
                                                      << dst);
  };

  // Rack-level failure-domain invariant (DESIGN.md §11). Spares are
  // exempt like the node-level checks below; `land_rack` is called only
  // for scattered destinations.
  const bool rack_checks = topology != nullptr && !topology->is_flat();
  std::unordered_map<cluster::StripeId, std::unordered_set<int>>
      landed_racks;
  const auto land_rack = [&](ChunkRef chunk, NodeId dst) {
    if (!rack_checks) return;
    const int rack = topology->rack_of(dst);
    for (NodeId holder : layout.stripe_nodes(chunk.stripe)) {
      if (stf_set.count(holder) > 0) continue;  // lost or vacating
      FASTPR_CHECK_MSG(topology->rack_of(holder) != rack,
                       "repaired chunk of stripe "
                           << chunk.stripe << " lands in rack " << rack
                           << ", which still holds a chunk on node "
                           << holder);
    }
    FASTPR_CHECK_MSG(landed_racks[chunk.stripe].insert(rack).second,
                     "two repaired chunks of stripe "
                         << chunk.stripe << " land in rack " << rack);
  };

  for (const auto& round : plan.rounds) {
    std::unordered_map<NodeId, int> round_source_reads;
    std::unordered_set<NodeId> round_destinations;

    for (const auto& task : round.migrations) {
      FASTPR_CHECK_MSG(stf_set.count(task.src) == 1,
                       "migration source must be an STF batch node");
      FASTPR_CHECK_MSG(layout.node_of(task.chunk) == task.src,
                       "migrated chunk not on its STF node");
      FASTPR_CHECK_MSG(seen.insert(task.chunk).second,
                       "chunk repaired twice");
      FASTPR_CHECK(stf_set.count(task.dst) == 0 &&
                   task.dst != cluster::kNoNode);
      land(task.chunk, task.dst);
      if (cluster.is_hot_standby(task.dst)) continue;
      FASTPR_CHECK_MSG(!layout.stripe_uses_node(task.chunk.stripe, task.dst),
                       "migration breaks stripe distinctness");
      FASTPR_CHECK_MSG(round_destinations.insert(task.dst).second,
                       "scattered destination reused within a round");
      land_rack(task.chunk, task.dst);
    }

    for (const auto& task : round.reconstructions) {
      FASTPR_CHECK_MSG(stf_set.count(layout.node_of(task.chunk)) == 1,
                       "reconstructed chunk not on an STF node");
      FASTPR_CHECK_MSG(seen.insert(task.chunk).second,
                       "chunk repaired twice");
      const int expected_sources =
          code != nullptr ? code->repair_fetch_count(task.chunk.index)
                          : k_repair;
      FASTPR_CHECK_MSG(
          static_cast<int>(task.sources.size()) == expected_sources,
          "reconstruction must fetch exactly k (or k') chunks");
      for (const auto& src : task.sources) {
        FASTPR_CHECK(stf_set.count(src.node) == 0);
        FASTPR_CHECK_MSG(cluster.health(src.node) ==
                             cluster::NodeHealth::kHealthy,
                         "source node not healthy");
        FASTPR_CHECK_MSG(src.chunk.stripe == task.chunk.stripe,
                         "helper from a different stripe");
        FASTPR_CHECK_MSG(src.chunk.index != task.chunk.index,
                         "helper equals the lost chunk");
        FASTPR_CHECK_MSG(layout.node_of(src.chunk) == src.node,
                         "helper not stored on claimed node");
        FASTPR_CHECK_MSG(++round_source_reads[src.node] <=
                             helper_reads_per_node,
                         "node reads too many chunks in one round");
      }
      FASTPR_CHECK(stf_set.count(task.dst) == 0 &&
                   task.dst != cluster::kNoNode);
      land(task.chunk, task.dst);
      if (cluster.is_hot_standby(task.dst)) continue;
      FASTPR_CHECK_MSG(!layout.stripe_uses_node(task.chunk.stripe, task.dst),
                       "reconstruction breaks stripe distinctness");
      FASTPR_CHECK_MSG(round_destinations.insert(task.dst).second,
                       "scattered destination reused within a round");
      land_rack(task.chunk, task.dst);
    }
  }

  FASTPR_CHECK_MSG(seen.size() == expected.size(),
                   "plan repairs " << seen.size() << " chunks, the batch "
                                      "holds "
                                   << expected.size());
  for (const ChunkRef& c : seen) {
    FASTPR_CHECK_MSG(expected.count(c) == 1, "plan repairs a foreign chunk");
  }
}

}  // namespace fastpr::core
