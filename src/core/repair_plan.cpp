#include "core/repair_plan.h"

#include <sstream>
#include <unordered_set>

#include "util/check.h"

namespace fastpr::core {

int RepairPlan::total_migrated() const {
  int total = 0;
  for (const auto& round : rounds) {
    total += static_cast<int>(round.migrations.size());
  }
  return total;
}

int RepairPlan::total_reconstructed() const {
  int total = 0;
  for (const auto& round : rounds) {
    total += static_cast<int>(round.reconstructions.size());
  }
  return total;
}

std::string RepairPlan::to_string() const {
  std::ostringstream os;
  os << "plan{stf=" << stf_node << ", rounds=" << rounds.size()
     << ", migrated=" << total_migrated()
     << ", reconstructed=" << total_reconstructed() << "}";
  return os.str();
}

void validate_plan(const RepairPlan& plan,
                   const cluster::StripeLayout& layout,
                   const cluster::ClusterState& cluster, int k_repair,
                   const ec::ErasureCode* code) {
  using cluster::ChunkRef;
  using cluster::ChunkRefHash;
  using cluster::NodeId;

  const NodeId stf = plan.stf_node;
  FASTPR_CHECK(stf != cluster::kNoNode);

  // Every chunk of the STF node repaired exactly once.
  std::unordered_set<ChunkRef, ChunkRefHash> expected;
  for (ChunkRef c : layout.chunks_on(stf)) expected.insert(c);
  std::unordered_set<ChunkRef, ChunkRefHash> seen;

  for (const auto& round : plan.rounds) {
    std::unordered_set<NodeId> round_sources;
    std::unordered_set<NodeId> round_destinations;

    for (const auto& task : round.migrations) {
      FASTPR_CHECK_MSG(task.src == stf, "migration source must be the STF");
      FASTPR_CHECK_MSG(layout.node_of(task.chunk) == stf,
                       "migrated chunk not on STF node");
      FASTPR_CHECK_MSG(seen.insert(task.chunk).second,
                       "chunk repaired twice");
      FASTPR_CHECK(task.dst != stf && task.dst != cluster::kNoNode);
      if (cluster.is_hot_standby(task.dst)) continue;
      FASTPR_CHECK_MSG(!layout.stripe_uses_node(task.chunk.stripe, task.dst),
                       "migration breaks stripe distinctness");
      FASTPR_CHECK_MSG(round_destinations.insert(task.dst).second,
                       "scattered destination reused within a round");
    }

    for (const auto& task : round.reconstructions) {
      FASTPR_CHECK_MSG(layout.node_of(task.chunk) == stf,
                       "reconstructed chunk not on STF node");
      FASTPR_CHECK_MSG(seen.insert(task.chunk).second,
                       "chunk repaired twice");
      const int expected_sources =
          code != nullptr ? code->repair_fetch_count(task.chunk.index)
                          : k_repair;
      FASTPR_CHECK_MSG(
          static_cast<int>(task.sources.size()) == expected_sources,
          "reconstruction must fetch exactly k (or k') chunks");
      for (const auto& src : task.sources) {
        FASTPR_CHECK(src.node != stf);
        FASTPR_CHECK_MSG(cluster.health(src.node) ==
                             cluster::NodeHealth::kHealthy,
                         "source node not healthy");
        FASTPR_CHECK_MSG(src.chunk.stripe == task.chunk.stripe,
                         "helper from a different stripe");
        FASTPR_CHECK_MSG(src.chunk.index != task.chunk.index,
                         "helper equals the lost chunk");
        FASTPR_CHECK_MSG(layout.node_of(src.chunk) == src.node,
                         "helper not stored on claimed node");
        FASTPR_CHECK_MSG(round_sources.insert(src.node).second,
                         "node reads two chunks in one round");
      }
      FASTPR_CHECK(task.dst != stf && task.dst != cluster::kNoNode);
      if (cluster.is_hot_standby(task.dst)) continue;
      FASTPR_CHECK_MSG(!layout.stripe_uses_node(task.chunk.stripe, task.dst),
                       "reconstruction breaks stripe distinctness");
      FASTPR_CHECK_MSG(round_destinations.insert(task.dst).second,
                       "scattered destination reused within a round");
    }
  }

  FASTPR_CHECK_MSG(seen.size() == expected.size(),
                   "plan repairs " << seen.size() << " chunks, STF holds "
                                   << expected.size());
  for (const ChunkRef& c : seen) {
    FASTPR_CHECK_MSG(expected.count(c) == 1, "plan repairs a foreign chunk");
  }
}

}  // namespace fastpr::core
