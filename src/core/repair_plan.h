// Repair-plan data model: the output of the FastPR planner and the input
// of both the simulator and the testbed coordinator.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "cluster/types.h"
#include "core/cost_model.h"
#include "ec/erasure_code.h"
#include "net/topology.h"

namespace fastpr::core {

/// Move one chunk off the STF node.
struct MigrationTask {
  cluster::ChunkRef chunk;
  cluster::NodeId src = cluster::kNoNode;  // the STF node
  cluster::NodeId dst = cluster::kNoNode;
};

/// One helper read feeding a reconstruction.
struct SourceRead {
  cluster::NodeId node = cluster::kNoNode;
  cluster::ChunkRef chunk;  // the helper chunk stored on `node`
};

/// Decode one chunk of the STF node from k helper chunks on k distinct
/// healthy nodes.
struct ReconstructionTask {
  cluster::ChunkRef chunk;  // the chunk being repaired
  std::vector<SourceRead> sources;
  cluster::NodeId dst = cluster::kNoNode;
  /// kChain: `sources` is the hop order h0 → … → h(k-1) → dst and the
  /// helpers forward packet-level partial sums; kFanIn: all helpers
  /// stream straight to dst.
  RepairStrategy strategy = RepairStrategy::kFanIn;
};

/// One repair round: its migrations and reconstructions run in parallel;
/// rounds execute sequentially (§IV-A).
struct RepairRound {
  std::vector<ReconstructionTask> reconstructions;
  std::vector<MigrationTask> migrations;
  /// Strategy Algorithm 2 chose for this round's reconstructions (what
  /// the simulator and predict_rounds price the round with).
  RepairStrategy strategy = RepairStrategy::kFanIn;

  int repaired_chunks() const {
    return static_cast<int>(reconstructions.size() + migrations.size());
  }
};

struct RepairPlan {
  cluster::NodeId stf_node = cluster::kNoNode;
  /// Multi-STF batch plans (DESIGN.md §8) list every STF node covered,
  /// with stf_node == stf_nodes.front(). Single-STF planners leave this
  /// empty; consumers treat that as a batch of {stf_node}.
  std::vector<cluster::NodeId> stf_nodes;
  std::vector<RepairRound> rounds;

  int total_migrated() const;
  int total_reconstructed() const;
  int total_repaired() const { return total_migrated() + total_reconstructed(); }

  std::string to_string() const;
};

/// Structural validation of a plan against the layout it was built from
/// (pre-repair state). Throws CheckFailure when an invariant is violated:
///  * every chunk of every STF node in the batch repaired exactly once;
///  * migration sources are the STF node storing the chunk;
///    reconstruction sources are k distinct healthy non-STF nodes
///    holding chunks of the right stripe;
///  * within a round, no healthy node serves more than
///    `helper_reads_per_node` source reads;
///  * scattered destinations do not already hold a chunk of the stripe
///    and are used at most once per round; hot-standby destinations are
///    spare nodes; across the WHOLE plan no destination receives two
///    repaired chunks of one stripe (multi-STF cross-round §IV-A).
/// `code`, when given, supplies per-chunk helper counts (LRC).
/// `topology`, when given and multi-rack (DESIGN.md §11), additionally
/// enforces the failure-domain invariant: after the plan applies, no
/// rack holds two chunks of one stripe — checked against the surviving
/// holders' racks and across every round's destinations. Hot-standby
/// spares are exempt (dedicated overflow rack), mirroring the node-level
/// exemption above.
void validate_plan(const RepairPlan& plan,
                   const cluster::StripeLayout& layout,
                   const cluster::ClusterState& cluster, int k_repair,
                   const ec::ErasureCode* code = nullptr,
                   int helper_reads_per_node = 1,
                   const net::Topology* topology = nullptr);

}  // namespace fastpr::core
