// Algorithm 2 of the paper: schedule repair rounds.
//
// Given the reconstruction sets from Algorithm 1, each round reconstructs
// the largest remaining set R_l while concurrently migrating cm chunks
// drawn from the smallest sets (cm = tr/tm — migration and
// reconstruction finish a round together). Larger sets go to
// reconstruction because they parallelize; smaller sets migrate because
// their parallelism is poor and migration costs no extra traffic.
#pragma once

#include <functional>
#include <vector>

#include "cluster/types.h"
#include "core/cost_model.h"

namespace fastpr::core {

struct ScheduledRound {
  std::vector<cluster::ChunkRef> reconstruct;  // R_l
  std::vector<cluster::ChunkRef> migrate;      // M_l
  /// How this round's reconstructions move their helper traffic.
  RepairStrategy strategy = RepairStrategy::kFanIn;
};

struct SchedulerOptions {
  /// Ablation: override the model-derived quota with a constant
  /// (negative = use cm = tr(cr)/tm from the cost model).
  int fixed_migration_quota = -1;
  /// Cap on cr + cm per round so the scattered destination matching is
  /// always feasible (|healthy dests| - (n-1)). 0 = no cap (hot-standby).
  int max_round_repairs = 0;
  /// Reconstruction strategy per round: fan-in, chain, or let the cost
  /// model pick the faster one for each round's cr (kAuto). The
  /// migration quota cm = tr(cr)/tm always uses the chosen strategy's
  /// tr — a pipelined round finishes sooner and carries fewer
  /// migrations alongside it.
  StrategyChoice strategy = StrategyChoice::kFanIn;
};

/// Resolves the planner-facing knob to a concrete per-round strategy.
RepairStrategy resolve_strategy(StrategyChoice choice,
                                const CostModel& model, int cr);

/// Runs Algorithm 2. `recon_sets` is consumed by value (the algorithm
/// splits sets). The model supplies the per-round migration quota.
std::vector<ScheduledRound> schedule_repair(
    std::vector<std::vector<cluster::ChunkRef>> recon_sets,
    const CostModel& model, const SchedulerOptions& options = {});

/// Multi-STF Algorithm 2 (DESIGN.md §8): the sets cover the union of a
/// batch of STF nodes' chunks; each STF node's disk is an independent
/// migration stream, so every node in `stf_batch` gets its OWN per-round
/// quota cm = tr(cr)/tm while `options.max_round_repairs` still bounds
/// the round's total cr + cm (shared destination capacity). `owner_of`
/// maps a chunk to the STF node storing it (must be in `stf_batch`).
/// With a one-node batch this reproduces schedule_repair byte-for-byte.
std::vector<ScheduledRound> schedule_repair_multi(
    std::vector<std::vector<cluster::ChunkRef>> recon_sets,
    const CostModel& model,
    const std::function<cluster::NodeId(cluster::ChunkRef)>& owner_of,
    const std::vector<cluster::NodeId>& stf_batch,
    const SchedulerOptions& options = {});

}  // namespace fastpr::core
