// Algorithm 2 of the paper: schedule repair rounds.
//
// Given the reconstruction sets from Algorithm 1, each round reconstructs
// the largest remaining set R_l while concurrently migrating cm chunks
// drawn from the smallest sets (cm = tr/tm — migration and
// reconstruction finish a round together). Larger sets go to
// reconstruction because they parallelize; smaller sets migrate because
// their parallelism is poor and migration costs no extra traffic.
#pragma once

#include <vector>

#include "cluster/types.h"
#include "core/cost_model.h"

namespace fastpr::core {

struct ScheduledRound {
  std::vector<cluster::ChunkRef> reconstruct;  // R_l
  std::vector<cluster::ChunkRef> migrate;      // M_l
};

struct SchedulerOptions {
  /// Ablation: override the model-derived quota with a constant
  /// (negative = use cm = tr(cr)/tm from the cost model).
  int fixed_migration_quota = -1;
  /// Cap on cr + cm per round so the scattered destination matching is
  /// always feasible (|healthy dests| - (n-1)). 0 = no cap (hot-standby).
  int max_round_repairs = 0;
};

/// Runs Algorithm 2. `recon_sets` is consumed by value (the algorithm
/// splits sets). The model supplies the per-round migration quota.
std::vector<ScheduledRound> schedule_repair(
    std::vector<std::vector<cluster::ChunkRef>> recon_sets,
    const CostModel& model, const SchedulerOptions& options = {});

}  // namespace fastpr::core
