#include "core/fastpr.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/placement.h"
#include "core/reactive.h"
#include "telemetry/trace.h"
#include "util/check.h"

namespace fastpr::core {

using cluster::ChunkRef;
using cluster::NodeId;

FastPrPlanner::FastPrPlanner(const cluster::StripeLayout& layout,
                             const cluster::ClusterState& cluster,
                             const PlannerOptions& options)
    : layout_(layout),
      cluster_(cluster),
      options_(options),
      stf_(cluster.stf_node()) {
  FASTPR_CHECK_MSG(stf_ != cluster::kNoNode,
                   "no STF node flagged in the cluster");
  FASTPR_CHECK(options.k_repair >= 1);
  FASTPR_CHECK(options.chunk_bytes > 0);
  if (options.scenario == Scenario::kHotStandby) {
    FASTPR_CHECK_MSG(cluster.num_hot_standby() >= 1,
                     "hot-standby repair needs spare nodes");
  }
}

std::vector<NodeId> FastPrPlanner::source_nodes() const {
  return cluster_.healthy_storage_nodes();
}

std::vector<NodeId> FastPrPlanner::dest_nodes() const {
  return options_.scenario == Scenario::kScattered
             ? cluster_.healthy_storage_nodes()
             : cluster_.hot_standby_nodes();
}

int FastPrPlanner::scattered_round_capacity() const {
  const int cap = static_cast<int>(cluster_.healthy_storage_nodes().size()) -
                  (layout_.chunks_per_stripe() - 1);
  FASTPR_CHECK_MSG(cap >= 1,
                   "cluster too small for scattered repair: need M - n >= 1");
  return cap;
}

ReconSetOptions FastPrPlanner::effective_recon_options() const {
  ReconSetOptions opts = options_.recon;
  if (options_.scenario == Scenario::kScattered) {
    const int cap = scattered_round_capacity();
    opts.max_set_size =
        opts.max_set_size > 0 ? std::min(opts.max_set_size, cap) : cap;
  }
  if (opts.topology == nullptr) opts.topology = options_.topology;
  return opts;
}

CostModel FastPrPlanner::cost_model() const {
  ModelParams params;
  params.num_nodes = cluster_.num_storage_nodes();
  params.stf_chunks =
      std::max(1, static_cast<int>(layout_.chunks_on(stf_).size()));
  params.chunk_bytes = options_.chunk_bytes;
  params.disk_bw = cluster_.bandwidth().disk_bytes_per_sec;
  params.net_bw = cluster_.bandwidth().net_bytes_per_sec;
  params.k_repair = options_.k_repair;
  params.hot_standby = std::max(1, cluster_.num_hot_standby());
  params.scenario = options_.scenario;
  params.packet_bytes = options_.packet_bytes;
  params.chain_hop_overhead_seconds = options_.chain_hop_overhead_seconds;
  params.repair_bw_fraction = options_.repair_bw_fraction;
  if (options_.topology != nullptr && !options_.topology->is_flat()) {
    // Rack-disjoint stripes put every helper in a foreign rack; rack-
    // aware migrations stay in-rack while hot-standby spares live in an
    // overflow rack every migration must cross into (DESIGN.md §11).
    params.oversubscription = options_.topology->oversubscription();
    params.cross_rack_helper_fraction = 1.0;
    params.cross_rack_migration_fraction =
        options_.scenario == Scenario::kHotStandby ? 1.0 : 0.0;
  }
  return CostModel(params);
}

void FastPrPlanner::use_reconstruction_sets(
    std::vector<std::vector<ChunkRef>> sets) {
  // Exact-cover check against the STF node's chunks.
  std::unordered_set<ChunkRef, cluster::ChunkRefHash> expected;
  for (ChunkRef c : layout_.chunks_on(stf_)) expected.insert(c);
  size_t covered = 0;
  const size_t cap =
      options_.scenario == Scenario::kScattered
          ? static_cast<size_t>(scattered_round_capacity())
          : std::numeric_limits<size_t>::max();
  const size_t total = expected.size();
  for (const auto& set : sets) {
    FASTPR_CHECK_MSG(set.size() <= cap,
                     "precomputed set exceeds destination capacity");
    for (ChunkRef c : set) {
      FASTPR_CHECK_MSG(expected.erase(c) == 1,
                       "precomputed sets repeat a chunk or cover a "
                       "foreign one");
      ++covered;
    }
  }
  FASTPR_CHECK_MSG(covered == total, "precomputed sets cover "
                                         << covered << " of " << total
                                         << " chunks");
  cached_sets_ = std::move(sets);
  recon_stats_ = {};
  sets_ready_ = true;
}

const std::vector<std::vector<ChunkRef>>& FastPrPlanner::recon_sets() {
  if (!sets_ready_) {
    FASTPR_TRACE_SPAN("planner.recon_sets", "planner");
    recon_stats_ = {};
    cached_sets_ = find_reconstruction_sets(
        layout_, stf_, source_nodes(), options_.k_repair,
        effective_recon_options(), &recon_stats_, options_.code);
    sets_ready_ = true;
  }
  return cached_sets_;
}

RepairPlan FastPrPlanner::plan_fastpr() {
  FASTPR_TRACE_SPAN("planner.plan_fastpr", "planner");
  const auto sources = source_nodes();
  const auto dests = dest_nodes();

  auto sets = recon_sets();  // copy: the scheduler splits sets

  SchedulerOptions sched = options_.sched;
  if (options_.scenario == Scenario::kScattered) {
    sched.max_round_repairs = scattered_round_capacity();
  }
  const auto rounds = [&] {
    FASTPR_TRACE_SPAN("planner.schedule", "planner");
    return schedule_repair(std::move(sets), cost_model(), sched);
  }();

  RepairPlan plan;
  plan.stf_node = stf_;
  int standby_cursor = 0;
  for (const auto& round : rounds) {
    plan.rounds.push_back(assign_round(layout_, stf_, sources, dests,
                                       options_.scenario, options_.k_repair,
                                       round, &standby_cursor,
                                       options_.code,
                                       options_.balance_destinations,
                                       options_.topology));
  }
  return plan;
}

RepairPlan FastPrPlanner::plan_reconstruction_only() {
  const auto sources = source_nodes();
  const auto dests = dest_nodes();
  const auto& sets = recon_sets();
  const CostModel model = cost_model();

  RepairPlan plan;
  plan.stf_node = stf_;
  int standby_cursor = 0;
  for (const auto& set : sets) {
    ScheduledRound round;
    round.reconstruct = set;
    round.strategy = resolve_strategy(options_.sched.strategy, model,
                                      static_cast<int>(set.size()));
    plan.rounds.push_back(assign_round(layout_, stf_, sources, dests,
                                       options_.scenario, options_.k_repair,
                                       round, &standby_cursor,
                                       options_.code,
                                       options_.balance_destinations,
                                       options_.topology));
  }
  return plan;
}

RepairPlan FastPrPlanner::plan_migration_only() {
  const auto sources = source_nodes();
  const auto dests = dest_nodes();
  const auto chunks = layout_.chunks_on(stf_);

  RepairPlan plan;
  plan.stf_node = stf_;
  int standby_cursor = 0;

  if (options_.scenario == Scenario::kHotStandby) {
    ScheduledRound round;
    round.migrate = chunks;
    plan.rounds.push_back(assign_round(layout_, stf_, sources, dests,
                                       options_.scenario, options_.k_repair,
                                       round, &standby_cursor,
                                       options_.code,
                                       options_.balance_destinations,
                                       options_.topology));
    return plan;
  }

  // Scattered: batch into rounds small enough that every batch admits a
  // perfect destination matching. (Rounds do not change migration time —
  // the STF node serializes them anyway.)
  const size_t batch = static_cast<size_t>(scattered_round_capacity());
  for (size_t start = 0; start < chunks.size(); start += batch) {
    ScheduledRound round;
    const size_t end = std::min(chunks.size(), start + batch);
    round.migrate.assign(chunks.begin() + static_cast<ptrdiff_t>(start),
                         chunks.begin() + static_cast<ptrdiff_t>(end));
    plan.rounds.push_back(assign_round(layout_, stf_, sources, dests,
                                       options_.scenario, options_.k_repair,
                                       round, &standby_cursor,
                                       options_.code,
                                       options_.balance_destinations,
                                       options_.topology));
  }
  return plan;
}

ReactiveReplan FastPrPlanner::plan_reactive(
    const std::vector<ChunkRef>& already_repaired,
    const std::vector<NodeId>& failed) {
  std::unordered_set<ChunkRef, cluster::ChunkRefHash> handled(
      already_repaired.begin(), already_repaired.end());
  std::vector<ChunkRef> remaining;
  for (ChunkRef chunk : layout_.chunks_on(stf_)) {
    if (handled.count(chunk) == 0) remaining.push_back(chunk);
  }

  ReactiveReplan out;
  out.plan.stf_node = stf_;
  if (remaining.empty()) return out;

  // The dead set: the STF node itself plus everything declared failed
  // during execution (deduplicated, order-stable for determinism).
  std::vector<NodeId> dead{stf_};
  std::unordered_set<NodeId> dead_set{stf_};
  for (NodeId n : failed) {
    if (dead_set.insert(n).second) dead.push_back(n);
  }

  ReactiveOptions reactive;
  reactive.scenario = options_.scenario;
  reactive.k_repair = options_.k_repair;
  reactive.chunk_bytes = options_.chunk_bytes;
  reactive.code = options_.code;
  reactive.recon = options_.recon;
  // Reactive rounds keep the helper rack-spreading preference; the rack
  // destination invariant is best-effort in degraded mode (survival
  // beats placement quality once data is at risk).
  if (reactive.recon.topology == nullptr) {
    reactive.recon.topology = options_.topology;
  }
  ReactivePlanner planner(layout_, cluster_, reactive);
  ReactiveResult result = planner.plan_chunks(remaining, dead);
  out.plan = std::move(result.plan);
  out.plan.stf_node = stf_;
  out.unrepairable = std::move(result.unrecoverable);
  out.degraded_repairs = result.degraded_repairs;
  return out;
}

RepairPlan FastPrPlanner::plan_fastpr_remaining(
    const std::vector<ChunkRef>& already_repaired,
    const std::vector<NodeId>& deprioritized) {
  FASTPR_TRACE_SPAN("planner.plan_fastpr_remaining", "planner");
  std::unordered_set<ChunkRef, cluster::ChunkRefHash> handled(
      already_repaired.begin(), already_repaired.end());
  std::vector<ChunkRef> remaining;
  for (ChunkRef chunk : layout_.chunks_on(stf_)) {
    if (handled.count(chunk) == 0) remaining.push_back(chunk);
  }

  RepairPlan plan;
  plan.stf_node = stf_;
  if (remaining.empty()) return plan;

  const auto sources = source_nodes();
  const auto dests = dest_nodes();

  const ReconSetOptions recon = effective_recon_options();
  ReconSetStats stats;
  std::vector<std::vector<ChunkRef>> sets;

  // Stragglers are planned around structurally: chunks that can still
  // reach k' helpers without the deprioritized nodes form their sets
  // over the REDUCED source list, so those rounds are matchable with
  // zero straggler reads by construction. Preference ordering alone
  // cannot deliver that — Algorithm 1 packs rounds to the full node
  // count's capacity, leaving the per-round matching too saturated to
  // route around even one avoided node. Chunks whose stripes lost too
  // many holders to the straggler set fall back to the full source
  // list with the stragglers merely deprioritized.
  std::vector<ChunkRef> tainted;
  bool reduced = false;
  if (!deprioritized.empty()) {
    const std::unordered_set<NodeId> slow_set(deprioritized.begin(),
                                              deprioritized.end());
    std::vector<NodeId> fast_sources;
    for (NodeId node : sources) {
      if (slow_set.count(node) == 0) fast_sources.push_back(node);
    }
    if (static_cast<int>(fast_sources.size()) >= options_.k_repair) {
      const std::unordered_set<NodeId> fast_set(fast_sources.begin(),
                                                fast_sources.end());
      const auto fast_helpers = [&](ChunkRef chunk) {
        const auto& nodes = layout_.stripe_nodes(chunk.stripe);
        int eligible = 0;
        if (options_.code != nullptr) {
          for (int idx : options_.code->helper_candidates(chunk.index)) {
            if (fast_set.count(nodes[static_cast<size_t>(idx)]) > 0) {
              ++eligible;
            }
          }
        } else {
          for (NodeId node : nodes) {
            if (fast_set.count(node) > 0) ++eligible;
          }
        }
        return eligible;
      };
      const auto fetch = [&](ChunkRef chunk) {
        return options_.code != nullptr
                   ? options_.code->repair_fetch_count(chunk.index)
                   : options_.k_repair;
      };
      std::vector<ChunkRef> clean;
      for (ChunkRef chunk : remaining) {
        (fast_helpers(chunk) >= fetch(chunk) ? clean : tainted)
            .push_back(chunk);
      }
      if (!clean.empty()) {
        sets = find_reconstruction_sets_for(clean, layout_, fast_sources,
                                            options_.k_repair, recon,
                                            &stats, options_.code);
      }
      reduced = true;
    }
  }
  if (!reduced) tainted = std::move(remaining);
  if (!tainted.empty()) {
    ReconSetOptions tainted_recon = recon;
    tainted_recon.deprioritized = deprioritized;
    auto tainted_sets =
        find_reconstruction_sets_for(tainted, layout_, sources,
                                     options_.k_repair, tainted_recon,
                                     &stats, options_.code);
    for (auto& set : tainted_sets) sets.push_back(std::move(set));
  }

  SchedulerOptions sched = options_.sched;
  if (options_.scenario == Scenario::kScattered) {
    sched.max_round_repairs = scattered_round_capacity();
  }
  const auto rounds = schedule_repair(std::move(sets), cost_model(), sched);

  int standby_cursor = 0;
  for (const auto& round : rounds) {
    plan.rounds.push_back(assign_round(layout_, stf_, sources, dests,
                                       options_.scenario, options_.k_repair,
                                       round, &standby_cursor,
                                       options_.code,
                                       options_.balance_destinations,
                                       options_.topology,
                                       &deprioritized));
  }
  return plan;
}

}  // namespace fastpr::core
