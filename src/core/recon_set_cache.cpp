#include "core/recon_set_cache.h"

#include "util/check.h"

namespace fastpr::core {

ReconSetCache::ReconSetCache(const Options& options) : options_(options) {
  FASTPR_CHECK(options.k_repair >= 1);
}

void ReconSetCache::precompute(const cluster::StripeLayout& layout,
                               const cluster::ClusterState& cluster,
                               cluster::NodeId node) {
  FASTPR_CHECK(node >= 0 && node < cluster.num_storage_nodes());
  // Helpers: every healthy storage node except the candidate itself
  // (exactly the set the planner would use if `node` turned STF).
  std::vector<cluster::NodeId> sources;
  for (cluster::NodeId n : cluster.healthy_storage_nodes()) {
    if (n != node) sources.push_back(n);
  }
  Entry entry;
  entry.layout_version = layout.version();
  entry.sets =
      find_reconstruction_sets(layout, node, sources, options_.k_repair,
                               options_.recon, nullptr, options_.code);
  MutexLock lock(mutex_);
  entries_[node] = std::move(entry);
}

void ReconSetCache::precompute_all(const cluster::StripeLayout& layout,
                                   const cluster::ClusterState& cluster) {
  for (cluster::NodeId node : cluster.healthy_storage_nodes()) {
    precompute(layout, cluster, node);
  }
}

std::optional<std::vector<std::vector<cluster::ChunkRef>>>
ReconSetCache::lookup(const cluster::StripeLayout& layout,
                      cluster::NodeId node) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(node);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.layout_version != layout.version()) return std::nullopt;
  return it->second.sets;
}

void ReconSetCache::evict_stale(const cluster::StripeLayout& layout) {
  MutexLock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.layout_version != layout.version()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace fastpr::core
