// Storage-node agent of the FastPR prototype (§V).
//
// One dispatcher thread services the node's inbox; data-plane work runs
// on dedicated transfer threads exactly as the paper describes its
// multi-threading: a sending node pairs a disk-reader thread with a
// network-sender thread over a bounded packet queue, and a destination
// node decodes packets as they arrive (per-packet GF multiply-XOR into
// an accumulator) so reception, decoding and disk writes pipeline.
//
// Roles an agent can play in a round, all concurrently:
//  * helper  — answer kFetchRequest by streaming its chunk, scaled by
//    the decode coefficient assigned by the destination;
//  * STF     — answer kMigrateCmd by streaming a chunk to its new home;
//  * dest    — drive a kReconstructCmd: request k helper streams,
//    accumulate, store, ack the coordinator; or absorb a migration
//    stream and ack.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "agent/chunk_store.h"
#include "cluster/types.h"
#include "net/transport.h"
#include "util/mutex.h"

namespace fastpr::agent {

struct AgentOptions {
  cluster::NodeId coordinator = cluster::kNoNode;  // ack target
  /// Bounded depth of the read→send packet queue (pipeline slack).
  size_t pipeline_depth = 4;
};

class Agent {
 public:
  Agent(cluster::NodeId id, net::Transport& transport, ChunkStore& store,
        const AgentOptions& options);
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  void start();

  /// Graceful: drains the dispatcher and joins every transfer thread.
  void stop();

  /// Failure injection: the agent silently stops acting on messages
  /// (simulates a crashed DataNode — the coordinator sees a timeout).
  void kill() { killed_.store(true); }

  cluster::NodeId id() const { return id_; }

 private:
  /// Destination-side state of one in-flight repair task.
  struct TransferState {
    cluster::ChunkRef chunk;  // chunk being repaired
    net::TransferMode mode = net::TransferMode::kStore;
    int expected_streams = 1;
    uint64_t chunk_bytes = 0;
    uint64_t packet_bytes = 0;
    uint32_t total_packets = 0;
    std::vector<uint8_t> accumulator;
    std::vector<int> arrivals;   // per packet index
    uint32_t packets_complete = 0;
  };

  void dispatch_loop();
  void handle_reconstruct_cmd(const net::Message& msg);
  void handle_migrate_cmd(const net::Message& msg);
  void handle_fetch_request(const net::Message& msg);
  void handle_data_packet(net::Message&& msg);

  /// Runs on a transfer thread: pipelined read→send of one chunk.
  void stream_chunk(uint64_t task_id, cluster::ChunkRef chunk,
                    cluster::NodeId dst, net::TransferMode mode,
                    uint8_t coefficient, uint64_t packet_bytes);

  void report_failure(uint64_t task_id, const std::string& error);
  void spawn_worker(std::function<void()> fn)
      FASTPR_EXCLUDES(workers_mutex_);

  cluster::NodeId id_;
  net::Transport& transport_;
  ChunkStore& store_;
  AgentOptions options_;

  std::thread dispatcher_;
  Mutex workers_mutex_;
  std::vector<std::thread> workers_ FASTPR_GUARDED_BY(workers_mutex_);
  std::unordered_map<uint64_t, TransferState> tasks_;  // dispatcher-only
  std::atomic<bool> killed_{false};
  bool started_ = false;
};

}  // namespace fastpr::agent
