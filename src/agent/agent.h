// Storage-node agent of the FastPR prototype (§V).
//
// One dispatcher thread services the node's inbox; data-plane work runs
// on a small set of persistent threads exactly as the paper describes
// its multi-threading: disk-reader tasks pace the disk and feed packets
// to persistent network-sender workers over a bounded per-transfer
// window, and a destination node decodes packets as they arrive so
// reception, decoding and disk writes pipeline. Packet payloads are
// pool-recycled (util/buffer_pool.h): a steady-state transfer reuses a
// fixed working set of buffers instead of allocating per packet, and a
// reconstruction fuses all k helper streams of a packet index into one
// gf::dot_region_xor pass instead of k separate multiply-XOR sweeps.
//
// Roles an agent can play in a round, all concurrently:
//  * helper  — answer kFetchRequest by streaming its chunk, scaled by
//    the decode coefficient assigned by the destination;
//  * STF     — answer kMigrateCmd by streaming a chunk to its new home;
//  * dest    — drive a kReconstructCmd: request k helper streams,
//    accumulate, store, ack the coordinator; or absorb a migration
//    stream and ack;
//  * chain hop — join a kChainCmd partial-sum chain: fold its own
//    scaled chunk into each received packet in place (one fused
//    multiply-XOR on the pooled payload, no copy) and forward it to the
//    next hop under the same bounded send window, so every link of the
//    chain streams concurrently and the whole repair approaches the
//    single-transfer bound (repair pipelining).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "agent/chunk_store.h"
#include "agent/repair_budget.h"
#include "cluster/types.h"
#include "net/transport.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace fastpr::agent {

struct AgentOptions {
  cluster::NodeId coordinator = cluster::kNoNode;  // ack target
  /// Bounded per-transfer read→send window (pipeline slack): a reader
  /// task stalls once this many of its packets are queued or on the
  /// wire, which is what paces the disk against the network.
  size_t pipeline_depth = 4;
  /// Persistent disk-reader tasks servicing fetch/migrate commands.
  size_t reader_threads = 4;
  /// Persistent network-sender workers draining the packet queue.
  /// More than one so a destination with a saturated downlink does not
  /// head-of-line block streams this node sends to other destinations.
  size_t sender_threads = 4;
  /// Coordinator-leased repair-bandwidth enforcement (DESIGN.md §10).
  /// When set, every outgoing repair data packet blocks on this budget
  /// before it touches the NIC, and kLeaseGrant messages re-rate it.
  /// Null = legacy behavior (repair competes for the raw NIC share).
  RepairBudget* repair_budget = nullptr;
  /// Where this agent samples its node's foreground pressure for
  /// kPressureReport replies and kPong piggybacks. Null = report zero
  /// pressure (the throttler then simply ramps to its ceiling).
  PressureSource* pressure = nullptr;
};

class Agent {
 public:
  Agent(cluster::NodeId id, net::Transport& transport, ChunkStore& store,
        const AgentOptions& options);
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  void start();

  /// Graceful: drains the dispatcher, reader tasks and sender workers.
  void stop();

  /// Failure injection: the agent silently stops acting on messages
  /// (simulates a crashed DataNode — the coordinator sees a timeout).
  void kill() { killed_.store(true); }

  cluster::NodeId id() const { return id_; }

 private:
  /// Per-transfer flow-control window: how many of the transfer's
  /// packets sit between the reader and the wire. Shared by the reader
  /// task and the sender workers, hence reference-counted.
  struct SendWindow {
    Mutex mutex{lock_order::kAgentSendWindow};
    CondVar cv;
    size_t in_flight FASTPR_GUARDED_BY(mutex) = 0;
  };

  /// One packet handed from a reader to the sender workers.
  struct SendItem {
    net::Message msg;
    std::shared_ptr<SendWindow> window;
  };

  /// Destination-side state of one in-flight repair task.
  struct TransferState {
    cluster::ChunkRef chunk;  // chunk being repaired
    net::TransferMode mode = net::TransferMode::kStore;
    /// Attempt this state belongs to. A command with a higher attempt
    /// replaces the state wholesale; packets whose attempt mismatches
    /// are stale (superseded retry) and dropped.
    uint32_t attempt = 0;
    int expected_streams = 1;
    uint64_t chunk_bytes = 0;
    uint64_t packet_bytes = 0;
    uint32_t total_packets = 0;
    std::vector<uint8_t> accumulator;
    /// Per packet index: the payloads+coefficients that have arrived so
    /// far. Once all expected streams are in, one fused dot_region_xor
    /// folds them into the accumulator and the buffers recycle.
    /// `senders` mirrors `payloads` so a duplicated packet (flaky
    /// network) cannot contribute the same stream twice; `done` rejects
    /// any duplicate arriving after the fold.
    struct Pending {
      std::vector<PooledBuffer> payloads;
      std::vector<uint8_t> coeffs;
      std::vector<cluster::NodeId> senders;
      bool done = false;
    };
    std::vector<Pending> pending;
    uint32_t packets_complete = 0;
  };

  /// This node's slot in one partial-sum chain (packet-level repair
  /// pipelining). Dispatcher-confined like tasks_, so the hop path
  /// takes no locks of its own beyond the shared send machinery.
  struct ChainState {
    uint32_t attempt = 0;
    uint32_t hop = 0;
    /// Where folded packets go: the next hop, or the destination when
    /// this is the last hop (which then sends a plain kStore stream).
    cluster::NodeId next = cluster::kNoNode;
    bool last = false;
    cluster::ChunkRef chunk;    // chunk being repaired (forwarded refs)
    uint8_t coefficient = 0;    // own decode coefficient
    uint64_t chunk_bytes = 0;
    uint64_t packet_bytes = 0;
    uint32_t total_packets = 0;
    /// Own helper chunk, read once at command time; each arriving
    /// packet folds the matching slice into the received partial sum
    /// in place (single-source dot_region_xor — no copy, no alloc).
    std::vector<uint8_t> own;
    std::vector<bool> forwarded;  // per-index duplicate rejection
    uint32_t forwarded_count = 0;
    std::shared_ptr<SendWindow> window;
  };

  /// Packets buffered by handle_chain_packet() for one chain whose
  /// kChainCmd has not arrived yet (TCP delivers the predecessor's
  /// stream and our command on unordered connections).
  static constexpr size_t kChainEarlyCap = 64;

  void dispatch_loop();
  void handle_reconstruct_cmd(const net::Message& msg);
  void handle_migrate_cmd(const net::Message& msg);
  void handle_fetch_request(const net::Message& msg);
  void handle_data_packet(net::Message&& msg);
  void handle_chain_cmd(const net::Message& msg);
  void handle_chain_packet(net::Message&& msg);
  void handle_cancel_task(const net::Message& msg);
  void handle_ping(const net::Message& msg);
  void handle_lease_grant(const net::Message& msg);

  /// Samples the node's foreground pressure (zero without a source) and
  /// stamps it into the message's lease-protocol fields.
  void stamp_pressure(net::Message& msg);

  /// Runs as a reader task: hop 0 of a chain reads its chunk, scales
  /// each packet by its own coefficient and streams the seed partial
  /// sums down the chain (a kStore stream straight to the destination
  /// when the chain has a single hop).
  void chain_stream_head(uint64_t task_id, uint32_t attempt,
                         cluster::ChunkRef chunk, cluster::ChunkRef own,
                         cluster::NodeId next, bool last,
                         uint8_t coefficient, uint64_t packet_bytes);

  /// Runs as a reader task: pipelined read→send of one chunk.
  void stream_chunk(uint64_t task_id, uint32_t attempt,
                    cluster::ChunkRef chunk, cluster::NodeId dst,
                    net::TransferMode mode, uint8_t coefficient,
                    uint64_t packet_bytes);

  /// Blocks until the transfer's window has room, then queues the
  /// packet for the sender workers.
  void enqueue_send(net::Message&& msg,
                    const std::shared_ptr<SendWindow>& window)
      FASTPR_EXCLUDES(send_mutex_);

  void sender_loop() FASTPR_EXCLUDES(send_mutex_);

  void report_failure(uint64_t task_id, uint32_t attempt,
                      const std::string& error);

  cluster::NodeId id_;
  net::Transport& transport_;
  ChunkStore& store_;
  AgentOptions options_;

  std::thread dispatcher_;
  /// Disk-reader tasks (stream_chunk) run here; destroyed (drained and
  /// joined) before the sender workers shut down so every queued packet
  /// still finds a live sender.
  std::unique_ptr<ThreadPool> reader_pool_;

  Mutex send_mutex_{lock_order::kAgentSendQueue};
  CondVar send_cv_;
  std::deque<SendItem> send_queue_ FASTPR_GUARDED_BY(send_mutex_);
  bool send_closed_ FASTPR_GUARDED_BY(send_mutex_) = false;
  std::vector<std::thread> senders_;

  std::unordered_map<uint64_t, TransferState> tasks_;  // dispatcher-only
  std::unordered_map<uint64_t, ChainState> chain_tasks_;  // dispatcher-only
  /// Chain packets that outran their kChainCmd (dispatcher-only).
  std::unordered_map<uint64_t, std::vector<net::Message>> chain_early_;
  /// Finished chain hops (task → attempt): a straggling duplicate of a
  /// completed chain must be dropped, not parked in chain_early_.
  std::unordered_map<uint64_t, uint32_t> chain_done_;  // dispatcher-only
  std::atomic<bool> killed_{false};
  bool started_ = false;
};

}  // namespace fastpr::agent
