// Agent-side enforcement of coordinator-leased repair bandwidth
// (DESIGN.md §10).
//
// A RepairBudget wraps one TokenBucket whose rate is whatever the
// coordinator last leased to this agent. Sender workers call acquire()
// for every repair data packet, so repair traffic blocks on the leased
// budget rather than the raw NIC share. Grants are applied only in
// sequence order — a re-sent or reordered kLeaseGrant can never
// double-apply — and a lease that reaches its TTL without renewal drops
// the bucket to a configured floor rate: a partitioned agent cannot
// keep consuming a share the coordinator has already returned to the
// pool, yet still trickles (liveness) until a fresh grant arrives.
//
// Lock discipline: the lease bookkeeping mutex (agent.repair_budget,
// rank 25) is only ever held for arithmetic; the blocking
// TokenBucket::acquire happens strictly after it is released.
#pragma once

#include <atomic>
#include <cstdint>

#include "cluster/types.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/token_bucket.h"
#include "util/units.h"

namespace fastpr::agent {

/// One foreground-pressure observation for a node: what an agent
/// reports to the coordinator in kPressureReport and piggybacks on
/// kPong.
struct NodePressure {
  double p99_seconds = 0;        // foreground op p99 latency
  double fg_bytes_per_sec = 0;   // foreground throughput on the node
};

/// Where an agent samples its node's foreground pressure from. The
/// testbed hands every agent a pointer into the foreground workload
/// (load::ForegroundWorkload implements this); without one, agents
/// report zero pressure and the throttler simply ramps to its ceiling.
class PressureSource {
 public:
  virtual ~PressureSource() = default;
  virtual NodePressure sample(cluster::NodeId node) = 0;
};

/// Late-binding indirection: agents capture their PressureSource at
/// construction, but the foreground workload is usually built *after*
/// the testbed. Agents point here; the testbed retargets it once the
/// workload exists. Unset target = zero pressure.
class ForwardingPressureSource final : public PressureSource {
 public:
  void set_target(PressureSource* target) {
    target_.store(target, std::memory_order_release);
  }
  NodePressure sample(cluster::NodeId node) override {
    PressureSource* t = target_.load(std::memory_order_acquire);
    return t != nullptr ? t->sample(node) : NodePressure{};
  }

 private:
  std::atomic<PressureSource*> target_{nullptr};
};

class RepairBudget {
 public:
  struct Options {
    /// Rate after a lease expires un-renewed (and before the first
    /// grant arrives). Keep small: this is the partitioned-agent
    /// trickle, not a working share.
    double floor_bytes_per_sec = 64 * kKiB;
    /// Bucket burst. Small relative to repair packets so re-leases take
    /// effect within a packet or two.
    int64_t burst_bytes = 256 * kKiB;
  };

  explicit RepairBudget(const Options& options);

  /// Applies a grant if `seq` advances the applied sequence; stale or
  /// duplicate grants are dropped. Returns whether it was applied.
  bool apply_grant(uint64_t seq, double bytes_per_sec, int64_t ttl_us,
                   int64_t now_us) FASTPR_EXCLUDES(mutex_);

  /// Blocks until `bytes` of leased budget are available, first folding
  /// in TTL expiry (expired lease → floor rate).
  void acquire(int64_t bytes, int64_t now_us) FASTPR_EXCLUDES(mutex_);

  /// Teardown aid: unlimits the bucket so blocked senders drain out.
  /// Sticky — later grants and expiries are ignored.
  void release() FASTPR_EXCLUDES(mutex_);

  uint64_t applied_seq() const FASTPR_EXCLUDES(mutex_);
  double current_rate() const { return bucket_.rate(); }
  int64_t leases_applied() const FASTPR_EXCLUDES(mutex_);
  int64_t expirations() const FASTPR_EXCLUDES(mutex_);

 private:
  /// Drops to the floor rate if the active lease has outlived its TTL.
  /// Returns true when an expiry was folded in. Caller must NOT hold
  /// mutex_ (takes it, releases it, then touches the bucket).
  bool expire_if_stale(int64_t now_us) FASTPR_EXCLUDES(mutex_);

  const Options options_;
  TokenBucket bucket_;

  mutable Mutex mutex_{lock_order::kAgentRepairBudget};
  uint64_t applied_seq_ FASTPR_GUARDED_BY(mutex_) = 0;
  int64_t lease_expires_us_ FASTPR_GUARDED_BY(mutex_) = 0;  // 0 = no lease
  bool released_ FASTPR_GUARDED_BY(mutex_) = false;
  int64_t leases_applied_ FASTPR_GUARDED_BY(mutex_) = 0;
  int64_t expirations_ FASTPR_GUARDED_BY(mutex_) = 0;
};

}  // namespace fastpr::agent
