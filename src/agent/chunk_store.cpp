#include "agent/chunk_store.h"

#include <fstream>
#include <sstream>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace fastpr::agent {

ChunkStore::ChunkStore(const Options& options, const ChunkOracle* oracle)
    : options_(options),
      oracle_(oracle),
      disk_(std::make_unique<TokenBucket>(options.disk_bytes_per_sec)) {
  if (options_.directory.has_value()) {
    std::filesystem::create_directories(*options_.directory);
  }
}

std::filesystem::path ChunkStore::path_for(cluster::ChunkRef chunk) const {
  std::ostringstream name;
  name << "s" << chunk.stripe << "_i" << chunk.index << ".chunk";
  return *options_.directory / name.str();
}

void ChunkStore::write(cluster::ChunkRef chunk, std::vector<uint8_t> data) {
  FASTPR_TRACE_SPAN("store.write", "store");
  charge_io(static_cast<int64_t>(data.size()));
  write_unthrottled(chunk, std::move(data));
}

std::optional<std::vector<uint8_t>> ChunkStore::read_unthrottled(
    cluster::ChunkRef chunk) const {
  std::optional<std::vector<uint8_t>> materialized;
  {
    MutexLock lock(mutex_);
    if (read_errors_.count(chunk) != 0) return std::nullopt;
    const auto it = chunks_.find(chunk);
    if (it != chunks_.end()) materialized = it->second;
  }
  if (materialized.has_value()) return materialized;

  // File-backed?
  if (options_.directory.has_value()) {
    bool present;
    {
      MutexLock lock(mutex_);
      present = on_disk_.count(chunk) != 0;
    }
    if (present) {
      std::ifstream in(path_for(chunk), std::ios::binary | std::ios::ate);
      FASTPR_CHECK_MSG(in.good(), "chunk file disappeared");
      const auto size = static_cast<size_t>(in.tellg());
      in.seekg(0);
      std::vector<uint8_t> data(size);
      in.read(reinterpret_cast<char*>(data.data()),
              static_cast<std::streamsize>(size));
      FASTPR_CHECK(in.good());
      return data;
    }
  }
  // Synthesized content.
  if (oracle_ != nullptr) return oracle_->generate(chunk);
  return std::nullopt;
}

std::optional<std::vector<uint8_t>> ChunkStore::read(
    cluster::ChunkRef chunk) const {
  FASTPR_TRACE_SPAN("store.read", "store");
  auto data = read_unthrottled(chunk);
  if (data.has_value()) {
    charge_io(static_cast<int64_t>(data->size()));
  }
  return data;
}

void ChunkStore::write_unthrottled(cluster::ChunkRef chunk,
                                   std::vector<uint8_t> data) {
  const uint32_t checksum = crc32c(data);
  {
    MutexLock lock(mutex_);
    checksums_[chunk] = checksum;
  }
  if (options_.directory.has_value()) {
    std::ofstream out(path_for(chunk), std::ios::binary | std::ios::trunc);
    FASTPR_CHECK_MSG(out.good(), "cannot open chunk file for write");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    FASTPR_CHECK(out.good());
    MutexLock lock(mutex_);
    on_disk_.insert(chunk);
    return;
  }
  MutexLock lock(mutex_);
  chunks_[chunk] = std::move(data);
}

void ChunkStore::charge_io(int64_t bytes) const {
  // The span exposes disk pacing: its duration is the time this packet
  // spent waiting on the token bucket.
  FASTPR_TRACE_SPAN("store.charge_io", "store", bytes, "bytes");
  disk_->acquire(bytes);
  static telemetry::Counter& io_bytes =
      telemetry::MetricsRegistry::global().counter("store.io_bytes");
  io_bytes.add(bytes);
}

bool ChunkStore::has_materialized(cluster::ChunkRef chunk) const {
  MutexLock lock(mutex_);
  return chunks_.count(chunk) != 0 || on_disk_.count(chunk) != 0;
}

bool ChunkStore::contains(cluster::ChunkRef chunk) const {
  {
    MutexLock lock(mutex_);
    if (chunks_.count(chunk) != 0 || on_disk_.count(chunk) != 0) return true;
  }
  if (oracle_ != nullptr) {
    return oracle_->generate(chunk).has_value();
  }
  return false;
}

void ChunkStore::erase(cluster::ChunkRef chunk) {
  MutexLock lock(mutex_);
  chunks_.erase(chunk);
  checksums_.erase(chunk);
  if (on_disk_.erase(chunk) != 0) {
    std::filesystem::remove(path_for(chunk));
  }
}

void ChunkStore::inject_read_error(cluster::ChunkRef chunk) {
  MutexLock lock(mutex_);
  read_errors_.insert(chunk);
}

void ChunkStore::clear_read_errors() {
  MutexLock lock(mutex_);
  read_errors_.clear();
}

void ChunkStore::corrupt(cluster::ChunkRef chunk, size_t byte_index) {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(chunk);
  FASTPR_CHECK_MSG(it != chunks_.end(),
                   "can only corrupt an in-memory materialized chunk");
  FASTPR_CHECK(byte_index < it->second.size());
  it->second[byte_index] ^= 0x01;
}

std::vector<cluster::ChunkRef> ChunkStore::scrub() const {
  std::vector<cluster::ChunkRef> damaged;
  MutexLock lock(mutex_);
  for (const auto& [ref, data] : chunks_) {
    const auto it = checksums_.find(ref);
    if (it == checksums_.end() || crc32c(data) != it->second) {
      damaged.push_back(ref);
    }
  }
  return damaged;
}

size_t ChunkStore::materialized_count() const {
  MutexLock lock(mutex_);
  return chunks_.size() + on_disk_.size();
}

}  // namespace fastpr::agent
