#include "agent/testbed.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "gf/gf256.h"
#include "net/inproc_transport.h"
#include "net/tcp_transport.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr::agent {

using cluster::ChunkRef;
using cluster::NodeId;

namespace {

/// splitmix64: fast deterministic filler for data-chunk contents.
uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// dst[i] ^= c for the whole buffer, word-at-a-time.
void xor_constant(uint8_t* dst, uint8_t c, size_t len) {
  uint64_t broadcast = c;
  broadcast |= broadcast << 8;
  broadcast |= broadcast << 16;
  broadcast |= broadcast << 32;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t w;
    __builtin_memcpy(&w, dst + i, 8);
    w ^= broadcast;
    __builtin_memcpy(dst + i, &w, 8);
  }
  for (; i < len; ++i) dst[i] = static_cast<uint8_t>(dst[i] ^ c);
}

}  // namespace

SyntheticOracle::SyntheticOracle(const ec::ErasureCode& code,
                                 uint64_t chunk_bytes, int num_stripes,
                                 uint64_t seed)
    : code_(code),
      chunk_bytes_(chunk_bytes),
      num_stripes_(num_stripes),
      seed_(seed),
      pattern_(chunk_bytes) {
  FASTPR_CHECK(chunk_bytes >= 8);
  uint64_t state = seed ^ 0xfa57fa57fa57fa57ULL;
  size_t i = 0;
  for (; i + 8 <= pattern_.size(); i += 8) {
    const uint64_t word = splitmix64(state);
    __builtin_memcpy(pattern_.data() + i, &word, 8);
  }
  for (uint64_t word = splitmix64(state); i < pattern_.size(); ++i) {
    pattern_[i] = static_cast<uint8_t>(word >> (8 * (i % 8)));
  }
}

uint8_t SyntheticOracle::chunk_constant(cluster::StripeId stripe,
                                        int index) const {
  uint64_t state = seed_ ^ (static_cast<uint64_t>(stripe) << 20) ^
                   static_cast<uint64_t>(index);
  return static_cast<uint8_t>(splitmix64(state));
}

std::optional<std::vector<uint8_t>> SyntheticOracle::generate(
    ChunkRef chunk) const {
  if (chunk.stripe < 0 || chunk.stripe >= num_stripes_) return std::nullopt;
  if (chunk.index < 0 || chunk.index >= code_.n()) return std::nullopt;

  if (chunk.index < code_.k()) {
    // Data chunk: P ⊕ c(s, j).
    std::vector<uint8_t> data = pattern_;
    xor_constant(data.data(), chunk_constant(chunk.stripe, chunk.index),
                 data.size());
    return data;
  }

  // Parity: (⊕_j w_j)·P ⊕ K by GF distributivity over XOR.
  const auto coeffs = code_.parity_coefficients(chunk.index);
  uint8_t coeff_sum = 0;
  uint8_t constant = 0;
  for (int j = 0; j < code_.k(); ++j) {
    const uint8_t w = coeffs[static_cast<size_t>(j)];
    coeff_sum = static_cast<uint8_t>(coeff_sum ^ w);
    constant = static_cast<uint8_t>(
        constant ^ gf::mul(w, chunk_constant(chunk.stripe, j)));
  }
  std::vector<uint8_t> parity(chunk_bytes_);
  gf::mul_region(parity.data(), pattern_.data(), coeff_sum,
                 parity.size());
  xor_constant(parity.data(), constant, parity.size());
  return parity;
}

Testbed::Testbed(const TestbedOptions& options, const ec::ErasureCode& code)
    : options_(options), code_(code) {
  FASTPR_CHECK(options.num_storage >= code.n());
  FASTPR_CHECK(options.chunk_bytes >= 1 && options.packet_bytes >= 1);

  const int num_nodes = options.num_storage + options.num_standby + 1;

  oracle_ = std::make_unique<SyntheticOracle>(
      code, options.chunk_bytes, options.num_stripes, options.seed);

  // Per-link expected pace for straggler flagging: a fan-in destination
  // NIC splits across the k_repair helper streams, so a healthy link may
  // legitimately run at net/k — expect that, not the full NIC rate.
  // Migration links run faster than this and simply never flag.
  if (options.net_bytes_per_sec > 0) {
    flow_.set_default_expected_rate(
        options.net_bytes_per_sec /
        std::max(1, code.repair_fetch_count(0)));
  }

  if (options.use_tcp) {
    net::TcpTransport::Options topts;
    topts.net_bytes_per_sec = options.net_bytes_per_sec;
    topts.chain_hop_overhead_seconds = options.chain_hop_overhead_seconds;
    topts.flow_monitor = &flow_;
    transport_ = std::make_unique<net::TcpTransport>(num_nodes, topts);
  } else {
    net::InprocTransport::Options topts;
    topts.net_bytes_per_sec = options.net_bytes_per_sec;
    topts.chain_hop_overhead_seconds = options.chain_hop_overhead_seconds;
    topts.flow_monitor = &flow_;
    transport_ = std::make_unique<net::InprocTransport>(num_nodes, topts);
  }
  if (options.fault_plan.has_value()) {
    faulty_ = std::make_unique<net::FaultyTransport>(*transport_,
                                                     *options.fault_plan);
    // Chaos delays must not read as slow links (phantom stragglers).
    faulty_->set_flow_monitor(&flow_);
    // Size slow-verb penalties against the shaped NIC rate, so factor=4
    // means "4× the nominal transmit time" on this testbed's links.
    if (options.net_bytes_per_sec > 0) {
      faulty_->set_slow_base_rate(options.net_bytes_per_sec);
    }
  }

  if (options.throttle.has_value()) {
    throttler_ = std::make_unique<core::RepairThrottler>(*options.throttle);
  }
  if (options.bandwidth_replan.enabled) {
    bandwidth_trigger_ = std::make_unique<core::BandwidthReplanTrigger>(
        options.bandwidth_replan);
  }

  Rng rng(options.seed);
  if (options.topology.has_value() && !options.topology->is_flat()) {
    FASTPR_CHECK_MSG(
        options.topology->num_nodes() == options.num_storage,
        "topology must cover exactly the storage nodes: "
            << options.topology->to_string() << " vs "
            << options.num_storage
            << " (spares and the coordinator live in overflow racks)");
    layout_ = std::make_unique<cluster::StripeLayout>(
        cluster::StripeLayout::random_racked(
            options.num_storage, code.n(), options.num_stripes,
            options.topology->nodes_per_rack(), rng));
  } else {
    layout_ = std::make_unique<cluster::StripeLayout>(
        cluster::StripeLayout::random(options.num_storage, code.n(),
                                      options.num_stripes, rng));
  }
  // The cluster's bandwidth profile feeds the planner's cost model;
  // an unthrottled testbed (0 = no shaping) still needs positive model
  // bandwidths, so fall back to the paper's defaults there.
  const double model_disk = options.disk_bytes_per_sec > 0
                                ? options.disk_bytes_per_sec
                                : MBps(100);
  const double model_net = options.net_bytes_per_sec > 0
                               ? options.net_bytes_per_sec
                               : Gbps(1);
  cluster_ = std::make_unique<cluster::ClusterState>(
      options.num_storage, options.num_standby,
      cluster::BandwidthProfile{model_disk, model_net});

  const NodeId coord = coordinator_id();
  for (NodeId node = 0; node < coord; ++node) {
    ChunkStore::Options sopts;
    sopts.disk_bytes_per_sec = options.disk_bytes_per_sec;
    stores_.push_back(std::make_unique<ChunkStore>(sopts, oracle_.get()));
    AgentOptions aopts;
    aopts.coordinator = coord;
    if (throttler_ != nullptr) {
      budgets_.push_back(std::make_unique<RepairBudget>(
          RepairBudget::Options{}));
      aopts.repair_budget = budgets_.back().get();
      aopts.pressure = &pressure_;
      throttler_->add_agent(node);
    }
    agents_.push_back(std::make_unique<Agent>(node, transport(),
                                              *stores_.back(), aopts));
    agents_.back()->start();
  }

  CoordinatorOptions copts;
  copts.chunk_bytes = options.chunk_bytes;
  copts.packet_bytes = options.packet_bytes;
  copts.round_timeout = options.round_timeout;
  copts.max_attempts = options.max_attempts;
  copts.retry_backoff = options.retry_backoff;
  copts.probe_timeout = options.probe_timeout;
  copts.max_round_extensions = options.max_round_extensions;
  copts.stf_failure_threshold = options.stf_failure_threshold;
  copts.throttler = throttler_.get();
  copts.stf_deadline_seconds = options.stf_deadline_seconds;
  if (bandwidth_trigger_ != nullptr) {
    copts.flow_monitor = &flow_;
    copts.bandwidth_trigger = bandwidth_trigger_.get();
  }
  // Retried tasks may retarget onto any agent-backed node, spares
  // included (they are idle, so the load-aware matcher prefers them).
  copts.dest_candidates.resize(static_cast<size_t>(coord));
  for (NodeId node = 0; node < coord; ++node) {
    copts.dest_candidates[static_cast<size_t>(node)] = node;
  }
  coordinator_ = std::make_unique<Coordinator>(coord, transport(), code_,
                                               *layout_, copts);
}

Testbed::~Testbed() {
  // Unlimit leased budgets first: a sender blocked on a floor-rate
  // lease must drain before its agent's stop() can join it.
  for (auto& budget : budgets_) budget->release();
  for (auto& agent : agents_) agent->stop();
  transport_->shutdown();
}

NodeId Testbed::coordinator_id() const {
  return options_.num_storage + options_.num_standby;
}

Agent& Testbed::agent(NodeId node) {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(agents_.size()));
  return *agents_[static_cast<size_t>(node)];
}

ChunkStore& Testbed::store(NodeId node) {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(stores_.size()));
  return *stores_[static_cast<size_t>(node)];
}

RepairBudget* Testbed::repair_budget(NodeId node) {
  if (budgets_.empty()) return nullptr;
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(budgets_.size()));
  return budgets_[static_cast<size_t>(node)].get();
}

net::InprocTransport* Testbed::inproc() {
  return dynamic_cast<net::InprocTransport*>(transport_.get());
}

NodeId Testbed::flag_stf() { return flag_stf_batch(1).front(); }

std::vector<NodeId> Testbed::flag_stf_batch(int count) {
  FASTPR_CHECK(count >= 1 && count < layout_->num_nodes());
  std::vector<NodeId> by_load(static_cast<size_t>(layout_->num_nodes()));
  for (NodeId node = 0; node < layout_->num_nodes(); ++node) {
    by_load[static_cast<size_t>(node)] = node;
  }
  std::stable_sort(by_load.begin(), by_load.end(),
                   [this](NodeId a, NodeId b) {
                     return layout_->load(a) > layout_->load(b);
                   });
  by_load.resize(static_cast<size_t>(count));
  return flag_stf_nodes(std::move(by_load));
}

std::vector<NodeId> Testbed::flag_stf_nodes(std::vector<NodeId> nodes) {
  FASTPR_CHECK(!nodes.empty());
  for (NodeId node : nodes) {
    FASTPR_CHECK(node >= 0 && node < layout_->num_nodes());
    cluster_->set_health(node, cluster::NodeHealth::kSoonToFail);
  }

  // The fault plan may target "the STF node" symbolically; now that it
  // is known (for a batch: its first member), arm those entries and
  // plant the scripted read errors.
  if (options_.fault_plan.has_value()) {
    options_.fault_plan->resolve_stf(nodes.front());
    if (faulty_ != nullptr) faulty_->resolve_stf(nodes.front());
    for (const auto& err : options_.fault_plan->read_errors) {
      FASTPR_CHECK(err.node >= 0 &&
                   err.node < static_cast<int>(stores_.size()));
      auto& victim = *stores_[static_cast<size_t>(err.node)];
      if (err.stripe == net::FaultPlan::ReadError::kAllStripes) {
        for (ChunkRef chunk : layout_->chunks_on(err.node)) {
          victim.inject_read_error(chunk);
        }
      } else {
        for (ChunkRef chunk : layout_->chunks_on(err.node)) {
          if (chunk.stripe == err.stripe) victim.inject_read_error(chunk);
        }
      }
    }
  }
  return nodes;
}

core::FastPrPlanner Testbed::make_planner(core::Scenario scenario) {
  core::PlannerOptions popts;
  popts.scenario = scenario;
  popts.k_repair = code_.repair_fetch_count(0);
  popts.chunk_bytes = static_cast<double>(options_.chunk_bytes);
  popts.code = &code_;
  popts.packet_bytes = static_cast<double>(options_.packet_bytes);
  popts.chain_hop_overhead_seconds = options_.chain_hop_overhead_seconds;
  popts.sched.strategy = options_.repair_strategy;
  popts.topology = topology();
  return core::FastPrPlanner(*layout_, *cluster_, popts);
}

core::MultiStfPlanner Testbed::make_multi_planner(core::Scenario scenario) {
  core::PlannerOptions popts;
  popts.scenario = scenario;
  popts.k_repair = code_.repair_fetch_count(0);
  popts.chunk_bytes = static_cast<double>(options_.chunk_bytes);
  popts.code = &code_;
  popts.packet_bytes = static_cast<double>(options_.packet_bytes);
  popts.chain_hop_overhead_seconds = options_.chain_hop_overhead_seconds;
  popts.sched.strategy = options_.repair_strategy;
  popts.topology = topology();
  return core::MultiStfPlanner(*layout_, *cluster_, popts);
}

ExecutionReport Testbed::execute(const core::RepairPlan& plan) {
  // Mid-repair degradation hook (DESIGN.md §7): when the STF node dies,
  // the coordinator asks for a pure reactive plan over what is left.
  // The scenario is recovered from the plan's destinations.
  core::Scenario scenario = core::Scenario::kScattered;
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.migrations) {
      if (task.dst >= options_.num_storage) {
        scenario = core::Scenario::kHotStandby;
      }
    }
    for (const auto& task : round.reconstructions) {
      if (task.dst >= options_.num_storage) {
        scenario = core::Scenario::kHotStandby;
      }
    }
  }
  coordinator_->set_replan([this, scenario](const ReplanRequest& request) {
    auto planner = make_planner(scenario);
    auto reactive =
        planner.plan_reactive(request.handled, request.failed_nodes);
    ReplanResult result;
    result.plan = std::move(reactive.plan);
    result.unrepairable = std::move(reactive.unrepairable);
    return result;
  });
  // Bandwidth-drift hook (DESIGN.md §11): re-derive the predictive tail
  // for whatever is left, with the straggler links' source endpoints
  // deprioritized as helpers. Inert until a trigger is configured.
  coordinator_->set_bandwidth_replan(
      [this, scenario](const BandwidthReplanRequest& request) {
        auto planner = make_planner(scenario);
        return planner.plan_fastpr_remaining(request.handled,
                                             request.slow_nodes);
      });

  auto* inproc = dynamic_cast<net::InprocTransport*>(transport_.get());
  const int64_t before =
      inproc != nullptr ? inproc->total_bytes_sent() : 0;
  flow_.clear();  // links in the report cover this execution only
  auto report = coordinator_->execute(plan);
  if (inproc != nullptr) {
    report.network_bytes = inproc->total_bytes_sent() - before;
  }
  for (const auto& link : flow_.snapshot()) {
    telemetry::LinkBandwidth lb;
    lb.src = link.src;
    lb.dst = link.dst;
    lb.tx_bytes = link.tx_bytes;
    lb.rx_bytes = link.rx_bytes;
    lb.ewma_bytes_per_sec = link.ewma_bytes_per_sec;
    lb.expected_bytes_per_sec = link.expected_bytes_per_sec;
    lb.injected_delay_us = link.injected_delay_us;
    lb.straggler = link.straggler;
    report.repair.links.push_back(lb);
  }
  // The coordinator cannot know the disk rate; the testbed does. A
  // round's migration reads all come off the STF node's (shaped) disk.
  if (options_.disk_bytes_per_sec > 0) {
    for (auto& round : report.repair.rounds) {
      if (round.duration_seconds > 0) {
        round.stf_bw_utilization =
            static_cast<double>(round.bytes_migrated) /
            (options_.disk_bytes_per_sec * round.duration_seconds);
      }
    }
  }
  return report;
}

std::vector<telemetry::PredictedRound> Testbed::predict_rounds(
    const core::RepairPlan& plan, core::Scenario scenario) {
  const bool multi = plan.stf_nodes.size() > 1;
  const core::CostModel model =
      multi ? make_multi_planner(scenario).cost_model()
            : make_planner(scenario).cost_model();
  std::vector<telemetry::PredictedRound> predicted;
  predicted.reserve(plan.rounds.size());
  for (const auto& round : plan.rounds) {
    telemetry::PredictedRound p;
    p.cr = static_cast<int>(round.reconstructions.size());
    p.cm = static_cast<int>(round.migrations.size());
    int slowest_stream_cm = p.cm;
    if (multi) {
      // Migration streams run in parallel, one per STF disk; the round
      // is paced by the most-loaded source (DESIGN.md §8).
      std::unordered_map<NodeId, int> per_src;
      for (const auto& task : round.migrations) ++per_src[task.src];
      std::vector<int> cm_per_stf;
      cm_per_stf.reserve(per_src.size());
      slowest_stream_cm = 0;
      for (const auto& [src, cm] : per_src) {
        cm_per_stf.push_back(cm);
        slowest_stream_cm = std::max(slowest_stream_cm, cm);
      }
      p.duration_seconds =
          model.round_time_multi(p.cr, cm_per_stf, round.strategy);
    } else {
      p.duration_seconds = model.round_time(p.cr, p.cm, round.strategy);
    }
    // Phase expectations the drift tables diff the measured tr/tm
    // against: the reconstruction side of the round, and the slowest
    // migration stream (round_time = max of the two).
    if (p.cr > 0) p.tr_seconds = model.tr(p.cr, round.strategy);
    if (slowest_stream_cm > 0) p.tm_seconds = slowest_stream_cm * model.tm();
    predicted.push_back(p);
  }
  return predicted;
}

bool Testbed::chunk_ok(ChunkRef chunk, NodeId dst) const {
  if (dst < 0 || dst >= static_cast<int>(stores_.size())) return false;
  const auto& dst_store = *stores_[static_cast<size_t>(dst)];
  // The chunk must have been explicitly written to the destination;
  // oracle-synthesizable content does not count as repaired.
  if (!dst_store.has_materialized(chunk)) return false;
  const auto repaired = dst_store.read_unthrottled(chunk);
  if (!repaired.has_value()) return false;
  const auto expected = oracle_->generate(chunk);
  return expected.has_value() && *repaired == *expected;
}

bool Testbed::verify(const core::RepairPlan& plan) const {
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.migrations) {
      if (!chunk_ok(task.chunk, task.dst)) return false;
    }
    for (const auto& task : round.reconstructions) {
      if (!chunk_ok(task.chunk, task.dst)) return false;
    }
  }
  return true;
}

bool Testbed::verify(const ExecutionReport& report,
                     const core::RepairPlan& plan) const {
  // Accounting: completions ∪ unrepaired must be exactly the plan's
  // chunk set, with no chunk in both and none dropped silently.
  std::unordered_set<ChunkRef, cluster::ChunkRefHash> planned;
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.migrations) planned.insert(task.chunk);
    for (const auto& task : round.reconstructions) {
      planned.insert(task.chunk);
    }
  }
  std::unordered_set<ChunkRef, cluster::ChunkRefHash> accounted;
  for (const auto& done : report.completions) {
    if (planned.count(done.chunk) == 0) return false;
    if (!accounted.insert(done.chunk).second) return false;
    if (!chunk_ok(done.chunk, done.dst)) return false;
  }
  for (ChunkRef chunk : report.unrepaired) {
    if (planned.count(chunk) == 0) return false;
    if (!accounted.insert(chunk).second) return false;
  }
  return accounted.size() == planned.size();
}

}  // namespace fastpr::agent
