#include "agent/repair_budget.h"

#include "util/check.h"

namespace fastpr::agent {

RepairBudget::RepairBudget(const Options& options)
    : options_(options),
      bucket_(options.floor_bytes_per_sec, options.burst_bytes) {
  FASTPR_CHECK(options.floor_bytes_per_sec > 0);
}

bool RepairBudget::apply_grant(uint64_t seq, double bytes_per_sec,
                               int64_t ttl_us, int64_t now_us) {
  {
    MutexLock lock(mutex_);
    if (released_) return false;            // tearing down
    if (seq <= applied_seq_) return false;  // stale or duplicate grant
    applied_seq_ = seq;
    lease_expires_us_ = now_us + ttl_us;
    ++leases_applied_;
  }
  // Rate change outside the bookkeeping lock (set_rate blocks on the
  // bucket's own mutex and wakes waiters). A racing newer grant just
  // wins the last set_rate — rates converge at the next tick anyway.
  bucket_.set_rate(std::max(bytes_per_sec, options_.floor_bytes_per_sec));
  return true;
}

bool RepairBudget::expire_if_stale(int64_t now_us) {
  {
    MutexLock lock(mutex_);
    if (released_) return false;
    if (lease_expires_us_ == 0 || now_us < lease_expires_us_) return false;
    lease_expires_us_ = 0;  // expire once; next grant re-arms
    ++expirations_;
  }
  bucket_.set_rate(options_.floor_bytes_per_sec);
  return true;
}

void RepairBudget::release() {
  {
    MutexLock lock(mutex_);
    released_ = true;
  }
  bucket_.set_rate(0);
}

void RepairBudget::acquire(int64_t bytes, int64_t now_us) {
  expire_if_stale(now_us);
  bucket_.acquire(bytes);
}

uint64_t RepairBudget::applied_seq() const {
  MutexLock lock(mutex_);
  return applied_seq_;
}

int64_t RepairBudget::leases_applied() const {
  MutexLock lock(mutex_);
  return leases_applied_;
}

int64_t RepairBudget::expirations() const {
  MutexLock lock(mutex_);
  return expirations_;
}

}  // namespace fastpr::agent
