// Per-node chunk storage with throttled I/O.
//
// A token bucket prices every read and write at the node's disk
// bandwidth bd — the testbed's stand-in for a real spindle. Contents can
// come from three places:
//  * explicitly written chunks (repaired data) — always materialized;
//  * an optional ChunkOracle that synthesizes unwritten chunks
//    deterministically (so a 100-node cluster of multi-GB "data" costs
//    no RAM — source reads regenerate content on the fly);
//  * an optional spill directory for file-backed persistence.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/types.h"
#include "util/mutex.h"
#include "util/token_bucket.h"

namespace fastpr::agent {

/// Deterministic content provider for chunks that were never written.
class ChunkOracle {
 public:
  virtual ~ChunkOracle() = default;
  /// Contents of `chunk`, or nullopt if the oracle does not know it.
  virtual std::optional<std::vector<uint8_t>> generate(
      cluster::ChunkRef chunk) const = 0;
};

class ChunkStore {
 public:
  struct Options {
    double disk_bytes_per_sec = 0;  // <=0: unthrottled
    /// If set, written chunks are persisted as files here instead of RAM.
    std::optional<std::filesystem::path> directory;
  };

  ChunkStore(const Options& options, const ChunkOracle* oracle = nullptr);

  /// Writes a whole chunk (throttled).
  void write(cluster::ChunkRef chunk, std::vector<uint8_t> data);

  /// Reads a whole chunk (throttled); nullopt if absent everywhere or an
  /// injected read error fires.
  std::optional<std::vector<uint8_t>> read(cluster::ChunkRef chunk) const;

  /// Charges the disk bucket without moving data. Pipelined transfers
  /// read a chunk once, then pace per-packet disk time through this.
  void charge_io(int64_t bytes) const;

  /// Content fetch with NO disk charge — callers that pipeline pace the
  /// disk themselves via charge_io (per packet).
  std::optional<std::vector<uint8_t>> read_unthrottled(
      cluster::ChunkRef chunk) const;

  /// Materialize with NO disk charge (the destination pipeline already
  /// charged each packet's write as it completed).
  void write_unthrottled(cluster::ChunkRef chunk, std::vector<uint8_t> data);

  /// True if read() would find content (oracle included), error injection
  /// aside.
  bool contains(cluster::ChunkRef chunk) const;

  /// True only if the chunk was explicitly written here (oracle content
  /// does not count) — how verification tells "repaired and stored" from
  /// "synthesizable".
  bool has_materialized(cluster::ChunkRef chunk) const;

  void erase(cluster::ChunkRef chunk);

  /// Failure injection: subsequent reads of `chunk` fail (an STF node
  /// dying mid-migration, a latent sector error on a helper).
  void inject_read_error(cluster::ChunkRef chunk);
  void clear_read_errors();

  /// Silent-corruption injection: flips one bit of a materialized
  /// chunk's stored bytes (a latent sector error the disk does NOT
  /// report). scrub() is how such damage is found.
  void corrupt(cluster::ChunkRef chunk, size_t byte_index);

  /// Verifies every materialized chunk against the CRC-32C recorded at
  /// write time; returns the chunks whose contents no longer match.
  /// This is the background scrubbing pass storage systems run to turn
  /// silent corruption into repairable (reactive) failures.
  std::vector<cluster::ChunkRef> scrub() const;

  /// Number of explicitly materialized (written) chunks.
  size_t materialized_count() const;

 private:
  std::filesystem::path path_for(cluster::ChunkRef chunk) const;

  Options options_;
  const ChunkOracle* oracle_;
  mutable std::unique_ptr<TokenBucket> disk_;
  mutable Mutex mutex_{lock_order::kStoreChunks};
  std::unordered_map<cluster::ChunkRef, std::vector<uint8_t>,
                     cluster::ChunkRefHash>
      chunks_ FASTPR_GUARDED_BY(mutex_);
  std::unordered_map<cluster::ChunkRef, uint32_t, cluster::ChunkRefHash>
      checksums_ FASTPR_GUARDED_BY(mutex_);
  std::unordered_set<cluster::ChunkRef, cluster::ChunkRefHash> on_disk_
      FASTPR_GUARDED_BY(mutex_);
  std::unordered_set<cluster::ChunkRef, cluster::ChunkRefHash> read_errors_
      FASTPR_GUARDED_BY(mutex_);
};

}  // namespace fastpr::agent
