#include "agent/agent.h"

#include <deque>
#include <functional>

#include "gf/gf256.h"
#include "util/check.h"
#include "util/logging.h"

namespace fastpr::agent {

using cluster::ChunkRef;
using cluster::NodeId;
using net::Message;
using net::MessageType;
using net::TransferMode;

Agent::Agent(NodeId id, net::Transport& transport, ChunkStore& store,
             const AgentOptions& options)
    : id_(id), transport_(transport), store_(store), options_(options) {
  FASTPR_CHECK(options.coordinator != cluster::kNoNode);
  FASTPR_CHECK(options.pipeline_depth >= 1);
}

Agent::~Agent() { stop(); }

void Agent::start() {
  FASTPR_CHECK(!started_);
  started_ = true;
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void Agent::stop() {
  if (!started_) return;
  // A shutdown message to ourselves pops the dispatcher out of recv().
  Message bye;
  bye.type = MessageType::kShutdown;
  bye.from = id_;
  bye.to = id_;
  transport_.send(std::move(bye));
  if (dispatcher_.joinable()) dispatcher_.join();
  MutexLock lock(workers_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  started_ = false;
}

void Agent::spawn_worker(std::function<void()> fn) {
  MutexLock lock(workers_mutex_);
  workers_.emplace_back(std::move(fn));
}

void Agent::report_failure(uint64_t task_id, const std::string& error) {
  Message msg;
  msg.type = MessageType::kTaskFailed;
  msg.from = id_;
  msg.to = options_.coordinator;
  msg.task_id = task_id;
  msg.error = error;
  transport_.send(std::move(msg));
}

void Agent::dispatch_loop() {
  for (;;) {
    auto msg = transport_.recv(id_);
    if (!msg.has_value()) return;  // transport shut down
    if (msg->type == MessageType::kShutdown) return;
    if (killed_.load()) continue;  // crashed node: drop silently

    switch (msg->type) {
      case MessageType::kReconstructCmd:
        handle_reconstruct_cmd(*msg);
        break;
      case MessageType::kMigrateCmd:
        handle_migrate_cmd(*msg);
        break;
      case MessageType::kFetchRequest:
        handle_fetch_request(*msg);
        break;
      case MessageType::kDataPacket:
        handle_data_packet(std::move(*msg));
        break;
      default:
        LOG_WARN("agent " << id_ << ": unexpected message type "
                          << static_cast<int>(msg->type));
    }
  }
}

void Agent::handle_reconstruct_cmd(const Message& msg) {
  // We are the destination. Register the decode state, then ask every
  // helper to stream its (coefficient-tagged) chunk to us.
  TransferState state;
  state.chunk = msg.chunk;
  state.mode = TransferMode::kDecode;
  state.expected_streams = static_cast<int>(msg.sources.size());
  state.chunk_bytes = msg.chunk_bytes;
  state.packet_bytes = msg.packet_bytes;
  state.total_packets = static_cast<uint32_t>(
      (msg.chunk_bytes + msg.packet_bytes - 1) / msg.packet_bytes);
  state.accumulator.assign(msg.chunk_bytes, 0);
  state.arrivals.assign(state.total_packets, 0);
  tasks_[msg.task_id] = std::move(state);

  for (const auto& src : msg.sources) {
    Message req;
    req.type = MessageType::kFetchRequest;
    req.from = id_;
    req.to = src.node;
    req.task_id = msg.task_id;
    req.chunk = src.chunk;
    req.dst = id_;
    req.coefficient = src.coefficient;
    req.packet_bytes = msg.packet_bytes;
    transport_.send(std::move(req));
  }
}

void Agent::handle_migrate_cmd(const Message& msg) {
  // We are the STF node: stream the chunk to its new home.
  const uint64_t task_id = msg.task_id;
  const ChunkRef chunk = msg.chunk;
  const NodeId dst = msg.dst;
  const uint64_t packet_bytes = msg.packet_bytes;
  spawn_worker([this, task_id, chunk, dst, packet_bytes] {
    stream_chunk(task_id, chunk, dst, TransferMode::kStore, 1, packet_bytes);
  });
}

void Agent::handle_fetch_request(const Message& msg) {
  const uint64_t task_id = msg.task_id;
  const ChunkRef chunk = msg.chunk;
  const NodeId dst = msg.dst;
  const uint8_t coeff = msg.coefficient;
  const uint64_t packet_bytes = msg.packet_bytes;
  spawn_worker([this, task_id, chunk, dst, coeff, packet_bytes] {
    stream_chunk(task_id, chunk, dst, TransferMode::kDecode, coeff,
                 packet_bytes);
  });
}

void Agent::stream_chunk(uint64_t task_id, ChunkRef chunk, NodeId dst,
                         TransferMode mode, uint8_t coefficient,
                         uint64_t packet_bytes) {
  FASTPR_CHECK(packet_bytes >= 1);
  const auto content = store_.read_unthrottled(chunk);
  if (!content.has_value()) {
    report_failure(task_id, "read error on node " +
                                std::to_string(id_) + " for stripe " +
                                std::to_string(chunk.stripe));
    return;
  }
  const uint64_t chunk_bytes = content->size();
  const uint32_t total_packets = static_cast<uint32_t>(
      (chunk_bytes + packet_bytes - 1) / packet_bytes);

  // Paper §V multi-threading: a reader thread paces the disk and feeds a
  // bounded queue; the sender thread drains it onto the (shaped) network.
  struct Pipe {
    Mutex mutex;
    CondVar cv;
    std::deque<Message> queue FASTPR_GUARDED_BY(mutex);
    bool done FASTPR_GUARDED_BY(mutex) = false;
  } pipe;

  std::thread sender([&] {
    for (;;) {
      Message packet;
      {
        MutexLock lock(pipe.mutex);
        while (!pipe.done && pipe.queue.empty()) pipe.cv.wait(pipe.mutex);
        if (pipe.queue.empty()) return;
        packet = std::move(pipe.queue.front());
        pipe.queue.pop_front();
      }
      pipe.cv.notify_all();
      transport_.send(std::move(packet));  // blocks on NIC shaping
    }
  });

  for (uint32_t p = 0; p < total_packets; ++p) {
    const uint64_t offset = static_cast<uint64_t>(p) * packet_bytes;
    const uint64_t len = std::min(packet_bytes, chunk_bytes - offset);
    store_.charge_io(static_cast<int64_t>(len));  // disk read time

    Message packet;
    packet.type = MessageType::kDataPacket;
    packet.from = id_;
    packet.to = dst;
    packet.task_id = task_id;
    packet.chunk = chunk;
    packet.mode = mode;
    packet.coefficient = coefficient;
    packet.packet_index = p;
    packet.total_packets = total_packets;
    packet.chunk_bytes = chunk_bytes;
    packet.packet_bytes = packet_bytes;
    packet.payload.assign(
        content->begin() + static_cast<ptrdiff_t>(offset),
        content->begin() + static_cast<ptrdiff_t>(offset + len));

    {
      MutexLock lock(pipe.mutex);
      while (pipe.queue.size() >= options_.pipeline_depth) {
        pipe.cv.wait(pipe.mutex);
      }
      pipe.queue.push_back(std::move(packet));
    }
    pipe.cv.notify_all();
  }
  {
    MutexLock lock(pipe.mutex);
    pipe.done = true;
  }
  pipe.cv.notify_all();
  sender.join();
}

void Agent::handle_data_packet(Message&& msg) {
  auto it = tasks_.find(msg.task_id);
  if (it == tasks_.end()) {
    if (msg.mode != TransferMode::kStore) {
      LOG_WARN("agent " << id_ << ": decode packet for unknown task "
                        << msg.task_id);
      return;
    }
    // Migration stream: the first packet creates the state lazily (the
    // coordinator commanded the STF node, not us).
    TransferState state;
    state.chunk = msg.chunk;
    state.mode = TransferMode::kStore;
    state.expected_streams = 1;
    state.chunk_bytes = msg.chunk_bytes;
    state.packet_bytes = msg.packet_bytes;
    state.total_packets = msg.total_packets;
    state.accumulator.assign(msg.chunk_bytes, 0);
    state.arrivals.assign(msg.total_packets, 0);
    it = tasks_.emplace(msg.task_id, std::move(state)).first;
  }

  TransferState& state = it->second;
  FASTPR_CHECK(msg.packet_index < state.total_packets);
  const uint64_t offset =
      static_cast<uint64_t>(msg.packet_index) * state.packet_bytes;
  FASTPR_CHECK(offset + msg.payload.size() <= state.accumulator.size());

  // Streaming decode: accumulator ^= coeff * payload. For migrations the
  // coefficient is 1 and this degenerates to a copy-in.
  gf::mul_region_xor(state.accumulator.data() + offset, msg.payload.data(),
                     msg.coefficient, msg.payload.size());

  auto& count = state.arrivals[msg.packet_index];
  ++count;
  if (count == state.expected_streams) {
    // This packet of the repaired chunk is final: write it out now
    // (pipelined disk write), matching the paper's decode-as-you-go.
    store_.charge_io(static_cast<int64_t>(msg.payload.size()));
    ++state.packets_complete;
    if (state.packets_complete == state.total_packets) {
      store_.write_unthrottled(state.chunk, std::move(state.accumulator));
      Message done;
      done.type = MessageType::kTaskDone;
      done.from = id_;
      done.to = options_.coordinator;
      done.task_id = msg.task_id;
      done.chunk = state.chunk;
      transport_.send(std::move(done));
      tasks_.erase(it);
    }
  }
}

}  // namespace fastpr::agent
