#include "agent/agent.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "gf/gf256.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace fastpr::agent {

using cluster::ChunkRef;
using cluster::NodeId;
using net::Message;
using net::MessageType;
using net::TransferMode;

Agent::Agent(NodeId id, net::Transport& transport, ChunkStore& store,
             const AgentOptions& options)
    : id_(id), transport_(transport), store_(store), options_(options) {
  FASTPR_CHECK(options.coordinator != cluster::kNoNode);
  FASTPR_CHECK(options.pipeline_depth >= 1);
  FASTPR_CHECK(options.reader_threads >= 1);
  FASTPR_CHECK(options.sender_threads >= 1);
}

Agent::~Agent() { stop(); }

void Agent::start() {
  FASTPR_CHECK(!started_);
  started_ = true;
  {
    MutexLock lock(send_mutex_);
    send_closed_ = false;
  }
  reader_pool_ = std::make_unique<ThreadPool>(options_.reader_threads);
  senders_.reserve(options_.sender_threads);
  for (size_t i = 0; i < options_.sender_threads; ++i) {
    senders_.emplace_back([this] { sender_loop(); });
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void Agent::stop() {
  if (!started_) return;
  // A shutdown message to ourselves pops the dispatcher out of recv().
  Message bye;
  bye.type = MessageType::kShutdown;
  bye.from = id_;
  bye.to = id_;
  // Self-delivered teardown signal; the join below is the "ack".
  transport_.send(std::move(bye));  // fastpr-lint: allow(ack-tracking)
  if (dispatcher_.joinable()) dispatcher_.join();
  // Teardown order matters: drain the readers first (their queued
  // packets need live senders), then close the send queue so the sender
  // workers exit once it is empty.
  reader_pool_.reset();
  {
    MutexLock lock(send_mutex_);
    send_closed_ = true;
  }
  send_cv_.notify_all();
  for (auto& s : senders_) {
    if (s.joinable()) s.join();
  }
  senders_.clear();
  started_ = false;
}

void Agent::report_failure(uint64_t task_id, uint32_t attempt,
                           const std::string& error) {
  Message msg;
  msg.type = MessageType::kTaskFailed;
  msg.from = id_;
  msg.to = options_.coordinator;
  msg.task_id = task_id;
  msg.attempt = attempt;
  msg.error = error;
  msg.trace = telemetry::current_trace_context();
  // Terminal failure report: the coordinator's pending map owns the
  // task and reacts (retry / fallback / abandon).
  transport_.send(std::move(msg));  // fastpr-lint: allow(ack-tracking)
}

void Agent::dispatch_loop() {
  for (;;) {
    auto msg = transport_.recv(id_);
    if (!msg.has_value()) return;  // transport shut down
    if (msg->type == MessageType::kShutdown) return;
    if (killed_.load()) continue;  // crashed node: drop silently

    // Adopt the sender's causal context for the whole handler: spans
    // opened below (and contexts captured into reader/sender tasks)
    // parent under the sender's open span.
    telemetry::ScopedTraceContext adopt(msg->trace, id_);
    switch (msg->type) {
      case MessageType::kReconstructCmd:
        handle_reconstruct_cmd(*msg);
        break;
      case MessageType::kMigrateCmd:
        handle_migrate_cmd(*msg);
        break;
      case MessageType::kFetchRequest:
        handle_fetch_request(*msg);
        break;
      case MessageType::kDataPacket:
        handle_data_packet(std::move(*msg));
        break;
      case MessageType::kChainCmd:
        handle_chain_cmd(*msg);
        break;
      case MessageType::kChainPacket:
        handle_chain_packet(std::move(*msg));
        break;
      case MessageType::kCancelTask:
        handle_cancel_task(*msg);
        break;
      case MessageType::kPing:
        handle_ping(*msg);
        break;
      case MessageType::kLeaseGrant:
        handle_lease_grant(*msg);
        break;
      default:
        LOG_WARN("agent " << id_ << ": unexpected message type "
                          << static_cast<int>(msg->type));
    }
  }
}

void Agent::handle_reconstruct_cmd(const Message& msg) {
  // We are the destination. Retries are idempotent: a command that does
  // not advance the attempt is a duplicate and must not restart helper
  // streams; a higher attempt supersedes the old state wholesale (its
  // in-flight packets then fail the attempt check and drop).
  const auto existing = tasks_.find(msg.task_id);
  if (existing != tasks_.end() && existing->second.attempt >= msg.attempt) {
    telemetry::MetricsRegistry::global()
        .counter("agent.stale_cmds")
        .add();
    return;
  }

  // Register the decode state, then ask every helper to stream its
  // (coefficient-tagged) chunk to us.
  TransferState state;
  state.chunk = msg.chunk;
  state.mode = TransferMode::kDecode;
  state.attempt = msg.attempt;
  state.expected_streams = static_cast<int>(msg.sources.size());
  state.chunk_bytes = msg.chunk_bytes;
  state.packet_bytes = msg.packet_bytes;
  state.total_packets = static_cast<uint32_t>(
      (msg.chunk_bytes + msg.packet_bytes - 1) / msg.packet_bytes);
  state.accumulator.assign(msg.chunk_bytes, 0);
  state.pending.resize(state.total_packets);
  tasks_[msg.task_id] = std::move(state);

  for (const auto& src : msg.sources) {
    Message req;
    req.type = MessageType::kFetchRequest;
    req.from = id_;
    req.to = src.node;
    req.task_id = msg.task_id;
    req.attempt = msg.attempt;
    req.chunk = src.chunk;
    req.dst = id_;
    req.coefficient = src.coefficient;
    req.packet_bytes = msg.packet_bytes;
    req.trace = telemetry::current_trace_context();
    // Tracked by the TransferState fan-in registered above: a helper
    // that never streams stalls the task, which the coordinator's
    // round deadline + probe salvages.
    transport_.send(std::move(req));  // fastpr-lint: allow(ack-tracking)
  }
}

void Agent::handle_migrate_cmd(const Message& msg) {
  // We are the STF node: stream the chunk to its new home.
  const uint64_t task_id = msg.task_id;
  const uint32_t attempt = msg.attempt;
  const ChunkRef chunk = msg.chunk;
  const NodeId dst = msg.dst;
  const uint64_t packet_bytes = msg.packet_bytes;
  // Contexts do not follow threads: capture ours so the reader task's
  // spans stay in the command's trace.
  const telemetry::TraceContext ctx = telemetry::current_trace_context();
  reader_pool_->post([this, task_id, attempt, chunk, dst, packet_bytes,
                      ctx] {
    telemetry::ScopedTraceContext adopt(ctx, id_);
    stream_chunk(task_id, attempt, chunk, dst, TransferMode::kStore, 1,
                 packet_bytes);
  });
}

void Agent::handle_fetch_request(const Message& msg) {
  const uint64_t task_id = msg.task_id;
  const uint32_t attempt = msg.attempt;
  const ChunkRef chunk = msg.chunk;
  const NodeId dst = msg.dst;
  const uint8_t coeff = msg.coefficient;
  const uint64_t packet_bytes = msg.packet_bytes;
  const telemetry::TraceContext ctx = telemetry::current_trace_context();
  reader_pool_->post([this, task_id, attempt, chunk, dst, coeff,
                      packet_bytes, ctx] {
    telemetry::ScopedTraceContext adopt(ctx, id_);
    stream_chunk(task_id, attempt, chunk, dst, TransferMode::kDecode, coeff,
                 packet_bytes);
  });
}

void Agent::handle_cancel_task(const Message& msg) {
  // Cancel is keyed by attempt so a cancel racing a newer command
  // cannot kill the newer attempt's state.
  bool cancelled = false;
  const auto it = tasks_.find(msg.task_id);
  if (it != tasks_.end() && it->second.attempt <= msg.attempt) {
    tasks_.erase(it);
    cancelled = true;
  }
  const auto chain_it = chain_tasks_.find(msg.task_id);
  if (chain_it != chain_tasks_.end() &&
      chain_it->second.attempt <= msg.attempt) {
    chain_tasks_.erase(chain_it);
    cancelled = true;
  }
  const auto early_it = chain_early_.find(msg.task_id);
  if (early_it != chain_early_.end()) {
    std::erase_if(early_it->second, [&](const Message& m) {
      return m.attempt <= msg.attempt;
    });
    if (early_it->second.empty()) chain_early_.erase(early_it);
  }
  if (cancelled) {
    telemetry::MetricsRegistry::global()
        .counter("agent.cancelled_tasks")
        .add();
  }
}

void Agent::handle_ping(const Message& msg) {
  Message pong;
  pong.type = MessageType::kPong;
  pong.from = id_;
  pong.to = msg.from;
  pong.task_id = msg.task_id;  // echoes the probe epoch
  // The captured context carries our local clock in origin_ts_us; the
  // coordinator's ClockSync turns ping/pong pairs into offsets.
  pong.trace = telemetry::current_trace_context();
  // Lease renewal piggybacks on the probe epoch: the pong's (otherwise
  // unused) chunk_bytes/packet_bytes carry this node's foreground
  // pressure, so every probe round-trip refreshes the throttler.
  stamp_pressure(pong);
  // Reply to a liveness probe; the coordinator's probe state tracks it.
  transport_.send(std::move(pong));  // fastpr-lint: allow(ack-tracking)
}

void Agent::stamp_pressure(Message& msg) {
  NodePressure pressure;
  if (options_.pressure != nullptr) {
    pressure = options_.pressure->sample(id_);
  }
  msg.chunk_bytes = static_cast<uint64_t>(
      std::max(0.0, pressure.p99_seconds) * 1e9);  // p99 in ns
  msg.packet_bytes =
      static_cast<uint64_t>(std::max(0.0, pressure.fg_bytes_per_sec));
}

void Agent::handle_lease_grant(const Message& msg) {
  if (options_.repair_budget != nullptr) {
    // Seq-monotonic application makes re-sent / reordered grants inert:
    // the budget only moves forward through the coordinator's sequence.
    options_.repair_budget->apply_grant(
        msg.task_id, static_cast<double>(msg.chunk_bytes),
        static_cast<int64_t>(msg.packet_bytes), telemetry::trace_now_us());
  }
  Message report;
  report.type = MessageType::kPressureReport;
  report.from = id_;
  report.to = msg.from;
  report.task_id = options_.repair_budget != nullptr
                       ? options_.repair_budget->applied_seq()
                       : msg.task_id;
  report.trace = telemetry::current_trace_context();
  stamp_pressure(report);
  // Lease-renewal reply; the coordinator's throttler consumes it (a
  // lost report just means this lease renews on the next tick or pong).
  transport_.send(std::move(report));  // fastpr-lint: allow(ack-tracking)
}

void Agent::enqueue_send(Message&& msg,
                         const std::shared_ptr<SendWindow>& window) {
  {
    MutexLock lock(window->mutex);
    const auto has_room = [&]() FASTPR_REQUIRES(window->mutex) {
      return window->in_flight < options_.pipeline_depth;
    };
    window->cv.wait(window->mutex, has_room);
    ++window->in_flight;
  }
  {
    MutexLock lock(send_mutex_);
    send_queue_.push_back(SendItem{std::move(msg), window});
  }
  send_cv_.notify_one();
}

void Agent::sender_loop() {
  for (;;) {
    SendItem item;
    {
      MutexLock lock(send_mutex_);
      const auto ready = [&]() FASTPR_REQUIRES(send_mutex_) {
        return send_closed_ || !send_queue_.empty();
      };
      send_cv_.wait(send_mutex_, ready);
      if (send_queue_.empty()) return;  // closed and drained
      item = std::move(send_queue_.front());
      send_queue_.pop_front();
    }
    {
      // Sender workers are shared across transfers: parent this packet's
      // send span under whatever span built the packet.
      telemetry::ScopedTraceContext adopt(item.msg.trace, id_);
      FASTPR_TRACE_SPAN("agent.send_packet", "agent",
                        static_cast<int64_t>(item.msg.task_id), "task");
      // Leased-budget enforcement (DESIGN.md §10): repair data blocks on
      // the coordinator's lease before it ever touches the NIC, so
      // foreground traffic keeps the un-leased remainder of the link.
      // Control messages are exempt — throttling acks would deadlock
      // repair against its own flow control. No locks held here.
      if (options_.repair_budget != nullptr &&
          net::is_data_packet(item.msg.type)) {
        options_.repair_budget->acquire(
            static_cast<int64_t>(item.msg.encoded_size()),
            telemetry::trace_now_us());
      }
      // Data packet tracked by its transfer's SendWindow (in_flight
      // slot released below); blocks on NIC shaping.
      transport_.send(std::move(item.msg));  // fastpr-lint: allow(ack-tracking)
    }
    {
      MutexLock lock(item.window->mutex);
      --item.window->in_flight;
    }
    item.window->cv.notify_all();
  }
}

void Agent::stream_chunk(uint64_t task_id, uint32_t attempt, ChunkRef chunk,
                         NodeId dst, TransferMode mode, uint8_t coefficient,
                         uint64_t packet_bytes) {
  FASTPR_CHECK(packet_bytes >= 1);
  FASTPR_TRACE_SPAN("agent.stream_chunk", "agent",
                    static_cast<int64_t>(task_id), "task");
  const auto content = store_.read_unthrottled(chunk);
  if (!content.has_value()) {
    report_failure(task_id, attempt,
                   "read error on node " + std::to_string(id_) +
                       " for stripe " + std::to_string(chunk.stripe));
    return;
  }
  const uint64_t chunk_bytes = content->size();
  const uint32_t total_packets = static_cast<uint32_t>(
      (chunk_bytes + packet_bytes - 1) / packet_bytes);

  // Paper §V multi-threading: this reader task paces the disk and feeds
  // the persistent sender workers; the window keeps at most
  // pipeline_depth of this transfer's packets between disk and wire.
  const auto window = std::make_shared<SendWindow>();

  for (uint32_t p = 0; p < total_packets; ++p) {
    const uint64_t offset = static_cast<uint64_t>(p) * packet_bytes;
    const uint64_t len = std::min(packet_bytes, chunk_bytes - offset);
    store_.charge_io(static_cast<int64_t>(len));  // disk read time

    Message packet;
    packet.type = MessageType::kDataPacket;
    packet.from = id_;
    packet.to = dst;
    packet.task_id = task_id;
    packet.attempt = attempt;
    packet.chunk = chunk;
    packet.mode = mode;
    packet.coefficient = coefficient;
    packet.packet_index = p;
    packet.total_packets = total_packets;
    packet.chunk_bytes = chunk_bytes;
    packet.packet_bytes = packet_bytes;
    packet.trace = telemetry::current_trace_context();
    // Pool-recycled payload: after the destination folds the packet in
    // and drops it, the buffer comes back for a later packet.
    packet.payload.assign(content->data() + offset, len);

    enqueue_send(std::move(packet), window);
  }
  telemetry::MetricsRegistry::global()
      .counter("agent.data_packets_tx")
      .add(total_packets);
}

void Agent::handle_data_packet(Message&& msg) {
  // Static refs: one registry lookup per process, not per packet.
  static telemetry::Counter& rx_packets =
      telemetry::MetricsRegistry::global().counter("agent.data_packets_rx");
  static telemetry::Counter& stale_packets =
      telemetry::MetricsRegistry::global().counter("agent.stale_packets");
  static telemetry::Counter& dup_packets =
      telemetry::MetricsRegistry::global().counter("agent.dup_packets");
  rx_packets.add();
  auto it = tasks_.find(msg.task_id);
  const bool store_restart =
      it != tasks_.end() && msg.mode == TransferMode::kStore &&
      msg.attempt > it->second.attempt;
  if (it == tasks_.end() || store_restart) {
    if (msg.mode != TransferMode::kStore) {
      // Decode packet with no matching state: a superseded attempt's
      // helper stream (or a cancelled task) still draining.
      stale_packets.add();
      return;
    }
    // Migration stream: the first packet creates the state lazily (the
    // coordinator commanded the STF node, not us). A retried migration
    // restarts the state at its higher attempt the same way.
    TransferState state;
    state.chunk = msg.chunk;
    state.mode = TransferMode::kStore;
    state.attempt = msg.attempt;
    state.expected_streams = 1;
    state.chunk_bytes = msg.chunk_bytes;
    state.packet_bytes = msg.packet_bytes;
    state.total_packets = msg.total_packets;
    state.accumulator.assign(msg.chunk_bytes, 0);
    state.pending.resize(msg.total_packets);
    tasks_[msg.task_id] = std::move(state);
    it = tasks_.find(msg.task_id);
  }

  TransferState& state = it->second;
  if (msg.attempt != state.attempt) {
    // Stale stream of a superseded attempt: folding it in would corrupt
    // the current attempt's accumulator.
    stale_packets.add();
    return;
  }
  FASTPR_CHECK(msg.packet_index < state.total_packets);
  const uint64_t offset =
      static_cast<uint64_t>(msg.packet_index) * state.packet_bytes;
  FASTPR_CHECK(offset + msg.payload.size() <= state.accumulator.size());
  const size_t payload_bytes = msg.payload.size();

  auto& pending = state.pending[msg.packet_index];
  if (pending.done) {
    // Already folded: a duplicated packet (flaky network) arriving
    // after its index completed must not double-contribute.
    dup_packets.add();
    return;
  }

  bool packet_final = false;
  if (state.expected_streams == 1) {
    // Single-stream transfer (migration, or k=1 repair): no fan-in to
    // wait for — scale-copy straight into place and recycle the buffer.
    gf::mul_region(state.accumulator.data() + offset, msg.payload.data(),
                   msg.coefficient, payload_bytes);
    pending.done = true;
    packet_final = true;
  } else {
    // Reconstruction fan-in: park the stream's contribution until every
    // helper's packet for this index has arrived, then fold all of them
    // into the accumulator with one fused dot pass (one sweep over the
    // packet instead of one per helper stream). A sender contributes at
    // most once per index (duplicate-packet dedupe).
    for (NodeId sender : pending.senders) {
      if (sender == msg.from) {
        dup_packets.add();
        return;
      }
    }
    pending.payloads.push_back(std::move(msg.payload));
    pending.coeffs.push_back(msg.coefficient);
    pending.senders.push_back(msg.from);
    if (pending.payloads.size() ==
        static_cast<size_t>(state.expected_streams)) {
      const uint8_t* srcs[net::kMaxRepairStreams];
      const size_t n = pending.payloads.size();
      FASTPR_CHECK(n <= net::kMaxRepairStreams);
      for (size_t j = 0; j < n; ++j) {
        FASTPR_CHECK(pending.payloads[j].size() == payload_bytes);
        srcs[j] = pending.payloads[j].data();
      }
      FASTPR_TRACE_SPAN("agent.accumulate", "agent",
                        static_cast<int64_t>(msg.task_id), "task");
      gf::dot_region_xor(state.accumulator.data() + offset, srcs,
                         pending.coeffs.data(), n, payload_bytes);
      pending.payloads.clear();  // recycles the pooled buffers
      pending.coeffs.clear();
      pending.senders.clear();
      pending.done = true;
      packet_final = true;
    }
  }

  if (packet_final) {
    // This packet of the repaired chunk is final: write it out now
    // (pipelined disk write), matching the paper's decode-as-you-go.
    store_.charge_io(static_cast<int64_t>(payload_bytes));
    ++state.packets_complete;
    if (state.packets_complete == state.total_packets) {
      FASTPR_TRACE_SPAN("agent.store_chunk", "agent",
                        static_cast<int64_t>(msg.task_id), "task");
      store_.write_unthrottled(state.chunk, std::move(state.accumulator));
      Message done;
      done.type = MessageType::kTaskDone;
      done.from = id_;
      done.to = options_.coordinator;
      done.task_id = msg.task_id;
      done.attempt = state.attempt;
      done.chunk = state.chunk;
      done.trace = telemetry::current_trace_context();
      // Completion ack: the coordinator's pending map consumes it.
      transport_.send(std::move(done));  // fastpr-lint: allow(ack-tracking)
      tasks_.erase(it);
    }
  }
}

void Agent::handle_chain_cmd(const Message& msg) {
  // One command per hop; the full chain rides in msg.sources and `hop`
  // names our slot. Retries are idempotent exactly like reconstruct
  // commands: stale/duplicate attempts drop, a higher attempt replaces
  // the hop state wholesale (its in-flight packets then fail the
  // attempt check).
  FASTPR_CHECK(!msg.sources.empty());
  FASTPR_CHECK(msg.hop < msg.sources.size());
  const auto existing = chain_tasks_.find(msg.task_id);
  if (existing != chain_tasks_.end() &&
      existing->second.attempt >= msg.attempt) {
    telemetry::MetricsRegistry::global().counter("agent.stale_cmds").add();
    return;
  }
  const auto done_it = chain_done_.find(msg.task_id);
  if (done_it != chain_done_.end()) {
    if (done_it->second >= msg.attempt) {
      telemetry::MetricsRegistry::global().counter("agent.stale_cmds").add();
      return;
    }
    chain_done_.erase(done_it);
  }

  const net::SourceSpec& own = msg.sources[msg.hop];
  const bool last = msg.hop + 1 == msg.sources.size();
  const NodeId next = last ? msg.dst : msg.sources[msg.hop + 1].node;

  if (msg.hop == 0) {
    // Head: nothing arrives here — a reader task seeds the chain. The
    // (otherwise unused) state only dedupes duplicate commands.
    ChainState state;
    state.attempt = msg.attempt;
    state.hop = 0;
    chain_tasks_[msg.task_id] = std::move(state);
    const uint64_t task_id = msg.task_id;
    const uint32_t attempt = msg.attempt;
    const ChunkRef chunk = msg.chunk;
    const ChunkRef own_chunk = own.chunk;
    const uint8_t coeff = own.coefficient;
    const uint64_t packet_bytes = msg.packet_bytes;
    const telemetry::TraceContext ctx = telemetry::current_trace_context();
    reader_pool_->post([this, task_id, attempt, chunk, own_chunk, next,
                        last, coeff, packet_bytes, ctx] {
      telemetry::ScopedTraceContext adopt(ctx, id_);
      chain_stream_head(task_id, attempt, chunk, own_chunk, next, last,
                        coeff, packet_bytes);
    });
    return;
  }

  ChainState state;
  state.attempt = msg.attempt;
  state.hop = msg.hop;
  state.next = next;
  state.last = last;
  state.chunk = msg.chunk;
  state.coefficient = own.coefficient;
  state.chunk_bytes = msg.chunk_bytes;
  state.packet_bytes = msg.packet_bytes;
  state.total_packets = static_cast<uint32_t>(
      (msg.chunk_bytes + msg.packet_bytes - 1) / msg.packet_bytes);
  // Read the whole helper chunk up front; per-packet disk time is
  // charged as each slice folds, pipelined with the forwards.
  auto content = store_.read_unthrottled(own.chunk);
  if (!content.has_value()) {
    report_failure(msg.task_id, msg.attempt,
                   "read error on chain hop " + std::to_string(id_) +
                       " for stripe " + std::to_string(own.chunk.stripe));
    return;
  }
  FASTPR_CHECK(content->size() == msg.chunk_bytes);
  state.own = std::move(*content);
  state.forwarded.assign(state.total_packets, false);
  state.window = std::make_shared<SendWindow>();
  chain_tasks_[msg.task_id] = std::move(state);

  // Drain any of our predecessor's packets that outran the command.
  const auto early = chain_early_.find(msg.task_id);
  if (early != chain_early_.end()) {
    std::vector<Message> buffered = std::move(early->second);
    chain_early_.erase(early);
    for (auto& m : buffered) {
      // Re-adopt each buffered packet's own context: its spans belong
      // to the predecessor's stream, not to this command.
      telemetry::ScopedTraceContext packet_ctx(m.trace, id_);
      handle_chain_packet(std::move(m));
    }
  }
}

void Agent::handle_chain_packet(Message&& msg) {
  static telemetry::Counter& rx_packets =
      telemetry::MetricsRegistry::global().counter("agent.chain_packets_rx");
  static telemetry::Counter& forwards =
      telemetry::MetricsRegistry::global().counter("agent.chain_forwards");
  static telemetry::Counter& stale_packets =
      telemetry::MetricsRegistry::global().counter("agent.stale_packets");
  static telemetry::Counter& dup_packets =
      telemetry::MetricsRegistry::global().counter("agent.dup_packets");
  static telemetry::Histogram& forward_ns =
      telemetry::MetricsRegistry::global().histogram(
          "agent.chain_forward_ns");
  rx_packets.add();

  const auto it = chain_tasks_.find(msg.task_id);
  if (it == chain_tasks_.end()) {
    const auto done_it = chain_done_.find(msg.task_id);
    if (done_it != chain_done_.end() && done_it->second >= msg.attempt) {
      // Straggling duplicate of a chain we already finished forwarding.
      dup_packets.add();
      return;
    }
    // Our kChainCmd may still be in flight (TCP orders frames per
    // connection, not across them): park the packet until it lands.
    auto& buffered = chain_early_[msg.task_id];
    if (buffered.size() >= kChainEarlyCap) {
      stale_packets.add();
      return;
    }
    buffered.push_back(std::move(msg));
    return;
  }

  ChainState& state = it->second;
  if (msg.attempt != state.attempt || state.hop == 0) {
    // Superseded attempt still draining (or a misrouted packet for a
    // head slot, which never consumes packets).
    stale_packets.add();
    return;
  }
  FASTPR_CHECK(msg.packet_index < state.total_packets);
  if (state.forwarded[msg.packet_index]) {
    dup_packets.add();
    return;
  }
  const uint64_t offset =
      static_cast<uint64_t>(msg.packet_index) * state.packet_bytes;
  const size_t len = msg.payload.size();
  FASTPR_CHECK(offset + len <= state.own.size());

#if FASTPR_TELEMETRY_ENABLED
  const auto hop_start = telemetry::trace_now();
#endif
  {
    FASTPR_TRACE_SPAN("agent.chain_forward", "agent",
                      static_cast<int64_t>(msg.task_id), "task");
    store_.charge_io(static_cast<int64_t>(len));  // own-chunk read share
    // Fold our scaled contribution into the running partial sum in
    // place on the pooled payload — no copy, no allocation on the hop
    // (single-source dot_region_xor = one fused multiply-XOR pass).
    const uint8_t* own_slice = state.own.data() + offset;
    gf::dot_region_xor(msg.payload.data(), &own_slice, &state.coefficient,
                       1, len);

    Message fwd;
    fwd.from = id_;
    fwd.to = state.next;
    fwd.task_id = msg.task_id;
    fwd.attempt = state.attempt;
    fwd.chunk = state.chunk;
    fwd.packet_index = msg.packet_index;
    fwd.total_packets = state.total_packets;
    fwd.chunk_bytes = state.chunk_bytes;
    fwd.packet_bytes = state.packet_bytes;
    fwd.trace = telemetry::current_trace_context();
    if (state.last) {
      // Completed partial sum: deliver as a plain store stream so the
      // destination's existing lazy migration path absorbs it.
      fwd.type = MessageType::kDataPacket;
      fwd.mode = TransferMode::kStore;
      fwd.coefficient = 1;
    } else {
      fwd.type = MessageType::kChainPacket;
      fwd.mode = TransferMode::kDecode;
      fwd.hop = state.hop + 1;
    }
    fwd.payload = std::move(msg.payload);
    state.forwarded[msg.packet_index] = true;
    ++state.forwarded_count;
    // Send-window pipelining: up to pipeline_depth of this chain's
    // forwards sit between the fold and the wire; the wait here is the
    // hop's backpressure (a slow successor paces us, and through us the
    // whole upstream chain).
    enqueue_send(std::move(fwd), state.window);
  }
  forwards.add();
#if FASTPR_TELEMETRY_ENABLED
  forward_ns.observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         telemetry::trace_now() - hop_start)
                         .count());
#endif

  if (state.forwarded_count == state.total_packets) {
    chain_done_[msg.task_id] = state.attempt;
    chain_tasks_.erase(it);
  }
}

void Agent::chain_stream_head(uint64_t task_id, uint32_t attempt,
                              ChunkRef chunk, ChunkRef own, NodeId next,
                              bool last, uint8_t coefficient,
                              uint64_t packet_bytes) {
  FASTPR_CHECK(packet_bytes >= 1);
  FASTPR_TRACE_SPAN("agent.chain_stream_head", "agent",
                    static_cast<int64_t>(task_id), "task");
  const auto content = store_.read_unthrottled(own);
  if (!content.has_value()) {
    report_failure(task_id, attempt,
                   "read error on node " + std::to_string(id_) +
                       " for stripe " + std::to_string(own.stripe));
    return;
  }
  const uint64_t chunk_bytes = content->size();
  const uint32_t total_packets = static_cast<uint32_t>(
      (chunk_bytes + packet_bytes - 1) / packet_bytes);
  const auto window = std::make_shared<SendWindow>();

  for (uint32_t p = 0; p < total_packets; ++p) {
    const uint64_t offset = static_cast<uint64_t>(p) * packet_bytes;
    const uint64_t len = std::min(packet_bytes, chunk_bytes - offset);
    store_.charge_io(static_cast<int64_t>(len));  // disk read time

    Message packet;
    if (last) {
      // Single-hop chain: the seed IS the repaired chunk — ship it as
      // a plain store stream (no forwarding, no hop overhead).
      packet.type = MessageType::kDataPacket;
      packet.mode = TransferMode::kStore;
      packet.coefficient = 1;
    } else {
      packet.type = MessageType::kChainPacket;
      packet.mode = TransferMode::kDecode;
      packet.hop = 1;
    }
    packet.from = id_;
    packet.to = next;
    packet.task_id = task_id;
    packet.attempt = attempt;
    packet.chunk = chunk;
    packet.packet_index = p;
    packet.total_packets = total_packets;
    packet.chunk_bytes = chunk_bytes;
    packet.packet_bytes = packet_bytes;
    packet.trace = telemetry::current_trace_context();
    packet.payload.assign(content->data() + offset, len);
    // Seed partial sum: scale by our own decode coefficient in place.
    gf::mul_region(packet.payload.data(), packet.payload.data(),
                   coefficient, len);

    enqueue_send(std::move(packet), window);
  }
  telemetry::MetricsRegistry::global()
      .counter("agent.chain_packets_tx")
      .add(total_packets);
}

}  // namespace fastpr::agent
