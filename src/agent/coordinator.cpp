#include "agent/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace fastpr::agent {

using cluster::ChunkRef;
using cluster::NodeId;
using net::Message;
using net::MessageType;

namespace {

telemetry::Counter& coord_counter(const char* name) {
  return telemetry::MetricsRegistry::global().counter(name);
}

std::string chunk_str(ChunkRef chunk) {
  return "(" + std::to_string(chunk.stripe) + "," +
         std::to_string(chunk.index) + ")";
}

}  // namespace

Coordinator::Coordinator(NodeId id, net::Transport& transport,
                         const ec::ErasureCode& code,
                         const cluster::StripeLayout& layout,
                         const CoordinatorOptions& options)
    : id_(id),
      transport_(transport),
      code_(code),
      layout_(layout),
      options_(options) {
  FASTPR_CHECK(options.chunk_bytes >= 1);
  FASTPR_CHECK(options.packet_bytes >= 1);
  FASTPR_CHECK(options.packet_bytes <= options.chunk_bytes);
  FASTPR_CHECK(options.max_attempts >= 1);
  FASTPR_CHECK(options.max_round_extensions >= 0);
  FASTPR_CHECK(options.stf_failure_threshold >= 1);
}

void Coordinator::issue_task(uint64_t task_id, const PendingTask& task) {
  if (task.is_migration) {
    issue_migration(task_id, task.attempt, task.mig);
  } else {
    issue_reconstruction(task_id, task.attempt, task.recon);
  }
}

void Coordinator::issue_reconstruction(uint64_t task_id, uint32_t attempt,
                                       const core::ReconstructionTask& task) {
  // A chain needs at least two hops to pipeline anything; a degenerate
  // helper set (LRC local repair can shrink to one) runs as fan-in.
  if (task.strategy == core::RepairStrategy::kChain &&
      task.sources.size() >= 2) {
    issue_chain(task_id, attempt, task);
    return;
  }
  // Decode coefficients for this helper set.
  std::vector<int> helper_indices;
  helper_indices.reserve(task.sources.size());
  for (const auto& src : task.sources) {
    helper_indices.push_back(src.chunk.index);
  }
  const auto coeffs =
      code_.repair_coefficients(task.chunk.index, helper_indices);
  FASTPR_CHECK(coeffs.size() == task.sources.size());

  Message cmd;
  cmd.type = MessageType::kReconstructCmd;
  cmd.from = id_;
  cmd.to = task.dst;
  cmd.task_id = task_id;
  cmd.attempt = attempt;
  cmd.chunk = task.chunk;
  cmd.dst = task.dst;
  cmd.chunk_bytes = options_.chunk_bytes;
  cmd.packet_bytes = options_.packet_bytes;
  cmd.trace = telemetry::current_trace_context();
  for (size_t i = 0; i < task.sources.size(); ++i) {
    cmd.sources.push_back(net::SourceSpec{task.sources[i].node,
                                          task.sources[i].chunk, coeffs[i]});
  }
  // fastpr-lint: allow(ack-tracking) — reply tracked via pending_;
  // non-acknowledgement is salvaged by round extensions + probes.
  transport_.send(std::move(cmd));
}

void Coordinator::issue_chain(uint64_t task_id, uint32_t attempt,
                              const core::ReconstructionTask& task) {
  // Decode coefficients, identical to the fan-in issue path — a chain
  // computes the same sum, just associated left-to-right down the hops.
  std::vector<int> helper_indices;
  helper_indices.reserve(task.sources.size());
  for (const auto& src : task.sources) {
    helper_indices.push_back(src.chunk.index);
  }
  const auto coeffs =
      code_.repair_coefficients(task.chunk.index, helper_indices);
  FASTPR_CHECK(coeffs.size() == task.sources.size());

  // The full chain in hop order; every hop receives the same vector and
  // indexes it with `hop` for its own chunk/coefficient and successor.
  std::vector<net::SourceSpec> chain;
  chain.reserve(task.sources.size());
  for (size_t i = 0; i < task.sources.size(); ++i) {
    chain.push_back(net::SourceSpec{task.sources[i].node,
                                    task.sources[i].chunk, coeffs[i]});
  }

  // One command per hop, sent last-hop-first: on the in-process
  // transport (per-receiver FIFO, all sends from this thread) every
  // hop's command is enqueued before its predecessor can start
  // streaming into it; TCP cross-connection races are absorbed by the
  // agents' early-packet buffer.
  for (size_t i = chain.size(); i-- > 0;) {
    Message cmd;
    cmd.type = MessageType::kChainCmd;
    cmd.from = id_;
    cmd.to = chain[i].node;
    cmd.task_id = task_id;
    cmd.attempt = attempt;
    cmd.chunk = task.chunk;
    cmd.dst = task.dst;
    cmd.hop = static_cast<uint32_t>(i);
    cmd.chunk_bytes = options_.chunk_bytes;
    cmd.packet_bytes = options_.packet_bytes;
    cmd.sources = chain;
    cmd.trace = telemetry::current_trace_context();
    // fastpr-lint: allow(ack-tracking) — completion is acked by the
    // destination (kTaskDone) via pending_; a stalled chain is salvaged
    // by round extensions + probes over collect_task_nodes.
    transport_.send(std::move(cmd));
  }
  coord_counter("coordinator.chain_tasks").add();
}

void Coordinator::issue_migration(uint64_t task_id, uint32_t attempt,
                                  const core::MigrationTask& task) {
  Message cmd;
  cmd.type = MessageType::kMigrateCmd;
  cmd.from = id_;
  cmd.to = task.src;
  cmd.task_id = task_id;
  cmd.attempt = attempt;
  cmd.chunk = task.chunk;
  cmd.dst = task.dst;
  cmd.chunk_bytes = options_.chunk_bytes;
  cmd.packet_bytes = options_.packet_bytes;
  cmd.trace = telemetry::current_trace_context();
  // fastpr-lint: allow(ack-tracking) — reply tracked via pending_;
  // non-acknowledgement is salvaged by round extensions + probes.
  transport_.send(std::move(cmd));
}

void Coordinator::cancel_attempt(NodeId node, uint64_t task_id,
                                 uint32_t attempt) {
  if (node == cluster::kNoNode) return;
  Message msg;
  msg.type = MessageType::kCancelTask;
  msg.from = id_;
  msg.to = node;
  msg.task_id = task_id;
  msg.attempt = attempt;
  msg.trace = telemetry::current_trace_context();
  // fastpr-lint: allow(ack-tracking) — best-effort tidy-up; superseded
  // agent state also self-cleans via per-packet attempt checks.
  transport_.send(std::move(msg));
}

core::ReconstructionTask Coordinator::fallback_for(
    const core::MigrationTask& task, NodeId stf,
    const std::unordered_set<NodeId>& failed) const {
  core::ReconstructionTask recon;
  recon.chunk = task.chunk;
  recon.dst = task.dst;
  recon.sources = pick_sources(task.chunk, task.dst, stf, failed);
  return recon;
}

std::vector<core::SourceRead> Coordinator::pick_sources(
    ChunkRef chunk, NodeId dst, NodeId stf,
    const std::unordered_set<NodeId>& exclude) const {
  // k helpers from the stripe's other nodes. We cannot use an STF node
  // (it is being retired or its read just failed) or any known-failed
  // node; beyond that any k suffice for RS, and the code object picks
  // valid helpers for LRC (local group first, global parities when the
  // group is depleted). During a batch execution every batch member is
  // off-limits, not just the caller's `stf`.
  const auto& nodes = layout_.stripe_nodes(chunk.stripe);
  std::vector<bool> available(nodes.size(), false);
  for (size_t i = 0; i < nodes.size(); ++i) {
    available[i] = nodes[i] != stf && nodes[i] != dst &&
                   stf_set_.count(nodes[i]) == 0 &&
                   exclude.count(nodes[i]) == 0 &&
                   static_cast<int>(i) != chunk.index;
  }
  const auto helpers = code_.repair_helpers(chunk.index, available);
  std::vector<core::SourceRead> sources;
  sources.reserve(helpers.size());
  for (int h : helpers) {
    sources.push_back(core::SourceRead{
        nodes[static_cast<size_t>(h)], ChunkRef{chunk.stripe, h}});
  }
  return sources;
}

bool Coordinator::needs_rebuild(const PendingTask& task) const {
  const auto bad = [&](NodeId n) {
    return failed_nodes_.count(n) != 0 || task.excluded.count(n) != 0;
  };
  if (task.is_migration) {
    return stf_node_dead(task.mig.src) || bad(task.mig.src) ||
           bad(task.mig.dst);
  }
  if (task.recon.dst == cluster::kNoNode || bad(task.recon.dst)) return true;
  for (const auto& src : task.recon.sources) {
    if (bad(src.node)) return true;
  }
  return false;
}

bool Coordinator::rebuild_task(PendingTask& task, ExecutionReport& report) {
  const auto bad = [&](NodeId n) {
    return failed_nodes_.count(n) != 0 || task.excluded.count(n) != 0;
  };
  if (task.is_migration) {
    const bool stf_gone = stf_node_dead(task.mig.src) || bad(task.mig.src);
    if (!stf_gone) {
      if (bad(task.mig.dst)) {
        const NodeId dst = choose_destination(task.mig.chunk.stripe, task);
        if (dst == cluster::kNoNode) return false;
        task.mig.dst = dst;
      }
      return true;
    }
    // Predictive migration degrades in place to a fallback
    // reconstruction (same task_id, next attempt).
    task.is_migration = false;
    ++report.fallback_reconstructions;
    coord_counter("coordinator.fallbacks").add();
    task.recon.chunk = task.mig.chunk;
    task.recon.dst = task.mig.dst;
    task.recon.sources.clear();
  }
  ChunkRef chunk = task.recon.chunk;
  NodeId dst = task.recon.dst;
  if (dst == cluster::kNoNode || bad(dst)) {
    dst = choose_destination(chunk.stripe, task);
    if (dst == cluster::kNoNode) return false;
  }
  std::unordered_set<NodeId> exclude = task.excluded;
  exclude.insert(failed_nodes_.begin(), failed_nodes_.end());
  try {
    task.recon.sources = pick_sources(chunk, dst, stf_, exclude);
  } catch (const CheckFailure&) {
    return false;  // fewer than k viable chunks left in the stripe
  }
  task.recon.dst = dst;
  return true;
}

NodeId Coordinator::choose_destination(cluster::StripeId stripe,
                                       const PendingTask& task) {
  std::unordered_set<NodeId> in_use;
  for (const auto& [id, p] : pending_) in_use.insert(p.current_dst());

  std::vector<NodeId> pool = options_.dest_candidates;
  if (pool.empty()) {
    pool.resize(static_cast<size_t>(layout_.num_nodes()));
    std::iota(pool.begin(), pool.end(), 0);
  }

  NodeId best = cluster::kNoNode;
  std::pair<int, int> best_key{0, 0};
  for (NodeId n : pool) {
    if (stf_set_.count(n) != 0 || failed_nodes_.count(n) != 0 ||
        task.excluded.count(n) != 0) {
      continue;
    }
    if (layout_.stripe_uses_node(stripe, n)) continue;
    // Spare (hot-standby) ids sit beyond the layout and hold no chunks.
    const int placed = n < layout_.num_nodes() ? layout_.load(n) : 0;
    const std::pair<int, int> key{in_use.count(n) != 0 ? 1 : 0,
                                  placed + extra_dst_load_[n]};
    if (best == cluster::kNoNode || key < best_key) {
      best = n;
      best_key = key;
    }
  }
  if (best != cluster::kNoNode) ++extra_dst_load_[best];
  return best;
}

void Coordinator::start_task(PendingTask task, ExecutionReport& report) {
  const uint64_t id = next_task_id_++;
  if (needs_rebuild(task) && !rebuild_task(task, report)) {
    report.unrepaired.push_back(task.chunk());
    report.errors.push_back("chunk " + chunk_str(task.chunk()) +
                            " unrepaired: no viable helper set");
    coord_counter("coordinator.tasks_abandoned").add();
    return;
  }
  const auto [it, inserted] = pending_.emplace(id, std::move(task));
  FASTPR_CHECK(inserted);
  issue_task(id, it->second);
}

void Coordinator::handle_task_done(const Message& msg,
                                   ExecutionReport& report) {
  const auto it = pending_.find(msg.task_id);
  if (it == pending_.end() || it->second.attempt != msg.attempt) {
    coord_counter("coordinator.stale_acks").add();
    return;
  }
  const PendingTask& task = it->second;
  CompletedRepair done;
  done.chunk = task.chunk();
  done.dst = msg.from;
  done.migrated = task.is_migration;
  done.attempts = static_cast<int>(task.attempt);
  report.completions.push_back(done);
  if (task.is_migration) {
    ++report.migrated;
  } else {
    ++report.reconstructed;
  }
  pending_.erase(it);
}

void Coordinator::handle_task_failed(const Message& msg,
                                     ExecutionReport& report) {
  const auto it = pending_.find(msg.task_id);
  if (it == pending_.end()) return;
  PendingTask& task = it->second;
  // Even a stale failure report names a faulty node; remember it for
  // future attempts of this task.
  if (msg.from != cluster::kNoNode) task.excluded.insert(msg.from);
  if (msg.attempt != task.attempt || task.waiting_retry) return;

  LOG_INFO("coordinator: task " << msg.task_id << " attempt "
                                << msg.attempt << " failed ('" << msg.error
                                << "')");
  if (task.is_migration) {
    // A migration failure is an STF read failure: fall back to
    // reconstruction immediately (the reactive path reads other disks,
    // so no backoff), and count it toward declaring THAT member dead —
    // each batch member's disk fails independently.
    const NodeId src = task.mig.src;
    const int failures = ++stf_failures_by_[src];
    task.excluded.insert(src);
    if (!stf_node_dead(src) &&
        failures >= options_.stf_failure_threshold) {
      declare_stf_dead(src, report);
    }
    reissue_now(msg.task_id, report);
    return;
  }
  schedule_retry(msg.task_id, task);
}

void Coordinator::schedule_retry(uint64_t task_id, PendingTask& task) {
  auto backoff = options_.retry_backoff;
  for (uint32_t i = 1; i < task.attempt; ++i) backoff *= 2;
  task.waiting_retry = true;
  retries_due_.emplace(telemetry::TraceClock::now() + backoff, task_id);
}

void Coordinator::reissue_now(uint64_t task_id, ExecutionReport& report) {
  const auto it = pending_.find(task_id);
  if (it == pending_.end()) return;
  PendingTask& task = it->second;
  if (static_cast<int>(task.attempt) >= options_.max_attempts) {
    abandon(task_id, "attempts exhausted", report);
    return;
  }
  const NodeId old_dst = task.current_dst();
  const uint32_t old_attempt = task.attempt;
  // Chain hops hold per-task state and a reissued chain re-picks its
  // hop set, so tear every old hop down. Attempt-guarded: a cancel
  // carrying the old attempt cannot kill the state a reused hop gets
  // from the new command's higher attempt.
  std::vector<NodeId> old_hops;
  if (!task.is_migration &&
      task.recon.strategy == core::RepairStrategy::kChain) {
    for (const auto& src : task.recon.sources) old_hops.push_back(src.node);
  }
  ++task.attempt;
  if (!rebuild_task(task, report)) {
    abandon(task_id, "no viable helper set or destination", report);
    return;
  }
  ++report.retries;
  coord_counter("coordinator.retries").add();
  if (task.current_dst() != old_dst) {
    cancel_attempt(old_dst, task_id, old_attempt);
  }
  for (NodeId hop : old_hops) cancel_attempt(hop, task_id, old_attempt);
  issue_task(task_id, task);
}

void Coordinator::abandon(uint64_t task_id, const std::string& reason,
                          ExecutionReport& report) {
  const auto it = pending_.find(task_id);
  if (it == pending_.end()) return;
  const ChunkRef chunk = it->second.chunk();
  report.unrepaired.push_back(chunk);
  report.errors.push_back("chunk " + chunk_str(chunk) +
                          " unrepaired: " + reason);
  coord_counter("coordinator.tasks_abandoned").add();
  cancel_attempt(it->second.current_dst(), task_id, it->second.attempt);
  const PendingTask& task = it->second;
  if (!task.is_migration &&
      task.recon.strategy == core::RepairStrategy::kChain) {
    for (const auto& src : task.recon.sources) {
      cancel_attempt(src.node, task_id, task.attempt);
    }
  }
  pending_.erase(it);
}

void Coordinator::start_probe(ExecutionReport& report) {
  if (probe_active_) return;
  probe_active_ = true;
  ++probe_epoch_;
  probe_deadline_ = telemetry::TraceClock::now() + options_.probe_timeout;
  probe_sent_us_ = telemetry::trace_now_us();
  probe_outstanding_.clear();
  stragglers_.clear();

  std::unordered_set<NodeId> nodes;
  for (const auto& [id, task] : pending_) {
    if (task.waiting_retry) continue;  // the backoff machinery owns these
    stragglers_.push_back(id);
    collect_task_nodes(task, nodes);
  }
  for (NodeId n : nodes) {
    if (failed_nodes_.count(n) != 0) continue;
    probe_outstanding_[n] = false;
    Message ping;
    ping.type = MessageType::kPing;
    ping.from = id_;
    ping.to = n;
    ping.task_id = probe_epoch_;  // echoed by kPong; matches the probe
    ping.trace = telemetry::current_trace_context();
    // fastpr-lint: allow(ack-tracking) — reply tracked via
    // probe_outstanding_; silence is the signal being measured.
    transport_.send(std::move(ping));
  }
  coord_counter("coordinator.probes").add();
  if (probe_outstanding_.empty()) finish_probe(report);
}

void Coordinator::finish_probe(ExecutionReport& report) {
  probe_active_ = false;
  for (const auto& [node, replied] : probe_outstanding_) {
    if (replied) continue;
    failed_nodes_.insert(node);
    coord_counter("coordinator.nodes_declared_failed").add();
    LOG_INFO("coordinator: node " << node
                                  << " unresponsive to probe; excluded");
    if (stf_set_.count(node) != 0) declare_stf_dead(node, report);
  }
  const std::vector<uint64_t> ids = std::move(stragglers_);
  stragglers_.clear();
  for (uint64_t id : ids) {
    const auto it = pending_.find(id);
    if (it == pending_.end() || it->second.waiting_retry) continue;
    reissue_now(id, report);
  }
}

void Coordinator::declare_stf_dead(NodeId node, ExecutionReport& report) {
  if (stf_node_dead(node)) return;
  stf_dead_set_.insert(node);
  stf_death_round_[node] = current_round_;
  failed_nodes_.insert(node);
  if (!report.degraded_to_reactive) {
    // First member death flips the execution-level degradation flag;
    // later deaths only extend the dead set (surviving members keep
    // their predictive schedule).
    report.degraded_to_reactive = true;
    report.degraded_at_round = current_round_;
    coord_counter("coordinator.degraded_executions").add();
    if (options_.bandwidth_trigger != nullptr) {
      // The predictive schedule this trigger was watching is being
      // replaced by the reactive tail; drift against it is meaningless.
      options_.bandwidth_trigger->disable();
    }
  }
  report.errors.push_back(
      "STF node " + std::to_string(node) + " declared dead in round " +
      std::to_string(current_round_) + "; degrading to reactive repair");
  LOG_INFO("coordinator: STF node "
           << node << " dead; predictive repair degrades to reactive");
}

double Coordinator::task_send_bytes(const PendingTask& task) const {
  // Migration streams the chunk once; a reconstruction (fan-in or
  // chain, which forwards once per hop) moves ~|sources| chunks.
  const double chunk = static_cast<double>(options_.chunk_bytes);
  if (task.is_migration) return chunk;
  return chunk * static_cast<double>(std::max<size_t>(
                     1, task.recon.sources.size()));
}

void Coordinator::lease_tick() {
  if (options_.throttler == nullptr) return;
  const auto grants = options_.throttler->tick(telemetry::trace_now_us());
  for (const auto& grant : grants) {
    Message msg;
    msg.type = MessageType::kLeaseGrant;
    msg.from = id_;
    msg.to = grant.agent;
    msg.task_id = grant.seq;  // lease protocol: seq rides in task_id
    msg.chunk_bytes = static_cast<uint64_t>(std::max(0.0, grant.bytes_per_sec));
    msg.packet_bytes = static_cast<uint64_t>(grant.ttl_us);
    msg.trace = telemetry::current_trace_context();
    // fastpr-lint: allow(ack-tracking) — renewal is the ack: a silent
    // agent's lease expires back into the pool by design.
    transport_.send(std::move(msg));
  }
  next_lease_tick_ = telemetry::TraceClock::now() +
                     std::chrono::microseconds(
                         options_.throttler->lease_ttl_us() / 3);
}

void Coordinator::collect_task_nodes(
    const PendingTask& task, std::unordered_set<NodeId>& out) const {
  if (task.is_migration) {
    out.insert(task.mig.src);
    out.insert(task.mig.dst);
    return;
  }
  out.insert(task.recon.dst);
  for (const auto& src : task.recon.sources) out.insert(src.node);
}

ExecutionReport Coordinator::execute(const core::RepairPlan& plan) {
  using Clock = telemetry::TraceClock;
  // One causal trace per execution: the root context minted here rides
  // in every outgoing command header, so every agent span on every node
  // descends from the execute span below.
  telemetry::ScopedTraceContext trace_root(
      telemetry::make_root_context(static_cast<int>(id_)), id_);
  FASTPR_TRACE_SPAN("coordinator.execute", "coordinator");
  ExecutionReport report;

  pending_.clear();
  retries_due_.clear();
  failed_nodes_.clear();
  extra_dst_load_.clear();
  stragglers_.clear();
  stf_ = plan.stf_node;
  stf_batch_ = plan.stf_nodes.empty()
                   ? std::vector<NodeId>{plan.stf_node}
                   : plan.stf_nodes;
  FASTPR_CHECK_MSG(stf_batch_.front() == stf_,
                   "stf_node must be the first batch member");
  stf_set_.clear();
  stf_set_.insert(stf_batch_.begin(), stf_batch_.end());
  stf_dead_set_.clear();
  stf_death_round_.clear();
  stf_failures_by_.clear();
  probe_active_ = false;

  // The tail of the schedule is mutable: when the STF dies mid-repair,
  // the replan hook replaces the remaining rounds with a reactive plan.
  std::vector<core::RepairRound> rounds = plan.rounds;
  bool replanned = false;

  // Estimated repair send bytes of a schedule tail — the denominator of
  // the throttler's finish-time (panic) estimate.
  const auto rounds_send_bytes = [&](const std::vector<core::RepairRound>& rs,
                                     size_t from_idx) {
    double bytes = 0;
    const double chunk = static_cast<double>(options_.chunk_bytes);
    for (size_t i = from_idx; i < rs.size(); ++i) {
      for (const auto& t : rs[i].reconstructions) {
        bytes += chunk * static_cast<double>(
                             std::max<size_t>(1, t.sources.size()));
      }
      bytes += chunk * static_cast<double>(rs[i].migrations.size());
    }
    return bytes;
  };

  if (options_.throttler != nullptr) {
    options_.throttler->reset(telemetry::trace_now_us(),
                              rounds_send_bytes(rounds, 0));
    if (options_.stf_deadline_seconds > 0) {
      options_.throttler->set_deadline(
          telemetry::trace_now_us() +
          static_cast<int64_t>(options_.stf_deadline_seconds * 1e6));
    }
    // Initial grants before any data flows, so round 1 repair traffic
    // starts under leased budget instead of a floor-rate stall.
    lease_tick();
  }

  for (size_t round_idx = 0; round_idx < rounds.size(); ++round_idx) {
    const core::RepairRound round = rounds[round_idx];
    current_round_ = static_cast<int>(round_idx) + 1;
    FASTPR_TRACE_SPAN("coordinator.round", "coordinator",
                      static_cast<int64_t>(current_round_), "round");
    const auto round_start = Clock::now();
    auto deadline = round_start + options_.round_timeout;
    int extensions_left = options_.max_round_extensions;
    const int round_migrated_before = report.migrated;
    const int round_recon_before = report.reconstructed;
    const int round_fallbacks_before = report.fallback_reconstructions;
    const int round_retries_before = report.retries;
    // Measured phase times in the paper's vocabulary: time from round
    // start to the LAST reconstruction (tr) / migration (tm) completion.
    // 0 when the round ran none of that phase.
    double round_tr = 0;
    double round_tm = 0;
    retries_due_.clear();

    for (const auto& task : round.reconstructions) {
      PendingTask pending;
      pending.is_migration = false;
      pending.recon = task;
      start_task(std::move(pending), report);
    }
    for (const auto& task : round.migrations) {
      PendingTask pending;
      pending.is_migration = true;
      pending.mig = task;
      start_task(std::move(pending), report);
    }

    while (!pending_.empty()) {
      auto now = Clock::now();

      // Fire retries that have served their backoff.
      while (!retries_due_.empty() && retries_due_.begin()->first <= now) {
        const uint64_t id = retries_due_.begin()->second;
        retries_due_.erase(retries_due_.begin());
        const auto it = pending_.find(id);
        if (it == pending_.end() || !it->second.waiting_retry) continue;
        it->second.waiting_retry = false;
        reissue_now(id, report);
      }

      // Resolve an outstanding probe (everyone answered, or timed out).
      if (probe_active_) {
        bool all_replied = true;
        for (const auto& [node, replied] : probe_outstanding_) {
          all_replied = all_replied && replied;
        }
        if (all_replied || now >= probe_deadline_) finish_probe(report);
      }
      // Lease cadence: re-grant every ttl/3 so healthy leases renew
      // well before expiring and pressure shifts re-shape shares fast.
      if (options_.throttler != nullptr && now >= next_lease_tick_) {
        lease_tick();
      }
      if (pending_.empty()) break;

      now = Clock::now();
      if (now >= deadline) {
        if (extensions_left > 0) {
          --extensions_left;
          ++report.round_extensions;
          coord_counter("coordinator.round_extensions").add();
          deadline = now + options_.round_timeout;
          LOG_INFO("coordinator: round " << current_round_ << " stalled ("
                                         << pending_.size()
                                         << " tasks); extending + probing");
          // Salvage what completed; probe the stragglers' nodes, then
          // reissue them with confirmed-dead nodes excluded.
          start_probe(report);
        } else {
          report.errors.push_back(
              "round " + std::to_string(current_round_) +
              " timed out with " + std::to_string(pending_.size()) +
              " tasks outstanding");
          std::vector<uint64_t> ids;
          ids.reserve(pending_.size());
          for (const auto& [id, task] : pending_) ids.push_back(id);
          std::sort(ids.begin(), ids.end());
          for (uint64_t id : ids) abandon(id, "round timed out", report);
          retries_due_.clear();
          break;
        }
        continue;
      }

      auto next_event = deadline;
      if (probe_active_ && probe_deadline_ < next_event) {
        next_event = probe_deadline_;
      }
      if (!retries_due_.empty() &&
          retries_due_.begin()->first < next_event) {
        next_event = retries_due_.begin()->first;
      }
      if (options_.throttler != nullptr && next_lease_tick_ < next_event) {
        next_event = next_lease_tick_;
      }
      auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_event - now);
      if (budget < std::chrono::milliseconds(1)) {
        budget = std::chrono::milliseconds(1);
      }
      auto msg = transport_.recv(id_, budget);
      if (!msg.has_value()) continue;  // timeout tick; loop re-checks

      switch (msg->type) {
        case MessageType::kTaskDone: {
          const auto pit = pending_.find(msg->task_id);
          const bool counted =
              pit != pending_.end() && pit->second.attempt == msg->attempt;
          const bool was_migration = counted && pit->second.is_migration;
          if (counted && options_.throttler != nullptr) {
            options_.throttler->on_progress(task_send_bytes(pit->second));
          }
          handle_task_done(*msg, report);
          if (counted) {
            const double t = std::chrono::duration<double>(Clock::now() -
                                                           round_start)
                                 .count();
            (was_migration ? round_tm : round_tr) = t;
          }
          break;
        }
        case MessageType::kTaskFailed:
          handle_task_failed(*msg, report);
          break;
        case MessageType::kPong:
          if (msg->task_id == probe_epoch_ &&
              msg->trace.origin_ts_us != 0) {
            // The pong carries the agent's local clock at reply time;
            // paired with this epoch's send time it yields one
            // clock-offset sample (clock_sync.h).
            clock_sync_.record(msg->from, probe_sent_us_,
                               msg->trace.origin_ts_us,
                               telemetry::trace_now_us());
          }
          if (probe_active_ && msg->task_id == probe_epoch_) {
            const auto it = probe_outstanding_.find(msg->from);
            if (it != probe_outstanding_.end()) it->second = true;
          }
          if (options_.throttler != nullptr) {
            // Lease renewal piggybacks on the probe epoch: the pong's
            // chunk_bytes/packet_bytes carry the agent's foreground
            // pressure (p99 ns, fg bytes/s).
            options_.throttler->report_pressure(
                msg->from, msg->task_id,
                // ns→s wire decode, not a config. fastpr-lint: allow(units)
                static_cast<double>(msg->chunk_bytes) / 1e9,
                static_cast<double>(msg->packet_bytes),
                telemetry::trace_now_us());
          }
          break;
        case MessageType::kPressureReport:
          if (options_.throttler != nullptr) {
            options_.throttler->report_pressure(
                msg->from, msg->task_id,
                // ns→s wire decode, not a config. fastpr-lint: allow(units)
                static_cast<double>(msg->chunk_bytes) / 1e9,
                static_cast<double>(msg->packet_bytes),
                telemetry::trace_now_us());
          }
          break;
        default:
          break;  // stray message; ignore
      }
    }

    const double secs =
        std::chrono::duration<double>(Clock::now() - round_start).count();
    report.round_seconds.push_back(secs);
    report.total_seconds += secs;

    telemetry::RepairRoundStats stats;
    stats.round = current_round_;
    stats.cr = report.reconstructed - round_recon_before;
    stats.cm = report.migrated - round_migrated_before;
    stats.fallbacks =
        report.fallback_reconstructions - round_fallbacks_before;
    stats.retries = report.retries - round_retries_before;
    stats.bytes_reconstructed =
        static_cast<int64_t>(stats.cr) *
        static_cast<int64_t>(options_.chunk_bytes);
    stats.bytes_migrated = static_cast<int64_t>(stats.cm) *
                           static_cast<int64_t>(options_.chunk_bytes);
    stats.duration_seconds = secs;
    stats.tr_seconds = round_tr;
    stats.tm_seconds = round_tm;
    report.repair.rounds.push_back(stats);
    report.repair.total_seconds = report.total_seconds;

    // STF death: replace the remaining schedule with a reactive plan
    // over everything not yet handled. One replan per execution — the
    // reactive tail already avoids every node known dead, and later
    // individual failures are covered by the retry machinery. Batch
    // executions never take this path: one member's death must not
    // reshuffle the other members' still-valid predictive rounds, so
    // only the dead member's tasks convert (via rebuild_task) as their
    // rounds come up.
    if (stf_batch_.size() == 1 && stf_node_dead(stf_) && !replanned &&
        options_.replan) {
      replanned = true;
      ++report.replans;
      coord_counter("coordinator.replans").add();
      ReplanRequest request;
      request.handled.reserve(report.completions.size() +
                              report.unrepaired.size());
      for (const auto& done : report.completions) {
        request.handled.push_back(done.chunk);
      }
      for (const auto& chunk : report.unrepaired) {
        request.handled.push_back(chunk);
      }
      request.failed_nodes.assign(failed_nodes_.begin(),
                                  failed_nodes_.end());
      std::sort(request.failed_nodes.begin(), request.failed_nodes.end());
      ReplanResult result = options_.replan(request);
      rounds.resize(round_idx + 1);
      for (auto& extra : result.plan.rounds) {
        rounds.push_back(std::move(extra));
      }
      for (const auto& chunk : result.unrepairable) {
        report.unrepaired.push_back(chunk);
        report.errors.push_back("chunk " + chunk_str(chunk) +
                                " unrepaired: fewer than k live chunks "
                                "after STF death");
      }
    }

    // Bandwidth drift: fold this round's worst measured/expected link
    // ratio into the hysteresis trigger; when it fires, the remaining
    // rounds are re-derived around the degraded links (DESIGN.md §11) —
    // the bandwidth analog of the STF-death replan above, but the
    // replacement tail is still predictive and may fire more than once
    // (bounded by the trigger's max_replans). Skipped once degraded
    // (the reactive tail is no longer the plan the ratios price) and
    // for batch executions (the hook replans one member's chunks; a
    // joint reshuffle would invalidate the others' still-valid rounds).
    if (stf_batch_.size() == 1 && options_.bandwidth_trigger != nullptr &&
        options_.flow_monitor != nullptr && options_.bandwidth_replan &&
        !report.degraded_to_reactive && round_idx + 1 < rounds.size()) {
      double worst = std::numeric_limits<double>::infinity();
      std::vector<NodeId> slow;
      for (const auto& link : options_.flow_monitor->snapshot()) {
        if (link.expected_bytes_per_sec <= 0 ||
            link.ewma_bytes_per_sec <= 0) {
          continue;  // unpriced or idle link: no drift signal
        }
        worst = std::min(worst, link.ewma_bytes_per_sec /
                                    link.expected_bytes_per_sec);
        if (link.straggler) slow.push_back(link.src);
      }
      if (std::isfinite(worst) &&
          options_.bandwidth_trigger->feed(current_round_, worst)) {
        ++report.replans;
        ++report.bandwidth_replans;
        coord_counter("coordinator.bandwidth_replans").add();
        BandwidthReplanRequest request;
        request.worst_ratio = worst;
        request.handled.reserve(report.completions.size() +
                                report.unrepaired.size());
        for (const auto& done : report.completions) {
          request.handled.push_back(done.chunk);
        }
        for (const auto& chunk : report.unrepaired) {
          request.handled.push_back(chunk);
        }
        request.failed_nodes.assign(failed_nodes_.begin(),
                                    failed_nodes_.end());
        std::sort(request.failed_nodes.begin(),
                  request.failed_nodes.end());
        std::sort(slow.begin(), slow.end());
        slow.erase(std::unique(slow.begin(), slow.end()), slow.end());
        request.slow_nodes = std::move(slow);
        LOG_INFO("coordinator: bandwidth replan after round "
                 << current_round_ << " (worst link ratio " << worst
                 << ", " << request.slow_nodes.size()
                 << " straggler nodes)");
        core::RepairPlan tail = options_.bandwidth_replan(request);
        rounds.resize(round_idx + 1);
        for (auto& extra : tail.rounds) {
          rounds.push_back(std::move(extra));
        }
      }
    }

    // Re-sync the throttler's outstanding-bytes estimate with the (by
    // now possibly replanned) schedule tail, so drift from fallbacks
    // and retries never skews the panic predicate.
    if (options_.throttler != nullptr) {
      options_.throttler->set_remaining(
          rounds_send_bytes(rounds, round_idx + 1));
    }
  }

  report.failed_nodes.assign(failed_nodes_.begin(), failed_nodes_.end());
  std::sort(report.failed_nodes.begin(), report.failed_nodes.end());
  report.success = report.unrepaired.empty();
  report.repair.degraded_at_round = report.degraded_at_round;
  if (options_.throttler != nullptr) {
    report.throttled = true;
    report.throttle = options_.throttler->stats();
  }

  // Per-member progress, chunk ownership resolved via the pre-repair
  // layout (fallback reconstructions count as reconstructed — the
  // completion records how the chunk was actually repaired).
  std::unordered_map<NodeId, StfProgress> progress;
  for (NodeId s : stf_batch_) {
    StfProgress p;
    p.stf = s;
    p.died = stf_node_dead(s);
    const auto round_it = stf_death_round_.find(s);
    p.died_at_round = round_it == stf_death_round_.end() ? 0
                                                         : round_it->second;
    progress.emplace(s, p);
  }
  const auto owner_progress = [&](ChunkRef chunk) -> StfProgress* {
    const auto it = progress.find(layout_.node_of(chunk));
    return it == progress.end() ? nullptr : &it->second;
  };
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.reconstructions) {
      if (auto* p = owner_progress(task.chunk)) ++p->planned;
    }
    for (const auto& task : round.migrations) {
      if (auto* p = owner_progress(task.chunk)) ++p->planned;
    }
  }
  for (const auto& done : report.completions) {
    if (auto* p = owner_progress(done.chunk)) {
      if (done.migrated) {
        ++p->migrated;
      } else {
        ++p->reconstructed;
      }
    }
  }
  for (const auto& chunk : report.unrepaired) {
    if (auto* p = owner_progress(chunk)) ++p->unrepaired;
  }
  for (NodeId s : stf_batch_) {
    report.stf_progress.push_back(progress.at(s));
  }
  if (stf_batch_.size() > 1) {
    for (const auto& p : report.stf_progress) {
      telemetry::StfRepairStats stats;
      stats.stf = static_cast<int>(p.stf);
      stats.planned = p.planned;
      stats.migrated = p.migrated;
      stats.reconstructed = p.reconstructed;
      stats.unrepaired = p.unrepaired;
      stats.died_at_round = p.died_at_round;
      report.repair.per_stf.push_back(stats);
    }
  }
  return report;
}

}  // namespace fastpr::agent
