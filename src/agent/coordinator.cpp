#include "agent/coordinator.h"

#include <unordered_map>

#include "telemetry/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace fastpr::agent {

using cluster::ChunkRef;
using cluster::NodeId;
using net::Message;
using net::MessageType;

Coordinator::Coordinator(NodeId id, net::Transport& transport,
                         const ec::ErasureCode& code,
                         const cluster::StripeLayout& layout,
                         const CoordinatorOptions& options)
    : id_(id),
      transport_(transport),
      code_(code),
      layout_(layout),
      options_(options) {
  FASTPR_CHECK(options.chunk_bytes >= 1);
  FASTPR_CHECK(options.packet_bytes >= 1);
  FASTPR_CHECK(options.packet_bytes <= options.chunk_bytes);
}

void Coordinator::issue_reconstruction(uint64_t task_id,
                                       const core::ReconstructionTask& task) {
  // Decode coefficients for this helper set.
  std::vector<int> helper_indices;
  helper_indices.reserve(task.sources.size());
  for (const auto& src : task.sources) {
    helper_indices.push_back(src.chunk.index);
  }
  const auto coeffs =
      code_.repair_coefficients(task.chunk.index, helper_indices);
  FASTPR_CHECK(coeffs.size() == task.sources.size());

  Message cmd;
  cmd.type = MessageType::kReconstructCmd;
  cmd.from = id_;
  cmd.to = task.dst;
  cmd.task_id = task_id;
  cmd.chunk = task.chunk;
  cmd.dst = task.dst;
  cmd.chunk_bytes = options_.chunk_bytes;
  cmd.packet_bytes = options_.packet_bytes;
  for (size_t i = 0; i < task.sources.size(); ++i) {
    cmd.sources.push_back(net::SourceSpec{task.sources[i].node,
                                          task.sources[i].chunk, coeffs[i]});
  }
  transport_.send(std::move(cmd));
}

void Coordinator::issue_migration(uint64_t task_id,
                                  const core::MigrationTask& task) {
  Message cmd;
  cmd.type = MessageType::kMigrateCmd;
  cmd.from = id_;
  cmd.to = task.src;
  cmd.task_id = task_id;
  cmd.chunk = task.chunk;
  cmd.dst = task.dst;
  cmd.chunk_bytes = options_.chunk_bytes;
  cmd.packet_bytes = options_.packet_bytes;
  transport_.send(std::move(cmd));
}

core::ReconstructionTask Coordinator::fallback_for(
    const core::MigrationTask& task, NodeId stf) const {
  core::ReconstructionTask recon;
  recon.chunk = task.chunk;
  recon.dst = task.dst;
  // k helpers from the stripe's other nodes. We cannot use the STF node
  // (its read just failed); beyond that any k suffice for RS, and the
  // code object picks valid helpers for LRC.
  const auto& nodes = layout_.stripe_nodes(task.chunk.stripe);
  std::vector<bool> available(nodes.size(), false);
  for (size_t i = 0; i < nodes.size(); ++i) {
    available[i] = nodes[i] != stf && nodes[i] != task.dst;
  }
  const auto helpers = code_.repair_helpers(task.chunk.index, available);
  for (int h : helpers) {
    recon.sources.push_back(core::SourceRead{
        nodes[static_cast<size_t>(h)], ChunkRef{task.chunk.stripe, h}});
  }
  return recon;
}

ExecutionReport Coordinator::execute(const core::RepairPlan& plan) {
  using Clock = telemetry::TraceClock;
  FASTPR_TRACE_SPAN("coordinator.execute", "coordinator");
  ExecutionReport report;

  for (size_t round_idx = 0; round_idx < plan.rounds.size(); ++round_idx) {
    const auto& round = plan.rounds[round_idx];
    FASTPR_TRACE_SPAN("coordinator.round", "coordinator",
                      static_cast<int64_t>(round_idx) + 1, "round");
    const auto round_start = Clock::now();
    const auto deadline = round_start + options_.round_timeout;
    const int round_migrated_before = report.migrated;
    const int round_recon_before = report.reconstructed;
    const int round_fallbacks_before = report.fallback_reconstructions;

    // Pending task bookkeeping; migrations keep their task around for
    // potential fallback.
    std::unordered_map<uint64_t, const core::MigrationTask*> migrations;
    std::unordered_map<uint64_t, bool> pending;  // id → is_fallback

    for (const auto& task : round.reconstructions) {
      const uint64_t id = next_task_id_++;
      pending[id] = false;
      issue_reconstruction(id, task);
    }
    for (const auto& task : round.migrations) {
      const uint64_t id = next_task_id_++;
      pending[id] = false;
      migrations[id] = &task;
      issue_migration(id, task);
    }

    while (!pending.empty()) {
      const auto now = Clock::now();
      if (now >= deadline) {
        report.success = false;
        report.errors.push_back("round " + std::to_string(round_idx) +
                                " timed out with " +
                                std::to_string(pending.size()) +
                                " tasks outstanding");
        break;
      }
      const auto budget =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now);
      auto msg = transport_.recv(id_, budget);
      if (!msg.has_value()) continue;  // timeout tick; loop re-checks

      if (msg->type == MessageType::kTaskDone) {
        const auto it = pending.find(msg->task_id);
        if (it == pending.end()) continue;  // stale/duplicate ack
        const bool was_fallback = it->second;
        if (migrations.count(msg->task_id) != 0 && !was_fallback) {
          ++report.migrated;
        } else {
          ++report.reconstructed;
        }
        pending.erase(it);
      } else if (msg->type == MessageType::kTaskFailed) {
        const auto mig = migrations.find(msg->task_id);
        if (mig != migrations.end()) {
          // Predictive migration failed → reactive reconstruction.
          LOG_INFO("coordinator: migration task " << msg->task_id
                                                  << " failed ('"
                                                  << msg->error
                                                  << "'); falling back");
          const auto fallback = fallback_for(*mig->second, plan.stf_node);
          pending.erase(msg->task_id);
          migrations.erase(mig);
          const uint64_t id = next_task_id_++;
          pending[id] = true;
          ++report.fallback_reconstructions;
          issue_reconstruction(id, fallback);
        } else {
          report.success = false;
          report.errors.push_back("task " + std::to_string(msg->task_id) +
                                  " failed: " + msg->error);
          pending.erase(msg->task_id);
        }
      }
    }

    const double secs =
        std::chrono::duration<double>(Clock::now() - round_start).count();
    report.round_seconds.push_back(secs);
    report.total_seconds += secs;

    telemetry::RepairRoundStats stats;
    stats.round = static_cast<int>(round_idx) + 1;
    stats.cr = report.reconstructed - round_recon_before;
    stats.cm = report.migrated - round_migrated_before;
    stats.fallbacks =
        report.fallback_reconstructions - round_fallbacks_before;
    stats.bytes_reconstructed =
        static_cast<int64_t>(stats.cr) *
        static_cast<int64_t>(options_.chunk_bytes);
    stats.bytes_migrated = static_cast<int64_t>(stats.cm) *
                           static_cast<int64_t>(options_.chunk_bytes);
    stats.duration_seconds = secs;
    report.repair.rounds.push_back(stats);
    report.repair.total_seconds = report.total_seconds;

    if (!report.success) break;
  }
  return report;
}

}  // namespace fastpr::agent
