// The FastPR coordinator (§V): executes a RepairPlan round by round.
//
// Per round it issues kReconstructCmd / kMigrateCmd to the agents,
// computes decode coefficients from the erasure code, then waits for all
// acknowledgements before starting the next round. Execution is
// fault-tolerant (DESIGN.md §7):
//
//  * A failed or timed-out task is reissued (bounded attempts with
//    exponential backoff) with the faulty nodes excluded — helpers are
//    re-picked through ErasureCode::repair_helpers and destinations
//    through the placement matcher. task_id stays stable across retries
//    while the attempt id increments, so agents can dedupe duplicate
//    commands and drop packets of superseded attempts.
//  * When a round stalls, the deadline is extended a bounded number of
//    times: completed tasks are kept, the nodes the stragglers depend
//    on are probed (kPing), unresponsive ones are excluded for the rest
//    of the execution, and the stragglers are reissued.
//  * When the STF node dies mid-repair — migration failures cross a
//    threshold, or its agent stops answering probes — the execution
//    degrades to the reactive path: pending migrations convert to
//    reconstructions, and a replan hook (when installed) replaces the
//    remaining rounds with a pure reactive plan over what is left.
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/stripe_layout.h"
#include "core/repair_plan.h"
#include "core/repair_throttler.h"
#include "core/replan_trigger.h"
#include "ec/erasure_code.h"
#include "net/transport.h"
#include "telemetry/clock_sync.h"
#include "telemetry/flow_monitor.h"
#include "telemetry/repair_report.h"
#include "telemetry/trace.h"

namespace fastpr::agent {

/// Input of the mid-repair replan hook: what the execution has already
/// dealt with (repaired or abandoned) and which nodes are known dead
/// (always includes the STF node — the hook fires on its death).
struct ReplanRequest {
  std::vector<cluster::ChunkRef> handled;
  std::vector<cluster::NodeId> failed_nodes;
};

/// Output of the replan hook: reconstruction-only rounds for the
/// remaining chunks, plus the chunks no surviving stripe can rebuild.
struct ReplanResult {
  core::RepairPlan plan;
  std::vector<cluster::ChunkRef> unrepairable;
};

using ReplanFn = std::function<ReplanResult(const ReplanRequest&)>;

/// Input of the bandwidth replan hook (DESIGN.md §11): fired when
/// measured per-link throughput drifts below the rates the plan priced
/// in. `slow_nodes` are the source endpoints of the straggler links —
/// the planner deprioritizes them as helpers in the new tail.
struct BandwidthReplanRequest {
  std::vector<cluster::ChunkRef> handled;
  std::vector<cluster::NodeId> failed_nodes;
  std::vector<cluster::NodeId> slow_nodes;
  /// The worst measured/expected link ratio of the round that fired.
  double worst_ratio = 0;
};

/// The hook returns predictive rounds for the remaining chunks
/// (typically FastPrPlanner::plan_fastpr_remaining) — unlike the
/// STF-death replan, nothing becomes unrepairable from a slow link.
using BandwidthReplanFn =
    std::function<core::RepairPlan(const BandwidthReplanRequest&)>;

struct CoordinatorOptions {
  uint64_t chunk_bytes = 0;
  uint64_t packet_bytes = 0;
  std::chrono::milliseconds round_timeout{120000};
  /// Total issues of one task (first try + retries) before its chunk is
  /// abandoned and reported unrepaired.
  int max_attempts = 4;
  /// Backoff before a failed task is reissued; doubles per attempt.
  std::chrono::milliseconds retry_backoff{50};
  /// How long a probed agent has to answer kPing before its node is
  /// declared failed for the rest of the execution.
  std::chrono::milliseconds probe_timeout{250};
  /// Extra round_timeout windows granted to salvage a stalled round;
  /// each extension probes the stragglers' nodes and reissues them.
  int max_round_extensions = 3;
  /// Migration failures tolerated before the STF node is declared dead
  /// and the execution degrades to reactive reconstruction.
  int stf_failure_threshold = 3;
  /// Nodes eligible as replacement destinations when a task's planned
  /// destination fails (spare node ids beyond the layout are allowed —
  /// the hot-standby pool). Empty = every node of the layout.
  std::vector<cluster::NodeId> dest_candidates;
  /// Optional reactive replanner consulted once, when the STF node dies.
  ReplanFn replan;
  /// Per-link flow telemetry the bandwidth replan trigger reads at each
  /// round boundary (EWMA vs expected rates). Not owned. Without
  /// telemetry compiled in, snapshot() is empty and the trigger never
  /// sees a sample.
  telemetry::FlowMonitor* flow_monitor = nullptr;
  /// Hysteresis state machine deciding WHEN drift warrants a replan
  /// (DESIGN.md §11). Not owned; must outlive the execution. Effective
  /// only with flow_monitor and bandwidth_replan also set. Disarmed
  /// permanently once the execution degrades to reactive — the plan
  /// being monitored no longer exists.
  core::BandwidthReplanTrigger* bandwidth_trigger = nullptr;
  /// Replans the remaining rounds around the degraded links when the
  /// trigger fires.
  BandwidthReplanFn bandwidth_replan;
  /// Optional cluster-wide repair throttler (DESIGN.md §10). When set,
  /// execute() ticks it on the lease cadence, relays its grants as
  /// kLeaseGrant messages, feeds kPressureReport / kPong pressure back
  /// into it, and reports its outcome. Not owned; must outlive the
  /// coordinator's executions. Callers register the agent nodes
  /// (RepairThrottler::add_agent) before execute().
  core::RepairThrottler* throttler = nullptr;
  /// Predicted STF remaining lifetime, measured from the start of
  /// execute() (the predictor's estimate, or an explicit CLI deadline).
  /// > 0 arms the throttler's panic mode. Ignored without a throttler.
  double stf_deadline_seconds = 0;
};

/// One chunk actually repaired, with where it really landed — retries
/// may have moved it off the planned destination.
struct CompletedRepair {
  cluster::ChunkRef chunk;
  cluster::NodeId dst = cluster::kNoNode;
  /// Repaired by migration (false = reconstruction, planned or fallback).
  bool migrated = false;
  int attempts = 1;
};

/// Per-member progress of a multi-STF batch execution (DESIGN.md §8).
struct StfProgress {
  cluster::NodeId stf = cluster::kNoNode;
  int planned = 0;        // chunks of this node the plan covers
  int migrated = 0;
  int reconstructed = 0;  // planned + fallback reconstructions
  int unrepaired = 0;
  bool died = false;      // this member was declared dead mid-repair
  int died_at_round = 0;  // 1-based; 0 = alive throughout
};

struct ExecutionReport {
  bool success = true;
  double total_seconds = 0;
  std::vector<double> round_seconds;
  int migrated = 0;
  int reconstructed = 0;
  /// Migrations that failed and were re-executed as reconstructions.
  int fallback_reconstructions = 0;
  /// Repair traffic over the network during this execution (data
  /// packets only; filled by Testbed::execute for in-process runs).
  int64_t network_bytes = 0;
  /// Per-round breakdown in the paper's (cr, cm) vocabulary; the
  /// coordinator fills everything except stf_bw_utilization and
  /// `predicted`, which Testbed::execute adds (see DESIGN.md §5c).
  telemetry::RepairReport repair;
  std::vector<std::string> errors;

  /// Every chunk repaired, with its final destination and attempt count.
  std::vector<CompletedRepair> completions;
  /// Chunks the execution could not repair (attempts exhausted, no
  /// viable helper set, or round deadline fully expired). success is
  /// true iff this is empty.
  std::vector<cluster::ChunkRef> unrepaired;
  /// Nodes declared failed during execution (probe non-response or STF
  /// death), sorted.
  std::vector<cluster::NodeId> failed_nodes;
  /// One entry per STF batch member, in plan order (a single-STF plan
  /// yields one entry). Chunk ownership is resolved via the layout.
  std::vector<StfProgress> stf_progress;
  /// True once an STF node was declared dead and its predictive repair
  /// degraded to the reactive path for the remaining chunks. In a batch
  /// execution one member's death does NOT abort the others' plans —
  /// only the dead member's tasks convert to fallback reconstructions.
  bool degraded_to_reactive = false;
  int degraded_at_round = 0;  // 1-based; 0 = never degraded
  int retries = 0;            // task reissues (incl. fallback conversions)
  /// Replan hook invocations of either kind: at most one STF-death
  /// reactive replan plus however many bandwidth replans the trigger's
  /// max_replans cap admits.
  int replans = 0;
  /// The subset of `replans` triggered by link-bandwidth drift.
  int bandwidth_replans = 0;
  int round_extensions = 0;
  /// Repair-throttle outcome (DESIGN.md §10); zeroed when the execution
  /// ran without a throttler.
  bool throttled = false;
  core::ThrottlerStats throttle;

  int repaired() const { return migrated + reconstructed; }
  double per_chunk() const {
    return repaired() == 0 ? 0.0 : total_seconds / repaired();
  }
};

// Thread-confinement note: a Coordinator is driven by exactly one thread
// (execute() is blocking and owns all bookkeeping state), so it needs no
// mutex — concurrency lives in the agents and the transport it talks to.
// If execute() ever fans out onto a ThreadPool, next_task_id_ and the
// pending maps must move behind a fastpr::Mutex with FASTPR_GUARDED_BY.
class Coordinator {
 public:
  /// `layout` is the pre-repair chunk placement (used for migration
  /// fallback helper selection); `code` supplies decode coefficients.
  Coordinator(cluster::NodeId id, net::Transport& transport,
              const ec::ErasureCode& code,
              const cluster::StripeLayout& layout,
              const CoordinatorOptions& options);

  /// Runs the plan to completion (or failure). Blocking.
  ExecutionReport execute(const core::RepairPlan& plan);

  /// Installs the mid-repair reactive replanner (see CoordinatorOptions).
  void set_replan(ReplanFn replan) { options_.replan = std::move(replan); }

  /// Installs the bandwidth-drift replanner (see CoordinatorOptions).
  void set_bandwidth_replan(BandwidthReplanFn replan) {
    options_.bandwidth_replan = std::move(replan);
  }

  /// Per-node clock offsets estimated from kPing/kPong probe pairs
  /// (cumulative across executions). Testbed::execute feeds these into
  /// the offset-corrected trace export.
  const telemetry::ClockSync& clock_sync() const { return clock_sync_; }

  /// Builds a reconstruction for a chunk whose migration failed,
  /// excluding the STF node and every node in `failed` from the helper
  /// set. Throws CheckFailure when no viable helper set exists.
  core::ReconstructionTask fallback_for(
      const core::MigrationTask& task, cluster::NodeId stf,
      const std::unordered_set<cluster::NodeId>& failed = {}) const;

  /// Helper selection for reconstructing `chunk` onto `dst`: k viable
  /// sources from the stripe's nodes, skipping the STF node, the
  /// destination and everything in `exclude`. LRC falls back from the
  /// local group to global parities via ErasureCode::repair_helpers.
  /// Throws CheckFailure when the chunk is unrepairable.
  std::vector<core::SourceRead> pick_sources(
      cluster::ChunkRef chunk, cluster::NodeId dst, cluster::NodeId stf,
      const std::unordered_set<cluster::NodeId>& exclude) const;

 private:
  /// One outstanding repair task. is_migration describes the *current*
  /// form: a migration whose STF read fails converts in place to a
  /// fallback reconstruction (same task_id, next attempt).
  struct PendingTask {
    bool is_migration = false;
    core::MigrationTask mig;
    core::ReconstructionTask recon;
    uint32_t attempt = 1;
    /// Nodes this task must avoid (reported failures), on top of the
    /// execution-wide failed_nodes_ set.
    std::unordered_set<cluster::NodeId> excluded;
    bool waiting_retry = false;

    cluster::ChunkRef chunk() const {
      return is_migration ? mig.chunk : recon.chunk;
    }
    cluster::NodeId current_dst() const {
      return is_migration ? mig.dst : recon.dst;
    }
  };

  void issue_task(uint64_t task_id, const PendingTask& task);
  void issue_reconstruction(uint64_t task_id, uint32_t attempt,
                            const core::ReconstructionTask& task);
  /// Issues a kChain-strategy reconstruction: one kChainCmd per hop
  /// (full chain in `sources`, the receiver's slot in `hop`), sent
  /// last-hop-first so every hop's command is enqueued before its
  /// predecessor can start streaming into it.
  void issue_chain(uint64_t task_id, uint32_t attempt,
                   const core::ReconstructionTask& task);
  void issue_migration(uint64_t task_id, uint32_t attempt,
                       const core::MigrationTask& task);
  void cancel_attempt(cluster::NodeId node, uint64_t task_id,
                      uint32_t attempt);

  /// Registers and issues one planned task (rebuilding it first when it
  /// references nodes already known to have failed).
  void start_task(PendingTask task, ExecutionReport& report);

  /// True when the task references a failed/excluded node (or a dead
  /// STF) and must be rebuilt before (re)issue.
  bool needs_rebuild(const PendingTask& task) const;

  /// Re-derives a viable form of the task: migrations keep migrating
  /// while the STF is alive (retargeting if the destination failed) and
  /// convert to fallback reconstructions otherwise; reconstructions get
  /// a fresh destination and helper set avoiding all known-bad nodes.
  /// Returns false when the chunk has become unrepairable.
  bool rebuild_task(PendingTask& task, ExecutionReport& report);

  /// Least-loaded eligible replacement destination for a chunk of
  /// `stripe`, or kNoNode. Prefers nodes no pending task already
  /// targets; never picks the STF, a failed node, a task-excluded node,
  /// or a node of the stripe.
  cluster::NodeId choose_destination(cluster::StripeId stripe,
                                     const PendingTask& task);

  void handle_task_done(const net::Message& msg, ExecutionReport& report);
  void handle_task_failed(const net::Message& msg,
                          ExecutionReport& report);
  void schedule_retry(uint64_t task_id, PendingTask& task);
  /// Bumps the attempt and reissues (rebuilt); abandons the chunk when
  /// attempts are exhausted or no viable form remains.
  void reissue_now(uint64_t task_id, ExecutionReport& report);
  void abandon(uint64_t task_id, const std::string& reason,
               ExecutionReport& report);

  /// Probes every node the stragglers depend on; resolution (reply or
  /// probe_timeout) feeds finish_probe.
  void start_probe(ExecutionReport& report);
  /// Declares non-responders failed and reissues the stragglers.
  void finish_probe(ExecutionReport& report);
  void declare_stf_dead(cluster::NodeId node, ExecutionReport& report);
  /// Estimated repair send bytes of one task's current form — what the
  /// throttler's finish-time (panic) estimate is denominated in.
  double task_send_bytes(const PendingTask& task) const;
  /// Ticks the throttler and relays its grants as kLeaseGrant messages;
  /// schedules the next tick at ttl/3 so healthy leases renew early.
  void lease_tick();
  bool stf_node_dead(cluster::NodeId node) const {
    return stf_dead_set_.count(node) != 0;
  }
  void collect_task_nodes(const PendingTask& task,
                          std::unordered_set<cluster::NodeId>& out) const;

  cluster::NodeId id_;
  net::Transport& transport_;
  const ec::ErasureCode& code_;
  const cluster::StripeLayout& layout_;
  CoordinatorOptions options_;
  uint64_t next_task_id_ = 1;

  // Per-execution state, reset at the top of execute() (see the
  // thread-confinement note above).
  std::unordered_map<uint64_t, PendingTask> pending_;
  std::multimap<telemetry::TraceClock::time_point, uint64_t> retries_due_;
  std::unordered_set<cluster::NodeId> failed_nodes_;
  /// Retarget pressure: chunks re-routed to a node during this
  /// execution, so repeated retargeting keeps spreading load.
  std::unordered_map<cluster::NodeId, int> extra_dst_load_;
  cluster::NodeId stf_ = cluster::kNoNode;  // first batch member
  /// The STF batch being executed (plan.stf_nodes, or {plan.stf_node}
  /// for single-STF plans) and its membership set.
  std::vector<cluster::NodeId> stf_batch_;
  std::unordered_set<cluster::NodeId> stf_set_;
  std::unordered_set<cluster::NodeId> stf_dead_set_;
  std::unordered_map<cluster::NodeId, int> stf_death_round_;
  std::unordered_map<cluster::NodeId, int> stf_failures_by_;
  int current_round_ = 0;

  bool probe_active_ = false;
  uint64_t probe_epoch_ = 0;
  /// Local send time of the current probe epoch's pings; paired with
  /// each kPong's origin_ts_us for a clock-offset sample.
  int64_t probe_sent_us_ = 0;
  telemetry::ClockSync clock_sync_;
  telemetry::TraceClock::time_point probe_deadline_{};
  std::unordered_map<cluster::NodeId, bool> probe_outstanding_;
  std::vector<uint64_t> stragglers_;
  /// Next lease re-grant (throttler configured only).
  telemetry::TraceClock::time_point next_lease_tick_{};
};

}  // namespace fastpr::agent
