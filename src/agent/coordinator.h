// The FastPR coordinator (§V): executes a RepairPlan round by round.
//
// Per round it issues kReconstructCmd / kMigrateCmd to the agents,
// computes decode coefficients from the erasure code, then waits for all
// acknowledgements before starting the next round. A failed migration
// (e.g. the STF node died or hit a latent sector error) falls back to
// reconstruction on the fly — the predictive repair degrades gracefully
// into the reactive path for the affected chunks.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "cluster/stripe_layout.h"
#include "core/repair_plan.h"
#include "ec/erasure_code.h"
#include "net/transport.h"
#include "telemetry/repair_report.h"

namespace fastpr::agent {

struct CoordinatorOptions {
  uint64_t chunk_bytes = 0;
  uint64_t packet_bytes = 0;
  std::chrono::milliseconds round_timeout{120000};
};

struct ExecutionReport {
  bool success = true;
  double total_seconds = 0;
  std::vector<double> round_seconds;
  int migrated = 0;
  int reconstructed = 0;
  /// Migrations that failed and were re-executed as reconstructions.
  int fallback_reconstructions = 0;
  /// Repair traffic over the network during this execution (data
  /// packets only; filled by Testbed::execute for in-process runs).
  int64_t network_bytes = 0;
  /// Per-round breakdown in the paper's (cr, cm) vocabulary; the
  /// coordinator fills everything except stf_bw_utilization and
  /// `predicted`, which Testbed::execute adds (see DESIGN.md §5c).
  telemetry::RepairReport repair;
  std::vector<std::string> errors;

  int repaired() const { return migrated + reconstructed; }
  double per_chunk() const {
    return repaired() == 0 ? 0.0 : total_seconds / repaired();
  }
};

// Thread-confinement note: a Coordinator is driven by exactly one thread
// (execute() is blocking and owns all bookkeeping state), so it needs no
// mutex — concurrency lives in the agents and the transport it talks to.
// If execute() ever fans out onto a ThreadPool, next_task_id_ and the
// pending maps must move behind a fastpr::Mutex with FASTPR_GUARDED_BY.
class Coordinator {
 public:
  /// `layout` is the pre-repair chunk placement (used for migration
  /// fallback helper selection); `code` supplies decode coefficients.
  Coordinator(cluster::NodeId id, net::Transport& transport,
              const ec::ErasureCode& code,
              const cluster::StripeLayout& layout,
              const CoordinatorOptions& options);

  /// Runs the plan to completion (or failure). Blocking.
  ExecutionReport execute(const core::RepairPlan& plan);

 private:
  void issue_reconstruction(uint64_t task_id,
                            const core::ReconstructionTask& task);
  void issue_migration(uint64_t task_id, const core::MigrationTask& task);
  /// Builds a reconstruction for a chunk whose migration failed.
  core::ReconstructionTask fallback_for(const core::MigrationTask& task,
                                        cluster::NodeId stf) const;

  cluster::NodeId id_;
  net::Transport& transport_;
  const ec::ErasureCode& code_;
  const cluster::StripeLayout& layout_;
  CoordinatorOptions options_;
  uint64_t next_task_id_ = 1;
};

}  // namespace fastpr::agent
