// The in-process testbed: FastPR's "25 EC2 instances" substitute.
//
// Wires together a shaped transport (token-bucket NICs), one throttled
// ChunkStore per node, one Agent per storage/spare node and a
// Coordinator, over a randomly generated erasure-coded population whose
// chunk contents are deterministic (SyntheticOracle) so arbitrarily
// large clusters fit in RAM. All repaired bytes are real: helpers stream
// GF-scaled packets, destinations decode and store, and verify() checks
// the repaired chunks byte-for-byte against the oracle.
#pragma once

#include <memory>
#include <optional>

#include "agent/agent.h"
#include "agent/chunk_store.h"
#include "agent/coordinator.h"
#include "agent/repair_budget.h"
#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/fastpr.h"
#include "core/multi_stf.h"
#include "core/repair_throttler.h"
#include "core/replan_trigger.h"
#include "ec/erasure_code.h"
#include "net/fault_plan.h"
#include "net/topology.h"
#include "net/faulty_transport.h"
#include "net/inproc_transport.h"
#include "net/transport.h"
#include "telemetry/flow_monitor.h"

namespace fastpr::agent {

/// Deterministic chunk contents, exactly consistent with the erasure
/// code yet O(chunk) cheap to synthesize:
///
///   data chunk (s, j)  =  P ⊕ c(s, j)
///
/// where P is a fixed pseudo-random position pattern (shared by the
/// oracle instance) and c(s, j) a per-chunk constant byte. Because
/// GF(2^8) multiplication distributes over XOR, parity row p with
/// coefficients w_j is
///
///   parity = ⊕_j w_j·(P ⊕ c_j) = (⊕_j w_j)·P  ⊕  K,   K = ⊕_j w_j·c_j
///
/// — a single table pass instead of a full stripe encode per read.
/// Contents stay position-dependent (catches packet reorder/offset
/// bugs) and per-chunk distinct (catches chunk mix-ups), and decoding
/// any subset reproduces them bit-exactly.
class SyntheticOracle final : public ChunkOracle {
 public:
  SyntheticOracle(const ec::ErasureCode& code, uint64_t chunk_bytes,
                  int num_stripes, uint64_t seed);

  std::optional<std::vector<uint8_t>> generate(
      cluster::ChunkRef chunk) const override;

 private:
  /// Per-chunk constant mixed into the pattern.
  uint8_t chunk_constant(cluster::StripeId stripe, int index) const;

  const ec::ErasureCode& code_;
  uint64_t chunk_bytes_;
  int num_stripes_;
  uint64_t seed_;
  std::vector<uint8_t> pattern_;  // P
};

struct TestbedOptions {
  int num_storage = 21;          // paper: 21 DataNode instances
  int num_standby = 3;           // paper: 3 hot-standby instances
  double disk_bytes_per_sec = 0;
  double net_bytes_per_sec = 0;
  uint64_t chunk_bytes = 0;
  uint64_t packet_bytes = 0;
  int num_stripes = 120;
  uint64_t seed = 1;
  bool use_tcp = false;          // loopback TCP instead of in-process
  /// Reconstruction strategy for the planners this testbed builds:
  /// fan-in (paper default), partial-sum chains, or per-round kAuto via
  /// the cost model. Executions honor whatever the plan's rounds carry.
  core::StrategyChoice repair_strategy = core::StrategyChoice::kFanIn;
  /// Per-forward store-and-forward cost of a chain hop, charged by the
  /// shaped transports on kChainPacket sends AND fed to the planners'
  /// cost model, so kAuto decides on the numbers the execution shows.
  /// The default approximates a receive→fuse→re-send turnaround on the
  /// scaled testbed; irrelevant while no chain runs.
  double chain_hop_overhead_seconds = 500e-6;
  std::chrono::milliseconds round_timeout{120000};
  /// Fault-tolerance knobs, forwarded to CoordinatorOptions.
  int max_attempts = 4;
  std::chrono::milliseconds retry_backoff{50};
  std::chrono::milliseconds probe_timeout{250};
  int max_round_extensions = 3;
  int stf_failure_threshold = 3;
  /// When set, the transport is wrapped in a FaultyTransport driving
  /// this scripted schedule (DESIGN.md §7). node=stf entries resolve at
  /// flag_stf(), which also applies the plan's read_error directives to
  /// the chunk stores.
  std::optional<net::FaultPlan> fault_plan;
  /// When set, repair traffic runs under SLO-aware adaptive throttling
  /// (DESIGN.md §10): the coordinator leases per-agent shares of this
  /// budget and every agent's data sends block on its leased
  /// RepairBudget instead of just the raw NIC.
  std::optional<core::ThrottlerOptions> throttle;
  /// Predicted STF death, seconds from execute() start (> 0 arms panic
  /// mode; forwarded to CoordinatorOptions.stf_deadline_seconds).
  double stf_deadline_seconds = 0;
  /// Rack/oversubscription model (DESIGN.md §11). When set (and not
  /// flat), the stripe population is laid out rack-disjoint
  /// (StripeLayout::random_racked) and the planners this testbed builds
  /// become rack-aware. Must cover exactly the storage nodes — spares
  /// and the coordinator land in overflow racks. Unset = flat network,
  /// bit-identical to the pre-topology testbed.
  std::optional<net::Topology> topology;
  /// Mid-repair bandwidth replanning (DESIGN.md §11). enabled=true
  /// builds a BandwidthReplanTrigger, points the coordinator at the
  /// flow monitor, and installs a plan_fastpr_remaining hook in
  /// execute().
  core::BandwidthReplanOptions bandwidth_replan;
};

class Testbed {
 public:
  Testbed(const TestbedOptions& options, const ec::ErasureCode& code);
  ~Testbed();

  /// Node ids: [0, storage) storage, [storage, storage+standby) spares,
  /// coordinator = storage + standby.
  cluster::NodeId coordinator_id() const;

  cluster::StripeLayout& layout() { return *layout_; }
  cluster::ClusterState& cluster() { return *cluster_; }
  /// The transport agents and coordinator actually talk through (the
  /// fault decorator when a fault plan is configured).
  net::Transport& transport() {
    return faulty_ != nullptr ? static_cast<net::Transport&>(*faulty_)
                              : *transport_;
  }
  /// The fault injector, or nullptr when no fault plan is configured.
  net::FaultyTransport* faulty() { return faulty_.get(); }

  /// The adaptive throttler, or nullptr when `throttle` is not set.
  core::RepairThrottler* throttler() { return throttler_.get(); }

  /// The bandwidth replan trigger, or nullptr when bandwidth_replan is
  /// not enabled. Its stats() expose samples/breaches/replans to tests.
  core::BandwidthReplanTrigger* bandwidth_trigger() {
    return bandwidth_trigger_.get();
  }

  /// The rack model the planners see, or nullptr for a flat testbed.
  const net::Topology* topology() const {
    return options_.topology.has_value() ? &*options_.topology : nullptr;
  }

  /// One node's leased repair budget, or nullptr without throttling.
  RepairBudget* repair_budget(cluster::NodeId node);

  /// Retargets every agent's pressure sampling (the foreground
  /// workload implements PressureSource). nullptr = zero pressure.
  void set_pressure_source(PressureSource* source) {
    pressure_.set_target(source);
  }

  /// The in-process transport, or nullptr under --use-tcp. Foreground
  /// load uses its charge_tx/charge_rx to contend for the same NICs.
  net::InprocTransport* inproc();

  /// Ground-truth chunk contents (degraded-read verification).
  const SyntheticOracle& oracle() const { return *oracle_; }

  /// Per-link flow telemetry the transports report into. Cleared at the
  /// top of each execute(); its snapshot lands in the report's `links`.
  telemetry::FlowMonitor& flow_monitor() { return flow_; }

  /// Per-node clock offsets (µs, clock_sync.h convention) estimated
  /// from the coordinator's probe traffic — feed straight into
  /// telemetry::events_to_chrome_json for an offset-corrected merged
  /// trace. Empty until a probe round trip has completed.
  std::vector<std::pair<int, int64_t>> clock_offsets() const {
    return coordinator_->clock_sync().snapshot();
  }
  Agent& agent(cluster::NodeId node);
  ChunkStore& store(cluster::NodeId node);

  /// Flags the most-loaded storage node as soon-to-fail; returns it.
  /// With a fault plan configured, also resolves its node=stf entries
  /// and injects its read errors into the chunk stores.
  cluster::NodeId flag_stf();

  /// Flags the `count` most-loaded storage nodes (ties broken by lower
  /// id) as one STF batch, most-loaded first == flag_stf() at count 1.
  /// Fault-plan node=stf entries resolve to the first member.
  std::vector<cluster::NodeId> flag_stf_batch(int count);

  /// Flags an explicit batch (e.g. from `fastpr_cli execute --stf`).
  /// Fault-plan node=stf entries resolve to the first member.
  std::vector<cluster::NodeId> flag_stf_nodes(
      std::vector<cluster::NodeId> nodes);

  /// Builds a planner bound to this testbed's layout/cluster.
  core::FastPrPlanner make_planner(core::Scenario scenario);

  /// Builds a multi-STF batch planner over every currently flagged node.
  core::MultiStfPlanner make_multi_planner(core::Scenario scenario);

  /// Executes a plan with real data movement; wall-clock timed. The
  /// returned report's `repair` breakdown has stf_bw_utilization filled
  /// from this testbed's configured disk rate (when shaped).
  ExecutionReport execute(const core::RepairPlan& plan);

  /// Cost-model expectation for each round of `plan`, aligned by index —
  /// assign to report.repair.predicted to diff measured rounds against
  /// Algorithm 2's structure (DESIGN.md §5c). `scenario` must match the
  /// planner that produced the plan.
  std::vector<telemetry::PredictedRound> predict_rounds(
      const core::RepairPlan& plan, core::Scenario scenario);

  /// Byte-exact verification of every repaired chunk against the oracle.
  bool verify(const core::RepairPlan& plan) const;

  /// Verification against what the execution actually did: every
  /// completed repair byte-exact at its *final* destination (retries may
  /// have moved chunks off the planned one). The report's completions ∪
  /// unrepaired must exactly cover the plan's chunks.
  bool verify(const ExecutionReport& report,
              const core::RepairPlan& plan) const;

 private:
  bool chunk_ok(cluster::ChunkRef chunk, cluster::NodeId dst) const;

  TestbedOptions options_;
  const ec::ErasureCode& code_;
  std::unique_ptr<SyntheticOracle> oracle_;
  /// Declared before the transports: they report into it on their own
  /// threads until shutdown, so it must outlive them.
  telemetry::FlowMonitor flow_;
  std::unique_ptr<net::Transport> transport_;
  /// Fault decorator over transport_ (fault_plan configured only).
  std::unique_ptr<net::FaultyTransport> faulty_;
  std::unique_ptr<cluster::StripeLayout> layout_;
  std::unique_ptr<cluster::ClusterState> cluster_;
  std::vector<std::unique_ptr<ChunkStore>> stores_;
  /// Declared before the agents: sender workers acquire from these
  /// until Agent::stop().
  std::vector<std::unique_ptr<RepairBudget>> budgets_;
  ForwardingPressureSource pressure_;
  std::unique_ptr<core::RepairThrottler> throttler_;
  std::unique_ptr<core::BandwidthReplanTrigger> bandwidth_trigger_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::unique_ptr<Coordinator> coordinator_;
};

}  // namespace fastpr::agent
