// Systematic Reed–Solomon codec RS(n, k) over GF(2^8).
//
// Two generator constructions are provided:
//  * kCauchy (default): generator [I_k ; C] with C an (n-k)×k Cauchy
//    matrix — MDS by the Cauchy submatrix property.
//  * kVandermonde: an n×k Vandermonde matrix column-reduced so its top
//    k×k block is the identity (the classic Jerasure construction).
// Both yield MDS systematic codes; the ablation bench compares them.
#pragma once

#include "ec/erasure_code.h"
#include "ec/matrix.h"

namespace fastpr::ec {

class RsCode final : public ErasureCode {
 public:
  enum class Construction { kCauchy, kVandermonde };

  RsCode(int n, int k, Construction construction = Construction::kCauchy);

  int n() const override { return n_; }
  int k() const override { return k_; }
  std::string name() const override;

  int repair_fetch_count(int lost_index) const override;
  std::vector<int> helper_candidates(int lost_index) const override;
  std::vector<int> repair_helpers(
      int lost_index, const std::vector<bool>& available) const override;

  void encode(const std::vector<ConstChunk>& data,
              const std::vector<MutChunk>& parity) const override;

  std::vector<uint8_t> parity_coefficients(int index) const override;

  std::vector<uint8_t> repair_coefficients(
      int lost_index,
      const std::vector<int>& helper_indices) const override;

  void repair_chunk(int lost_index, const std::vector<int>& helper_indices,
                    const std::vector<ConstChunk>& helper_data,
                    MutChunk out) const override;

  bool decode(const std::vector<int>& erased,
              const std::vector<MutChunk>& chunks) const override;

  /// The n×k generator matrix (row i produces chunk i); exposed for tests
  /// that verify the MDS property by checking every k-row submatrix.
  const Matrix& generator() const { return generator_; }

 private:
  /// Coefficients expressing chunk `target` as a combination of the
  /// chunks at `helper_indices` (which must be k decodable indices).
  std::vector<uint8_t> combination_coeffs(
      int target, const std::vector<int>& helper_indices) const;

  int n_;
  int k_;
  Construction construction_;
  Matrix generator_;  // n×k, top k rows == identity
};

}  // namespace fastpr::ec
