// Dense matrices over GF(2^8): the linear-algebra substrate for the
// Reed–Solomon and LRC codecs (generator construction, decode-matrix
// inversion, rank checks in tests).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

namespace fastpr::ec {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);
  Matrix(int rows, int cols, std::initializer_list<uint8_t> values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  uint8_t at(int r, int c) const;
  uint8_t& at(int r, int c);

  /// Identity of the given order.
  static Matrix identity(int order);

  /// rows×cols Vandermonde: entry (r, c) = r^c (alpha-powers of row index).
  static Matrix vandermonde(int rows, int cols);

  /// rows×cols Cauchy: entry (r, c) = 1 / (x_r + y_c) with
  /// x_r = r and y_c = rows + c (all distinct, so every entry is defined
  /// and every square submatrix is invertible).
  static Matrix cauchy(int rows, int cols);

  /// Matrix product (this × rhs).
  Matrix mul(const Matrix& rhs) const;

  /// Gauss–Jordan inverse; nullopt if singular.
  std::optional<Matrix> inverted() const;

  /// Rank via Gaussian elimination (on a copy).
  int rank() const;

  /// Returns a new matrix consisting of the selected rows, in order.
  Matrix select_rows(const std::vector<int>& row_indices) const;

  /// Swaps columns in place (used by the systematic-Vandermonde build).
  void swap_cols(int a, int b);

  /// Multiplies column c by a nonzero scalar in place.
  void scale_col(int c, uint8_t scalar);

  /// Adds scalar × column src into column dst in place.
  void add_scaled_col(int dst, int src, uint8_t scalar);

  bool operator==(const Matrix& rhs) const;

  std::string to_string() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<uint8_t> data_;  // row-major
};

}  // namespace fastpr::ec
