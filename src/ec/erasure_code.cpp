#include "ec/erasure_code.h"

#include "util/check.h"

namespace fastpr::ec {

std::vector<std::vector<uint8_t>> encode_stripe(
    const ErasureCode& code, const std::vector<std::vector<uint8_t>>& data) {
  FASTPR_CHECK(static_cast<int>(data.size()) == code.k());
  const size_t chunk_size = data.front().size();
  for (const auto& d : data) FASTPR_CHECK(d.size() == chunk_size);

  std::vector<std::vector<uint8_t>> stripe = data;
  stripe.resize(static_cast<size_t>(code.n()),
                std::vector<uint8_t>(chunk_size, 0));

  std::vector<ConstChunk> data_spans;
  data_spans.reserve(data.size());
  for (const auto& d : data) data_spans.emplace_back(d);

  std::vector<MutChunk> parity_spans;
  for (int i = code.k(); i < code.n(); ++i) {
    parity_spans.emplace_back(stripe[static_cast<size_t>(i)]);
  }
  code.encode(data_spans, parity_spans);
  return stripe;
}

}  // namespace fastpr::ec
