#include "ec/matrix.h"

#include <sstream>

#include "gf/gf256.h"
#include "util/check.h"

namespace fastpr::ec {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0) {
  FASTPR_CHECK(rows >= 0 && cols >= 0);
}

Matrix::Matrix(int rows, int cols, std::initializer_list<uint8_t> values)
    : Matrix(rows, cols) {
  FASTPR_CHECK(values.size() == data_.size());
  size_t i = 0;
  for (uint8_t v : values) data_[i++] = v;
}

uint8_t Matrix::at(int r, int c) const {
  FASTPR_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

uint8_t& Matrix::at(int r, int c) {
  FASTPR_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

Matrix Matrix::identity(int order) {
  Matrix m(order, order);
  for (int i = 0; i < order; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(int rows, int cols) {
  FASTPR_CHECK_MSG(rows <= gf::kFieldSize,
                   "Vandermonde needs distinct field elements per row");
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.at(r, c) = gf::pow(static_cast<uint8_t>(r), static_cast<unsigned>(c));
    }
  }
  return m;
}

Matrix Matrix::cauchy(int rows, int cols) {
  FASTPR_CHECK_MSG(rows + cols <= gf::kFieldSize,
                   "Cauchy needs rows+cols distinct field elements");
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const uint8_t x = static_cast<uint8_t>(r);
      const uint8_t y = static_cast<uint8_t>(rows + c);
      m.at(r, c) = gf::inv(x ^ y);  // addition in GF(2^w) is XOR
    }
  }
  return m;
}

Matrix Matrix::mul(const Matrix& rhs) const {
  FASTPR_CHECK(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < rhs.cols_; ++c) {
      uint8_t acc = 0;
      for (int t = 0; t < cols_; ++t) {
        acc = static_cast<uint8_t>(acc ^ gf::mul(at(r, t), rhs.at(t, c)));
      }
      out.at(r, c) = acc;
    }
  }
  return out;
}

std::optional<Matrix> Matrix::inverted() const {
  FASTPR_CHECK(rows_ == cols_);
  const int n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);

  for (int col = 0; col < n; ++col) {
    // Find a pivot row at or below `col`.
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (a.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return std::nullopt;  // singular
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Normalize pivot row.
    const uint8_t piv_inv = gf::inv(a.at(col, col));
    for (int c = 0; c < n; ++c) {
      a.at(col, c) = gf::mul(a.at(col, c), piv_inv);
      inv.at(col, c) = gf::mul(inv.at(col, c), piv_inv);
    }
    // Eliminate every other row.
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const uint8_t factor = a.at(r, col);
      if (factor == 0) continue;
      for (int c = 0; c < n; ++c) {
        a.at(r, c) =
            static_cast<uint8_t>(a.at(r, c) ^ gf::mul(factor, a.at(col, c)));
        inv.at(r, c) = static_cast<uint8_t>(inv.at(r, c) ^
                                            gf::mul(factor, inv.at(col, c)));
      }
    }
  }
  return inv;
}

int Matrix::rank() const {
  Matrix a = *this;
  int rank = 0;
  for (int col = 0; col < cols_ && rank < rows_; ++col) {
    int pivot = -1;
    for (int r = rank; r < rows_; ++r) {
      if (a.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    if (pivot != rank) {
      for (int c = 0; c < cols_; ++c) std::swap(a.at(pivot, c), a.at(rank, c));
    }
    const uint8_t piv_inv = gf::inv(a.at(rank, col));
    for (int c = 0; c < cols_; ++c) {
      a.at(rank, c) = gf::mul(a.at(rank, c), piv_inv);
    }
    for (int r = 0; r < rows_; ++r) {
      if (r == rank) continue;
      const uint8_t factor = a.at(r, col);
      if (factor == 0) continue;
      for (int c = 0; c < cols_; ++c) {
        a.at(r, c) =
            static_cast<uint8_t>(a.at(r, c) ^ gf::mul(factor, a.at(rank, c)));
      }
    }
    ++rank;
  }
  return rank;
}

Matrix Matrix::select_rows(const std::vector<int>& row_indices) const {
  Matrix out(static_cast<int>(row_indices.size()), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    const int r = row_indices[i];
    FASTPR_CHECK(r >= 0 && r < rows_);
    for (int c = 0; c < cols_; ++c) {
      out.at(static_cast<int>(i), c) = at(r, c);
    }
  }
  return out;
}

void Matrix::swap_cols(int a, int b) {
  FASTPR_CHECK(a >= 0 && a < cols_ && b >= 0 && b < cols_);
  if (a == b) return;
  for (int r = 0; r < rows_; ++r) std::swap(at(r, a), at(r, b));
}

void Matrix::scale_col(int c, uint8_t scalar) {
  FASTPR_CHECK(scalar != 0);
  for (int r = 0; r < rows_; ++r) at(r, c) = gf::mul(at(r, c), scalar);
}

void Matrix::add_scaled_col(int dst, int src, uint8_t scalar) {
  for (int r = 0; r < rows_; ++r) {
    at(r, dst) =
        static_cast<uint8_t>(at(r, dst) ^ gf::mul(at(r, src), scalar));
  }
}

bool Matrix::operator==(const Matrix& rhs) const {
  return rows_ == rhs.rows_ && cols_ == rhs.cols_ && data_ == rhs.data_;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      os << static_cast<int>(at(r, c)) << (c + 1 == cols_ ? "" : " ");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace fastpr::ec
