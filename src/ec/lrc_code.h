// Azure-style Locally Repairable Code LRC(k, l, g) over GF(2^8).
//
// Stripe layout (n = k + l + g chunks):
//   [0, k)            data chunks, split into l equal local groups
//   [k, k+l)          one local parity per group (XOR of its group)
//   [k+l, k+l+g)      global parities (Cauchy combinations of all data)
//
// Repairing a single data or local-parity chunk touches only its local
// group — k' = k/l helper chunks instead of k — which is exactly the
// property §III's "Extension for LRCs" plugs into the FastPR model
// (substitute k with k' and G with G' <= (M-1)/k').
#pragma once

#include <optional>
#include <utility>

#include "ec/erasure_code.h"
#include "ec/matrix.h"

namespace fastpr::ec {

class LrcCode final : public ErasureCode {
 public:
  /// k data chunks, l local groups (k % l == 0), g global parities.
  LrcCode(int k, int l, int g);

  int n() const override { return n_; }
  int k() const override { return k_; }
  std::string name() const override;

  int local_groups() const { return l_; }
  int global_parities() const { return g_; }
  int group_size() const { return k_ / l_; }

  /// Local group of a data or local-parity chunk; -1 for global parities.
  int group_of(int index) const;

  int repair_fetch_count(int lost_index) const override;
  std::vector<int> helper_candidates(int lost_index) const override;
  std::vector<int> repair_helpers(
      int lost_index, const std::vector<bool>& available) const override;

  void encode(const std::vector<ConstChunk>& data,
              const std::vector<MutChunk>& parity) const override;

  std::vector<uint8_t> parity_coefficients(int index) const override;

  std::vector<uint8_t> repair_coefficients(
      int lost_index,
      const std::vector<int>& helper_indices) const override;

  void repair_chunk(int lost_index, const std::vector<int>& helper_indices,
                    const std::vector<ConstChunk>& helper_data,
                    MutChunk out) const override;

  bool decode(const std::vector<int>& erased,
              const std::vector<MutChunk>& chunks) const override;

  const Matrix& generator() const { return generator_; }

 private:
  /// Expresses chunk `target` as a combination of a subset of
  /// `candidates`; returns (index, coefficient) pairs with nonzero
  /// coefficients, or nullopt if target is outside their row span.
  std::optional<std::vector<std::pair<int, uint8_t>>> solve_combination(
      int target, const std::vector<int>& candidates) const;

  int k_;
  int l_;
  int g_;
  int n_;
  Matrix generator_;  // n×k over the data chunks
};

}  // namespace fastpr::ec
