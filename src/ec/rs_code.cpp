#include "ec/rs_code.h"

#include <sstream>

#include "gf/gf256.h"
#include "util/check.h"

namespace fastpr::ec {

namespace {

Matrix build_cauchy_generator(int n, int k) {
  Matrix g(n, k);
  for (int r = 0; r < k; ++r) g.at(r, r) = 1;
  // Parity rows: Cauchy with x_r = r (parity row ids) and y_c = (n-k)+c.
  const Matrix c = Matrix::cauchy(n - k, k);
  for (int r = 0; r < n - k; ++r) {
    for (int col = 0; col < k; ++col) g.at(k + r, col) = c.at(r, col);
  }
  return g;
}

Matrix build_vandermonde_generator(int n, int k) {
  // Start from an n×k Vandermonde matrix (any k rows independent), then
  // reduce the top k×k block to identity with elementary column
  // operations; column ops preserve the any-k-rows-invertible property.
  Matrix g = Matrix::vandermonde(n, k);
  for (int col = 0; col < k; ++col) {
    // Ensure g(col, col) != 0 by swapping in a later column if needed.
    if (g.at(col, col) == 0) {
      int swap_with = -1;
      for (int c2 = col + 1; c2 < k; ++c2) {
        if (g.at(col, c2) != 0) {
          swap_with = c2;
          break;
        }
      }
      FASTPR_CHECK_MSG(swap_with >= 0, "Vandermonde row unexpectedly zero");
      g.swap_cols(col, swap_with);
    }
    g.scale_col(col, gf::inv(g.at(col, col)));
    for (int c2 = 0; c2 < k; ++c2) {
      if (c2 == col) continue;
      const uint8_t factor = g.at(col, c2);
      if (factor != 0) g.add_scaled_col(c2, col, factor);
    }
  }
  return g;
}

}  // namespace

RsCode::RsCode(int n, int k, Construction construction)
    : n_(n), k_(k), construction_(construction) {
  FASTPR_CHECK_MSG(k >= 1 && n > k, "RS requires 1 <= k < n");
  FASTPR_CHECK_MSG(n <= gf::kFieldSize, "RS over GF(256) requires n <= 256");
  generator_ = construction == Construction::kCauchy
                   ? build_cauchy_generator(n, k)
                   : build_vandermonde_generator(n, k);
}

std::string RsCode::name() const {
  std::ostringstream os;
  os << "RS(" << n_ << "," << k_ << ")";
  if (construction_ == Construction::kVandermonde) os << "[vand]";
  return os.str();
}

int RsCode::repair_fetch_count(int /*lost_index*/) const { return k_; }

std::vector<int> RsCode::helper_candidates(int lost_index) const {
  FASTPR_CHECK(lost_index >= 0 && lost_index < n_);
  std::vector<int> candidates;
  candidates.reserve(static_cast<size_t>(n_ - 1));
  for (int i = 0; i < n_; ++i) {
    if (i != lost_index) candidates.push_back(i);
  }
  return candidates;
}

std::vector<int> RsCode::repair_helpers(
    int lost_index, const std::vector<bool>& available) const {
  FASTPR_CHECK(static_cast<int>(available.size()) == n_);
  FASTPR_CHECK(lost_index >= 0 && lost_index < n_);
  std::vector<int> helpers;
  helpers.reserve(static_cast<size_t>(k_));
  for (int i = 0; i < n_ && static_cast<int>(helpers.size()) < k_; ++i) {
    if (i != lost_index && available[static_cast<size_t>(i)]) {
      helpers.push_back(i);
    }
  }
  FASTPR_CHECK_MSG(static_cast<int>(helpers.size()) == k_,
                   "fewer than k available chunks; unrepairable");
  return helpers;
}

void RsCode::encode(const std::vector<ConstChunk>& data,
                    const std::vector<MutChunk>& parity) const {
  FASTPR_CHECK(static_cast<int>(data.size()) == k_);
  FASTPR_CHECK(static_cast<int>(parity.size()) == n_ - k_);
  const size_t size = data.front().size();
  for (const auto& d : data) FASTPR_CHECK(d.size() == size);
  for (const auto& p : parity) FASTPR_CHECK(p.size() == size);

  for (int r = 0; r < n_ - k_; ++r) {
    MutChunk out = parity[static_cast<size_t>(r)];
    std::fill(out.begin(), out.end(), 0);
    // Fused dot: one pass over the parity chunk for all k sources.
    gf::dot_region_xor(out, std::span<const ConstChunk>(data),
                       parity_coefficients(k_ + r));
  }
}

std::vector<uint8_t> RsCode::combination_coeffs(
    int target, const std::vector<int>& helper_indices) const {
  FASTPR_CHECK(static_cast<int>(helper_indices.size()) == k_);
  const Matrix a = generator_.select_rows(helper_indices);
  const auto a_inv = a.inverted();
  FASTPR_CHECK_MSG(a_inv.has_value(),
                   "helper rows singular — not an MDS subset?");
  // Row vector: generator_row(target) × A^{-1}.
  std::vector<uint8_t> coeffs(static_cast<size_t>(k_), 0);
  for (int j = 0; j < k_; ++j) {
    uint8_t acc = 0;
    for (int t = 0; t < k_; ++t) {
      acc = static_cast<uint8_t>(
          acc ^ gf::mul(generator_.at(target, t), a_inv->at(t, j)));
    }
    coeffs[static_cast<size_t>(j)] = acc;
  }
  return coeffs;
}

std::vector<uint8_t> RsCode::parity_coefficients(int index) const {
  FASTPR_CHECK(index >= k_ && index < n_);
  std::vector<uint8_t> coeffs(static_cast<size_t>(k_));
  for (int c = 0; c < k_; ++c) {
    coeffs[static_cast<size_t>(c)] = generator_.at(index, c);
  }
  return coeffs;
}

std::vector<uint8_t> RsCode::repair_coefficients(
    int lost_index, const std::vector<int>& helper_indices) const {
  return combination_coeffs(lost_index, helper_indices);
}

void RsCode::repair_chunk(int lost_index,
                          const std::vector<int>& helper_indices,
                          const std::vector<ConstChunk>& helper_data,
                          MutChunk out) const {
  FASTPR_CHECK(helper_indices.size() == helper_data.size());
  const auto coeffs = combination_coeffs(lost_index, helper_indices);
  std::fill(out.begin(), out.end(), 0);
  // Fused dot: one pass over the lost chunk for all k helper streams
  // (sizes are checked against out by the span overload).
  gf::dot_region_xor(out, std::span<const ConstChunk>(helper_data), coeffs);
}

bool RsCode::decode(const std::vector<int>& erased,
                    const std::vector<MutChunk>& chunks) const {
  FASTPR_CHECK(static_cast<int>(chunks.size()) == n_);
  std::vector<bool> is_erased(static_cast<size_t>(n_), false);
  for (int e : erased) {
    FASTPR_CHECK(e >= 0 && e < n_);
    is_erased[static_cast<size_t>(e)] = true;
  }
  std::vector<int> helpers;
  for (int i = 0; i < n_ && static_cast<int>(helpers.size()) < k_; ++i) {
    if (!is_erased[static_cast<size_t>(i)]) helpers.push_back(i);
  }
  if (static_cast<int>(helpers.size()) < k_) return false;

  std::vector<ConstChunk> helper_data;
  helper_data.reserve(helpers.size());
  for (int h : helpers) {
    helper_data.emplace_back(chunks[static_cast<size_t>(h)]);
  }
  for (int e : erased) {
    repair_chunk(e, helpers, helper_data, chunks[static_cast<size_t>(e)]);
  }
  return true;
}

}  // namespace fastpr::ec
