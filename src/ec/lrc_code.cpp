#include "ec/lrc_code.h"

#include <algorithm>
#include <sstream>

#include "gf/gf256.h"
#include "util/check.h"

namespace fastpr::ec {

LrcCode::LrcCode(int k, int l, int g)
    : k_(k), l_(l), g_(g), n_(k + l + g) {
  FASTPR_CHECK_MSG(k >= 1 && l >= 1 && g >= 0, "bad LRC parameters");
  FASTPR_CHECK_MSG(k % l == 0, "LRC requires k divisible by l");
  FASTPR_CHECK_MSG(n_ <= gf::kFieldSize, "LRC over GF(256) requires n<=256");

  generator_ = Matrix(n_, k_);
  for (int i = 0; i < k_; ++i) generator_.at(i, i) = 1;
  const int gs = k_ / l_;
  for (int j = 0; j < l_; ++j) {
    for (int t = 0; t < gs; ++t) generator_.at(k_ + j, j * gs + t) = 1;
  }
  if (g_ > 0) {
    // Global parities: Cauchy rows with x in [0,g) and y = g + column,
    // offset past the local-XOR structure so rows stay independent.
    const Matrix c = Matrix::cauchy(g_, k_);
    for (int r = 0; r < g_; ++r) {
      for (int col = 0; col < k_; ++col) {
        generator_.at(k_ + l_ + r, col) = c.at(r, col);
      }
    }
  }
}

std::string LrcCode::name() const {
  std::ostringstream os;
  os << "LRC(k=" << k_ << ",l=" << l_ << ",g=" << g_ << ")";
  return os.str();
}

int LrcCode::group_of(int index) const {
  FASTPR_CHECK(index >= 0 && index < n_);
  const int gs = k_ / l_;
  if (index < k_) return index / gs;
  if (index < k_ + l_) return index - k_;
  return -1;  // global parity
}

int LrcCode::repair_fetch_count(int lost_index) const {
  return group_of(lost_index) >= 0 ? k_ / l_ : k_;
}

std::vector<int> LrcCode::helper_candidates(int lost_index) const {
  const int group = group_of(lost_index);
  std::vector<int> candidates;
  if (group >= 0) {
    // Data or local-parity chunk: its local group plus the group parity.
    const int gs = k_ / l_;
    for (int t = 0; t < gs; ++t) {
      const int idx = group * gs + t;
      if (idx != lost_index) candidates.push_back(idx);
    }
    if (k_ + group != lost_index) candidates.push_back(k_ + group);
    return candidates;
  }
  // Global parity: rebuilt from the k data chunks.
  for (int i = 0; i < k_; ++i) candidates.push_back(i);
  return candidates;
}

std::vector<int> LrcCode::repair_helpers(
    int lost_index, const std::vector<bool>& available) const {
  FASTPR_CHECK(static_cast<int>(available.size()) == n_);
  FASTPR_CHECK(lost_index >= 0 && lost_index < n_);

  const int group = group_of(lost_index);
  if (group >= 0) {
    // Local repair: the rest of the group plus its local parity.
    const int gs = k_ / l_;
    std::vector<int> helpers;
    bool all_available = true;
    auto consider = [&](int idx) {
      if (idx == lost_index) return;
      if (available[static_cast<size_t>(idx)]) {
        helpers.push_back(idx);
      } else {
        all_available = false;
      }
    };
    for (int t = 0; t < gs; ++t) consider(group * gs + t);
    consider(k_ + group);
    if (all_available) return helpers;
  }

  // Global-parity repair or degraded local group: fall back to solving
  // over everything that is still available.
  std::vector<int> candidates;
  for (int i = 0; i < n_; ++i) {
    if (i != lost_index && available[static_cast<size_t>(i)]) {
      candidates.push_back(i);
    }
  }
  const auto combo = solve_combination(lost_index, candidates);
  FASTPR_CHECK_MSG(combo.has_value(),
                   "LRC chunk " << lost_index
                                << " unrepairable from available set");
  std::vector<int> helpers;
  helpers.reserve(combo->size());
  for (const auto& [idx, coef] : *combo) {
    (void)coef;
    helpers.push_back(idx);
  }
  return helpers;
}

void LrcCode::encode(const std::vector<ConstChunk>& data,
                     const std::vector<MutChunk>& parity) const {
  FASTPR_CHECK(static_cast<int>(data.size()) == k_);
  FASTPR_CHECK(static_cast<int>(parity.size()) == l_ + g_);
  const size_t size = data.front().size();
  for (const auto& d : data) FASTPR_CHECK(d.size() == size);
  for (const auto& p : parity) FASTPR_CHECK(p.size() == size);

  for (int r = 0; r < l_ + g_; ++r) {
    MutChunk out = parity[static_cast<size_t>(r)];
    std::fill(out.begin(), out.end(), 0);
    // Fused dot: one pass over the parity chunk for all k sources
    // (local-parity rows have mostly zero coefficients, which the dot
    // kernel compacts away).
    gf::dot_region_xor(out, std::span<const ConstChunk>(data),
                       parity_coefficients(k_ + r));
  }
}

std::optional<std::vector<std::pair<int, uint8_t>>>
LrcCode::solve_combination(int target,
                           const std::vector<int>& candidates) const {
  // Solve sum_i x_i * G_row(candidates[i]) == G_row(target):
  // k equations (one per data-chunk dimension), |candidates| unknowns.
  const int m = static_cast<int>(candidates.size());
  // Augmented matrix: k rows, m+1 cols.
  Matrix aug(k_, m + 1);
  for (int eq = 0; eq < k_; ++eq) {
    for (int i = 0; i < m; ++i) {
      aug.at(eq, i) = generator_.at(candidates[static_cast<size_t>(i)], eq);
    }
    aug.at(eq, m) = generator_.at(target, eq);
  }

  // Gaussian elimination with partial pivoting over GF(2^8).
  std::vector<int> pivot_col_of_row(static_cast<size_t>(k_), -1);
  int row = 0;
  for (int col = 0; col < m && row < k_; ++col) {
    int pivot = -1;
    for (int r = row; r < k_; ++r) {
      if (aug.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    if (pivot != row) {
      for (int c = 0; c <= m; ++c) std::swap(aug.at(pivot, c), aug.at(row, c));
    }
    const uint8_t piv_inv = gf::inv(aug.at(row, col));
    for (int c = 0; c <= m; ++c) {
      aug.at(row, c) = gf::mul(aug.at(row, c), piv_inv);
    }
    for (int r = 0; r < k_; ++r) {
      if (r == row) continue;
      const uint8_t factor = aug.at(r, col);
      if (factor == 0) continue;
      for (int c = 0; c <= m; ++c) {
        aug.at(r, c) = static_cast<uint8_t>(aug.at(r, c) ^
                                            gf::mul(factor, aug.at(row, c)));
      }
    }
    pivot_col_of_row[static_cast<size_t>(row)] = col;
    ++row;
  }
  // Consistency: any zero row with nonzero RHS means no solution.
  for (int r = row; r < k_; ++r) {
    if (aug.at(r, m) != 0) return std::nullopt;
  }

  // Particular solution: free variables = 0, pivot variables from RHS.
  std::vector<std::pair<int, uint8_t>> combo;
  for (int r = 0; r < row; ++r) {
    const int col = pivot_col_of_row[static_cast<size_t>(r)];
    const uint8_t coef = aug.at(r, m);
    if (coef != 0) {
      combo.emplace_back(candidates[static_cast<size_t>(col)], coef);
    }
  }
  return combo;
}

std::vector<uint8_t> LrcCode::parity_coefficients(int index) const {
  FASTPR_CHECK(index >= k_ && index < n_);
  std::vector<uint8_t> coeffs(static_cast<size_t>(k_));
  for (int c = 0; c < k_; ++c) {
    coeffs[static_cast<size_t>(c)] = generator_.at(index, c);
  }
  return coeffs;
}

std::vector<uint8_t> LrcCode::repair_coefficients(
    int lost_index, const std::vector<int>& helper_indices) const {
  const auto combo = solve_combination(lost_index, helper_indices);
  FASTPR_CHECK_MSG(combo.has_value(),
                   "helpers cannot express chunk " << lost_index);
  std::vector<uint8_t> coeffs(helper_indices.size(), 0);
  for (const auto& [idx, coef] : *combo) {
    const auto it =
        std::find(helper_indices.begin(), helper_indices.end(), idx);
    coeffs[static_cast<size_t>(
        std::distance(helper_indices.begin(), it))] = coef;
  }
  return coeffs;
}

void LrcCode::repair_chunk(int lost_index,
                           const std::vector<int>& helper_indices,
                           const std::vector<ConstChunk>& helper_data,
                           MutChunk out) const {
  FASTPR_CHECK(helper_indices.size() == helper_data.size());
  const auto combo = solve_combination(lost_index, helper_indices);
  FASTPR_CHECK_MSG(combo.has_value(),
                   "helpers cannot express chunk " << lost_index);
  std::fill(out.begin(), out.end(), 0);
  // Align the solved coefficients with helper order, then fold every
  // contributing stream in with one fused dot pass.
  std::vector<uint8_t> coeffs(helper_data.size(), 0);
  for (const auto& [idx, coef] : *combo) {
    const auto it =
        std::find(helper_indices.begin(), helper_indices.end(), idx);
    coeffs[static_cast<size_t>(
        std::distance(helper_indices.begin(), it))] = coef;
  }
  gf::dot_region_xor(out, std::span<const ConstChunk>(helper_data), coeffs);
}

bool LrcCode::decode(const std::vector<int>& erased,
                     const std::vector<MutChunk>& chunks) const {
  FASTPR_CHECK(static_cast<int>(chunks.size()) == n_);
  std::vector<bool> available(static_cast<size_t>(n_), true);
  for (int e : erased) {
    FASTPR_CHECK(e >= 0 && e < n_);
    available[static_cast<size_t>(e)] = false;
  }
  std::vector<int> pending = erased;

  // Iteratively repair whatever is currently expressible; a local repair
  // can unlock a global one and vice versa, so loop to a fixed point.
  bool progress = true;
  while (!pending.empty() && progress) {
    progress = false;
    for (auto it = pending.begin(); it != pending.end();) {
      std::vector<int> candidates;
      for (int i = 0; i < n_; ++i) {
        if (available[static_cast<size_t>(i)]) candidates.push_back(i);
      }
      const auto combo = solve_combination(*it, candidates);
      if (!combo.has_value()) {
        ++it;
        continue;
      }
      MutChunk out = chunks[static_cast<size_t>(*it)];
      std::fill(out.begin(), out.end(), 0);
      std::vector<ConstChunk> srcs;
      std::vector<uint8_t> coefs;
      srcs.reserve(combo->size());
      coefs.reserve(combo->size());
      for (const auto& [idx, coef] : *combo) {
        srcs.emplace_back(chunks[static_cast<size_t>(idx)]);
        coefs.push_back(coef);
      }
      gf::dot_region_xor(out, std::span<const ConstChunk>(srcs), coefs);
      available[static_cast<size_t>(*it)] = true;
      it = pending.erase(it);
      progress = true;
    }
  }
  return pending.empty();
}

}  // namespace fastpr::ec
