// Abstract erasure-code interface.
//
// The FastPR planner only needs three facts about a code: n, k, and how
// many helper chunks a single-chunk repair fetches (k for RS, k/l within
// a local group for LRC — §III "Extension for LRCs"). The codecs
// additionally move real bytes for the testbed substrate.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fastpr::ec {

using ConstChunk = std::span<const uint8_t>;
using MutChunk = std::span<uint8_t>;

class ErasureCode {
 public:
  virtual ~ErasureCode() = default;

  /// Total chunks per stripe.
  virtual int n() const = 0;
  /// Chunks sufficient to reconstruct the stripe.
  virtual int k() const = 0;
  virtual std::string name() const = 0;

  /// Number of helper chunks fetched to repair the single chunk at
  /// `lost_index` (the paper's k'; §III).
  virtual int repair_fetch_count(int lost_index) const = 0;

  /// Stripe indices that may serve as helpers when repairing
  /// `lost_index` (the planner builds its matching adjacency from
  /// these). RS: every other index; LRC: the local group for data/local
  /// chunks, the data chunks for a global parity.
  virtual std::vector<int> helper_candidates(int lost_index) const = 0;

  /// Picks the helper chunk indices used to repair `lost_index`, given
  /// which stripe indices are currently available. Size equals
  /// repair_fetch_count(lost_index). Throws CheckFailure if the loss is
  /// unrepairable from the available set.
  virtual std::vector<int> repair_helpers(
      int lost_index, const std::vector<bool>& available) const = 0;

  /// Encodes k data chunks into n-k parity chunks. All chunks must have
  /// equal size; parity spans are written in full.
  virtual void encode(const std::vector<ConstChunk>& data,
                      const std::vector<MutChunk>& parity) const = 0;

  /// Coefficients of parity chunk `index` (k <= index < n) over the k
  /// data chunks: parity = sum_j coeff[j] * data_j. Lets callers
  /// materialize a single parity chunk without encoding the full stripe
  /// (the testbed's synthetic content oracle relies on this).
  virtual std::vector<uint8_t> parity_coefficients(int index) const = 0;

  /// GF(256) coefficients such that the lost chunk equals
  /// sum_i coeff[i] * helper_i. Aligned with `helper_indices`; entries
  /// may be zero (LRC solutions can ignore redundant helpers). The
  /// testbed destination agents decode by streaming mul-XOR with these.
  virtual std::vector<uint8_t> repair_coefficients(
      int lost_index, const std::vector<int>& helper_indices) const = 0;

  /// Repairs the single chunk `lost_index` from helper chunks previously
  /// chosen by repair_helpers (same order).
  virtual void repair_chunk(int lost_index,
                            const std::vector<int>& helper_indices,
                            const std::vector<ConstChunk>& helper_data,
                            MutChunk out) const = 0;

  /// General decode: reconstructs all chunks listed in `erased` from the
  /// available ones. `chunks[i]` holds chunk i's buffer; buffers of erased
  /// indices are outputs. Returns false if the pattern is undecodable.
  virtual bool decode(const std::vector<int>& erased,
                      const std::vector<MutChunk>& chunks) const = 0;
};

/// Convenience: stripes-in-memory encode used by tests and the workload
/// generator. data.size() == k buffers in, returns n buffers (data ++
/// parity) for a systematic code.
std::vector<std::vector<uint8_t>> encode_stripe(
    const ErasureCode& code, const std::vector<std::vector<uint8_t>>& data);

}  // namespace fastpr::ec
