// One-call wrappers: build a cluster, plan each strategy, simulate, and
// report repair time per chunk — the loop every simulation experiment
// (Figures 8–10) runs 30 times and averages.
#pragma once

#include <cstdint>

#include "core/cost_model.h"
#include "core/fastpr.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace fastpr::sim {

struct ExperimentConfig {
  int num_nodes = 100;      // M (storage nodes)
  int num_stripes = 1000;
  int n = 9;                // stripe width
  int k = 6;                // data chunks / helpers per repair
  double chunk_bytes = 0;
  double disk_bw = 0;
  double net_bw = 0;
  int hot_standby = 3;      // spares provisioned (hot-standby scenario)
  core::Scenario scenario = core::Scenario::kScattered;
  TimingModel model = TimingModel::kPaperModel;
  uint64_t seed = 1;
  /// Soon-to-fail nodes repaired as one batch (DESIGN.md §8). Only
  /// run_multi_experiment consults values above 1.
  int stf_batch = 1;
};

/// Per-chunk repair times of all four approaches on one random layout.
struct StrategyTimes {
  double fastpr = 0;
  double reconstruction_only = 0;
  double migration_only = 0;
  double optimum = 0;       // Eq. (2), mathematical lower bound
  int stf_chunks = 0;       // U drawn for this layout
  int fastpr_rounds = 0;
};

/// Builds a random layout from `config.seed`, flags the most-loaded node
/// as STF (a node with no chunks would make the experiment vacuous),
/// plans all strategies and simulates them.
StrategyTimes run_experiment(const ExperimentConfig& config);

/// Averages `runs` experiments over different seeds (seed, seed+1, ...).
StrategyTimes run_averaged(const ExperimentConfig& config, int runs);

/// Per-chunk repair times for a batch of STF nodes repaired together
/// (DESIGN.md §8). No paper baseline exists for batch > 1; `sequential`
/// — each member planned alone, plans executed back to back — is the
/// in-repo reference the joint planner must beat.
struct MultiStrategyTimes {
  double joint = 0;         // MultiStfPlanner::plan_fastpr
  double sequential = 0;    // MultiStfPlanner::plan_sequential
  double optimum = 0;       // Eq. (2) generalized, batch cost model
  int total_chunks = 0;     // U = union of all members' chunks
  int joint_rounds = 0;
  int sequential_rounds = 0;
};

/// Builds a random layout from `config.seed`, flags the
/// `config.stf_batch` most-loaded nodes as one STF batch, and simulates
/// the joint plan against the sequential baseline.
MultiStrategyTimes run_multi_experiment(const ExperimentConfig& config);

}  // namespace fastpr::sim
