// Repair-time simulator.
//
// Mirrors the paper's single-machine simulator (§VI-A): the planning
// algorithms run for real, while disk I/O and network transfers are
// replaced by computed execution times from the input bandwidths.
//
// Two timing models:
//  * kPaperModel — the §III decomposition exactly: a round costs
//    max(migrations·tm, tr), with tr from Eq. (5)/(6). This is what the
//    paper's simulator computes and what Figures 8–10 plot.
//  * kResourceModel — per-node accounting: every node's disk moves
//    (reads+writes)/bd and its NIC max(tx,rx)/bn; a round lasts as long
//    as its busiest resource (plus the single-chunk pipeline floor).
//    Used as an ablation to show the conclusions survive a contention-
//    aware model.
#pragma once

#include <vector>

#include "core/cost_model.h"
#include "core/repair_plan.h"
#include "net/topology.h"

namespace fastpr::sim {

enum class TimingModel { kPaperModel, kResourceModel };

struct SimParams {
  double chunk_bytes = 0;
  double disk_bw = 0;
  double net_bw = 0;
  int k_repair = 0;
  /// Per-helper traffic fraction (1.0 RS/LRC; 1/(d-k+1) for MSR).
  double helper_bytes_fraction = 1.0;
  int hot_standby = 1;          // h (hot-standby only)
  core::Scenario scenario = core::Scenario::kScattered;
  TimingModel model = TimingModel::kPaperModel;
  /// Packet size of chain (repair-pipelining) rounds. Required (> 0)
  /// when a round carries RepairStrategy::kChain; ignored for fan-in.
  double packet_bytes = 0;
  /// Per-forward store-and-forward cost of a chain hop (see
  /// core::ModelParams::chain_hop_overhead_seconds).
  double chain_hop_overhead_seconds = 0;
  /// Fraction of net_bw repair may use under SLO-aware throttling (see
  /// core::ModelParams::repair_bw_fraction). Scales every network term
  /// of both timing models; disk terms are unscaled.
  double repair_bw_fraction = 1.0;
  /// Rack topology (DESIGN.md §11). With topo_racks > 1 and
  /// oversubscription > 1, each round additionally pays for the busiest
  /// rack uplink/downlink: all cross-rack bytes of a rack share
  /// topo_nodes_per_rack · net_bw / oversubscription, and the round
  /// lasts at least as long as the busiest shared link. Racks are the
  /// block mapping node / topo_nodes_per_rack (net::Topology). The
  /// defaults (single rack, factor 1) leave every round time
  /// bit-identical to the flat simulator.
  int topo_racks = 1;
  int topo_nodes_per_rack = 0;
  double oversubscription = net::Oversub(1.0);
};

struct SimResult {
  double total_time = 0;
  std::vector<double> round_times;
  int migrated = 0;
  int reconstructed = 0;
  long repair_traffic_chunks = 0;  // chunks moved over the network

  int repaired() const { return migrated + reconstructed; }
  double per_chunk() const {
    return repaired() == 0 ? 0.0 : total_time / repaired();
  }
};

/// Replays `plan` against the timing model and accumulates round times.
SimResult simulate(const core::RepairPlan& plan, const SimParams& params);

}  // namespace fastpr::sim
