#include "sim/strategies.h"

#include <algorithm>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/multi_stf.h"
#include "util/check.h"

namespace fastpr::sim {

namespace {

cluster::NodeId most_loaded_node(const cluster::StripeLayout& layout) {
  cluster::NodeId best = 0;
  for (cluster::NodeId node = 1; node < layout.num_nodes(); ++node) {
    if (layout.load(node) > layout.load(best)) best = node;
  }
  return best;
}

/// The `count` most-loaded nodes, most-loaded first, ties to lower id.
std::vector<cluster::NodeId> most_loaded_nodes(
    const cluster::StripeLayout& layout, int count) {
  std::vector<cluster::NodeId> nodes(
      static_cast<size_t>(layout.num_nodes()));
  for (cluster::NodeId node = 0; node < layout.num_nodes(); ++node) {
    nodes[static_cast<size_t>(node)] = node;
  }
  std::stable_sort(nodes.begin(), nodes.end(),
                   [&layout](cluster::NodeId a, cluster::NodeId b) {
                     return layout.load(a) > layout.load(b);
                   });
  nodes.resize(static_cast<size_t>(count));
  return nodes;
}

}  // namespace

StrategyTimes run_experiment(const ExperimentConfig& config) {
  FASTPR_CHECK(config.k >= 1 && config.n > config.k);
  Rng rng(config.seed);

  auto layout = cluster::StripeLayout::random(config.num_nodes, config.n,
                                              config.num_stripes, rng);
  cluster::BandwidthProfile bw{config.disk_bw, config.net_bw};
  cluster::ClusterState state(config.num_nodes, config.hot_standby, bw);
  const cluster::NodeId stf = most_loaded_node(layout);
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);

  core::PlannerOptions options;
  options.scenario = config.scenario;
  options.k_repair = config.k;
  options.chunk_bytes = config.chunk_bytes;
  core::FastPrPlanner planner(layout, state, options);

  SimParams sim_params;
  sim_params.chunk_bytes = config.chunk_bytes;
  sim_params.disk_bw = config.disk_bw;
  sim_params.net_bw = config.net_bw;
  sim_params.k_repair = config.k;
  sim_params.hot_standby = config.hot_standby;
  sim_params.scenario = config.scenario;
  sim_params.model = config.model;

  StrategyTimes out;
  out.stf_chunks = static_cast<int>(layout.chunks_on(stf).size());

  const auto fastpr_plan = planner.plan_fastpr();
  const auto fastpr_sim = simulate(fastpr_plan, sim_params);
  out.fastpr = fastpr_sim.per_chunk();
  out.fastpr_rounds = static_cast<int>(fastpr_plan.rounds.size());

  out.reconstruction_only =
      simulate(planner.plan_reconstruction_only(), sim_params).per_chunk();
  out.migration_only =
      simulate(planner.plan_migration_only(), sim_params).per_chunk();
  out.optimum = planner.cost_model().predictive_time_per_chunk();
  return out;
}

MultiStrategyTimes run_multi_experiment(const ExperimentConfig& config) {
  FASTPR_CHECK(config.k >= 1 && config.n > config.k);
  FASTPR_CHECK(config.stf_batch >= 1);
  Rng rng(config.seed);

  auto layout = cluster::StripeLayout::random(config.num_nodes, config.n,
                                              config.num_stripes, rng);
  cluster::BandwidthProfile bw{config.disk_bw, config.net_bw};
  cluster::ClusterState state(config.num_nodes, config.hot_standby, bw);
  for (cluster::NodeId stf :
       most_loaded_nodes(layout, config.stf_batch)) {
    state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  }

  core::PlannerOptions options;
  options.scenario = config.scenario;
  options.k_repair = config.k;
  options.chunk_bytes = config.chunk_bytes;
  core::MultiStfPlanner planner(layout, state, options);

  SimParams sim_params;
  sim_params.chunk_bytes = config.chunk_bytes;
  sim_params.disk_bw = config.disk_bw;
  sim_params.net_bw = config.net_bw;
  sim_params.k_repair = config.k;
  sim_params.hot_standby = config.hot_standby;
  sim_params.scenario = config.scenario;
  sim_params.model = config.model;

  MultiStrategyTimes out;
  for (cluster::NodeId stf : planner.batch()) {
    out.total_chunks += static_cast<int>(layout.chunks_on(stf).size());
  }

  const auto joint_plan = planner.plan_fastpr();
  const auto joint_sim = simulate(joint_plan, sim_params);
  out.joint = joint_sim.per_chunk();
  out.joint_rounds = static_cast<int>(joint_plan.rounds.size());

  const auto sequential_plan = planner.plan_sequential();
  const auto sequential_sim = simulate(sequential_plan, sim_params);
  out.sequential = sequential_sim.per_chunk();
  out.sequential_rounds =
      static_cast<int>(sequential_plan.rounds.size());

  out.optimum = planner.cost_model().predictive_time_per_chunk();
  return out;
}

StrategyTimes run_averaged(const ExperimentConfig& config, int runs) {
  FASTPR_CHECK(runs >= 1);
  StrategyTimes acc;
  for (int r = 0; r < runs; ++r) {
    ExperimentConfig c = config;
    c.seed = config.seed + static_cast<uint64_t>(r);
    const StrategyTimes t = run_experiment(c);
    acc.fastpr += t.fastpr;
    acc.reconstruction_only += t.reconstruction_only;
    acc.migration_only += t.migration_only;
    acc.optimum += t.optimum;
    acc.stf_chunks += t.stf_chunks;
    acc.fastpr_rounds += t.fastpr_rounds;
  }
  acc.fastpr /= runs;
  acc.reconstruction_only /= runs;
  acc.migration_only /= runs;
  acc.optimum /= runs;
  acc.stf_chunks /= runs;
  acc.fastpr_rounds /= runs;
  return acc;
}

}  // namespace fastpr::sim
