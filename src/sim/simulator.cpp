#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace fastpr::sim {

namespace {

using cluster::NodeId;

/// Round time under the paper's §III decomposition.
double paper_round_time(const core::RepairRound& round,
                        const SimParams& p) {
  const double c = p.chunk_bytes;
  const double tm = c / p.disk_bw + c / p.net_bw + c / p.disk_bw;
  // Migrations off distinct STF disks stream in parallel; the round is
  // paced by the busiest source (single-source: count · tm, unchanged).
  std::unordered_map<NodeId, int> per_src;
  int slowest_src = 0;
  for (const auto& task : round.migrations) {
    slowest_src = std::max(slowest_src, ++per_src[task.src]);
  }
  const double migration_time = static_cast<double>(slowest_src) * tm;

  double recon_time = 0;
  if (!round.reconstructions.empty() &&
      round.strategy == core::RepairStrategy::kChain) {
    // Chain (repair pipelining): expression-identical to
    // CostModel::tr_chain so simulated rounds equal the model's
    // predictions bit-for-bit (the differential tests assert ==).
    // Chains move whole chunks (RS/LRC), so helper_bytes_fraction does
    // not apply.
    FASTPR_CHECK(p.packet_bytes > 0);
    const double pkt = std::min(p.packet_bytes, c);
    const double k = p.k_repair;
    const double o = p.chain_hop_overhead_seconds;
    const double packets = std::ceil(c / pkt);
    const double overhead =
        p.k_repair >= 2 ? (packets + k - 1.0) * o : 0.0;
    if (p.scenario == core::Scenario::kScattered) {
      recon_time = c / p.disk_bw + c / p.net_bw +
                   (k - 1.0) * pkt / p.net_bw + overhead + c / p.disk_bw;
    } else {
      const double g = static_cast<double>(round.reconstructions.size());
      const double h = p.hot_standby;
      recon_time = c / p.disk_bw + g * c / (h * p.net_bw) +
                   (k - 1.0) * pkt / p.net_bw + overhead +
                   g * c / (h * p.disk_bw);
    }
  } else if (!round.reconstructions.empty()) {
    const double k = p.k_repair * p.helper_bytes_fraction;
    if (p.scenario == core::Scenario::kScattered) {
      // Eq. (5): parallel reads, k chunks into each destination NIC.
      recon_time = c / p.disk_bw + k * c / p.net_bw + c / p.disk_bw;
    } else {
      // Eq. (6): cr·k transmissions and cr writes funnel into h spares.
      const double g = static_cast<double>(round.reconstructions.size());
      const double h = p.hot_standby;
      recon_time = c / p.disk_bw + g * k * c / (h * p.net_bw) +
                   g * c / (h * p.disk_bw);
    }
  }
  return std::max(migration_time, recon_time);
}

/// Round time under per-node resource accounting.
double resource_round_time(const core::RepairRound& round,
                           const SimParams& p) {
  struct NodeLoad {
    double disk_bytes = 0;  // reads + writes share one disk
    double tx_bytes = 0;
    double rx_bytes = 0;
  };
  std::unordered_map<NodeId, NodeLoad> loads;
  const double c = p.chunk_bytes;

  for (const auto& task : round.migrations) {
    auto& src = loads[task.src];
    src.disk_bytes += c;
    src.tx_bytes += c;
    auto& dst = loads[task.dst];
    dst.rx_bytes += c;
    dst.disk_bytes += c;
  }
  for (const auto& task : round.reconstructions) {
    const double helper_bytes = c * p.helper_bytes_fraction;
    for (const auto& read : task.sources) {
      auto& src = loads[read.node];
      src.disk_bytes += helper_bytes;
      src.tx_bytes += helper_bytes;
    }
    auto& dst = loads[task.dst];
    dst.rx_bytes +=
        helper_bytes * static_cast<double>(task.sources.size());
    dst.disk_bytes += c;
  }

  double busiest = 0;
  for (const auto& [node, load] : loads) {
    (void)node;
    const double disk = load.disk_bytes / p.disk_bw;
    const double nic = std::max(load.tx_bytes, load.rx_bytes) / p.net_bw;
    busiest = std::max(busiest, std::max(disk, nic));
  }

  // Latency floor: even an uncontended chunk traverses read → transmit →
  // write sequentially.
  double floor_time = 0;
  if (!round.migrations.empty()) {
    floor_time = std::max(floor_time,
                          c / p.disk_bw + c / p.net_bw + c / p.disk_bw);
  }
  if (!round.reconstructions.empty()) {
    floor_time = std::max(
        floor_time,
        c / p.disk_bw +
            p.k_repair * p.helper_bytes_fraction * c / p.net_bw +
            c / p.disk_bw);
  }
  return std::max(busiest, floor_time);
}

/// Lower bound from the shared rack links: every cross-rack byte of a
/// rack funnels through its uplink (tx) or downlink (rx) of capacity
/// nodes_per_rack · bn / f, so the round lasts at least as long as the
/// busiest such link needs. Chain rounds are charged hop-to-hop over the
/// helper path (each hop forwards a whole chunk); fan-in rounds charge
/// each helper→destination stream.
double rack_round_time(const core::RepairRound& round, const SimParams& p) {
  struct RackLoad {
    double up_bytes = 0;    // leaving the rack
    double down_bytes = 0;  // entering the rack
  };
  const auto rack_of = [&](NodeId node) {
    return static_cast<int>(node) / p.topo_nodes_per_rack;
  };
  std::unordered_map<int, RackLoad> racks;
  const double c = p.chunk_bytes;
  const auto charge = [&](NodeId src, NodeId dst, double bytes) {
    const int sr = rack_of(src);
    const int dr = rack_of(dst);
    if (sr == dr) return;
    racks[sr].up_bytes += bytes;
    racks[dr].down_bytes += bytes;
  };

  for (const auto& task : round.migrations) {
    charge(task.src, task.dst, c);
  }
  const bool chain = round.strategy == core::RepairStrategy::kChain;
  for (const auto& task : round.reconstructions) {
    if (chain) {
      // Partial sums traverse h0 → h1 → … → dst, one chunk per hop.
      NodeId prev = task.sources.empty() ? task.dst : task.sources[0].node;
      for (size_t i = 1; i < task.sources.size(); ++i) {
        charge(prev, task.sources[i].node, c);
        prev = task.sources[i].node;
      }
      charge(prev, task.dst, c);
    } else {
      for (const auto& read : task.sources) {
        charge(read.node, task.dst, c * p.helper_bytes_fraction);
      }
    }
  }

  const double link_bw = static_cast<double>(p.topo_nodes_per_rack) *
                         p.net_bw / p.oversubscription;
  double busiest = 0;
  for (const auto& [rack, load] : racks) {
    (void)rack;
    busiest = std::max(
        busiest, std::max(load.up_bytes, load.down_bytes) / link_bw);
  }
  return busiest;
}

}  // namespace

SimResult simulate(const core::RepairPlan& plan, const SimParams& raw) {
  FASTPR_CHECK(raw.chunk_bytes > 0);
  FASTPR_CHECK(raw.disk_bw > 0 && raw.net_bw > 0);
  FASTPR_CHECK(raw.k_repair >= 1);
  FASTPR_CHECK(raw.repair_bw_fraction > 0 && raw.repair_bw_fraction <= 1.0);
  FASTPR_CHECK(raw.topo_racks >= 1);
  FASTPR_CHECK(raw.oversubscription >= 1.0);
  if (raw.topo_racks > 1) FASTPR_CHECK(raw.topo_nodes_per_rack >= 1);

  // Throttling scales every network term and nothing else, so fold it
  // into the effective NIC rate once — both timing models inherit it.
  SimParams params = raw;
  params.net_bw *= params.repair_bw_fraction;
  params.repair_bw_fraction = 1.0;

  // Single rack (or full bisection): no traffic ever contends for a
  // rack link, skip the term entirely so flat runs stay bit-identical.
  const bool racked = params.topo_racks > 1 && params.oversubscription > 1.0;

  SimResult result;
  for (const auto& round : plan.rounds) {
    double t = params.model == TimingModel::kPaperModel
                   ? paper_round_time(round, params)
                   : resource_round_time(round, params);
    if (racked) t = std::max(t, rack_round_time(round, params));
    result.round_times.push_back(t);
    result.total_time += t;
    result.migrated += static_cast<int>(round.migrations.size());
    result.reconstructed += static_cast<int>(round.reconstructions.size());
    // Traffic: one chunk per migration, k per reconstruction.
    result.repair_traffic_chunks +=
        static_cast<long>(round.migrations.size()) +
        static_cast<long>(round.reconstructions.size()) * params.k_repair;
  }
  return result;
}

}  // namespace fastpr::sim
