#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/check.h"
#include "util/logging.h"

namespace fastpr::net {

namespace {

bool write_all(int fd, const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n <= 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

bool read_all(int fd, uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, data + done, len - done);
    if (n <= 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(int num_nodes, const Options& options)
    : options_(options) {
  FASTPR_CHECK(num_nodes >= 1);
  endpoints_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    auto ep = std::make_unique<Endpoint>();
    ep->tx = std::make_unique<TokenBucket>(options.net_bytes_per_sec,
                                           options.burst_bytes);
    ep->rx = std::make_unique<TokenBucket>(options.net_bytes_per_sec,
                                           options.burst_bytes);

    ep->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    FASTPR_CHECK_MSG(ep->listen_fd >= 0, "socket() failed");
    int yes = 1;
    ::setsockopt(ep->listen_fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    FASTPR_CHECK_MSG(::bind(ep->listen_fd,
                            reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                     "bind() failed");
    socklen_t len = sizeof(addr);
    FASTPR_CHECK(::getsockname(ep->listen_fd,
                               reinterpret_cast<sockaddr*>(&addr),
                               &len) == 0);
    ep->port = ntohs(addr.sin_port);
    FASTPR_CHECK_MSG(::listen(ep->listen_fd, 64) == 0, "listen() failed");
    endpoints_.push_back(std::move(ep));
  }
  for (int i = 0; i < num_nodes; ++i) {
    endpoints_[static_cast<size_t>(i)]->accept_thread =
        std::thread([this, i] { accept_loop(i); });
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::accept_loop(int node) {
  auto& ep = *endpoints_[static_cast<size_t>(node)];
  for (;;) {
    const int fd = ::accept(ep.listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // listen socket closed: shutting down
    std::lock_guard<std::mutex> lock(ep.reader_mutex);
    ep.reader_threads.emplace_back(
        [this, node, fd] { reader_loop(node, fd); });
  }
}

void TcpTransport::reader_loop(int node, int fd) {
  auto& ep = *endpoints_[static_cast<size_t>(node)];
  for (;;) {
    uint32_t frame_len = 0;
    if (!read_all(fd, reinterpret_cast<uint8_t*>(&frame_len),
                  sizeof(frame_len))) {
      break;
    }
    if (frame_len > (256u << 20)) break;  // sanity cap
    std::vector<uint8_t> frame(frame_len);
    if (!read_all(fd, frame.data(), frame.size())) break;
    auto msg = deserialize(frame);
    if (!msg.has_value()) {
      LOG_WARN("tcp: malformed frame dropped on node " << node);
      continue;
    }
    const bool shaped = options_.shape_control_messages ||
                        msg->type == MessageType::kDataPacket;
    if (shaped) ep.rx->acquire(static_cast<int64_t>(frame.size()));
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      if (closed_) break;
      ep.inbox.push_back(std::move(*msg));
    }
    inbox_cv_.notify_all();
  }
  ::close(fd);
}

int TcpTransport::connect_to(int src, int dst) {
  auto& ep = *endpoints_[static_cast<size_t>(src)];
  // Caller holds ep.conn_mutex.
  const auto it = ep.conns.find(dst);
  if (it != ep.conns.end()) return it->second;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FASTPR_CHECK_MSG(fd >= 0, "socket() failed");
  int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoints_[static_cast<size_t>(dst)]->port);
  FASTPR_CHECK_MSG(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) == 0,
                   "connect() to node " << dst << " failed");
  ep.conns[dst] = fd;
  return fd;
}

void TcpTransport::send(Message msg) {
  FASTPR_CHECK(msg.from >= 0 &&
               msg.from < static_cast<int>(endpoints_.size()));
  FASTPR_CHECK(msg.to >= 0 && msg.to < static_cast<int>(endpoints_.size()));
  auto& ep = *endpoints_[static_cast<size_t>(msg.from)];

  const auto frame = serialize(msg);
  const bool shaped = options_.shape_control_messages ||
                      msg.type == MessageType::kDataPacket;
  if (shaped) ep.tx->acquire(static_cast<int64_t>(frame.size()));

  std::lock_guard<std::mutex> lock(ep.conn_mutex);
  if (closed_) return;
  const int fd = connect_to(msg.from, msg.to);
  const uint32_t frame_len = static_cast<uint32_t>(frame.size());
  if (!write_all(fd, reinterpret_cast<const uint8_t*>(&frame_len),
                 sizeof(frame_len)) ||
      !write_all(fd, frame.data(), frame.size())) {
    ::close(fd);
    ep.conns.erase(msg.to);
    FASTPR_CHECK_MSG(false, "tcp send to node " << msg.to << " failed");
  }
}

std::optional<Message> TcpTransport::recv(
    cluster::NodeId node, std::optional<std::chrono::milliseconds> timeout) {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(endpoints_.size()));
  auto& ep = *endpoints_[static_cast<size_t>(node)];
  std::unique_lock<std::mutex> lock(inbox_mutex_);
  const auto ready = [&] { return closed_ || !ep.inbox.empty(); };
  if (timeout.has_value()) {
    if (!inbox_cv_.wait_for(lock, *timeout, ready)) return std::nullopt;
  } else {
    inbox_cv_.wait(lock, ready);
  }
  if (ep.inbox.empty()) return std::nullopt;
  Message msg = std::move(ep.inbox.front());
  ep.inbox.pop_front();
  return msg;
}

void TcpTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    if (closed_) return;
    closed_ = true;
  }
  inbox_cv_.notify_all();
  for (auto& ep : endpoints_) {
    ep->tx->set_rate(0);
    ep->rx->set_rate(0);
    ::shutdown(ep->listen_fd, SHUT_RDWR);
    ::close(ep->listen_fd);
    {
      std::lock_guard<std::mutex> lock(ep->conn_mutex);
      for (auto& [dst, fd] : ep->conns) {
        (void)dst;
        ::shutdown(fd, SHUT_RDWR);
      }
    }
  }
  for (auto& ep : endpoints_) {
    if (ep->accept_thread.joinable()) ep->accept_thread.join();
    std::lock_guard<std::mutex> lock(ep->reader_mutex);
    for (auto& t : ep->reader_threads) {
      if (t.joinable()) t.join();
    }
    std::lock_guard<std::mutex> conn_lock(ep->conn_mutex);
    for (auto& [dst, fd] : ep->conns) {
      (void)dst;
      ::close(fd);
    }
    ep->conns.clear();
  }
}

}  // namespace fastpr::net
