#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace fastpr::net {

namespace {

/// Frames larger than this are treated as protocol corruption and drop
/// the connection: the largest legitimate frame is one chunk-sized data
/// packet plus headers, and testbed chunks are at most tens of MiB
/// (paper: 64 MB, testbed-scaled 1/16), so 256 MiB is comfortably above
/// any real frame while still rejecting a garbage length prefix before
/// it turns into a multi-gigabyte allocation.
constexpr uint32_t kMaxFrameBytes = 256 * kMiB;

bool write_all(int fd, const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n <= 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

bool read_all(int fd, uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, data + done, len - done);
    if (n <= 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(int num_nodes, const Options& options)
    : options_(options) {
  FASTPR_CHECK(num_nodes >= 1);
  endpoints_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    auto ep = std::make_unique<Endpoint>();
    ep->tx = std::make_unique<TokenBucket>(options.net_bytes_per_sec,
                                           options.burst_bytes);
    ep->rx = std::make_unique<TokenBucket>(options.net_bytes_per_sec,
                                           options.burst_bytes);

    ep->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    FASTPR_CHECK_MSG(ep->listen_fd >= 0, "socket() failed");
    int yes = 1;
    ::setsockopt(ep->listen_fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    FASTPR_CHECK_MSG(::bind(ep->listen_fd,
                            reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                     "bind() failed");
    socklen_t len = sizeof(addr);
    FASTPR_CHECK(::getsockname(ep->listen_fd,
                               reinterpret_cast<sockaddr*>(&addr),
                               &len) == 0);
    ep->port = ntohs(addr.sin_port);
    FASTPR_CHECK_MSG(::listen(ep->listen_fd, 64) == 0, "listen() failed");
    endpoints_.push_back(std::move(ep));
  }
  for (int i = 0; i < num_nodes; ++i) {
    endpoints_[static_cast<size_t>(i)]->accept_thread =
        std::thread([this, i] { accept_loop(i); });
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::accept_loop(int node) {
  auto& ep = *endpoints_[static_cast<size_t>(node)];
  for (;;) {
    const int fd = ::accept(ep.listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // listen socket closed: shutting down
    MutexLock lock(ep.reader_mutex);
    ep.reader_threads.emplace_back(
        [this, node, fd] { reader_loop(node, fd); });
  }
}

void TcpTransport::reader_loop(int node, int fd) {
  auto& ep = *endpoints_[static_cast<size_t>(node)];
  // Pool-backed frame staging, reused across the connection's lifetime:
  // one connection parses thousands of packet frames and this avoids a
  // frame-sized allocation (and zero-fill) per packet. The deserialized
  // payload is itself copied into a separately pooled buffer.
  PooledBuffer frame;
  static telemetry::Counter& rx_frames =
      telemetry::MetricsRegistry::global().counter("tcp.frames_rx");
  static telemetry::Counter& rx_bytes =
      telemetry::MetricsRegistry::global().counter("tcp.bytes_rx");
  for (;;) {
    uint32_t frame_len = 0;
    if (!read_all(fd, reinterpret_cast<uint8_t*>(&frame_len),
                  sizeof(frame_len))) {
      break;
    }
    if (frame_len > kMaxFrameBytes) break;
    frame.resize_uninitialized(frame_len);
    {
      FASTPR_TRACE_SPAN("tcp.read_frame", "tcp",
                        static_cast<int64_t>(frame_len), "bytes");
      if (!read_all(fd, frame.data(), frame.size())) break;
    }
    rx_frames.add();
    rx_bytes.add(static_cast<int64_t>(frame.size()));
    auto msg = deserialize(frame.span());
    if (!msg.has_value()) {
      LOG_WARN("tcp: malformed frame dropped on node " << node);
      continue;
    }
    const bool shaped = options_.shape_control_messages ||
                        is_data_packet(msg->type);
    if (shaped) ep.rx->acquire(static_cast<int64_t>(frame.size()));
    // Delivery timestamp AFTER rx shaping, so the flow monitor sees the
    // link's achieved (shaped) rate.
    if (options_.flow_monitor != nullptr && is_data_packet(msg->type)) {
      options_.flow_monitor->on_rx(msg->from, msg->to,
                                   static_cast<int64_t>(frame.size()),
                                   telemetry::trace_now_us());
    }
    {
      MutexLock lock(ep.mutex);
      if (closed_.load(std::memory_order_acquire)) break;
      ep.inbox.push_back(std::move(*msg));
    }
    ep.cv.notify_one();
  }
  ::close(fd);
}

int TcpTransport::connect_to(Endpoint::Conn& conn, int dst) {
  if (conn.fd >= 0) return conn.fd;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FASTPR_CHECK_MSG(fd >= 0, "socket() failed");
  int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoints_[static_cast<size_t>(dst)]->port);
  // Blocking loopback connect under this destination's write_mutex: the
  // lazy connect is part of the first frame write, and only senders to
  // this same destination wait on it.
  // fastpr-lint: allow(lock-held-blocking)
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    // The listen socket vanishes when shutdown() races us; that is an
    // orderly refusal, not a protocol error.
    FASTPR_CHECK_MSG(closed_.load(std::memory_order_acquire),
                     "connect() to node " << dst << " failed");
    return -1;
  }
  conn.fd = fd;
  return fd;
}

void TcpTransport::send(Message msg) {
  FASTPR_CHECK(msg.from >= 0 &&
               msg.from < static_cast<int>(endpoints_.size()));
  FASTPR_CHECK(msg.to >= 0 && msg.to < static_cast<int>(endpoints_.size()));
  auto& ep = *endpoints_[static_cast<size_t>(msg.from)];

  const auto frame = serialize_pooled(msg);
  const bool shaped = options_.shape_control_messages ||
                      is_data_packet(msg.type);
  if (shaped) {
    int64_t tx_bytes = static_cast<int64_t>(frame.size());
    if (msg.type == MessageType::kChainPacket &&
        options_.chain_hop_overhead_seconds > 0) {
      // Chain-hop store-and-forward cost, mirroring InprocTransport.
      tx_bytes += static_cast<int64_t>(
          options_.chain_hop_overhead_seconds * ep.tx->rate());
    }
    ep.tx->acquire(tx_bytes);
  }
  if (options_.flow_monitor != nullptr && is_data_packet(msg.type)) {
    options_.flow_monitor->on_tx(msg.from, msg.to,
                                 static_cast<int64_t>(frame.size()),
                                 telemetry::trace_now_us());
  }

  static telemetry::Counter& tx_frames =
      telemetry::MetricsRegistry::global().counter("tcp.frames_tx");
  static telemetry::Counter& tx_bytes =
      telemetry::MetricsRegistry::global().counter("tcp.bytes_tx");
  tx_frames.add();
  tx_bytes.add(static_cast<int64_t>(frame.size()));

  FASTPR_TRACE_SPAN("tcp.send_frame", "tcp",
                    static_cast<int64_t>(frame.size()), "bytes");
  // Map lookup only under conn_mutex; the blocking connect/write below
  // happens under the per-connection write_mutex so a slow destination
  // cannot head-of-line block frames bound elsewhere.
  std::shared_ptr<Endpoint::Conn> conn;
  {
    MutexLock lock(ep.conn_mutex);
    if (closed_.load(std::memory_order_acquire)) return;
    auto& slot = ep.conns[msg.to];
    if (!slot) slot = std::make_shared<Endpoint::Conn>();
    conn = slot;
  }

  MutexLock write_lock(conn->write_mutex);
  if (closed_.load(std::memory_order_acquire)) return;
  const int fd = connect_to(*conn, msg.to);
  if (fd < 0) return;  // shutdown() raced the lazy connect
  const uint32_t frame_len = static_cast<uint32_t>(frame.size());
  // Held across the socket write on purpose: write_mutex is what keeps
  // a frame atomic against concurrent senders to the same destination.
  // fastpr-lint: allow(lock-held-blocking)
  if (!write_all(fd, reinterpret_cast<const uint8_t*>(&frame_len),
                 sizeof(frame_len)) ||
      !write_all(fd, frame.data(), frame.size())) {
    ::close(fd);
    conn->fd = -1;
    // A write torn by shutdown() closing the socket is orderly; any
    // other failure is a broken peer and must surface.
    FASTPR_CHECK_MSG(closed_.load(std::memory_order_acquire),
                     "tcp send to node " << msg.to << " failed");
  }
}

std::optional<Message> TcpTransport::recv(
    cluster::NodeId node, std::optional<std::chrono::milliseconds> timeout) {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(endpoints_.size()));
  auto& ep = *endpoints_[static_cast<size_t>(node)];
  MutexLock lock(ep.mutex);
  const auto ready = [&]() FASTPR_REQUIRES(ep.mutex) {
    return closed_.load(std::memory_order_acquire) || !ep.inbox.empty();
  };
  if (timeout.has_value()) {
    if (!ep.cv.wait_for(ep.mutex, *timeout, ready)) return std::nullopt;
  } else {
    ep.cv.wait(ep.mutex, ready);
  }
  if (ep.inbox.empty()) return std::nullopt;  // closed
  Message msg = std::move(ep.inbox.front());
  ep.inbox.pop_front();
  return msg;
}

void TcpTransport::shutdown() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& ep : endpoints_) {
    {
      // Acquire the inbox lock so a racing recv() observes closed_
      // before it starts an indefinite wait.
      MutexLock lock(ep->mutex);
    }
    ep->cv.notify_all();
    // Unlimit buckets so senders blocked on tokens drain out.
    ep->tx->set_rate(0);
    ep->rx->set_rate(0);
    ::shutdown(ep->listen_fd, SHUT_RDWR);
    ::close(ep->listen_fd);
    {
      MutexLock lock(ep->conn_mutex);
      for (auto& [dst, conn] : ep->conns) {
        (void)dst;
        // Waits for any in-flight frame on this connection, then tears
        // the socket so readers on the far side unblock.
        MutexLock write_lock(conn->write_mutex);
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (auto& ep : endpoints_) {
    if (ep->accept_thread.joinable()) ep->accept_thread.join();
    // Swap the registry out under the lock, join outside it: a join is
    // unbounded and nothing should wait on reader_mutex behind it (the
    // accept thread that appends here is already joined above).
    std::vector<std::thread> readers;
    {
      MutexLock lock(ep->reader_mutex);
      readers.swap(ep->reader_threads);
    }
    for (auto& t : readers) {
      if (t.joinable()) t.join();
    }
    MutexLock conn_lock(ep->conn_mutex);
    for (auto& [dst, conn] : ep->conns) {
      (void)dst;
      MutexLock write_lock(conn->write_mutex);
      if (conn->fd >= 0) ::close(conn->fd);
      conn->fd = -1;
    }
    ep->conns.clear();
  }
}

}  // namespace fastpr::net
