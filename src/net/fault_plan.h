// Scripted fault schedules for chaos testing (DESIGN.md §7).
//
// A FaultPlan is a declarative, seeded description of everything that
// goes wrong during one repair execution: node crashes triggered by
// packet/byte send thresholds, disk read errors on specific chunks, and
// probabilistic message-level faults (drop / duplicate / delay). The
// plan is data, not code — it parses from a small text format so chaos
// runs reproduce from the CLI (`fastpr_cli execute <spec> --fault-plan
// <file>`) exactly as they do in the test suite. FaultyTransport interprets the
// crash and flaky entries; the testbed applies the read errors to the
// per-node chunk stores when the STF node is flagged.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cluster/types.h"

namespace fastpr::net {

/// Placeholder node id in a plan written before the STF node is known;
/// Testbed::flag_stf resolves it to the flagged node.
constexpr cluster::NodeId kStfSentinel = -2;
/// Wildcard node id: the fault applies to traffic of every node.
constexpr cluster::NodeId kAnyNode = -3;

struct FaultPlan {
  /// Seeds the flaky-fault Rng so drop/dup/delay decisions reproduce.
  uint64_t seed = 1;

  /// Node crash at a send threshold: once the node has sent
  /// `after_packets` data packets (or `after_bytes` payload bytes,
  /// whichever crosses first), it goes silent — every later message to
  /// or from it is swallowed by the transport. Both thresholds 0 means
  /// the node is dead from the start.
  struct Crash {
    cluster::NodeId node = cluster::kNoNode;
    uint64_t after_packets = 0;
    uint64_t after_bytes = 0;
  };

  /// Latent sector error: reads of the chunks fail, the node itself
  /// stays up. stripe == kAllStripes hits every chunk the node holds.
  struct ReadError {
    static constexpr int kAllStripes = -1;
    cluster::NodeId node = cluster::kNoNode;
    int stripe = kAllStripes;
  };

  /// Probabilistic message faults on traffic sent by `node` (kAnyNode =
  /// everyone). Each kind has its own event budget so liveness stays
  /// provable: a bounded number of drops cannot outlast bounded retries.
  struct Flaky {
    cluster::NodeId node = kAnyNode;
    double drop_prob = 0;
    double dup_prob = 0;
    double delay_prob = 0;
    std::chrono::milliseconds delay{0};
    /// Restrict faults to data packets (default): control traffic
    /// (commands, acks, probes) stays reliable, as over TCP.
    bool data_only = true;
    uint64_t max_drops = std::numeric_limits<uint64_t>::max();
    uint64_t max_dups = std::numeric_limits<uint64_t>::max();
    uint64_t max_delays = std::numeric_limits<uint64_t>::max();
  };

  /// Bandwidth degradation (not a crash): once `node` has sent
  /// `after_bytes` data-payload bytes, every later data packet it sends
  /// takes `factor`× its nominal transmit time — FaultyTransport injects
  /// the extra (factor − 1) share as a real sleep. Deliberately NOT
  /// credited to the flow monitor as injected delay: a slowing node
  /// SHOULD read as slow, it is exactly what the adaptive repair
  /// throttler reacts to.
  struct Slow {
    cluster::NodeId node = cluster::kNoNode;
    double factor = 1.0;  // > 1
    uint64_t after_bytes = 0;
  };

  std::vector<Crash> crashes;
  std::vector<ReadError> read_errors;
  std::vector<Flaky> flaky;
  std::vector<Slow> slow;

  bool empty() const {
    return crashes.empty() && read_errors.empty() && flaky.empty() &&
           slow.empty();
  }

  /// Rewrites every kStfSentinel node id to `stf`.
  void resolve_stf(cluster::NodeId stf);

  /// Parses the line-oriented text format; throws CheckFailure with the
  /// offending line on malformed input. Format (one directive per line,
  /// `#` comments, node values: integer | `stf` | `any`):
  ///
  ///   seed 7
  ///   crash node=3 after_packets=10
  ///   crash node=stf after_bytes=65536
  ///   read_error node=stf               # every chunk on the node
  ///   read_error node=4 stripe=7
  ///   flaky node=any drop=0.01 max_drops=4 dup=0.05 delay=0.05 delay_ms=2
  ///   slow node=5 factor=4              # 4x slower sends, immediately
  ///   slow node=stf factor=2 after_bytes=1048576
  static FaultPlan parse(const std::string& text);

  /// Inverse of parse (modulo comments); round-trips exactly.
  std::string to_string() const;
};

}  // namespace fastpr::net
