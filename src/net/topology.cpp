#include "net/topology.h"

#include <sstream>

#include "util/check.h"

namespace fastpr::net {

double Oversub(double factor) {
  FASTPR_CHECK_MSG(factor >= 1.0,
                   "oversubscription factor must be >= 1, got " << factor);
  return factor;
}

Topology::Topology(int racks, int nodes_per_rack, double oversubscription)
    : racks_(racks),
      nodes_per_rack_(nodes_per_rack),
      oversubscription_(Oversub(oversubscription)) {
  FASTPR_CHECK(racks >= 1);
  FASTPR_CHECK(nodes_per_rack >= 1);
}

Topology Topology::flat(int num_nodes) {
  FASTPR_CHECK(num_nodes >= 1);
  return Topology(1, num_nodes, Oversub(1.0));
}

Topology Topology::parse(const std::string& spec,
                         double oversubscription) {
  const size_t x = spec.find('x');
  FASTPR_CHECK_MSG(x != std::string::npos && x > 0 && x + 1 < spec.size(),
                   "topology spec must be <racks>x<nodes>, got '" << spec
                                                                  << "'");
  const auto parse_int = [&](const std::string& part) {
    FASTPR_CHECK_MSG(!part.empty() &&
                         part.find_first_not_of("0123456789") ==
                             std::string::npos,
                     "bad topology spec component '" << part << "' in '"
                                                     << spec << "'");
    return std::stoi(part);
  };
  const int racks = parse_int(spec.substr(0, x));
  const int nodes = parse_int(spec.substr(x + 1));
  FASTPR_CHECK_MSG(racks >= 1 && nodes >= 1,
                   "topology spec '" << spec << "' needs positive counts");
  return Topology(racks, nodes, oversubscription);
}

int Topology::rack_of(cluster::NodeId node) const {
  FASTPR_CHECK(node >= 0);
  return static_cast<int>(node) / nodes_per_rack_;
}

std::string Topology::to_string() const {
  std::ostringstream os;
  os << racks_ << "x" << nodes_per_rack_ << " oversub="
     << oversubscription_;
  return os.str();
}

}  // namespace fastpr::net
