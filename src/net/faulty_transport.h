// Fault-injecting Transport decorator (DESIGN.md §7).
//
// Wraps any Transport and interprets a FaultPlan on the send path:
//  * crash  — once a node crosses its send threshold (data packets or
//    payload bytes), it "dies": every subsequent message from OR to it
//    is swallowed, so the node goes silent and unreachable at once —
//    exactly how a crashed DataNode looks to the coordinator's probes.
//  * flaky  — matching messages are dropped, duplicated or delayed with
//    seeded probabilities, each under its own event budget.
//  * slow   — once a node crosses its byte threshold, every later data
//    packet it sends takes factor× the nominal transmit time; the extra
//    (factor − 1) share is injected as a real sleep. Unlike flaky
//    delays, slow time is NOT excluded from the flow monitor: a slowing
//    node should read as slow — that is exactly the signal the adaptive
//    repair throttler reacts to.
//
// kShutdown is never faulted: agents stop themselves by sending a
// shutdown message through the transport, and eating it would hang
// teardown rather than simulate any real failure.
//
// The receive path is untouched — faults happen on the wire, and what
// was already delivered stays delivered.
#pragma once

#include <unordered_map>

#include "net/fault_plan.h"
#include "net/transport.h"
#include "telemetry/flow_monitor.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace fastpr::net {

class FaultyTransport final : public Transport {
 public:
  /// `inner` must outlive this decorator. Plans may still contain
  /// kStfSentinel entries; they stay dormant until resolve_stf().
  FaultyTransport(Transport& inner, const FaultPlan& plan);

  void send(Message msg) override;
  std::optional<Message> recv(
      cluster::NodeId node,
      std::optional<std::chrono::milliseconds> timeout =
          std::nullopt) override;
  void shutdown() override;

  /// Rewrites kStfSentinel entries to `stf` and arms them (a sentinel
  /// crash with zero thresholds kills the node the moment it is known).
  void resolve_stf(cluster::NodeId stf);

  /// Manual crash trigger (tests): the node goes silent immediately.
  void crash(cluster::NodeId node);

  bool crashed(cluster::NodeId node) const;

  /// Charges kDelay injections to this monitor so chaos delays are
  /// excluded from the link's measured rate — a delayed link must not
  /// read as a straggler. Usually the same monitor the inner transport
  /// reports into. Not owned; must outlive this decorator.
  void set_flow_monitor(telemetry::FlowMonitor* monitor) {
    flow_monitor_ = monitor;
  }

  /// Nominal per-node send rate (bytes/sec) used to size `slow`-verb
  /// delays: a packet of B bytes from a node slowed by factor f sleeps
  /// an extra B·(f−1)/rate seconds. The testbed wires its shaped NIC
  /// rate here; defaults to 1 Gbps when nothing is configured.
  void set_slow_base_rate(double bytes_per_sec);

 private:
  /// What to do with one message, decided under the lock, acted on
  /// outside it (inner_.send may block on NIC shaping).
  enum class Action { kForward, kDrop, kDuplicate, kDelay };

  struct CrashState {
    bool dead = false;
    bool has_packet_limit = false;
    bool has_byte_limit = false;
    uint64_t packets_left = 0;
    uint64_t bytes_left = 0;
  };

  struct FlakyState {
    FaultPlan::Flaky rule;
    uint64_t drops_left = 0;
    uint64_t dups_left = 0;
    uint64_t delays_left = 0;
  };

  struct SlowState {
    double factor = 1.0;
    uint64_t bytes_until_armed = 0;  // 0 = slow from the first packet
  };

  void arm_crash(const FaultPlan::Crash& c) FASTPR_REQUIRES(mutex_);
  /// Extra transmit time for this data packet under the slow verb, or
  /// zero. Decided (and the arming byte count ticked) under the lock.
  std::chrono::nanoseconds slow_penalty(const Message& msg)
      FASTPR_REQUIRES(mutex_);
  Action decide(const Message& msg, std::chrono::milliseconds* delay,
                std::chrono::nanoseconds* slow) FASTPR_EXCLUDES(mutex_);

  Transport& inner_;
  FaultPlan plan_;  // unresolved sentinel entries live here until armed
  telemetry::FlowMonitor* flow_monitor_ = nullptr;

  mutable Mutex mutex_{lock_order::kNetFault};
  Rng rng_ FASTPR_GUARDED_BY(mutex_);
  std::unordered_map<cluster::NodeId, CrashState> crashes_
      FASTPR_GUARDED_BY(mutex_);
  std::vector<FlakyState> flaky_ FASTPR_GUARDED_BY(mutex_);
  std::unordered_map<cluster::NodeId, SlowState> slow_
      FASTPR_GUARDED_BY(mutex_);
  double slow_base_rate_ FASTPR_GUARDED_BY(mutex_);
};

}  // namespace fastpr::net
