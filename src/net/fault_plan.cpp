#include "net/fault_plan.h"

#include <sstream>

#include "util/check.h"

namespace fastpr::net {

namespace {

cluster::NodeId parse_node(const std::string& value) {
  if (value == "stf") return kStfSentinel;
  if (value == "any") return kAnyNode;
  size_t used = 0;
  int node = -1;
  try {
    node = std::stoi(value, &used);
  } catch (const std::exception&) {
    used = 0;  // non-numeric / out of range: rejected below
  }
  FASTPR_CHECK_MSG(used == value.size() && node >= 0,
                   "bad node value '" << value << "' in fault plan");
  return node;
}

std::string node_to_string(cluster::NodeId node) {
  if (node == kStfSentinel) return "stf";
  if (node == kAnyNode) return "any";
  return std::to_string(node);
}

uint64_t parse_u64(const std::string& value) {
  size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  FASTPR_CHECK_MSG(used == value.size() && !value.empty(),
                   "bad integer '" << value << "' in fault plan");
  return static_cast<uint64_t>(v);
}

double parse_prob(const std::string& value) {
  size_t used = 0;
  double p = -1;
  try {
    p = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  FASTPR_CHECK_MSG(used == value.size() && !value.empty() && p >= 0.0 &&
                       p <= 1.0,
                   "bad probability '" << value << "' in fault plan");
  return p;
}

/// Splits "key=value"; throws if there is no '='.
std::pair<std::string, std::string> split_kv(const std::string& token) {
  const size_t eq = token.find('=');
  FASTPR_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "expected key=value, got '" << token
                                               << "' in fault plan");
  return {token.substr(0, eq), token.substr(eq + 1)};
}

}  // namespace

void FaultPlan::resolve_stf(cluster::NodeId stf) {
  for (auto& c : crashes) {
    if (c.node == kStfSentinel) c.node = stf;
  }
  for (auto& r : read_errors) {
    if (r.node == kStfSentinel) r.node = stf;
  }
  for (auto& f : flaky) {
    if (f.node == kStfSentinel) f.node = stf;
  }
  for (auto& s : slow) {
    if (s.node == kStfSentinel) s.node = stf;
  }
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank / comment-only line

    if (directive == "seed") {
      std::string value;
      FASTPR_CHECK_MSG(tokens >> value,
                       "fault plan line " << lineno << ": seed needs a value");
      plan.seed = parse_u64(value);
    } else if (directive == "crash") {
      Crash crash;
      bool have_node = false;
      std::string token;
      while (tokens >> token) {
        const auto [key, value] = split_kv(token);
        if (key == "node") {
          crash.node = parse_node(value);
          have_node = true;
        } else if (key == "after_packets") {
          crash.after_packets = parse_u64(value);
        } else if (key == "after_bytes") {
          crash.after_bytes = parse_u64(value);
        } else {
          FASTPR_CHECK_MSG(false, "fault plan line "
                                      << lineno << ": unknown crash key '"
                                      << key << "'");
        }
      }
      FASTPR_CHECK_MSG(have_node && crash.node != kAnyNode,
                       "fault plan line " << lineno
                                          << ": crash needs node=<id|stf>");
      plan.crashes.push_back(crash);
    } else if (directive == "read_error") {
      ReadError err;
      bool have_node = false;
      std::string token;
      while (tokens >> token) {
        const auto [key, value] = split_kv(token);
        if (key == "node") {
          err.node = parse_node(value);
          have_node = true;
        } else if (key == "stripe") {
          err.stripe = static_cast<int>(parse_u64(value));
        } else {
          FASTPR_CHECK_MSG(false, "fault plan line "
                                      << lineno
                                      << ": unknown read_error key '" << key
                                      << "'");
        }
      }
      FASTPR_CHECK_MSG(have_node && err.node != kAnyNode,
                       "fault plan line "
                           << lineno << ": read_error needs node=<id|stf>");
      plan.read_errors.push_back(err);
    } else if (directive == "flaky") {
      Flaky flaky;
      std::string token;
      while (tokens >> token) {
        const auto [key, value] = split_kv(token);
        if (key == "node") {
          flaky.node = parse_node(value);
        } else if (key == "drop") {
          flaky.drop_prob = parse_prob(value);
        } else if (key == "dup") {
          flaky.dup_prob = parse_prob(value);
        } else if (key == "delay") {
          flaky.delay_prob = parse_prob(value);
        } else if (key == "delay_ms") {
          flaky.delay = std::chrono::milliseconds(parse_u64(value));
        } else if (key == "data_only") {
          flaky.data_only = parse_u64(value) != 0;
        } else if (key == "max_drops") {
          flaky.max_drops = parse_u64(value);
        } else if (key == "max_dups") {
          flaky.max_dups = parse_u64(value);
        } else if (key == "max_delays") {
          flaky.max_delays = parse_u64(value);
        } else {
          FASTPR_CHECK_MSG(false, "fault plan line "
                                      << lineno << ": unknown flaky key '"
                                      << key << "'");
        }
      }
      plan.flaky.push_back(flaky);
    } else if (directive == "slow") {
      Slow slow;
      bool have_node = false;
      bool have_factor = false;
      std::string token;
      while (tokens >> token) {
        const auto [key, value] = split_kv(token);
        if (key == "node") {
          slow.node = parse_node(value);
          have_node = true;
        } else if (key == "factor") {
          size_t used = 0;
          double f = 0;
          try {
            f = std::stod(value, &used);
          } catch (const std::exception&) {
            used = 0;
          }
          FASTPR_CHECK_MSG(used == value.size() && f > 1.0,
                           "fault plan line "
                               << lineno << ": slow factor must be > 1, got '"
                               << value << "'");
          slow.factor = f;
          have_factor = true;
        } else if (key == "after_bytes") {
          slow.after_bytes = parse_u64(value);
        } else {
          FASTPR_CHECK_MSG(false, "fault plan line "
                                      << lineno << ": unknown slow key '"
                                      << key << "'");
        }
      }
      FASTPR_CHECK_MSG(have_node && slow.node != kAnyNode,
                       "fault plan line " << lineno
                                          << ": slow needs node=<id|stf>");
      FASTPR_CHECK_MSG(have_factor,
                       "fault plan line " << lineno
                                          << ": slow needs factor=<f>");
      plan.slow.push_back(slow);
    } else {
      FASTPR_CHECK_MSG(false, "fault plan line " << lineno
                                                 << ": unknown directive '"
                                                 << directive << "'");
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  constexpr uint64_t kUnlimited = std::numeric_limits<uint64_t>::max();
  std::ostringstream os;
  os << "seed " << seed << "\n";
  for (const auto& c : crashes) {
    os << "crash node=" << node_to_string(c.node);
    if (c.after_packets != 0) os << " after_packets=" << c.after_packets;
    if (c.after_bytes != 0) os << " after_bytes=" << c.after_bytes;
    os << "\n";
  }
  for (const auto& r : read_errors) {
    os << "read_error node=" << node_to_string(r.node);
    if (r.stripe != ReadError::kAllStripes) os << " stripe=" << r.stripe;
    os << "\n";
  }
  for (const auto& f : flaky) {
    os << "flaky node=" << node_to_string(f.node);
    if (f.drop_prob > 0) os << " drop=" << f.drop_prob;
    if (f.dup_prob > 0) os << " dup=" << f.dup_prob;
    if (f.delay_prob > 0) os << " delay=" << f.delay_prob;
    if (f.delay.count() > 0) os << " delay_ms=" << f.delay.count();
    if (!f.data_only) os << " data_only=0";
    if (f.max_drops != kUnlimited) os << " max_drops=" << f.max_drops;
    if (f.max_dups != kUnlimited) os << " max_dups=" << f.max_dups;
    if (f.max_delays != kUnlimited) os << " max_delays=" << f.max_delays;
    os << "\n";
  }
  for (const auto& s : slow) {
    os << "slow node=" << node_to_string(s.node) << " factor=" << s.factor;
    if (s.after_bytes != 0) os << " after_bytes=" << s.after_bytes;
    os << "\n";
  }
  return os.str();
}

}  // namespace fastpr::net
