#include "net/faulty_transport.h"

#include <thread>

#include "telemetry/metrics.h"
#include "util/units.h"

namespace fastpr::net {

using cluster::NodeId;

namespace {

telemetry::Counter& fault_counter(const char* name) {
  return telemetry::MetricsRegistry::global().counter(name);
}

}  // namespace

FaultyTransport::FaultyTransport(Transport& inner, const FaultPlan& plan)
    : inner_(inner), plan_(plan), rng_(plan.seed) {
  MutexLock lock(mutex_);
  slow_base_rate_ = Gbps(1);
  for (const auto& c : plan_.crashes) {
    if (c.node != kStfSentinel) arm_crash(c);
  }
  for (const auto& f : plan_.flaky) {
    if (f.node == kStfSentinel) continue;
    FlakyState state;
    state.rule = f;
    state.drops_left = f.max_drops;
    state.dups_left = f.max_dups;
    state.delays_left = f.max_delays;
    flaky_.push_back(state);
  }
  for (const auto& s : plan_.slow) {
    if (s.node == kStfSentinel) continue;
    slow_[s.node] = SlowState{s.factor, s.after_bytes};
  }
}

void FaultyTransport::arm_crash(const FaultPlan::Crash& c) {
  CrashState& state = crashes_[c.node];
  state.has_packet_limit = c.after_packets > 0;
  state.has_byte_limit = c.after_bytes > 0;
  state.packets_left = c.after_packets;
  state.bytes_left = c.after_bytes;
  if (!state.has_packet_limit && !state.has_byte_limit) {
    state.dead = true;  // dead from the start
    fault_counter("net.fault.crashes").add();
  }
}

void FaultyTransport::resolve_stf(NodeId stf) {
  plan_.resolve_stf(stf);
  MutexLock lock(mutex_);
  for (const auto& c : plan_.crashes) {
    if (c.node == stf && crashes_.count(stf) == 0) arm_crash(c);
  }
  for (const auto& f : plan_.flaky) {
    if (f.node != stf) continue;
    bool armed = false;
    for (const auto& existing : flaky_) {
      if (existing.rule.node == stf) armed = true;
    }
    if (armed) continue;
    FlakyState state;
    state.rule = f;
    state.drops_left = f.max_drops;
    state.dups_left = f.max_dups;
    state.delays_left = f.max_delays;
    flaky_.push_back(state);
  }
  for (const auto& s : plan_.slow) {
    if (s.node != stf || slow_.count(stf) != 0) continue;
    slow_[stf] = SlowState{s.factor, s.after_bytes};
  }
}

void FaultyTransport::set_slow_base_rate(double bytes_per_sec) {
  MutexLock lock(mutex_);
  if (bytes_per_sec > 0) slow_base_rate_ = bytes_per_sec;
}

void FaultyTransport::crash(NodeId node) {
  MutexLock lock(mutex_);
  CrashState& state = crashes_[node];
  if (!state.dead) {
    state.dead = true;
    fault_counter("net.fault.crashes").add();
  }
}

bool FaultyTransport::crashed(NodeId node) const {
  MutexLock lock(mutex_);
  const auto it = crashes_.find(node);
  return it != crashes_.end() && it->second.dead;
}

std::chrono::nanoseconds FaultyTransport::slow_penalty(const Message& msg) {
  if (!is_data_packet(msg.type)) return std::chrono::nanoseconds{0};
  const auto it = slow_.find(msg.from);
  if (it == slow_.end()) return std::chrono::nanoseconds{0};
  SlowState& state = it->second;
  const uint64_t bytes = msg.payload.size();
  if (state.bytes_until_armed > 0) {
    // The threshold packet itself still goes out at full speed — the
    // node degrades after `after_bytes`, mirroring crash semantics.
    state.bytes_until_armed -= std::min(state.bytes_until_armed, bytes);
    return std::chrono::nanoseconds{0};
  }
  fault_counter("net.fault.slowed").add();
  const double extra_s =
      static_cast<double>(bytes) * (state.factor - 1.0) / slow_base_rate_;
  return std::chrono::nanoseconds{static_cast<int64_t>(extra_s * 1e9)};
}

FaultyTransport::Action FaultyTransport::decide(
    const Message& msg, std::chrono::milliseconds* delay,
    std::chrono::nanoseconds* slow) {
  MutexLock lock(mutex_);

  // Crashed endpoints: a dead sender emits nothing, a dead receiver
  // absorbs nothing — either way the message vanishes on the wire.
  {
    const auto from = crashes_.find(msg.from);
    const auto to = crashes_.find(msg.to);
    if ((from != crashes_.end() && from->second.dead) ||
        (to != crashes_.end() && to->second.dead)) {
      fault_counter("net.fault.suppressed").add();
      return Action::kDrop;
    }
  }

  // Send-threshold crashes tick on data packets only (commands and acks
  // are negligible traffic; the thresholds model "died N chunks in").
  // Chain forwards count too — a mid-chain hop dies mid-stream.
  if (is_data_packet(msg.type)) {
    const auto it = crashes_.find(msg.from);
    if (it != crashes_.end()) {
      CrashState& state = it->second;
      const uint64_t bytes = msg.payload.size();
      const bool packet_exhausted =
          state.has_packet_limit && state.packets_left == 0;
      const bool byte_exhausted =
          state.has_byte_limit && state.bytes_left < bytes;
      if (packet_exhausted || byte_exhausted) {
        state.dead = true;
        fault_counter("net.fault.crashes").add();
        return Action::kDrop;
      }
      if (state.has_packet_limit) --state.packets_left;
      if (state.has_byte_limit) state.bytes_left -= bytes;
    }
  }

  // Slow ticks after the crash checks (a dead node sends nothing) but
  // before flaky: a flaky-dropped packet still left the slow NIC.
  *slow = slow_penalty(msg);

  for (auto& f : flaky_) {
    if (f.rule.node != kAnyNode && f.rule.node != msg.from) continue;
    if (f.rule.data_only && !is_data_packet(msg.type)) continue;
    if (f.drops_left > 0 && rng_.chance(f.rule.drop_prob)) {
      --f.drops_left;
      fault_counter("net.fault.dropped").add();
      return Action::kDrop;
    }
    if (f.dups_left > 0 && rng_.chance(f.rule.dup_prob)) {
      --f.dups_left;
      fault_counter("net.fault.duplicated").add();
      return Action::kDuplicate;
    }
    if (f.delays_left > 0 && rng_.chance(f.rule.delay_prob)) {
      --f.delays_left;
      fault_counter("net.fault.delayed").add();
      *delay = f.rule.delay;
      return Action::kDelay;
    }
  }
  return Action::kForward;
}

void FaultyTransport::send(Message msg) {
  // Shutdown is the teardown handshake, not cluster weather — faulting
  // it would hang agents without simulating anything real.
  if (msg.type == MessageType::kShutdown) {
    inner_.send(std::move(msg));
    return;
  }

  std::chrono::milliseconds delay{0};
  std::chrono::nanoseconds slow{0};
  const Action action = decide(msg, &delay, &slow);
  // The slow verb stretches transmit time on the wire; unlike flaky
  // delays it is NOT reported as injected — the link must read slow.
  if (action != Action::kDrop && slow.count() > 0) {
    std::this_thread::sleep_for(slow);
  }
  switch (action) {
    case Action::kDrop:
      return;  // payload buffer recycles via ~Message
    case Action::kDuplicate:
      inner_.send(msg.clone());
      inner_.send(std::move(msg));
      return;
    case Action::kDelay:
      // Charge the injected latency to the flow monitor BEFORE the
      // sleep shifts this link's rx timestamps: the monitor subtracts
      // it from the window's active time, so a chaos delay does not
      // masquerade as a slow link (phantom straggler).
      if (flow_monitor_ != nullptr && is_data_packet(msg.type)) {
        flow_monitor_->on_injected_delay(
            msg.from, msg.to,
            std::chrono::duration_cast<std::chrono::microseconds>(delay)
                .count());
      }
      std::this_thread::sleep_for(delay);
      inner_.send(std::move(msg));
      return;
    case Action::kForward:
      inner_.send(std::move(msg));
      return;
  }
}

std::optional<Message> FaultyTransport::recv(
    NodeId node, std::optional<std::chrono::milliseconds> timeout) {
  return inner_.recv(node, timeout);
}

void FaultyTransport::shutdown() { inner_.shutdown(); }

}  // namespace fastpr::net
