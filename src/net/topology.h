// Hierarchical network topology (DESIGN.md §11): node → rack → spine.
//
// The cluster's nodes are partitioned into racks of equal size by a
// block mapping — rack_of(node) = node / nodes_per_rack — so a rack is
// a contiguous id range and the mapping needs no per-node table. Node
// ids beyond racks() * nodes_per_rack() (hot-standby spares and the
// coordinator in the testbed's id scheme) map through the same formula
// into overflow racks of their own: spares typically sit in a dedicated
// rack, and the coordinator's control traffic is negligible either way.
//
// Bandwidth semantics: links inside one rack run at the full NIC rate
// bn. All traffic between racks funnels through the rack's uplink into
// the spine, whose capacity is the rack's aggregate NIC rate divided by
// the oversubscription factor f — nodes_per_rack · bn / f. f = 1 is a
// full-bisection (rearrangeably non-blocking) fabric; production
// fabrics commonly run f in 2..8. The cost model charges cross-rack
// transfer terms f× (saturated-uplink worst case); the simulator
// accounts the shared uplink/downlink per rack from the actual plan.
#pragma once

#include <string>

#include "cluster/types.h"

namespace fastpr::net {

/// Names a cross-rack oversubscription ratio at a configuration
/// boundary (units.h style: raw magnitudes never flow straight into
/// config fields — the fastpr_lint `oversub` rule enforces it). Also
/// validates the ratio: f < 1 would mean the spine is faster than the
/// racks it aggregates, which no parameter here can represent.
double Oversub(double factor);

class Topology {
 public:
  /// `racks` racks of `nodes_per_rack` nodes each; `oversubscription`
  /// from Oversub(). A single rack is the flat network regardless of f
  /// (no traffic ever crosses the spine).
  Topology(int racks, int nodes_per_rack, double oversubscription);

  /// The flat (paper) network: every node in one rack, f = 1.
  static Topology flat(int num_nodes);

  /// Parses a "<racks>x<nodes>" spec, e.g. "4x6" = 4 racks of 6 nodes.
  /// Throws CheckFailure on malformed input.
  static Topology parse(const std::string& spec, double oversubscription);

  int racks() const { return racks_; }
  int nodes_per_rack() const { return nodes_per_rack_; }
  double oversubscription() const { return oversubscription_; }
  /// Storage capacity of the described racks (ids beyond it still map
  /// via rack_of into overflow racks).
  int num_nodes() const { return racks_ * nodes_per_rack_; }

  /// Block mapping; never fails for node >= 0 (overflow racks).
  int rack_of(cluster::NodeId node) const;
  bool same_rack(cluster::NodeId a, cluster::NodeId b) const {
    return rack_of(a) == rack_of(b);
  }

  /// True when no plan-visible rack structure exists: one rack, where
  /// cross-rack terms cannot arise. Rack-aware planning no-ops here so
  /// single-rack topologies stay bit-identical to the flat planner.
  bool is_flat() const { return racks_ <= 1; }

  /// Multiplier on the network time of one transfer that crosses racks,
  /// under the saturated-uplink worst case the closed forms assume.
  double cross_rack_penalty() const { return oversubscription_; }

  /// Shared spine capacity of one rack's uplink (and downlink),
  /// bytes/sec, given the per-node NIC rate.
  double rack_link_capacity(double net_bytes_per_sec) const {
    return static_cast<double>(nodes_per_rack_) * net_bytes_per_sec /
           oversubscription_;
  }

  std::string to_string() const;

 private:
  int racks_;
  int nodes_per_rack_;
  double oversubscription_;
};

}  // namespace fastpr::net
