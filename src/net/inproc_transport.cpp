#include "net/inproc_transport.h"

#include "telemetry/trace.h"
#include "util/check.h"

namespace fastpr::net {

InprocTransport::InprocTransport(int num_nodes, const Options& options)
    : options_(options) {
  FASTPR_CHECK(num_nodes >= 1);
  endpoints_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    auto ep = std::make_unique<Endpoint>();
    ep->tx = std::make_unique<TokenBucket>(options.net_bytes_per_sec,
                                           options.burst_bytes);
    ep->rx = std::make_unique<TokenBucket>(options.net_bytes_per_sec,
                                           options.burst_bytes);
    endpoints_.push_back(std::move(ep));
  }
}

void InprocTransport::send(Message msg) {
  FASTPR_CHECK(msg.from >= 0 &&
               msg.from < static_cast<int>(endpoints_.size()));
  FASTPR_CHECK(msg.to >= 0 && msg.to < static_cast<int>(endpoints_.size()));

  if (is_data_packet(msg.type)) {
    const auto bytes = static_cast<int64_t>(msg.encoded_size());
    endpoints_[static_cast<size_t>(msg.from)]->data_tx.fetch_add(
        bytes, std::memory_order_relaxed);
    endpoints_[static_cast<size_t>(msg.to)]->data_rx.fetch_add(
        bytes, std::memory_order_relaxed);
    if (options_.flow_monitor != nullptr) {
      options_.flow_monitor->on_tx(msg.from, msg.to, bytes,
                                   telemetry::trace_now_us());
    }
  }
  const bool shaped =
      options_.shape_control_messages || is_data_packet(msg.type);
  if (shaped) {
    auto& tx = *endpoints_[static_cast<size_t>(msg.from)]->tx;
    int64_t tx_bytes = static_cast<int64_t>(msg.encoded_size());
    if (msg.type == MessageType::kChainPacket &&
        options_.chain_hop_overhead_seconds > 0) {
      // Store-and-forward cost of the chain hop, as the byte-equivalent
      // of a fixed time at the hop's current uplink rate (0 when
      // unthrottled). This is the measured-side twin of
      // ModelParams.chain_hop_overhead_seconds.
      tx_bytes += static_cast<int64_t>(
          options_.chain_hop_overhead_seconds * tx.rate());
    }
    // Span duration ≈ time this packet waited on bandwidth shaping.
    FASTPR_TRACE_SPAN("inproc.shape", "net", tx_bytes, "bytes");
    // Sender's uplink first, then receiver's downlink: a saturated
    // receiver back-pressures all of its senders, which is exactly the
    // hot-standby bottleneck of Eq. (6).
    tx.acquire(tx_bytes);
    endpoints_[static_cast<size_t>(msg.to)]->rx->acquire(
        static_cast<int64_t>(msg.encoded_size()));
  }

  // Delivery timestamp AFTER shaping: the flow monitor's rx samples
  // measure the link's achieved rate, shaping included.
  if (options_.flow_monitor != nullptr && is_data_packet(msg.type)) {
    options_.flow_monitor->on_rx(msg.from, msg.to,
                                 static_cast<int64_t>(msg.encoded_size()),
                                 telemetry::trace_now_us());
  }

  auto& ep = *endpoints_[static_cast<size_t>(msg.to)];
  {
    MutexLock lock(ep.mutex);
    if (closed_.load(std::memory_order_acquire)) return;
    bytes_sent_.fetch_add(static_cast<int64_t>(msg.encoded_size()),
                          std::memory_order_relaxed);
    ep.inbox.push_back(std::move(msg));
  }
  ep.cv.notify_one();
}

std::optional<Message> InprocTransport::recv(
    cluster::NodeId node, std::optional<std::chrono::milliseconds> timeout) {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(endpoints_.size()));
  auto& ep = *endpoints_[static_cast<size_t>(node)];
  MutexLock lock(ep.mutex);
  const auto ready = [&]() FASTPR_REQUIRES(ep.mutex) {
    return closed_.load(std::memory_order_acquire) || !ep.inbox.empty();
  };
  if (timeout.has_value()) {
    if (!ep.cv.wait_for(ep.mutex, *timeout, ready)) return std::nullopt;
  } else {
    ep.cv.wait(ep.mutex, ready);
  }
  if (ep.inbox.empty()) return std::nullopt;  // closed
  Message msg = std::move(ep.inbox.front());
  ep.inbox.pop_front();
  return msg;
}

void InprocTransport::shutdown() {
  closed_.store(true, std::memory_order_release);
  for (auto& ep : endpoints_) {
    {
      // Acquire the lock so a racing recv() observes closed_ before it
      // starts an indefinite wait.
      MutexLock lock(ep->mutex);
    }
    ep->cv.notify_all();
    // Unlimit buckets so senders blocked on tokens drain out.
    ep->tx->set_rate(0);
    ep->rx->set_rate(0);
  }
}

void InprocTransport::set_node_bandwidth(cluster::NodeId node,
                                         double bytes_per_sec) {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(endpoints_.size()));
  endpoints_[static_cast<size_t>(node)]->tx->set_rate(bytes_per_sec);
  endpoints_[static_cast<size_t>(node)]->rx->set_rate(bytes_per_sec);
}

void InprocTransport::charge_tx(cluster::NodeId node, int64_t bytes) {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(endpoints_.size()));
  FASTPR_CHECK(bytes >= 0);
  endpoints_[static_cast<size_t>(node)]->tx->acquire(bytes);
}

void InprocTransport::charge_rx(cluster::NodeId node, int64_t bytes) {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(endpoints_.size()));
  FASTPR_CHECK(bytes >= 0);
  endpoints_[static_cast<size_t>(node)]->rx->acquire(bytes);
}

int64_t InprocTransport::total_bytes_sent() const {
  return bytes_sent_.load(std::memory_order_relaxed);
}

int64_t InprocTransport::data_bytes_tx(cluster::NodeId node) const {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(endpoints_.size()));
  return endpoints_[static_cast<size_t>(node)]->data_tx.load(
      std::memory_order_relaxed);
}

int64_t InprocTransport::data_bytes_rx(cluster::NodeId node) const {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(endpoints_.size()));
  return endpoints_[static_cast<size_t>(node)]->data_rx.load(
      std::memory_order_relaxed);
}

}  // namespace fastpr::net
