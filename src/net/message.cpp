#include "net/message.h"

#include <cstring>

namespace fastpr::net {

namespace {

/// Little-endian serializer cursor over a pre-sized buffer (callers size
/// it with encoded_size(), so no bounds tracking is needed here).
struct Writer {
  uint8_t* p;

  template <typename T>
  void put(T value) {
    std::memcpy(p, &value, sizeof(T));
    p += sizeof(T);
  }

  void put_bytes(const void* src, size_t len) {
    if (len != 0) std::memcpy(p, src, len);
    p += len;
  }
};

/// Cursor-based reader; all reads bounds-checked.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool read(T& value) {
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool read_bytes(PooledBuffer& out, size_t len) {
    if (pos_ + len > bytes_.size()) return false;
    out.assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool read_string(std::string& out, size_t len) {
    if (pos_ + len > bytes_.size()) return false;
    out.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

/// Per-enumerator wire validation. Deliberately a default-less switch:
/// -Wswitch (and the msgtype-exhaustive rule of tools/fastpr_analyze)
/// forces the deserializer to learn about every new MessageType instead
/// of silently accepting or rejecting it via a magic numeric range.
bool valid_message_type(uint8_t raw) {
  switch (static_cast<MessageType>(raw)) {
    case MessageType::kReconstructCmd:
    case MessageType::kMigrateCmd:
    case MessageType::kFetchRequest:
    case MessageType::kDataPacket:
    case MessageType::kTaskDone:
    case MessageType::kTaskFailed:
    case MessageType::kShutdown:
    case MessageType::kPing:
    case MessageType::kPong:
    case MessageType::kCancelTask:
    case MessageType::kChainCmd:
    case MessageType::kChainPacket:
    case MessageType::kLeaseGrant:
    case MessageType::kPressureReport:
      return true;
  }
  return false;
}

constexpr size_t kFixedHeaderBytes =
    1 +                 // type
    4 + 4 +             // from, to
    8 +                 // task_id
    4 +                 // attempt
    8 + 8 + 4 + 8 +     // trace: trace_id, parent_span_id, origin_node,
                        //        origin_ts_us
    4 + 4 +             // chunk.stripe, chunk.index
    4 +                 // dst
    1 + 1 +             // mode, coefficient
    4 + 4 +             // packet_index, total_packets
    4 +                 // hop
    8 + 8 +             // chunk_bytes, packet_bytes
    4 + 4 + 4;          // sources count, error length, payload length

/// Writes exactly msg.encoded_size() bytes at `out`.
void write_message(uint8_t* out, const Message& msg) {
  Writer w{out};
  w.put<uint8_t>(static_cast<uint8_t>(msg.type));
  w.put<int32_t>(msg.from);
  w.put<int32_t>(msg.to);
  w.put<uint64_t>(msg.task_id);
  w.put<uint32_t>(msg.attempt);
  w.put<uint64_t>(msg.trace.trace_id);
  w.put<uint64_t>(msg.trace.parent_span_id);
  w.put<int32_t>(msg.trace.origin_node);
  w.put<int64_t>(msg.trace.origin_ts_us);
  w.put<int32_t>(msg.chunk.stripe);
  w.put<int32_t>(msg.chunk.index);
  w.put<int32_t>(msg.dst);
  w.put<uint8_t>(static_cast<uint8_t>(msg.mode));
  w.put<uint8_t>(msg.coefficient);
  w.put<uint32_t>(msg.packet_index);
  w.put<uint32_t>(msg.total_packets);
  w.put<uint32_t>(msg.hop);
  w.put<uint64_t>(msg.chunk_bytes);
  w.put<uint64_t>(msg.packet_bytes);
  w.put<uint32_t>(static_cast<uint32_t>(msg.sources.size()));
  w.put<uint32_t>(static_cast<uint32_t>(msg.error.size()));
  w.put<uint32_t>(static_cast<uint32_t>(msg.payload.size()));
  for (const auto& s : msg.sources) {
    w.put<int32_t>(s.node);
    w.put<int32_t>(s.chunk.stripe);
    w.put<int32_t>(s.chunk.index);
    w.put<uint8_t>(s.coefficient);
  }
  w.put_bytes(msg.error.data(), msg.error.size());
  w.put_bytes(msg.payload.data(), msg.payload.size());
}

}  // namespace

size_t Message::encoded_size() const {
  return kFixedHeaderBytes + sources.size() * (4 + 4 + 4 + 1) +
         error.size() + payload.size();
}

Message Message::clone() const {
  Message copy;
  copy.type = type;
  copy.from = from;
  copy.to = to;
  copy.task_id = task_id;
  copy.attempt = attempt;
  copy.trace = trace;
  copy.chunk = chunk;
  copy.dst = dst;
  copy.mode = mode;
  copy.coefficient = coefficient;
  copy.packet_index = packet_index;
  copy.total_packets = total_packets;
  copy.hop = hop;
  copy.chunk_bytes = chunk_bytes;
  copy.packet_bytes = packet_bytes;
  copy.sources = sources;
  copy.error = error;
  copy.payload = payload.clone();
  return copy;
}

std::vector<uint8_t> serialize(const Message& msg) {
  std::vector<uint8_t> out(msg.encoded_size());
  write_message(out.data(), msg);
  return out;
}

PooledBuffer serialize_pooled(const Message& msg) {
  PooledBuffer out = BufferPool::global()->acquire(msg.encoded_size());
  write_message(out.data(), msg);
  return out;
}

std::optional<Message> deserialize(std::span<const uint8_t> bytes) {
  Reader reader(bytes);
  Message msg;
  uint8_t type = 0, mode = 0;
  uint32_t num_sources = 0, error_len = 0, payload_len = 0;
  if (!reader.read(type) || !reader.read(msg.from) || !reader.read(msg.to) ||
      !reader.read(msg.task_id) || !reader.read(msg.attempt) ||
      !reader.read(msg.trace.trace_id) ||
      !reader.read(msg.trace.parent_span_id) ||
      !reader.read(msg.trace.origin_node) ||
      !reader.read(msg.trace.origin_ts_us) ||
      !reader.read(msg.chunk.stripe) ||
      !reader.read(msg.chunk.index) || !reader.read(msg.dst) ||
      !reader.read(mode) || !reader.read(msg.coefficient) ||
      !reader.read(msg.packet_index) || !reader.read(msg.total_packets) ||
      !reader.read(msg.hop) ||
      !reader.read(msg.chunk_bytes) || !reader.read(msg.packet_bytes) ||
      !reader.read(num_sources) || !reader.read(error_len) ||
      !reader.read(payload_len)) {
    return std::nullopt;
  }
  if (!valid_message_type(type)) return std::nullopt;
  msg.type = static_cast<MessageType>(type);
  if (mode > 1) return std::nullopt;
  msg.mode = static_cast<TransferMode>(mode);

  // Bound the declared sizes by the actual frame length before any
  // allocation — corrupted counts must not trigger huge resizes.
  const uint64_t declared = static_cast<uint64_t>(num_sources) * 13 +
                            error_len + payload_len;
  if (declared > bytes.size()) return std::nullopt;

  msg.sources.resize(num_sources);
  for (auto& s : msg.sources) {
    if (!reader.read(s.node) || !reader.read(s.chunk.stripe) ||
        !reader.read(s.chunk.index) || !reader.read(s.coefficient)) {
      return std::nullopt;
    }
  }
  if (!reader.read_string(msg.error, error_len)) return std::nullopt;
  if (!reader.read_bytes(msg.payload, payload_len)) return std::nullopt;
  if (!reader.exhausted()) return std::nullopt;
  return msg;
}

}  // namespace fastpr::net
