#include "net/message.h"

#include <cstring>

namespace fastpr::net {

namespace {

/// Append a little-endian integral value.
template <typename T>
void put(std::vector<uint8_t>& out, T value) {
  const size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

/// Cursor-based reader; all reads bounds-checked.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  template <typename T>
  bool read(T& value) {
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool read_bytes(std::vector<uint8_t>& out, size_t len) {
    if (pos_ + len > bytes_.size()) return false;
    out.assign(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
               bytes_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }

  bool read_string(std::string& out, size_t len) {
    if (pos_ + len > bytes_.size()) return false;
    out.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

constexpr size_t kFixedHeaderBytes =
    1 +                 // type
    4 + 4 +             // from, to
    8 +                 // task_id
    4 + 4 +             // chunk.stripe, chunk.index
    4 +                 // dst
    1 + 1 +             // mode, coefficient
    4 + 4 +             // packet_index, total_packets
    8 + 8 +             // chunk_bytes, packet_bytes
    4 + 4 + 4;          // sources count, error length, payload length

}  // namespace

size_t Message::encoded_size() const {
  return kFixedHeaderBytes + sources.size() * (4 + 4 + 4 + 1) +
         error.size() + payload.size();
}

std::vector<uint8_t> serialize(const Message& msg) {
  std::vector<uint8_t> out;
  out.reserve(msg.encoded_size());
  put<uint8_t>(out, static_cast<uint8_t>(msg.type));
  put<int32_t>(out, msg.from);
  put<int32_t>(out, msg.to);
  put<uint64_t>(out, msg.task_id);
  put<int32_t>(out, msg.chunk.stripe);
  put<int32_t>(out, msg.chunk.index);
  put<int32_t>(out, msg.dst);
  put<uint8_t>(out, static_cast<uint8_t>(msg.mode));
  put<uint8_t>(out, msg.coefficient);
  put<uint32_t>(out, msg.packet_index);
  put<uint32_t>(out, msg.total_packets);
  put<uint64_t>(out, msg.chunk_bytes);
  put<uint64_t>(out, msg.packet_bytes);
  put<uint32_t>(out, static_cast<uint32_t>(msg.sources.size()));
  put<uint32_t>(out, static_cast<uint32_t>(msg.error.size()));
  put<uint32_t>(out, static_cast<uint32_t>(msg.payload.size()));
  for (const auto& s : msg.sources) {
    put<int32_t>(out, s.node);
    put<int32_t>(out, s.chunk.stripe);
    put<int32_t>(out, s.chunk.index);
    put<uint8_t>(out, s.coefficient);
  }
  out.insert(out.end(), msg.error.begin(), msg.error.end());
  out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  return out;
}

std::optional<Message> deserialize(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  Message msg;
  uint8_t type = 0, mode = 0;
  uint32_t num_sources = 0, error_len = 0, payload_len = 0;
  if (!reader.read(type) || !reader.read(msg.from) || !reader.read(msg.to) ||
      !reader.read(msg.task_id) || !reader.read(msg.chunk.stripe) ||
      !reader.read(msg.chunk.index) || !reader.read(msg.dst) ||
      !reader.read(mode) || !reader.read(msg.coefficient) ||
      !reader.read(msg.packet_index) || !reader.read(msg.total_packets) ||
      !reader.read(msg.chunk_bytes) || !reader.read(msg.packet_bytes) ||
      !reader.read(num_sources) || !reader.read(error_len) ||
      !reader.read(payload_len)) {
    return std::nullopt;
  }
  if (type < 1 || type > 7) return std::nullopt;
  msg.type = static_cast<MessageType>(type);
  if (mode > 1) return std::nullopt;
  msg.mode = static_cast<TransferMode>(mode);

  // Bound the declared sizes by the actual frame length before any
  // allocation — corrupted counts must not trigger huge resizes.
  const uint64_t declared = static_cast<uint64_t>(num_sources) * 13 +
                            error_len + payload_len;
  if (declared > bytes.size()) return std::nullopt;

  msg.sources.resize(num_sources);
  for (auto& s : msg.sources) {
    if (!reader.read(s.node) || !reader.read(s.chunk.stripe) ||
        !reader.read(s.chunk.index) || !reader.read(s.coefficient)) {
      return std::nullopt;
    }
  }
  if (!reader.read_string(msg.error, error_len)) return std::nullopt;
  if (!reader.read_bytes(msg.payload, payload_len)) return std::nullopt;
  if (!reader.exhausted()) return std::nullopt;
  return msg;
}

}  // namespace fastpr::net
