// Wire messages of the FastPR prototype (coordinator ⇄ agents).
//
// A fixed header plus an opaque payload. Messages carry everything an
// agent needs to act without consulting global state, mirroring the
// paper's coordinator/agent command protocol (§V). The binary encoding
// is used verbatim by the TCP transport; the in-process transport moves
// Message objects but accounts for encoded_size() against the shaped
// bandwidth, so both transports price traffic identically.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/types.h"
#include "telemetry/trace.h"
#include "util/buffer_pool.h"

namespace fastpr::net {

enum class MessageType : uint8_t {
  kReconstructCmd = 1,  // coordinator → destination agent
  kMigrateCmd = 2,      // coordinator → STF agent
  kFetchRequest = 3,    // destination agent → helper agent
  kDataPacket = 4,      // helper/STF agent → destination agent
  kTaskDone = 5,        // destination agent → coordinator
  kTaskFailed = 6,      // any agent → coordinator
  kShutdown = 7,        // coordinator → agent
  kPing = 8,            // coordinator → agent (liveness probe)
  kPong = 9,            // agent → coordinator (probe reply)
  kCancelTask = 10,     // coordinator → agent (drop a stale attempt)
  kChainCmd = 11,       // coordinator → chain hop (join a partial-sum chain)
  kChainPacket = 12,    // chain hop → next hop (running partial sum)
  /// Repair-bandwidth lease (coordinator → agent, DESIGN.md §10).
  /// Field reuse, no new wire fields: task_id = lease sequence number
  /// (globally monotonic; agents apply only seq-increasing grants, so a
  /// re-sent or reordered grant can never double-apply), chunk_bytes =
  /// granted repair rate in bytes/s, packet_bytes = lease TTL in µs.
  kLeaseGrant = 13,
  /// Foreground-pressure report (agent → coordinator): task_id = highest
  /// lease seq applied, chunk_bytes = observed foreground p99 latency in
  /// ns, packet_bytes = observed foreground throughput in bytes/s.
  /// Sent in reply to every kLeaseGrant; kPong piggybacks the same two
  /// fields so probe round-trips refresh the throttler too.
  kPressureReport = 14,
};

/// Payload-bearing repair traffic: what the transports shape against the
/// network budget and count as repair bytes. Everything else is control.
constexpr bool is_data_packet(MessageType t) {
  return t == MessageType::kDataPacket || t == MessageType::kChainPacket;
}

/// How a destination handles incoming data packets of a task.
enum class TransferMode : uint8_t {
  kStore = 0,   // migration: write payload verbatim
  kDecode = 1,  // reconstruction: multiply by coeff and XOR-accumulate
};

/// Upper bound on concurrent helper streams feeding one reconstruction
/// (paper configs top out at k = 12 for RS(12,4); headroom beyond that).
constexpr size_t kMaxRepairStreams = 32;

/// One helper source of a reconstruction task.
struct SourceSpec {
  cluster::NodeId node = cluster::kNoNode;
  cluster::ChunkRef chunk;   // helper chunk on that node
  uint8_t coefficient = 0;   // GF(256) decode coefficient
};

struct Message {
  MessageType type = MessageType::kShutdown;
  cluster::NodeId from = cluster::kNoNode;
  cluster::NodeId to = cluster::kNoNode;

  uint64_t task_id = 0;
  /// Retry attempt of task_id this message belongs to (1-based for task
  /// traffic, 0 for attempt-less messages). A task_id is stable across
  /// retries while the attempt increments, so agents can dedupe
  /// duplicate commands and drop packets of superseded attempts.
  uint32_t attempt = 0;
  /// Causal trace context (28 wire bytes): the sender's open span, so
  /// handlers on the receiving node parent their spans under it
  /// (telemetry::ScopedTraceContext). origin_ts_us doubles as the
  /// clock-sync sample on kPing/kPong probes. All-zero when tracing is
  /// off or compiled out — the wire layout never changes.
  telemetry::TraceContext trace;
  cluster::ChunkRef chunk;       // the chunk being repaired / fetched
  cluster::NodeId dst = cluster::kNoNode;  // final destination (commands)
  TransferMode mode = TransferMode::kStore;
  uint8_t coefficient = 0;       // decode coefficient (packets)
  uint32_t packet_index = 0;
  uint32_t total_packets = 0;
  /// Chain position (0-based). kChainCmd: the receiver's slot in the
  /// hop order carried by `sources`; kChainPacket: the slot of the hop
  /// the packet is addressed to. 0 elsewhere.
  uint32_t hop = 0;
  uint64_t chunk_bytes = 0;
  uint64_t packet_bytes = 0;
  /// kReconstructCmd: the fan-in helper set. kChainCmd: the FULL chain
  /// in hop order (every hop receives the same vector and indexes it
  /// with `hop` for its own chunk/coefficient and successor).
  std::vector<SourceSpec> sources;
  std::string error;                 // kTaskFailed only
  /// kDataPacket only. Pool-recycled: steady-state packet traffic reuses
  /// retired payload buffers instead of allocating per packet. Makes
  /// Message move-only; use clone() where a test needs a copy.
  PooledBuffer payload;

  /// Size of the serialized form; the unit charged against bandwidth.
  size_t encoded_size() const;

  /// Deep copy (payload cloned through the pool).
  Message clone() const;
};

/// Length-prefixed binary encoding (little-endian).
std::vector<uint8_t> serialize(const Message& msg);

/// serialize() into a pool-recycled frame buffer — the TCP send path,
/// which would otherwise allocate one frame per packet.
PooledBuffer serialize_pooled(const Message& msg);

/// Parses one message from `bytes` (the full frame, without the length
/// prefix). The payload lands in a pool-recycled buffer. Returns nullopt
/// on malformed input.
std::optional<Message> deserialize(std::span<const uint8_t> bytes);

}  // namespace fastpr::net
