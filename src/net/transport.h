// Transport abstraction between cluster nodes (agents + coordinator).
//
// Two implementations:
//  * InprocTransport — message-passing inside one process with per-node
//    token-bucket NIC shaping; the workhorse of the testbed experiments
//    (the role Amazon EC2's network + Wonder Shaper play in the paper).
//  * TcpTransport — real sockets over loopback, demonstrating that the
//    agent protocol runs over an actual network stack.
#pragma once

#include <chrono>
#include <optional>

#include "cluster/types.h"
#include "net/message.h"

namespace fastpr::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocking send from msg.from to msg.to. Blocks while the shaped
  /// bandwidth is consumed — this is where "transmission time" comes
  /// from in testbed experiments.
  virtual void send(Message msg) = 0;

  /// Blocking receive for `node`; returns nullopt when the transport was
  /// shut down (or the timeout elapsed, if one is given).
  virtual std::optional<Message> recv(
      cluster::NodeId node,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt) = 0;

  /// Unblocks all receivers with "closed".
  virtual void shutdown() = 0;
};

}  // namespace fastpr::net
