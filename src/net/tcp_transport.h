// TCP transport over loopback sockets.
//
// Every node binds an ephemeral 127.0.0.1 port; an accept thread plus
// per-connection reader threads parse length-prefixed frames into the
// node's inbox. Senders keep one persistent connection per (src, dst)
// pair. Optional token buckets shape per-node bandwidth exactly like the
// in-process transport, so the agent protocol can be exercised over a
// real network stack with the same timing semantics.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "telemetry/flow_monitor.h"
#include "util/mutex.h"
#include "util/token_bucket.h"
#include "util/units.h"

namespace fastpr::net {

class TcpTransport final : public Transport {
 public:
  struct Options {
    double net_bytes_per_sec = 0;  // <=0: unlimited
    bool shape_control_messages = false;
    int64_t burst_bytes = 1 * kMiB;
    /// Per-packet store-and-forward cost of a chain hop (kChainPacket
    /// sends only), charged as byte-equivalent time at the sender's NIC
    /// rate — see InprocTransport::Options for the full rationale. No
    /// effect on unthrottled transports.
    double chain_hop_overhead_seconds = 0;
    /// When set, every data packet's transmit/delivery is reported to
    /// this monitor as per-link flow samples. Not owned; must outlive
    /// the transport.
    telemetry::FlowMonitor* flow_monitor = nullptr;
  };

  TcpTransport(int num_nodes, const Options& options);
  ~TcpTransport() override;

  void send(Message msg) override;
  std::optional<Message> recv(
      cluster::NodeId node,
      std::optional<std::chrono::milliseconds> timeout) override;
  void shutdown() override;

 private:
  struct Endpoint {
    int listen_fd = -1;
    uint16_t port = 0;
    std::thread accept_thread;
    // reader_threads is appended by the accept thread and joined by
    // shutdown(); the readers themselves never touch the vector.
    Mutex reader_mutex{lock_order::kNetReader};
    std::vector<std::thread> reader_threads
        FASTPR_GUARDED_BY(reader_mutex);
    // Inbox, one lock + cv per endpoint so a frame delivery wakes only
    // its addressee's dispatcher (mirrors InprocTransport).
    Mutex mutex{lock_order::kNetInbox};
    CondVar cv;
    std::deque<Message> inbox FASTPR_GUARDED_BY(mutex);
    std::unique_ptr<TokenBucket> tx;
    std::unique_ptr<TokenBucket> rx;
    // One cached outgoing connection. write_mutex serializes frame
    // writes on this destination's socket only — concurrent sender
    // threads aiming at different destinations proceed in parallel —
    // while still keeping any single frame atomic on the wire. The
    // socket is connected lazily under write_mutex.
    struct Conn {
      Mutex write_mutex{lock_order::kNetConnWrite};
      int fd FASTPR_GUARDED_BY(write_mutex) = -1;
    };
    // Connection cache: dst → Conn. conn_mutex guards only the map;
    // send() drops it before the (blocking) connect/write, which run
    // under the per-connection write_mutex. Entries are shared_ptr so
    // a send can keep its Conn across the map unlock while shutdown
    // concurrently walks the map.
    Mutex conn_mutex{lock_order::kNetConnMap};
    std::map<cluster::NodeId, std::shared_ptr<Conn>> conns
        FASTPR_GUARDED_BY(conn_mutex);
  };

  void accept_loop(int node);
  void reader_loop(int node, int fd);
  /// Lazily connects conn to dst; returns the fd, or -1 if the connect
  /// lost a race with shutdown().
  int connect_to(Endpoint::Conn& conn, int dst)
      FASTPR_REQUIRES(conn.write_mutex);

  Options options_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<bool> closed_{false};
};

}  // namespace fastpr::net
