// TCP transport over loopback sockets.
//
// Every node binds an ephemeral 127.0.0.1 port; an accept thread plus
// per-connection reader threads parse length-prefixed frames into the
// node's inbox. Senders keep one persistent connection per (src, dst)
// pair. Optional token buckets shape per-node bandwidth exactly like the
// in-process transport, so the agent protocol can be exercised over a
// real network stack with the same timing semantics.
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "util/token_bucket.h"

namespace fastpr::net {

class TcpTransport final : public Transport {
 public:
  struct Options {
    double net_bytes_per_sec = 0;  // <=0: unlimited
    bool shape_control_messages = false;
    int64_t burst_bytes = 1 << 20;
  };

  TcpTransport(int num_nodes, const Options& options);
  ~TcpTransport() override;

  void send(Message msg) override;
  std::optional<Message> recv(
      cluster::NodeId node,
      std::optional<std::chrono::milliseconds> timeout) override;
  void shutdown() override;

 private:
  struct Endpoint {
    int listen_fd = -1;
    uint16_t port = 0;
    std::thread accept_thread;
    std::vector<std::thread> reader_threads;
    std::mutex reader_mutex;  // guards reader_threads
    std::deque<Message> inbox;
    std::unique_ptr<TokenBucket> tx;
    std::unique_ptr<TokenBucket> rx;
    // Outgoing connection cache: dst → fd, with a mutex per entry to
    // serialize frame writes.
    std::mutex conn_mutex;
    std::map<cluster::NodeId, int> conns;
  };

  void accept_loop(int node);
  void reader_loop(int node, int fd);
  int connect_to(int src, int dst);

  Options options_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;
  bool closed_ = false;
};

}  // namespace fastpr::net
