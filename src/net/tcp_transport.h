// TCP transport over loopback sockets.
//
// Every node binds an ephemeral 127.0.0.1 port; an accept thread plus
// per-connection reader threads parse length-prefixed frames into the
// node's inbox. Senders keep one persistent connection per (src, dst)
// pair. Optional token buckets shape per-node bandwidth exactly like the
// in-process transport, so the agent protocol can be exercised over a
// real network stack with the same timing semantics.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "util/mutex.h"
#include "util/token_bucket.h"
#include "util/units.h"

namespace fastpr::net {

class TcpTransport final : public Transport {
 public:
  struct Options {
    double net_bytes_per_sec = 0;  // <=0: unlimited
    bool shape_control_messages = false;
    int64_t burst_bytes = 1 * kMiB;
  };

  TcpTransport(int num_nodes, const Options& options);
  ~TcpTransport() override;

  void send(Message msg) override;
  std::optional<Message> recv(
      cluster::NodeId node,
      std::optional<std::chrono::milliseconds> timeout) override;
  void shutdown() override;

 private:
  struct Endpoint {
    int listen_fd = -1;
    uint16_t port = 0;
    std::thread accept_thread;
    // reader_threads is appended by the accept thread and joined by
    // shutdown(); the readers themselves never touch the vector.
    Mutex reader_mutex;
    std::vector<std::thread> reader_threads
        FASTPR_GUARDED_BY(reader_mutex);
    // Inbox, one lock + cv per endpoint so a frame delivery wakes only
    // its addressee's dispatcher (mirrors InprocTransport).
    Mutex mutex;
    CondVar cv;
    std::deque<Message> inbox FASTPR_GUARDED_BY(mutex);
    std::unique_ptr<TokenBucket> tx;
    std::unique_ptr<TokenBucket> rx;
    // Outgoing connection cache: dst → fd. The lock also serializes
    // frame writes so packets from concurrent sender threads do not
    // interleave mid-frame.
    Mutex conn_mutex;
    std::map<cluster::NodeId, int> conns FASTPR_GUARDED_BY(conn_mutex);
  };

  void accept_loop(int node);
  void reader_loop(int node, int fd);
  /// Caller must hold ep.conn_mutex (ep is the sending node's endpoint).
  int connect_to(Endpoint& ep, int dst) FASTPR_REQUIRES(ep.conn_mutex);

  Options options_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<bool> closed_{false};
};

}  // namespace fastpr::net
