// In-process transport with token-bucket NIC emulation.
//
// Each node has a TX bucket and an RX bucket refilling at the configured
// per-node bandwidth bn. A send charges the sender's TX bucket and the
// receiver's RX bucket for the message's encoded size, then delivers to
// the receiver's inbox. Control messages can optionally ride for free
// (the paper's model charges only chunk transfers; commands/acks are
// negligible next to 64 MB chunks).
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "net/transport.h"
#include "telemetry/flow_monitor.h"
#include "util/mutex.h"
#include "util/token_bucket.h"
#include "util/units.h"

namespace fastpr::net {

class InprocTransport final : public Transport {
 public:
  struct Options {
    double net_bytes_per_sec = 0;  // <=0: unlimited
    /// Charge bandwidth only for payload-bearing data messages
    /// (default), or for every message.
    bool shape_control_messages = false;
    int64_t burst_bytes = 1 * kMiB;
    /// Per-packet store-and-forward cost of a chain hop (kChainPacket
    /// sends only): receive → fuse → re-send pays syscalls, interrupts
    /// and cache traffic that a fan-in helper's sequential stream does
    /// not. Charged deterministically as the byte-equivalent at the
    /// sender's current NIC rate (a fixed TIME per forward, so it is
    /// rate-independent), mirroring
    /// ModelParams.chain_hop_overhead_seconds so measured chain rounds
    /// and the cost model see the same per-forward cost. No effect on
    /// unthrottled transports.
    double chain_hop_overhead_seconds = 0;
    /// When set, every data packet's transmit/delivery is reported to
    /// this monitor as per-link flow samples. Not owned; must outlive
    /// the transport.
    telemetry::FlowMonitor* flow_monitor = nullptr;
  };

  InprocTransport(int num_nodes, const Options& options);

  void send(Message msg) override;
  std::optional<Message> recv(
      cluster::NodeId node,
      std::optional<std::chrono::milliseconds> timeout) override;
  void shutdown() override;

  /// Changes one node's NIC rate (Experiment B.4's Wonder Shaper role).
  void set_node_bandwidth(cluster::NodeId node, double bytes_per_sec);

  /// Charges `bytes` against a node's TX / RX bucket without delivering
  /// anything — foreground (client) traffic contending with repair on
  /// the same NIC. Blocks until tokens are available, exactly like a
  /// shaped send, so callers measure realistic queueing latency. No-op
  /// on unlimited transports.
  void charge_tx(cluster::NodeId node, int64_t bytes);
  void charge_rx(cluster::NodeId node, int64_t bytes);

  /// Total bytes ever accepted for delivery (testing/teardown aid).
  int64_t total_bytes_sent() const;

  /// Bytes of payload-bearing (kDataPacket/kChainPacket) traffic sent
  /// by / received by a node so far (repair-traffic accounting).
  int64_t data_bytes_tx(cluster::NodeId node) const;
  int64_t data_bytes_rx(cluster::NodeId node) const;

 private:
  // Per-endpoint lock + condition variable: a packet delivery wakes only
  // its addressee's dispatcher, not every agent in the cluster (on a
  // small host the all-wakeup pattern costs more than the data copies).
  struct Endpoint {
    std::unique_ptr<TokenBucket> tx;
    std::unique_ptr<TokenBucket> rx;
    Mutex mutex{lock_order::kNetInbox};
    CondVar cv;
    std::deque<Message> inbox FASTPR_GUARDED_BY(mutex);
    std::atomic<int64_t> data_tx{0};
    std::atomic<int64_t> data_rx{0};
  };

  Options options_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<bool> closed_{false};
  std::atomic<int64_t> bytes_sent_{0};
};

}  // namespace fastpr::net
