// Minimal JSON-building helpers shared by the telemetry exporters and
// the bench sidecar writer. This is a writer only — the repo never
// parses JSON, so there is no reader half to keep in sync.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace fastpr::telemetry {

/// Escapes `s` for use inside a JSON string literal (quotes excluded).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// A quoted, escaped JSON string token.
inline std::string json_str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

/// A JSON number token; non-finite doubles (which JSON cannot carry)
/// become null.
inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline std::string json_num(int64_t v) { return std::to_string(v); }
inline std::string json_num(int v) { return std::to_string(v); }

}  // namespace fastpr::telemetry
