// Per-node clock-offset estimation piggybacked on the coordinator's
// kPing/kPong straggler probes (DESIGN.md §5c).
//
// The coordinator records t_send when a probe goes out; the agent's
// pong carries the agent's local clock in its TraceContext
// (origin_ts_us, stamped by current_trace_context()); the coordinator
// observes t_recv on arrival. Assuming a symmetric path, the agent's
// clock was read at ~t_send + rtt/2 coordinator time, so
//
//   offset(node) = t_remote - (t_send + (t_recv - t_send) / 2)
//
// estimates how far node's clock runs ahead of the coordinator's.
// Samples fold into a per-node EWMA; the merged Chrome trace export
// subtracts the offsets so every node's spans share the coordinator's
// timeline (events_to_chrome_json in trace.h). In the in-process
// testbed all nodes share one clock, so offsets hover near zero — the
// estimator and the correction path are what this exercises.
//
// Owned and driven by the (single-threaded) coordinator: no lock. Pure
// arithmetic, so it stays live under -DFASTPR_TELEMETRY=OFF; without
// telemetry the pong timestamps are zero and callers simply see empty
// snapshots because no samples are recorded.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace fastpr::telemetry {

class ClockSync {
 public:
  explicit ClockSync(double alpha = 0.2) : alpha_(alpha) {}

  /// Folds one probe observation for `node` (all times µs; t_send and
  /// t_recv on the local clock, t_remote on the node's clock).
  void record(int node, int64_t t_send_us, int64_t t_remote_us,
              int64_t t_recv_us) {
    const double midpoint = static_cast<double>(t_send_us) +
                            static_cast<double>(t_recv_us - t_send_us) / 2.0;
    const double sample = static_cast<double>(t_remote_us) - midpoint;
    auto [it, inserted] = offsets_.try_emplace(node, sample);
    if (!inserted) {
      it->second = alpha_ * sample + (1.0 - alpha_) * it->second;
    }
    ++samples_;
  }

  /// Estimated offset of `node`'s clock vs ours; 0 when never probed.
  int64_t offset_us(int node) const {
    const auto it = offsets_.find(node);
    return it == offsets_.end()
               ? 0
               : static_cast<int64_t>(std::llround(it->second));
  }

  /// (node, offset_us) pairs, node-ordered — the shape
  /// events_to_chrome_json() takes.
  std::vector<std::pair<int, int64_t>> snapshot() const {
    std::vector<std::pair<int, int64_t>> out;
    out.reserve(offsets_.size());
    for (const auto& [node, off] : offsets_) {
      out.emplace_back(node, static_cast<int64_t>(std::llround(off)));
    }
    return out;
  }

  int64_t samples() const { return samples_; }

 private:
  const double alpha_;
  std::map<int, double> offsets_;
  int64_t samples_ = 0;
};

}  // namespace fastpr::telemetry
