// Per-link flow telemetry (DESIGN.md §5c).
//
// Transports report every data-packet transmit/receive to a
// FlowMonitor as (src, dst, bytes, timestamp). The monitor accumulates
// receives into per-link windows; each time a window closes it folds
// the window's observed rate into an EWMA bytes/sec estimate for that
// directed link. Links whose EWMA runs a configurable factor below the
// round's plan rate are flagged as stragglers — the live sensor the
// adaptive throttler (ROADMAP item 1) and mid-repair replanning
// (item 3) consume.
//
// Fault injection: net::FaultyTransport charges its injected delays
// via on_injected_delay(), and the monitor excludes that time from the
// window's active duration — a link that is only slow because the
// chaos plan slept on it is NOT a straggler.
//
// Timestamps are µs on the tracing clock (telemetry::trace_now_us()).
// All methods are thread-safe (transports call from sender and reader
// threads concurrently); with -DFASTPR_TELEMETRY=OFF every method is
// an inline no-op and snapshot() returns nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace fastpr::telemetry {

/// Snapshot of one directed (src, dst) link.
struct LinkStats {
  int src = -1;
  int dst = -1;
  int64_t tx_bytes = 0;  // wire bytes handed to the transport
  int64_t rx_bytes = 0;  // wire bytes delivered
  double ewma_bytes_per_sec = 0;       // 0 until the first window closes
  double expected_bytes_per_sec = 0;   // the round's plan rate; 0 = unknown
  int64_t injected_delay_us = 0;       // fault-plan time excluded from rate
  bool straggler = false;  // ewma < straggler_factor * expected
};

#if FASTPR_TELEMETRY_ENABLED

class FlowMonitor {
 public:
  struct Options {
    /// Minimum active (injection-corrected) time before a window closes
    /// into the EWMA; short windows alias packet gaps into the rate.
    double window_seconds = 0.02;
    double ewma_alpha = 0.3;
    /// A link is a straggler when its EWMA estimate runs below
    /// straggler_factor * expected rate (and both are known).
    double straggler_factor = 0.5;
    /// A receive gap longer than this is idle time (the link simply had
    /// nothing scheduled — e.g. the round barrier between repair
    /// rounds), excluded from the window's active duration like
    /// injected delay. Without it a bursty-but-healthy link reads as a
    /// straggler: bytes / (burst + idle) can fall arbitrarily far below
    /// the plan rate. Must sit above the slowest plausible genuine
    /// packet interval — a truly degraded link's gaps stay active.
    double idle_gap_seconds = 0.1;
  };

  FlowMonitor() = default;
  explicit FlowMonitor(const Options& options) : options_(options) {}

  void on_tx(int src, int dst, int64_t bytes, int64_t now_us);
  void on_rx(int src, int dst, int64_t bytes, int64_t now_us);

  /// Credits fault-injected latency on (src, dst): the monitor removes
  /// it from the active time of the current window so chaos delays do
  /// not read as link slowness.
  void on_injected_delay(int src, int dst, int64_t delay_us);

  /// The plan rate a specific link is expected to sustain this round.
  void set_expected_rate(int src, int dst, double bytes_per_sec);
  /// Fallback plan rate for links without a specific expectation.
  void set_default_expected_rate(double bytes_per_sec);

  /// All observed links, straggler flags evaluated against the current
  /// expectations, ordered by (src, dst).
  std::vector<LinkStats> snapshot() const;

  void clear();

 private:
  struct Link {
    int64_t tx_bytes = 0;
    int64_t rx_bytes = 0;
    int64_t window_start_us = -1;  // -1: window not open yet
    int64_t last_rx_us = -1;
    int64_t window_bytes = 0;
    int64_t window_injected_us = 0;
    int64_t total_injected_us = 0;
    double ewma_bytes_per_sec = 0;
    double expected_bytes_per_sec = 0;
  };

  Link& link(int src, int dst) FASTPR_REQUIRES(mutex_);
  void fold_window(Link& l, int64_t now_us) FASTPR_REQUIRES(mutex_);

  const Options options_;
  mutable Mutex mutex_{lock_order::kTelemetryFlow};
  /// Directed links keyed (src, dst), kept sorted for snapshot order.
  std::vector<std::pair<std::pair<int, int>, Link>> links_
      FASTPR_GUARDED_BY(mutex_);
  double default_expected_bytes_per_sec_ FASTPR_GUARDED_BY(mutex_) = 0;
};

#else  // !FASTPR_TELEMETRY_ENABLED

class FlowMonitor {
 public:
  struct Options {
    double window_seconds = 0.02;
    double ewma_alpha = 0.3;
    double straggler_factor = 0.5;
    double idle_gap_seconds = 0.1;
  };

  FlowMonitor() = default;
  explicit FlowMonitor(const Options&) {}

  void on_tx(int, int, int64_t, int64_t) {}
  void on_rx(int, int, int64_t, int64_t) {}
  void on_injected_delay(int, int, int64_t) {}
  void set_expected_rate(int, int, double) {}
  void set_default_expected_rate(double) {}
  std::vector<LinkStats> snapshot() const { return {}; }
  void clear() {}
};

#endif  // FASTPR_TELEMETRY_ENABLED

}  // namespace fastpr::telemetry
