// Span-based tracer with per-thread buffers and cross-node causal
// propagation (DESIGN.md §5c).
//
// A TraceSpan is an RAII scope: its constructor samples the steady
// clock, its destructor samples again and appends one completed event
// to the calling thread's buffer. Buffers register themselves with the
// owning TraceLog on first use and are drained centrally on snapshot;
// a thread that exits flushes its buffer into the central log first,
// so spans from short-lived workers are never silently dropped. The
// hot path never takes a contended lock — each buffer's mutex is
// touched only by its own thread plus the (rare) drain.
//
// Causality: every span carries (trace_id, span_id, parent_span_id,
// node). A TraceContext is the compact wire form of "the currently
// open span" — coordinators mint a root context, stamp it into
// outgoing net::Message headers, and receivers adopt it with a
// ScopedTraceContext so spans opened in the handler become children of
// the sender's span. Span ids are allocated ONLY inside src/telemetry
// (fastpr_lint `trace-context`); everyone else moves contexts around
// as opaque values.
//
// Tracing is off by default; TraceLog::set_enabled(true) arms it (the
// CLI's --trace-out flag and the testbed tests do this). A disarmed
// span costs one relaxed atomic load; with -DFASTPR_TELEMETRY=OFF it
// compiles away entirely.
//
// Span names follow the `component.verb` convention ("agent.send_packet",
// "coordinator.round") with the component repeated as the category, so
// Chrome's tracing UI can group and filter rows. Names and categories
// must be string literals (static lifetime) — events store the pointer.
//
// Export is the Chrome trace_event format: load the file in
// chrome://tracing or https://ui.perfetto.dev. Events attributed to a
// node render under pid = node + 2 (pid 1 is the unattributed lane);
// events_to_chrome_json() additionally applies per-node clock offsets
// (see clock_sync.h) so multi-node timelines line up.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace fastpr::telemetry {

/// The tracing clock. Code outside src/telemetry/ should not call
/// steady_clock directly (fastpr_lint `raw-timing`); use trace_now() or
/// a TraceSpan so measurements land in the trace.
using TraceClock = std::chrono::steady_clock;

inline TraceClock::time_point trace_now() { return TraceClock::now(); }

/// Small stable id for the calling thread (1, 2, ... in first-use
/// order); what trace events and log lines report as "tid".
uint32_t this_thread_id();

/// Compact causal context carried in the net::Message header (28 wire
/// bytes). trace_id == 0 means "no context"; parent_span_id is the
/// sender's open span, which spans opened under a ScopedTraceContext
/// adopt as their parent. origin_node / origin_ts_us identify the
/// sender and its local clock at capture time (clock_sync.h consumes
/// the timestamp on kPing/kPong probes).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  int32_t origin_node = -1;
  int64_t origin_ts_us = 0;

  bool valid() const { return trace_id != 0; }
};

struct TraceEvent {
  const char* name = "";      // static-lifetime string
  const char* category = "";  // static-lifetime string
  int64_t start_us = 0;       // µs since the owning log's epoch
  int64_t duration_us = 0;
  uint32_t tid = 0;
  int64_t arg = -1;                // optional payload, < 0 = absent
  const char* arg_name = nullptr;  // static-lifetime key for `arg`
  uint64_t trace_id = 0;           // 0 = not part of a causal trace
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;     // 0 = root of its trace
  int32_t node = -1;               // -1 = unattributed
};

/// Chrome trace_event JSON for an explicit event list, subtracting
/// `node_offsets_us` (node → estimated clock offset vs the exporter,
/// clock_sync.h convention) from the start time of each attributed
/// event. With empty offsets this is exactly TraceLog::to_chrome_json's
/// rendering.
std::string events_to_chrome_json(
    const std::vector<TraceEvent>& events,
    const std::vector<std::pair<int, int64_t>>& node_offsets_us = {});

class TraceLog {
 public:
  TraceLog();
  ~TraceLog();

  static TraceLog& global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one completed event to the calling thread's buffer
  /// regardless of enabled() — spans do the gating; tests inject
  /// deterministic events directly.
  void append(const TraceEvent& event);

  /// Drains every thread buffer into the central log and returns a copy
  /// of all events collected so far, ordered by start time.
  std::vector<TraceEvent> snapshot();

  /// Chrome trace_event JSON ({"traceEvents":[...]}) of snapshot().
  std::string to_chrome_json();

  /// Discards all collected events (buffered and drained).
  void clear();

  /// Events discarded because a thread buffer hit its cap (including
  /// buffers already retired by thread exit).
  int64_t dropped() const;

  /// Live registered per-thread buffers; exited threads flush and
  /// deregister theirs (regression-tested — see test_telemetry).
  size_t thread_buffer_count() const;

  TraceClock::time_point epoch() const { return epoch_; }

 private:
  /// Cap per thread buffer: bounds memory if a caller leaves tracing
  /// enabled across a huge run (~48 MB worst case per thread).
  static constexpr size_t kMaxEventsPerThread = 1u << 20;

  struct ThreadBuffer {
    Mutex mutex{lock_order::kTelemetryTraceBuffer};
    std::vector<TraceEvent> events FASTPR_GUARDED_BY(mutex);
    int64_t dropped FASTPR_GUARDED_BY(mutex) = 0;
  };

  /// Buffer registry + central drain target. Held by shared_ptr so a
  /// thread exiting AFTER its TraceLog was destroyed (weak_ptr in the
  /// TLS slot) flushes into nothing instead of a dangling log.
  struct Registry {
    mutable Mutex mutex{lock_order::kTelemetryTrace};
    std::vector<std::shared_ptr<ThreadBuffer>> buffers
        FASTPR_GUARDED_BY(mutex);
    std::vector<TraceEvent> drained FASTPR_GUARDED_BY(mutex);
    int64_t retired_dropped FASTPR_GUARDED_BY(mutex) = 0;
  };

  ThreadBuffer& local_buffer();

  const uint64_t id_;  // distinguishes logs for the thread-local cache
  const TraceClock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::shared_ptr<Registry> registry_;
};

#if FASTPR_TELEMETRY_ENABLED

/// Mints a fresh root context: new trace id, no parent. The span opened
/// under it (via ScopedTraceContext) becomes the trace's root span.
TraceContext make_root_context(int origin_node);

/// The calling thread's current context: innermost open span (or the
/// adopted parent when no span is open), local node attribution, and
/// the local clock now. This is what senders stamp into outgoing
/// net::Message headers.
TraceContext current_trace_context();

/// Installs `ctx` (and, when node >= 0, the local node attribution) as
/// the calling thread's current trace context for the enclosing scope;
/// restores the previous context on destruction. Receivers wrap message
/// handling in one of these so their spans parent under the sender's.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx, int node = -1);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  uint64_t prev_trace_id_;
  uint64_t prev_parent_span_;
  int32_t prev_node_;
};

/// RAII span recording into TraceLog::global(). `name`, `category` and
/// `arg_name` must be string literals. While open, the span is the
/// thread's current context parent (nested spans and outgoing messages
/// link to it).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "repair",
                     int64_t arg = -1, const char* arg_name = "id");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void record();

  const char* name_ = nullptr;  // nullptr: tracing was off at entry
  const char* category_ = nullptr;
  int64_t arg_ = -1;
  const char* arg_name_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t saved_parent_span_ = 0;
  int32_t node_ = -1;
  TraceClock::time_point start_;
};

#else  // !FASTPR_TELEMETRY_ENABLED

inline TraceContext make_root_context(int) { return {}; }
inline TraceContext current_trace_context() { return {}; }

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext&, int = -1) {}
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*, const char* = "repair", int64_t = -1,
                     const char* = "id") {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // FASTPR_TELEMETRY_ENABLED

/// µs on the tracing clock since the global log's epoch — the "local
/// clock" that TraceContext::origin_ts_us and the flow-monitor
/// timestamps are expressed in.
inline int64_t trace_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             trace_now() - TraceLog::global().epoch())
      .count();
}

#define FASTPR_SPAN_CONCAT_INNER(a, b) a##b
#define FASTPR_SPAN_CONCAT(a, b) FASTPR_SPAN_CONCAT_INNER(a, b)

/// Declares an anonymous TraceSpan covering the rest of the scope.
#define FASTPR_TRACE_SPAN(...)                                      \
  ::fastpr::telemetry::TraceSpan FASTPR_SPAN_CONCAT(fastpr_span_,   \
                                                    __LINE__)(__VA_ARGS__)

}  // namespace fastpr::telemetry
