// Span-based tracer with per-thread buffers (DESIGN.md §5c).
//
// A TraceSpan is an RAII scope: its constructor samples the steady
// clock, its destructor samples again and appends one completed event
// to the calling thread's buffer. Buffers register themselves with the
// owning TraceLog on first use and are drained centrally on snapshot,
// so the hot path never takes a contended lock — each buffer's mutex is
// touched only by its own thread plus the (rare) drain.
//
// Tracing is off by default; TraceLog::set_enabled(true) arms it (the
// CLI's --trace-out flag and the testbed tests do this). A disarmed
// span costs one relaxed atomic load; with -DFASTPR_TELEMETRY=OFF it
// compiles away entirely.
//
// Span names follow the `component.verb` convention ("agent.send_packet",
// "coordinator.round") with the component repeated as the category, so
// Chrome's tracing UI can group and filter rows. Names and categories
// must be string literals (static lifetime) — events store the pointer.
//
// Export is the Chrome trace_event format: load the file in
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace fastpr::telemetry {

/// The tracing clock. Code outside src/telemetry/ should not call
/// steady_clock directly (fastpr_lint `raw-timing`); use trace_now() or
/// a TraceSpan so measurements land in the trace.
using TraceClock = std::chrono::steady_clock;

inline TraceClock::time_point trace_now() { return TraceClock::now(); }

/// Small stable id for the calling thread (1, 2, ... in first-use
/// order); what trace events and log lines report as "tid".
uint32_t this_thread_id();

struct TraceEvent {
  const char* name = "";      // static-lifetime string
  const char* category = "";  // static-lifetime string
  int64_t start_us = 0;       // µs since the owning log's epoch
  int64_t duration_us = 0;
  uint32_t tid = 0;
  int64_t arg = -1;               // optional payload, < 0 = absent
  const char* arg_name = nullptr;  // static-lifetime key for `arg`
};

class TraceLog {
 public:
  TraceLog();

  static TraceLog& global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one completed event to the calling thread's buffer
  /// regardless of enabled() — spans do the gating; tests inject
  /// deterministic events directly.
  void append(const TraceEvent& event);

  /// Drains every thread buffer into the central log and returns a copy
  /// of all events collected so far, ordered by start time.
  std::vector<TraceEvent> snapshot() FASTPR_EXCLUDES(mutex_);

  /// Chrome trace_event JSON ({"traceEvents":[...]}) of snapshot().
  std::string to_chrome_json() FASTPR_EXCLUDES(mutex_);

  /// Discards all collected events (buffered and drained).
  void clear() FASTPR_EXCLUDES(mutex_);

  /// Events discarded because a thread buffer hit its cap.
  int64_t dropped() const FASTPR_EXCLUDES(mutex_);

  TraceClock::time_point epoch() const { return epoch_; }

 private:
  /// Cap per thread buffer: bounds memory if a caller leaves tracing
  /// enabled across a huge run (~48 MB worst case per thread).
  static constexpr size_t kMaxEventsPerThread = 1u << 20;

  struct ThreadBuffer {
    Mutex mutex{lock_order::kTelemetryTraceBuffer};
    std::vector<TraceEvent> events FASTPR_GUARDED_BY(mutex);
    int64_t dropped FASTPR_GUARDED_BY(mutex) = 0;
  };

  ThreadBuffer& local_buffer();

  const uint64_t id_;  // distinguishes logs for the thread-local cache
  const TraceClock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_{lock_order::kTelemetryTrace};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_
      FASTPR_GUARDED_BY(mutex_);
  std::vector<TraceEvent> drained_ FASTPR_GUARDED_BY(mutex_);
};

#if FASTPR_TELEMETRY_ENABLED

/// RAII span recording into TraceLog::global(). `name`, `category` and
/// `arg_name` must be string literals.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "repair",
                     int64_t arg = -1, const char* arg_name = "id") {
    if (TraceLog::global().enabled()) {
      name_ = name;
      category_ = category;
      arg_ = arg;
      arg_name_ = arg_name;
      start_ = trace_now();
    }
  }

  ~TraceSpan() {
    if (name_ != nullptr) record();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void record();

  const char* name_ = nullptr;  // nullptr: tracing was off at entry
  const char* category_ = nullptr;
  int64_t arg_ = -1;
  const char* arg_name_ = nullptr;
  TraceClock::time_point start_;
};

#else  // !FASTPR_TELEMETRY_ENABLED

class TraceSpan {
 public:
  explicit TraceSpan(const char*, const char* = "repair", int64_t = -1,
                     const char* = "id") {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // FASTPR_TELEMETRY_ENABLED

#define FASTPR_SPAN_CONCAT_INNER(a, b) a##b
#define FASTPR_SPAN_CONCAT(a, b) FASTPR_SPAN_CONCAT_INNER(a, b)

/// Declares an anonymous TraceSpan covering the rest of the scope.
#define FASTPR_TRACE_SPAN(...)                                      \
  ::fastpr::telemetry::TraceSpan FASTPR_SPAN_CONCAT(fastpr_span_,   \
                                                    __LINE__)(__VA_ARGS__)

}  // namespace fastpr::telemetry
