#include "telemetry/trace.h"

#include <algorithm>
#include <sstream>

#include "telemetry/json.h"

namespace fastpr::telemetry {

namespace {

std::atomic<uint32_t> g_next_thread_id{1};
std::atomic<uint64_t> g_next_log_id{1};

#if FASTPR_TELEMETRY_ENABLED

// Span and trace ids share one sequence: a root context burns one id
// for the trace and each span burns one for itself, so any nonzero id
// is unique across both uses. Allocation lives here and ONLY here
// (fastpr_lint `trace-context`).
std::atomic<uint64_t> g_next_span_id{1};

uint64_t next_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

// The calling thread's causal position: trace, innermost open span
// (the parent for new spans and outgoing contexts), and local node
// attribution. Plain thread_locals — only ever touched by their own
// thread.
thread_local uint64_t t_trace_id = 0;
thread_local uint64_t t_parent_span = 0;
thread_local int32_t t_node = -1;

#endif  // FASTPR_TELEMETRY_ENABLED

}  // namespace

uint32_t this_thread_id() {
  thread_local const uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceLog::TraceLog()
    : id_(g_next_log_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(trace_now()),
      registry_(std::make_shared<Registry>()) {}

TraceLog::~TraceLog() = default;

TraceLog& TraceLog::global() {
  static TraceLog* log = new TraceLog();  // fastpr-lint: allow(naked-new) — intentionally leaked: spans may fire during static destruction
  return *log;
}

TraceLog::ThreadBuffer& TraceLog::local_buffer() {
  // Cache keyed by log identity so test-local TraceLog instances get
  // their own buffers; the id (not the pointer) guards against a new
  // log reusing a destroyed one's address.
  //
  // On thread exit — or when the slot is rebound to a different log —
  // the destructor flushes the buffer's events into the registry's
  // central drain and deregisters it, so workers that die before the
  // next snapshot() lose nothing. The weak_ptr keeps this safe against
  // the log dying first.
  struct TlsSlot {
    uint64_t log_id = 0;
    std::weak_ptr<Registry> registry;
    std::shared_ptr<ThreadBuffer> buffer;

    void flush_and_release() {
      if (!buffer) return;
      if (const auto reg = registry.lock()) {
        MutexLock lock(reg->mutex);
        {
          MutexLock buf_lock(buffer->mutex);
          reg->drained.insert(reg->drained.end(), buffer->events.begin(),
                              buffer->events.end());
          reg->retired_dropped += buffer->dropped;
        }
        reg->buffers.erase(
            std::remove(reg->buffers.begin(), reg->buffers.end(), buffer),
            reg->buffers.end());
      }
      buffer.reset();
      registry.reset();
      log_id = 0;
    }

    ~TlsSlot() { flush_and_release(); }
  };
  thread_local TlsSlot slot;
  if (slot.log_id != id_) {
    slot.flush_and_release();  // rebinding: hand old events to their log
    slot.buffer = std::make_shared<ThreadBuffer>();
    slot.log_id = id_;
    slot.registry = registry_;
    MutexLock lock(registry_->mutex);
    registry_->buffers.push_back(slot.buffer);
  }
  return *slot.buffer;
}

void TraceLog::append(const TraceEvent& event) {
  ThreadBuffer& buf = local_buffer();
  MutexLock lock(buf.mutex);  // uncontended except during a drain
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(event);
}

std::vector<TraceEvent> TraceLog::snapshot() {
  Registry& reg = *registry_;
  MutexLock lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    MutexLock buf_lock(buf->mutex);
    reg.drained.insert(reg.drained.end(), buf->events.begin(),
                       buf->events.end());
    buf->events.clear();
  }
  std::vector<TraceEvent> out = reg.drained;
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

std::string events_to_chrome_json(
    const std::vector<TraceEvent>& events,
    const std::vector<std::pair<int, int64_t>>& node_offsets_us) {
  const auto offset_for = [&node_offsets_us](int32_t node) -> int64_t {
    for (const auto& [n, off] : node_offsets_us) {
      if (n == node) return off;
    }
    return 0;
  };
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    if (i != 0) os << ",";
    const int64_t ts =
        ev.node >= 0 ? ev.start_us - offset_for(ev.node) : ev.start_us;
    const int pid = ev.node >= 0 ? ev.node + 2 : 1;
    os << "{\"name\":" << json_str(ev.name)
       << ",\"cat\":" << json_str(ev.category)
       << ",\"ph\":\"X\",\"ts\":" << ts
       << ",\"dur\":" << ev.duration_us << ",\"pid\":" << pid
       << ",\"tid\":" << ev.tid;
    const bool has_arg = ev.arg >= 0 && ev.arg_name != nullptr;
    const bool has_trace = ev.trace_id != 0;
    if (has_arg || has_trace) {
      os << ",\"args\":{";
      bool first = true;
      if (has_arg) {
        os << json_str(ev.arg_name) << ":" << ev.arg;
        first = false;
      }
      if (has_trace) {
        if (!first) os << ",";
        os << "\"trace\":" << ev.trace_id << ",\"span\":" << ev.span_id
           << ",\"parent\":" << ev.parent_span_id;
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string TraceLog::to_chrome_json() {
  return events_to_chrome_json(snapshot());
}

void TraceLog::clear() {
  Registry& reg = *registry_;
  MutexLock lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    MutexLock buf_lock(buf->mutex);
    buf->events.clear();
    buf->dropped = 0;
  }
  reg.drained.clear();
  reg.retired_dropped = 0;
}

int64_t TraceLog::dropped() const {
  Registry& reg = *registry_;
  MutexLock lock(reg.mutex);
  int64_t total = reg.retired_dropped;
  for (const auto& buf : reg.buffers) {
    MutexLock buf_lock(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

size_t TraceLog::thread_buffer_count() const {
  Registry& reg = *registry_;
  MutexLock lock(reg.mutex);
  return reg.buffers.size();
}

#if FASTPR_TELEMETRY_ENABLED

TraceContext make_root_context(int origin_node) {
  TraceContext ctx;
  ctx.trace_id = next_span_id();
  ctx.parent_span_id = 0;
  ctx.origin_node = origin_node;
  ctx.origin_ts_us = trace_now_us();
  return ctx;
}

TraceContext current_trace_context() {
  TraceContext ctx;
  ctx.trace_id = t_trace_id;
  ctx.parent_span_id = t_parent_span;
  ctx.origin_node = t_node;
  ctx.origin_ts_us = trace_now_us();
  return ctx;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx, int node)
    : prev_trace_id_(t_trace_id),
      prev_parent_span_(t_parent_span),
      prev_node_(t_node) {
  t_trace_id = ctx.trace_id;
  t_parent_span = ctx.parent_span_id;
  if (node >= 0) t_node = node;
}

ScopedTraceContext::~ScopedTraceContext() {
  t_trace_id = prev_trace_id_;
  t_parent_span = prev_parent_span_;
  t_node = prev_node_;
}

TraceSpan::TraceSpan(const char* name, const char* category, int64_t arg,
                     const char* arg_name) {
  if (TraceLog::global().enabled()) {
    name_ = name;
    category_ = category;
    arg_ = arg;
    arg_name_ = arg_name;
    trace_id_ = t_trace_id;
    parent_span_id_ = t_parent_span;
    span_id_ = trace_id_ != 0 ? next_span_id() : 0;
    node_ = t_node;
    saved_parent_span_ = t_parent_span;
    if (span_id_ != 0) t_parent_span = span_id_;
    start_ = trace_now();
  }
}

TraceSpan::~TraceSpan() {
  if (name_ != nullptr) {
    t_parent_span = saved_parent_span_;
    record();
  }
}

void TraceSpan::record() {
  auto& log = TraceLog::global();
  const auto end = trace_now();
  TraceEvent ev;
  ev.name = name_;
  ev.category = category_;
  ev.start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    start_ - log.epoch())
                    .count();
  ev.duration_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count();
  ev.tid = this_thread_id();
  ev.arg = arg_;
  ev.arg_name = arg_name_;
  ev.trace_id = trace_id_;
  ev.span_id = span_id_;
  ev.parent_span_id = parent_span_id_;
  ev.node = node_;
  log.append(ev);
}

#endif  // FASTPR_TELEMETRY_ENABLED

}  // namespace fastpr::telemetry
