#include "telemetry/trace.h"

#include <algorithm>
#include <sstream>

#include "telemetry/json.h"

namespace fastpr::telemetry {

namespace {

std::atomic<uint32_t> g_next_thread_id{1};
std::atomic<uint64_t> g_next_log_id{1};

}  // namespace

uint32_t this_thread_id() {
  thread_local const uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceLog::TraceLog()
    : id_(g_next_log_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(trace_now()) {}

TraceLog& TraceLog::global() {
  static TraceLog* log = new TraceLog();  // fastpr-lint: allow(naked-new) — intentionally leaked: spans may fire during static destruction
  return *log;
}

TraceLog::ThreadBuffer& TraceLog::local_buffer() {
  // Cache keyed by log identity so test-local TraceLog instances get
  // their own buffers; the id (not the pointer) guards against a new
  // log reusing a destroyed one's address.
  struct TlsSlot {
    uint64_t log_id = 0;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  thread_local TlsSlot slot;
  if (slot.log_id != id_) {
    slot.buffer = std::make_shared<ThreadBuffer>();
    slot.log_id = id_;
    MutexLock lock(mutex_);
    buffers_.push_back(slot.buffer);
  }
  return *slot.buffer;
}

void TraceLog::append(const TraceEvent& event) {
  ThreadBuffer& buf = local_buffer();
  MutexLock lock(buf.mutex);  // uncontended except during a drain
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(event);
}

std::vector<TraceEvent> TraceLog::snapshot() {
  MutexLock lock(mutex_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mutex);
    drained_.insert(drained_.end(), buf->events.begin(), buf->events.end());
    buf->events.clear();
  }
  std::vector<TraceEvent> out = drained_;
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

std::string TraceLog::to_chrome_json() {
  const auto events = snapshot();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    if (i != 0) os << ",";
    os << "{\"name\":" << json_str(ev.name)
       << ",\"cat\":" << json_str(ev.category)
       << ",\"ph\":\"X\",\"ts\":" << ev.start_us
       << ",\"dur\":" << ev.duration_us << ",\"pid\":1,\"tid\":" << ev.tid;
    if (ev.arg >= 0 && ev.arg_name != nullptr) {
      os << ",\"args\":{" << json_str(ev.arg_name) << ":" << ev.arg << "}";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void TraceLog::clear() {
  MutexLock lock(mutex_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mutex);
    buf->events.clear();
    buf->dropped = 0;
  }
  drained_.clear();
}

int64_t TraceLog::dropped() const {
  MutexLock lock(mutex_);
  int64_t total = 0;
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

#if FASTPR_TELEMETRY_ENABLED

void TraceSpan::record() {
  auto& log = TraceLog::global();
  const auto end = trace_now();
  TraceEvent ev;
  ev.name = name_;
  ev.category = category_;
  ev.start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    start_ - log.epoch())
                    .count();
  ev.duration_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count();
  ev.tid = this_thread_id();
  ev.arg = arg_;
  ev.arg_name = arg_name_;
  log.append(ev);
}

#endif  // FASTPR_TELEMETRY_ENABLED

}  // namespace fastpr::telemetry
