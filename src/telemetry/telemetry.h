// Telemetry compile gate.
//
// Telemetry (metrics + tracing) is compiled in by default; configuring
// with -DFASTPR_TELEMETRY=OFF defines FASTPR_TELEMETRY_DISABLED and
// every hot-path hook — counter increments, histogram observations,
// TraceSpan construction, ThreadPool queue timestamps — compiles to
// nothing. The registry, trace log and RepairReport types keep their
// full API in both modes so call sites never need their own #if; with
// telemetry off the exports simply report zeros and empty traces.
#pragma once

#if defined(FASTPR_TELEMETRY_DISABLED)
#define FASTPR_TELEMETRY_ENABLED 0
#else
#define FASTPR_TELEMETRY_ENABLED 1
#endif
