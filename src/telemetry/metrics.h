// Lock-cheap metrics registry (DESIGN.md §5c).
//
// Three metric kinds cover everything the repair path reports:
//  * Counter   — monotonically increasing event count (packets sent,
//                pool hits); one relaxed fetch_add per increment.
//  * Gauge     — last-written value (bytes in flight, config echoes).
//  * Histogram — fixed log-scale (power-of-two) buckets; observation is
//                three relaxed atomic adds, no allocation, no lock.
//
// Metrics are owned by a MetricsRegistry, keyed by dotted lowercase
// names ("component.metric"). Registration takes the registry mutex
// once; hot paths cache the returned reference (typically in a
// function-local static), after which updates never lock. Registered
// metrics live as long as the registry — reset() zeroes values but
// never invalidates references.
//
// Reads are snapshot-on-read: snapshot() copies every value under the
// registry mutex into a plain struct that can be exported (JSON / CSV)
// or inspected without racing the writers.
//
// With -DFASTPR_TELEMETRY=OFF every mutation inlines to a no-op (the
// objects still exist so call sites compile unchanged).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace fastpr::telemetry {

class Counter {
 public:
  void add(int64_t n = 1) {
#if FASTPR_TELEMETRY_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void set(int64_t v) {
#if FASTPR_TELEMETRY_ENABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void add(int64_t n) {
#if FASTPR_TELEMETRY_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-scale histogram over non-negative int64 samples (negative and
/// zero samples land in bucket 0). Bucket i >= 1 covers [2^(i-1), 2^i),
/// so boundaries are fixed at compile time and observation needs no
/// configuration, comparison loop, or lock.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index a value falls into: 0 for v <= 0, else
  /// floor(log2(v)) + 1 capped at kNumBuckets - 1.
  static int bucket_index(int64_t v) {
    if (v <= 0) return 0;
    const int log2 = 63 - std::countl_zero(static_cast<uint64_t>(v));
    return log2 + 1 < kNumBuckets ? log2 + 1 : kNumBuckets - 1;
  }

  /// Largest value bucket i can hold: 0 for bucket 0, 2^i - 1 above.
  static int64_t bucket_upper_bound(int i) {
    if (i <= 0) return 0;
    if (i >= 63) return INT64_MAX;
    return (int64_t{1} << i) - 1;
  }

  void observe(int64_t v) {
#if FASTPR_TELEMETRY_ENABLED
    buckets_[static_cast<size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    std::array<int64_t, kNumBuckets> buckets{};

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Upper bound of the bucket holding the p-quantile (p in [0,1]);
    /// 0 on an empty snapshot. Log-scale buckets bound the error to 2x.
    int64_t percentile(double p) const;
  };

  Snapshot snapshot() const;
  void reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

/// Name → metric map. Use MetricsRegistry::global() for the process-wide
/// registry the repair path reports into; construct instances directly
/// only in tests that need isolation.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Finds or creates the named metric. The reference stays valid for
  /// the registry's lifetime; hot paths should cache it.
  Counter& counter(const std::string& name) FASTPR_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) FASTPR_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name) FASTPR_EXCLUDES(mutex_);

  struct Snapshot {
    std::vector<std::pair<std::string, int64_t>> counters;  // name-sorted
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

    std::string to_json() const;
    /// One metric per line: kind,name,count,sum,value (histograms put
    /// their sample count in `count` and total in `sum`; counters and
    /// gauges use `value`).
    std::string to_csv() const;
    /// Prometheus text exposition format (version 0.0.4). Dotted metric
    /// names become underscore-separated; histograms export cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`.
    std::string to_prometheus() const;
  };

  Snapshot snapshot() const FASTPR_EXCLUDES(mutex_);

  /// Zeroes every registered metric. Objects stay registered and every
  /// previously returned reference remains valid (benches call this
  /// between runs to scope metrics to one run).
  void reset() FASTPR_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_{lock_order::kTelemetryMetrics};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FASTPR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      FASTPR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      FASTPR_GUARDED_BY(mutex_);
};

}  // namespace fastpr::telemetry
