#include "telemetry/metrics.h"

#include <sstream>

#include "telemetry/json.h"

namespace fastpr::telemetry {

int64_t Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Nearest-rank over the cumulative bucket counts.
  const auto target = static_cast<int64_t>(p * static_cast<double>(count));
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[static_cast<size_t>(i)];
    if (cumulative > target || (cumulative == target && cumulative == count)) {
      return bucket_upper_bound(i);
    }
  }
  return bucket_upper_bound(kNumBuckets - 1);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // fastpr-lint: allow(naked-new) — intentionally leaked: metrics outlive every static destructor
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  MutexLock lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) os << ",";
    os << json_str(counters[i].first) << ":" << counters[i].second;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i != 0) os << ",";
    os << json_str(gauges[i].first) << ":" << gauges[i].second;
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i != 0) os << ",";
    const auto& [name, h] = histograms[i];
    os << json_str(name) << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"mean\":" << json_num(h.mean())
       << ",\"p50\":" << h.percentile(0.50)
       << ",\"p99\":" << h.percentile(0.99) << ",\"buckets\":[";
    // Sparse export: only non-empty buckets, as {le, count} pairs.
    bool first = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const int64_t n = h.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"le\":" << Histogram::bucket_upper_bound(b)
         << ",\"count\":" << n << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted
/// lowercase names map cleanly by folding every illegal byte to '_'.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) out[i] = '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::Snapshot::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << v << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    // Prometheus buckets are cumulative; ours are per-bucket counts
    // with power-of-two upper bounds. Emit only the bounds that hold
    // samples (plus +Inf, which always equals the total count).
    int64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const int64_t count = h.buckets[static_cast<size_t>(b)];
      if (count == 0) continue;
      cumulative += count;
      os << n << "_bucket{le=\"" << Histogram::bucket_upper_bound(b)
         << "\"} " << cumulative << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << n << "_sum " << h.sum << "\n"
       << n << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::Snapshot::to_csv() const {
  std::ostringstream os;
  os << "kind,name,count,sum,value\n";
  for (const auto& [name, v] : counters) {
    os << "counter," << name << ",,," << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    os << "gauge," << name << ",,," << v << "\n";
  }
  for (const auto& [name, h] : histograms) {
    os << "histogram," << name << "," << h.count << "," << h.sum << ",\n";
  }
  return os.str();
}

}  // namespace fastpr::telemetry
