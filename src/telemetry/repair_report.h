// Paper-shaped aggregation of one executed repair (DESIGN.md §5c).
//
// The evaluation sections of the paper reason about repair time round
// by round: each round reconstructs cr = |R_l| chunks while cm ≈ tr/tm
// chunks migrate concurrently (Algorithm 2). RepairReport is that
// table, measured: the coordinator fills one RepairRoundStats per
// executed round, the testbed adds the STF-disk utilization, and the
// caller can attach the cost model's per-round prediction so measured
// and modelled round structure diff side by side.
//
// This header deliberately depends on nothing but the standard library:
// predictions arrive as plain numbers (computed by callers who know
// core::CostModel), keeping telemetry at the bottom of the link graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fastpr::telemetry {

/// One executed repair round.
struct RepairRoundStats {
  int round = 0;  // 1-based, matching the paper's figures
  int cr = 0;     // chunks repaired by reconstruction (fallbacks included)
  int cm = 0;     // chunks repaired by migration
  /// Migrations that failed and were re-executed as reconstructions
  /// (each also counts in cr, not cm).
  int fallbacks = 0;
  /// Task reissues during the round — failed or stalled tasks sent out
  /// again with alternate helpers/destinations (fallback conversions
  /// included).
  int retries = 0;
  int64_t bytes_reconstructed = 0;  // repaired bytes written via decode
  int64_t bytes_migrated = 0;       // repaired bytes copied off the STF node
  double duration_seconds = 0;
  /// Fraction of the STF node's disk bandwidth consumed by this round's
  /// migration reads (bytes_migrated / (disk_bw * duration)). Filled by
  /// the testbed, which knows the configured disk rate; 0 when the disk
  /// is unshaped or the rate is unknown.
  double stf_bw_utilization = 0;
  /// Measured reconstruction / migration phase times: start of round to
  /// the last completion of each kind. 0 when unmeasured (simulator) or
  /// the round ran none of that kind.
  double tr_seconds = 0;
  double tm_seconds = 0;
};

/// Cost-model expectation for one round (see CostModel::round_time).
/// tr/tm are the model's Eq 1–4 phase terms; 0 when the caller only
/// attached the round total.
struct PredictedRound {
  int cr = 0;
  int cm = 0;
  double duration_seconds = 0;
  double tr_seconds = 0;
  double tm_seconds = 0;
};

/// One directed link's bandwidth estimate at the end of the run, as
/// measured by telemetry::FlowMonitor (plain copy so this header stays
/// stdlib-only).
struct LinkBandwidth {
  int src = -1;
  int dst = -1;
  int64_t tx_bytes = 0;
  int64_t rx_bytes = 0;
  double ewma_bytes_per_sec = 0;
  double expected_bytes_per_sec = 0;
  int64_t injected_delay_us = 0;
  bool straggler = false;
};

/// Per-STF-node breakdown of a multi-STF batch execution (DESIGN.md §8).
/// Plain ints so telemetry keeps its stdlib-only footing; `stf` is the
/// node id.
struct StfRepairStats {
  int stf = -1;
  int planned = 0;        // chunks of this node the plan covers
  int migrated = 0;
  int reconstructed = 0;
  int unrepaired = 0;
  /// Round (1-based) in which THIS node was declared dead; 0 = alive.
  int died_at_round = 0;
};

struct RepairReport {
  std::vector<RepairRoundStats> rounds;
  /// Empty, or exactly rounds.size() entries aligned by index.
  std::vector<PredictedRound> predicted;
  double total_seconds = 0;
  /// First round (1-based) in which the execution degraded from
  /// predictive to reactive repair (STF death); 0 = never degraded.
  int degraded_at_round = 0;
  /// Multi-STF executions only (batch >= 2); empty otherwise, and then
  /// absent from the JSON so single-STF output is unchanged.
  std::vector<StfRepairStats> per_stf;
  /// Per-link EWMA bandwidth estimates from the flow monitor; empty
  /// (and absent from the JSON) when flow telemetry was off.
  std::vector<LinkBandwidth> links;

  int total_cr() const;
  int total_cm() const;

  /// One JSON object: totals plus per-round rows (and predictions when
  /// attached). Embeddable — no trailing newline.
  std::string to_json() const;
  /// Header + one line per round.
  std::string to_csv() const;
};

/// JSON array of per-link rows — the `links` part of RepairReport's
/// JSON, also what `fastpr_cli --flow-out` writes standalone.
std::string links_to_json(const std::vector<LinkBandwidth>& links);

}  // namespace fastpr::telemetry
