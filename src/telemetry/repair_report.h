// Paper-shaped aggregation of one executed repair (DESIGN.md §5c).
//
// The evaluation sections of the paper reason about repair time round
// by round: each round reconstructs cr = |R_l| chunks while cm ≈ tr/tm
// chunks migrate concurrently (Algorithm 2). RepairReport is that
// table, measured: the coordinator fills one RepairRoundStats per
// executed round, the testbed adds the STF-disk utilization, and the
// caller can attach the cost model's per-round prediction so measured
// and modelled round structure diff side by side.
//
// This header deliberately depends on nothing but the standard library:
// predictions arrive as plain numbers (computed by callers who know
// core::CostModel), keeping telemetry at the bottom of the link graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fastpr::telemetry {

/// One executed repair round.
struct RepairRoundStats {
  int round = 0;  // 1-based, matching the paper's figures
  int cr = 0;     // chunks repaired by reconstruction (fallbacks included)
  int cm = 0;     // chunks repaired by migration
  /// Migrations that failed and were re-executed as reconstructions
  /// (each also counts in cr, not cm).
  int fallbacks = 0;
  /// Task reissues during the round — failed or stalled tasks sent out
  /// again with alternate helpers/destinations (fallback conversions
  /// included).
  int retries = 0;
  int64_t bytes_reconstructed = 0;  // repaired bytes written via decode
  int64_t bytes_migrated = 0;       // repaired bytes copied off the STF node
  double duration_seconds = 0;
  /// Fraction of the STF node's disk bandwidth consumed by this round's
  /// migration reads (bytes_migrated / (disk_bw * duration)). Filled by
  /// the testbed, which knows the configured disk rate; 0 when the disk
  /// is unshaped or the rate is unknown.
  double stf_bw_utilization = 0;
};

/// Cost-model expectation for one round (see CostModel::round_time).
struct PredictedRound {
  int cr = 0;
  int cm = 0;
  double duration_seconds = 0;
};

/// Per-STF-node breakdown of a multi-STF batch execution (DESIGN.md §8).
/// Plain ints so telemetry keeps its stdlib-only footing; `stf` is the
/// node id.
struct StfRepairStats {
  int stf = -1;
  int planned = 0;        // chunks of this node the plan covers
  int migrated = 0;
  int reconstructed = 0;
  int unrepaired = 0;
  /// Round (1-based) in which THIS node was declared dead; 0 = alive.
  int died_at_round = 0;
};

struct RepairReport {
  std::vector<RepairRoundStats> rounds;
  /// Empty, or exactly rounds.size() entries aligned by index.
  std::vector<PredictedRound> predicted;
  double total_seconds = 0;
  /// First round (1-based) in which the execution degraded from
  /// predictive to reactive repair (STF death); 0 = never degraded.
  int degraded_at_round = 0;
  /// Multi-STF executions only (batch >= 2); empty otherwise, and then
  /// absent from the JSON so single-STF output is unchanged.
  std::vector<StfRepairStats> per_stf;

  int total_cr() const;
  int total_cm() const;

  /// One JSON object: totals plus per-round rows (and predictions when
  /// attached). Embeddable — no trailing newline.
  std::string to_json() const;
  /// Header + one line per round.
  std::string to_csv() const;
};

}  // namespace fastpr::telemetry
