#include "telemetry/repair_report.h"

#include <sstream>

#include "telemetry/json.h"

namespace fastpr::telemetry {

int RepairReport::total_cr() const {
  int total = 0;
  for (const auto& r : rounds) total += r.cr;
  return total;
}

int RepairReport::total_cm() const {
  int total = 0;
  for (const auto& r : rounds) total += r.cm;
  return total;
}

std::string RepairReport::to_json() const {
  std::ostringstream os;
  os << "{\"total_seconds\":" << json_num(total_seconds)
     << ",\"total_cr\":" << total_cr() << ",\"total_cm\":" << total_cm()
     << ",\"degraded_at_round\":" << degraded_at_round;
  if (!per_stf.empty()) {
    os << ",\"per_stf\":[";
    for (size_t i = 0; i < per_stf.size(); ++i) {
      const auto& s = per_stf[i];
      if (i != 0) os << ",";
      os << "{\"stf\":" << s.stf << ",\"planned\":" << s.planned
         << ",\"migrated\":" << s.migrated
         << ",\"reconstructed\":" << s.reconstructed
         << ",\"unrepaired\":" << s.unrepaired
         << ",\"died_at_round\":" << s.died_at_round << "}";
    }
    os << "]";
  }
  os << ",\"rounds\":[";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const auto& r = rounds[i];
    if (i != 0) os << ",";
    os << "{\"round\":" << r.round << ",\"cr\":" << r.cr
       << ",\"cm\":" << r.cm << ",\"fallbacks\":" << r.fallbacks
       << ",\"retries\":" << r.retries
       << ",\"bytes_reconstructed\":" << r.bytes_reconstructed
       << ",\"bytes_migrated\":" << r.bytes_migrated
       << ",\"duration_seconds\":" << json_num(r.duration_seconds)
       << ",\"stf_bw_utilization\":" << json_num(r.stf_bw_utilization);
    if (r.tr_seconds > 0 || r.tm_seconds > 0) {
      os << ",\"tr_seconds\":" << json_num(r.tr_seconds)
         << ",\"tm_seconds\":" << json_num(r.tm_seconds);
    }
    if (i < predicted.size()) {
      const auto& p = predicted[i];
      os << ",\"predicted\":{\"cr\":" << p.cr << ",\"cm\":" << p.cm
         << ",\"duration_seconds\":" << json_num(p.duration_seconds);
      if (p.tr_seconds > 0 || p.tm_seconds > 0) {
        os << ",\"tr_seconds\":" << json_num(p.tr_seconds)
           << ",\"tm_seconds\":" << json_num(p.tm_seconds);
      }
      os << "}";
      // Prediction drift: how far the measured round ran from the
      // model (ratio > 1 = slower than predicted).
      os << ",\"drift\":{\"round_time_error_seconds\":"
         << json_num(r.duration_seconds - p.duration_seconds)
         << ",\"round_time_ratio\":"
         << json_num(p.duration_seconds > 0
                         ? r.duration_seconds / p.duration_seconds
                         : 0.0);
      if (p.tr_seconds > 0 && r.tr_seconds > 0) {
        os << ",\"tr_ratio\":" << json_num(r.tr_seconds / p.tr_seconds);
      }
      if (p.tm_seconds > 0 && r.tm_seconds > 0) {
        os << ",\"tm_ratio\":" << json_num(r.tm_seconds / p.tm_seconds);
      }
      os << "}";
    }
    os << "}";
  }
  os << "]";
  if (!links.empty()) {
    os << ",\"links\":" << links_to_json(links);
  }
  os << "}";
  return os.str();
}

std::string links_to_json(const std::vector<LinkBandwidth>& links) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < links.size(); ++i) {
    const auto& l = links[i];
    if (i != 0) os << ",";
    os << "{\"src\":" << l.src << ",\"dst\":" << l.dst
       << ",\"tx_bytes\":" << l.tx_bytes << ",\"rx_bytes\":" << l.rx_bytes
       << ",\"ewma_bytes_per_sec\":" << json_num(l.ewma_bytes_per_sec)
       << ",\"expected_bytes_per_sec\":"
       << json_num(l.expected_bytes_per_sec)
       << ",\"injected_delay_us\":" << l.injected_delay_us
       << ",\"straggler\":" << (l.straggler ? "true" : "false") << "}";
  }
  os << "]";
  return os.str();
}

std::string RepairReport::to_csv() const {
  std::ostringstream os;
  os << "round,cr,cm,fallbacks,retries,bytes_reconstructed,bytes_migrated,"
        "duration_seconds,stf_bw_utilization\n";
  for (const auto& r : rounds) {
    os << r.round << "," << r.cr << "," << r.cm << "," << r.fallbacks << ","
       << r.retries << ","
       << r.bytes_reconstructed << "," << r.bytes_migrated << ","
       << json_num(r.duration_seconds) << ","
       << json_num(r.stf_bw_utilization) << "\n";
  }
  return os.str();
}

}  // namespace fastpr::telemetry
