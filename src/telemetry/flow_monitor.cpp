#include "telemetry/flow_monitor.h"

#include <algorithm>

namespace fastpr::telemetry {

#if FASTPR_TELEMETRY_ENABLED

FlowMonitor::Link& FlowMonitor::link(int src, int dst) {
  const std::pair<int, int> key{src, dst};
  auto it = std::lower_bound(
      links_.begin(), links_.end(), key,
      [](const auto& entry, const std::pair<int, int>& k) {
        return entry.first < k;
      });
  if (it == links_.end() || it->first != key) {
    it = links_.insert(it, {key, Link{}});
  }
  return it->second;
}

void FlowMonitor::fold_window(Link& l, int64_t now_us) {
  if (l.window_start_us < 0) return;
  const int64_t active_us =
      now_us - l.window_start_us - l.window_injected_us;
  if (active_us < static_cast<int64_t>(options_.window_seconds * 1e6)) {
    return;  // window still open
  }
  if (active_us > 0 && l.window_bytes > 0) {
    const double rate = static_cast<double>(l.window_bytes) /
                        (static_cast<double>(active_us) / 1e6);
    l.ewma_bytes_per_sec =
        l.ewma_bytes_per_sec == 0
            ? rate
            : options_.ewma_alpha * rate +
                  (1.0 - options_.ewma_alpha) * l.ewma_bytes_per_sec;
  }
  l.window_start_us = now_us;
  l.window_bytes = 0;
  l.window_injected_us = 0;
}

void FlowMonitor::on_tx(int src, int dst, int64_t bytes, int64_t now_us) {
  (void)now_us;
  MutexLock lock(mutex_);
  link(src, dst).tx_bytes += bytes;
}

void FlowMonitor::on_rx(int src, int dst, int64_t bytes, int64_t now_us) {
  MutexLock lock(mutex_);
  Link& l = link(src, dst);
  l.rx_bytes += bytes;
  if (l.window_start_us < 0) {
    l.window_start_us = now_us;
  } else if (l.last_rx_us >= 0) {
    // Idle gaps (nothing scheduled on the link, e.g. the barrier
    // between rounds) are excluded from active time exactly like
    // injected delay — only sub-gap pacing counts toward the rate.
    const int64_t gap_us = now_us - l.last_rx_us;
    if (gap_us > static_cast<int64_t>(options_.idle_gap_seconds * 1e6)) {
      l.window_injected_us += gap_us;
    }
  }
  l.last_rx_us = now_us;
  l.window_bytes += bytes;
  fold_window(l, now_us);
}

void FlowMonitor::on_injected_delay(int src, int dst, int64_t delay_us) {
  MutexLock lock(mutex_);
  Link& l = link(src, dst);
  l.total_injected_us += delay_us;
  if (l.window_start_us >= 0) l.window_injected_us += delay_us;
}

void FlowMonitor::set_expected_rate(int src, int dst,
                                    double bytes_per_sec) {
  MutexLock lock(mutex_);
  link(src, dst).expected_bytes_per_sec = bytes_per_sec;
}

void FlowMonitor::set_default_expected_rate(double bytes_per_sec) {
  MutexLock lock(mutex_);
  default_expected_bytes_per_sec_ = bytes_per_sec;
}

std::vector<LinkStats> FlowMonitor::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<LinkStats> out;
  out.reserve(links_.size());
  for (const auto& [key, l] : links_) {
    LinkStats s;
    s.src = key.first;
    s.dst = key.second;
    s.tx_bytes = l.tx_bytes;
    s.rx_bytes = l.rx_bytes;
    s.ewma_bytes_per_sec = l.ewma_bytes_per_sec;
    s.expected_bytes_per_sec = l.expected_bytes_per_sec > 0
                                   ? l.expected_bytes_per_sec
                                   : default_expected_bytes_per_sec_;
    s.injected_delay_us = l.total_injected_us;
    s.straggler = s.ewma_bytes_per_sec > 0 &&
                  s.expected_bytes_per_sec > 0 &&
                  s.ewma_bytes_per_sec <
                      options_.straggler_factor * s.expected_bytes_per_sec;
    out.push_back(s);
  }
  return out;
}

void FlowMonitor::clear() {
  MutexLock lock(mutex_);
  links_.clear();
}

#endif  // FASTPR_TELEMETRY_ENABLED

}  // namespace fastpr::telemetry
