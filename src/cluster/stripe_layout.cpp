#include "cluster/stripe_layout.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace fastpr::cluster {

StripeLayout::StripeLayout(int num_nodes, int chunks_per_stripe)
    : num_nodes_(num_nodes),
      chunks_per_stripe_(chunks_per_stripe),
      node_chunks_(static_cast<size_t>(num_nodes)) {
  FASTPR_CHECK(num_nodes >= 1);
  FASTPR_CHECK_MSG(chunks_per_stripe >= 1 && chunks_per_stripe <= num_nodes,
                   "a stripe needs n distinct nodes");
}

StripeLayout StripeLayout::random(int num_nodes, int chunks_per_stripe,
                                  int num_stripes, Rng& rng) {
  StripeLayout layout(num_nodes, chunks_per_stripe);
  for (int s = 0; s < num_stripes; ++s) {
    const auto picks = rng.sample_distinct(num_nodes, chunks_per_stripe);
    std::vector<NodeId> nodes(picks.begin(), picks.end());
    layout.add_stripe(nodes);
  }
  return layout;
}

StripeLayout StripeLayout::random_racked(int num_nodes,
                                         int chunks_per_stripe,
                                         int num_stripes, int nodes_per_rack,
                                         Rng& rng) {
  FASTPR_CHECK(nodes_per_rack >= 1);
  const int racks = num_nodes / nodes_per_rack;
  FASTPR_CHECK_MSG(racks >= chunks_per_stripe,
                   "rack-disjoint placement needs >= n racks: "
                       << racks << " racks of " << nodes_per_rack
                       << " for n=" << chunks_per_stripe);
  StripeLayout layout(num_nodes, chunks_per_stripe);
  for (int s = 0; s < num_stripes; ++s) {
    const auto rack_picks = rng.sample_distinct(racks, chunks_per_stripe);
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<size_t>(chunks_per_stripe));
    for (int rack : rack_picks) {
      const int base = rack * nodes_per_rack;
      // A partial trailing rack (num_nodes not divisible) is smaller.
      const int size = std::min(nodes_per_rack, num_nodes - base);
      nodes.push_back(base + static_cast<int>(rng.uniform(0, size - 1)));
    }
    layout.add_stripe(nodes);
  }
  return layout;
}

StripeId StripeLayout::add_stripe(const std::vector<NodeId>& nodes) {
  FASTPR_CHECK(static_cast<int>(nodes.size()) == chunks_per_stripe_);
  std::unordered_set<NodeId> distinct(nodes.begin(), nodes.end());
  FASTPR_CHECK_MSG(static_cast<int>(distinct.size()) == chunks_per_stripe_,
                   "stripe nodes must be distinct");
  for (NodeId node : nodes) {
    FASTPR_CHECK(node >= 0 && node < num_nodes_);
  }
  const StripeId id = static_cast<StripeId>(stripe_nodes_.size());
  ++version_;
  stripe_nodes_.push_back(nodes);
  for (int i = 0; i < chunks_per_stripe_; ++i) {
    node_chunks_[static_cast<size_t>(nodes[static_cast<size_t>(i)])]
        .push_back(ChunkRef{id, i});
  }
  return id;
}

NodeId StripeLayout::node_of(ChunkRef chunk) const {
  FASTPR_CHECK(chunk.stripe >= 0 && chunk.stripe < num_stripes());
  FASTPR_CHECK(chunk.index >= 0 && chunk.index < chunks_per_stripe_);
  return stripe_nodes_[static_cast<size_t>(chunk.stripe)]
                      [static_cast<size_t>(chunk.index)];
}

const std::vector<NodeId>& StripeLayout::stripe_nodes(StripeId stripe) const {
  FASTPR_CHECK(stripe >= 0 && stripe < num_stripes());
  return stripe_nodes_[static_cast<size_t>(stripe)];
}

const std::vector<ChunkRef>& StripeLayout::chunks_on(NodeId node) const {
  FASTPR_CHECK(node >= 0 && node < num_nodes_);
  return node_chunks_[static_cast<size_t>(node)];
}

int StripeLayout::load(NodeId node) const {
  return static_cast<int>(chunks_on(node).size());
}

bool StripeLayout::stripe_uses_node(StripeId stripe, NodeId node) const {
  const auto& nodes = stripe_nodes(stripe);
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

void StripeLayout::move_chunk(ChunkRef chunk, NodeId dst) {
  FASTPR_CHECK(dst >= 0 && dst < num_nodes_);
  const NodeId src = node_of(chunk);
  if (src == dst) return;
  FASTPR_CHECK_MSG(!stripe_uses_node(chunk.stripe, dst),
                   "destination already holds a chunk of stripe "
                       << chunk.stripe);
  ++version_;
  stripe_nodes_[static_cast<size_t>(chunk.stripe)]
               [static_cast<size_t>(chunk.index)] = dst;
  auto& src_list = node_chunks_[static_cast<size_t>(src)];
  const auto it = std::find(src_list.begin(), src_list.end(), chunk);
  FASTPR_CHECK(it != src_list.end());
  src_list.erase(it);
  node_chunks_[static_cast<size_t>(dst)].push_back(chunk);
}

void StripeLayout::check_invariants() const {
  // Distinctness per stripe + index consistency.
  size_t total = 0;
  for (StripeId s = 0; s < num_stripes(); ++s) {
    const auto& nodes = stripe_nodes_[static_cast<size_t>(s)];
    std::unordered_set<NodeId> distinct(nodes.begin(), nodes.end());
    FASTPR_CHECK_MSG(distinct.size() == nodes.size(),
                     "stripe " << s << " co-locates chunks");
  }
  for (NodeId node = 0; node < num_nodes_; ++node) {
    for (ChunkRef c : node_chunks_[static_cast<size_t>(node)]) {
      FASTPR_CHECK_MSG(node_of(c) == node, "index out of sync");
      ++total;
    }
  }
  FASTPR_CHECK(total == static_cast<size_t>(total_chunks()));
}

}  // namespace fastpr::cluster
