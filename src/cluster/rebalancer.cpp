#include "cluster/rebalancer.h"

#include <algorithm>

#include "util/check.h"

namespace fastpr::cluster {

namespace {

struct LoadExtremes {
  NodeId max_node = kNoNode;
  NodeId min_node = kNoNode;
  int max_load = -1;
  int min_load = -1;
};

LoadExtremes find_extremes(const StripeLayout& layout,
                           const std::vector<NodeId>& nodes) {
  LoadExtremes ext;
  for (NodeId node : nodes) {
    const int load = layout.load(node);
    if (ext.max_node == kNoNode || load > ext.max_load) {
      ext.max_node = node;
      ext.max_load = load;
    }
    if (ext.min_node == kNoNode || load < ext.min_load) {
      ext.min_node = node;
      ext.min_load = load;
    }
  }
  return ext;
}

}  // namespace

RebalanceReport rebalance(StripeLayout& layout,
                          const std::vector<NodeId>& eligible_nodes,
                          int tolerance) {
  FASTPR_CHECK(!eligible_nodes.empty());
  FASTPR_CHECK(tolerance >= 0);

  RebalanceReport report;
  {
    const auto ext = find_extremes(layout, eligible_nodes);
    report.max_load_before = ext.max_load;
    report.min_load_before = ext.min_load;
  }

  for (;;) {
    const auto ext = find_extremes(layout, eligible_nodes);
    if (ext.max_load - ext.min_load <= tolerance) break;

    // Move any chunk from the most-loaded node whose stripe does not
    // already touch an underloaded node. Prefer the least-loaded legal
    // destination to converge fast.
    const auto chunks = layout.chunks_on(ext.max_node);  // copy-safe ref
    bool moved = false;
    for (ChunkRef chunk : std::vector<ChunkRef>(chunks.begin(),
                                                chunks.end())) {
      // Candidate destinations sorted by load.
      std::vector<NodeId> candidates;
      for (NodeId node : eligible_nodes) {
        if (node == ext.max_node) continue;
        if (layout.load(node) >= ext.max_load - 1) continue;
        if (layout.stripe_uses_node(chunk.stripe, node)) continue;
        candidates.push_back(node);
      }
      if (candidates.empty()) continue;
      const NodeId dst = *std::min_element(
          candidates.begin(), candidates.end(),
          [&](NodeId a, NodeId b) { return layout.load(a) < layout.load(b); });
      layout.move_chunk(chunk, dst);
      ++report.moves;
      moved = true;
      break;
    }
    if (!moved) break;  // no legal move: stuck (tight fault-tolerance)
  }

  const auto ext = find_extremes(layout, eligible_nodes);
  report.max_load_after = ext.max_load;
  report.min_load_after = ext.min_load;
  return report;
}

}  // namespace fastpr::cluster
