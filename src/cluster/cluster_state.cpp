#include "cluster/cluster_state.h"

#include <sstream>

#include "util/check.h"

namespace fastpr::cluster {

ClusterState::ClusterState(int num_storage_nodes, int num_hot_standby,
                           BandwidthProfile bandwidth)
    : num_storage_(num_storage_nodes),
      num_standby_(num_hot_standby),
      bandwidth_(bandwidth),
      health_(static_cast<size_t>(num_storage_nodes + num_hot_standby),
              NodeHealth::kHealthy) {
  FASTPR_CHECK(num_storage_nodes >= 1);
  FASTPR_CHECK(num_hot_standby >= 0);
}

bool ClusterState::is_hot_standby(NodeId node) const {
  FASTPR_CHECK(node >= 0 && node < num_nodes());
  return node >= num_storage_;
}

NodeHealth ClusterState::health(NodeId node) const {
  FASTPR_CHECK(node >= 0 && node < num_nodes());
  return health_[static_cast<size_t>(node)];
}

void ClusterState::set_health(NodeId node, NodeHealth health) {
  FASTPR_CHECK(node >= 0 && node < num_nodes());
  health_[static_cast<size_t>(node)] = health;
}

NodeId ClusterState::stf_node() const {
  for (NodeId i = 0; i < num_nodes(); ++i) {
    if (health_[static_cast<size_t>(i)] == NodeHealth::kSoonToFail) {
      return i;
    }
  }
  return kNoNode;
}

std::vector<NodeId> ClusterState::stf_nodes() const {
  std::vector<NodeId> nodes;
  for (NodeId i = 0; i < num_nodes(); ++i) {
    if (health_[static_cast<size_t>(i)] == NodeHealth::kSoonToFail) {
      nodes.push_back(i);
    }
  }
  return nodes;
}

std::vector<NodeId> ClusterState::healthy_storage_nodes() const {
  std::vector<NodeId> nodes;
  for (NodeId i = 0; i < num_storage_; ++i) {
    if (health_[static_cast<size_t>(i)] == NodeHealth::kHealthy) {
      nodes.push_back(i);
    }
  }
  return nodes;
}

std::vector<NodeId> ClusterState::hot_standby_nodes() const {
  std::vector<NodeId> nodes;
  for (NodeId i = num_storage_; i < num_nodes(); ++i) {
    if (health_[static_cast<size_t>(i)] == NodeHealth::kHealthy) {
      nodes.push_back(i);
    }
  }
  return nodes;
}

std::string ClusterState::to_string() const {
  std::ostringstream os;
  os << "cluster{storage=" << num_storage_ << ", standby=" << num_standby_
     << ", stf=" << stf_node() << "}";
  return os.str();
}

}  // namespace fastpr::cluster
