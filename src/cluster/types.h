// Identifier types shared across cluster metadata, planner and testbed.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace fastpr::cluster {

/// Node index within a cluster, 0-based, dense.
using NodeId = int32_t;

/// Stripe index, 0-based, dense.
using StripeId = int32_t;

constexpr NodeId kNoNode = -1;

/// A chunk is identified by its stripe and its index within the stripe
/// (0..n-1, where indices >= k are parity for systematic codes).
struct ChunkRef {
  StripeId stripe = -1;
  int32_t index = -1;

  auto operator<=>(const ChunkRef&) const = default;
};

struct ChunkRefHash {
  size_t operator()(const ChunkRef& c) const {
    return std::hash<int64_t>()(
        (static_cast<int64_t>(c.stripe) << 32) |
        static_cast<uint32_t>(c.index));
  }
};

}  // namespace fastpr::cluster
