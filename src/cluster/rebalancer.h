// Background chunk rebalancer.
//
// The paper assumes the cluster "periodically rebalances the chunk
// distribution in the background" after repairs skew it (§II-B). This
// greedy rebalancer moves chunks from the most- to the least-loaded node
// while preserving stripe-distinctness, until the max/min spread is
// within a threshold or no legal move exists.
#pragma once

#include "cluster/stripe_layout.h"
#include "cluster/types.h"

#include <vector>

namespace fastpr::cluster {

struct RebalanceReport {
  int moves = 0;
  int max_load_before = 0;
  int max_load_after = 0;
  int min_load_before = 0;
  int min_load_after = 0;
};

/// Rebalances chunk counts across `eligible_nodes` (typically the healthy
/// storage nodes). Stops when max-min load <= `tolerance` or when stuck.
RebalanceReport rebalance(StripeLayout& layout,
                          const std::vector<NodeId>& eligible_nodes,
                          int tolerance = 1);

}  // namespace fastpr::cluster
