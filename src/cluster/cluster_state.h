// Node health and role bookkeeping for a storage cluster.
//
// Tracks which nodes are healthy, soon-to-fail (STF), failed, or reserved
// as hot-standby spares. The FastPR planner consumes this to know the
// left-side vertex set (healthy nodes) and the repair destinations.
#pragma once

#include <string>
#include <vector>

#include "cluster/types.h"

namespace fastpr::cluster {

enum class NodeHealth {
  kHealthy,
  kSoonToFail,  // flagged by the failure predictor; still serving reads
  kFailed,      // actually dead; chunks unreadable
};

struct BandwidthProfile {
  double disk_bytes_per_sec = 0.0;  // bd
  double net_bytes_per_sec = 0.0;   // bn
};

class ClusterState {
 public:
  /// `num_storage_nodes` regular nodes plus `num_hot_standby` dedicated
  /// spares (ids follow the storage nodes).
  ClusterState(int num_storage_nodes, int num_hot_standby,
               BandwidthProfile bandwidth);

  int num_storage_nodes() const { return num_storage_; }
  int num_hot_standby() const { return num_standby_; }
  int num_nodes() const { return num_storage_ + num_standby_; }

  bool is_hot_standby(NodeId node) const;
  NodeHealth health(NodeId node) const;
  void set_health(NodeId node, NodeHealth health);

  /// The first (lowest-id) STF node, or kNoNode. Single-STF callers —
  /// the paper's own scenarios — use this; batch repair (DESIGN.md §8)
  /// uses stf_nodes().
  NodeId stf_node() const;

  /// Every node currently flagged soon-to-fail, ascending. The paper
  /// assumes one STF node at a time; the multi-STF extension plans a
  /// whole batch jointly, so several flags may be live at once.
  std::vector<NodeId> stf_nodes() const;

  /// Storage nodes that are healthy (excludes STF, failed, hot-standby).
  std::vector<NodeId> healthy_storage_nodes() const;

  /// Hot-standby node ids.
  std::vector<NodeId> hot_standby_nodes() const;

  const BandwidthProfile& bandwidth() const { return bandwidth_; }

  std::string to_string() const;

 private:
  int num_storage_;
  int num_standby_;
  BandwidthProfile bandwidth_;
  std::vector<NodeHealth> health_;
};

}  // namespace fastpr::cluster
