// Chunk-placement metadata: which node stores chunk (stripe, index).
//
// This plays the role of the HDFS NameNode metadata the paper's
// coordinator reads via `hdfs fsck` — the planner's only window into the
// cluster. Placement keeps the stripe-distinctness invariant (a stripe's
// n chunks live on n distinct nodes) at all times.
#pragma once

#include <vector>

#include "cluster/types.h"
#include "util/rng.h"

namespace fastpr::cluster {

class StripeLayout {
 public:
  /// Empty layout over `num_nodes` nodes, chunks per stripe = n.
  StripeLayout(int num_nodes, int chunks_per_stripe);

  /// Random declustered placement: each of `num_stripes` stripes is
  /// placed on n distinct nodes chosen uniformly at random (the paper's
  /// "randomly distribute 1,000 stripes" setup).
  static StripeLayout random(int num_nodes, int chunks_per_stripe,
                             int num_stripes, Rng& rng);

  /// Random rack-disjoint placement: like random(), but no two chunks
  /// of a stripe land in the same rack of `nodes_per_rack` contiguous
  /// nodes (the block mapping of net::Topology — this layer stays
  /// net-agnostic and takes the rack size as a plain int). Requires at
  /// least n racks. Each stripe picks n distinct racks uniformly, then
  /// one node uniformly within each.
  static StripeLayout random_racked(int num_nodes, int chunks_per_stripe,
                                    int num_stripes, int nodes_per_rack,
                                    Rng& rng);

  int num_nodes() const { return num_nodes_; }
  int chunks_per_stripe() const { return chunks_per_stripe_; }
  int num_stripes() const { return static_cast<int>(stripe_nodes_.size()); }
  int total_chunks() const { return num_stripes() * chunks_per_stripe_; }

  /// Appends a stripe placed on the given distinct nodes; returns its id.
  StripeId add_stripe(const std::vector<NodeId>& nodes);

  /// Node storing chunk `index` of `stripe`.
  NodeId node_of(ChunkRef chunk) const;

  /// All n nodes of a stripe, by chunk index.
  const std::vector<NodeId>& stripe_nodes(StripeId stripe) const;

  /// Chunks currently stored on `node` (unordered).
  const std::vector<ChunkRef>& chunks_on(NodeId node) const;

  /// Number of chunks on `node`.
  int load(NodeId node) const;

  /// True iff `node` stores some chunk of `stripe`.
  bool stripe_uses_node(StripeId stripe, NodeId node) const;

  /// Relocates a chunk to `dst`. Enforces stripe-distinctness: dst must
  /// not already hold a chunk of the same stripe (unless it is the chunk
  /// being moved). Used when applying repair plans and by the rebalancer.
  void move_chunk(ChunkRef chunk, NodeId dst);

  /// Validates internal consistency and the distinctness invariant;
  /// throws CheckFailure on violation. Tests call this after mutations.
  void check_invariants() const;

  /// Monotone counter bumped by every mutation (add_stripe, move_chunk).
  /// Consumers that precompute against a layout (e.g. the §IV-D
  /// reconstruction-set cache) use it to detect staleness.
  uint64_t version() const { return version_; }

 private:
  int num_nodes_;
  int chunks_per_stripe_;
  /// stripe_nodes_[s][i] = node storing chunk i of stripe s.
  std::vector<std::vector<NodeId>> stripe_nodes_;
  /// node_chunks_[node] = chunks stored on node (derived index).
  std::vector<std::vector<ChunkRef>> node_chunks_;
  uint64_t version_ = 0;
};

}  // namespace fastpr::cluster
