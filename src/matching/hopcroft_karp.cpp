#include "matching/hopcroft_karp.h"

#include <limits>
#include <queue>
#include <vector>

#include "util/check.h"

namespace fastpr::matching {

namespace {
constexpr int kInf = std::numeric_limits<int>::max();
}

MatchingResult hopcroft_karp(const BipartiteGraph& graph) {
  const int nl = graph.left_count;
  const int nr = graph.right_count();
  std::vector<int> match_l(static_cast<size_t>(nl), -1);
  std::vector<int> match_r(static_cast<size_t>(nr), -1);
  std::vector<int> dist(static_cast<size_t>(nr), kInf);

  // BFS layers free right vertices; returns true if an augmenting path
  // exists.
  auto bfs = [&]() {
    std::queue<int> q;
    for (int r = 0; r < nr; ++r) {
      if (match_r[static_cast<size_t>(r)] == -1) {
        dist[static_cast<size_t>(r)] = 0;
        q.push(r);
      } else {
        dist[static_cast<size_t>(r)] = kInf;
      }
    }
    bool found = false;
    while (!q.empty()) {
      const int r = q.front();
      q.pop();
      for (int l : graph.right_adj[static_cast<size_t>(r)]) {
        const int next = match_l[static_cast<size_t>(l)];
        if (next == -1) {
          found = true;
        } else if (dist[static_cast<size_t>(next)] == kInf) {
          dist[static_cast<size_t>(next)] =
              dist[static_cast<size_t>(r)] + 1;
          q.push(next);
        }
      }
    }
    return found;
  };

  // DFS along layered graph.
  auto dfs = [&](auto&& self, int r) -> bool {
    for (int l : graph.right_adj[static_cast<size_t>(r)]) {
      const int next = match_l[static_cast<size_t>(l)];
      if (next == -1 ||
          (dist[static_cast<size_t>(next)] ==
               dist[static_cast<size_t>(r)] + 1 &&
           self(self, next))) {
        match_l[static_cast<size_t>(l)] = r;
        match_r[static_cast<size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<size_t>(r)] = kInf;
    return false;
  };

  int size = 0;
  while (bfs()) {
    for (int r = 0; r < nr; ++r) {
      if (match_r[static_cast<size_t>(r)] == -1 && dfs(dfs, r)) ++size;
    }
  }

  MatchingResult result;
  result.right_to_left = std::move(match_r);
  result.size = size;
  return result;
}

bool is_valid_matching(const BipartiteGraph& graph, const MatchingResult& m) {
  if (static_cast<int>(m.right_to_left.size()) != graph.right_count()) {
    return false;
  }
  std::vector<bool> used(static_cast<size_t>(graph.left_count), false);
  int size = 0;
  for (int r = 0; r < graph.right_count(); ++r) {
    const int l = m.right_to_left[static_cast<size_t>(r)];
    if (l == -1) continue;
    if (l < 0 || l >= graph.left_count) return false;
    if (used[static_cast<size_t>(l)]) return false;
    used[static_cast<size_t>(l)] = true;
    const auto& adj = graph.right_adj[static_cast<size_t>(r)];
    bool edge_exists = false;
    for (int cand : adj) {
      if (cand == l) {
        edge_exists = true;
        break;
      }
    }
    if (!edge_exists) return false;
    ++size;
  }
  return size == m.size;
}

}  // namespace fastpr::matching
