// Hopcroft–Karp maximum bipartite matching, O(E * sqrt(V)).
//
// Used where a matching is computed once over a full graph: scattered
// destination selection and the non-incremental reference paths in tests
// and benches. (Algorithm 1's inner MATCH uses the incremental matcher.)
#pragma once

#include "matching/bipartite_graph.h"

namespace fastpr::matching {

/// Computes a maximum matching of `graph`.
MatchingResult hopcroft_karp(const BipartiteGraph& graph);

/// True iff `m` is a valid matching of `graph` (edges exist, no left
/// vertex used twice). Used by tests and by debug assertions.
bool is_valid_matching(const BipartiteGraph& graph, const MatchingResult& m);

}  // namespace fastpr::matching
