#include "matching/brute_force.h"

#include <algorithm>

#include "util/check.h"

namespace fastpr::matching {

namespace {

int recurse(const BipartiteGraph& g, int r, std::vector<bool>& used_left) {
  if (r == g.right_count()) return 0;
  // Option 1: leave right vertex r unmatched.
  int best = recurse(g, r + 1, used_left);
  // Option 2: match r with any free neighbour.
  for (int l : g.right_adj[static_cast<size_t>(r)]) {
    if (used_left[static_cast<size_t>(l)]) continue;
    used_left[static_cast<size_t>(l)] = true;
    best = std::max(best, 1 + recurse(g, r + 1, used_left));
    used_left[static_cast<size_t>(l)] = false;
  }
  return best;
}

}  // namespace

int brute_force_max_matching(const BipartiteGraph& graph) {
  FASTPR_CHECK_MSG(graph.right_count() <= 14,
                   "brute force oracle limited to small graphs");
  std::vector<bool> used_left(static_cast<size_t>(graph.left_count), false);
  return recurse(graph, 0, used_left);
}

}  // namespace fastpr::matching
