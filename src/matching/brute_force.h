// Exponential exact maximum matching for small graphs.
//
// Test oracle only: property suites compare Hopcroft–Karp and the
// incremental matcher against this on randomly generated graphs.
#pragma once

#include "matching/bipartite_graph.h"

namespace fastpr::matching {

/// Exact maximum matching size by exhaustive search. Only call with
/// right_count() <= ~12.
int brute_force_max_matching(const BipartiteGraph& graph);

}  // namespace fastpr::matching
