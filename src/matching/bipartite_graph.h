// Bipartite graph representation shared by the matching algorithms.
//
// Convention across the codebase: the LEFT side holds resource vertices
// (healthy storage nodes) and the RIGHT side holds demand vertices (chunk
// copies to fetch, or stripes needing a destination). Adjacency is stored
// from right vertices to left vertices because demands are created and
// destroyed dynamically while the node set is fixed.
#pragma once

#include <vector>

namespace fastpr::matching {

struct BipartiteGraph {
  int left_count = 0;
  /// right_adj[r] lists the left vertices right-vertex r may match with.
  std::vector<std::vector<int>> right_adj;

  int right_count() const { return static_cast<int>(right_adj.size()); }

  int add_right_vertex(std::vector<int> adjacency) {
    right_adj.push_back(std::move(adjacency));
    return right_count() - 1;
  }
};

/// A matching as right-to-left assignment; -1 means unmatched.
struct MatchingResult {
  std::vector<int> right_to_left;
  int size = 0;

  bool is_perfect_on_right() const {
    return size == static_cast<int>(right_to_left.size());
  }
};

}  // namespace fastpr::matching
