// Incremental bipartite matcher (Kuhn augmenting paths) with rollback.
//
// Algorithm 1 of the paper probes MATCH(R ∪ {Ci}) thousands of times,
// each probe differing from the previous accepted state by one stripe's
// k chunk vertices. Instead of recomputing a maximum matching from
// scratch per probe (the paper's Ford–Fulkerson formulation), this
// matcher keeps the accepted matching and tries to augment once per new
// right vertex; a failed group insertion is rolled back. The result is
// equivalent — a matching saturating all right vertices exists iff the
// augmenting paths exist — but a probe costs O(k·E) instead of O(V·E).
//
// Multi-source capacity extension (DESIGN.md §8): each left vertex may
// carry a capacity > 1, i.e. the node may serve that many helper reads
// per round. Capacities are modelled as per-left slot arrays; with every
// capacity 1 (the default constructor) the behavior is exactly the
// classic one-read-per-node matching.
//
// Adjacency is held BY POINTER: group insertions record a pointer to the
// caller's adjacency vector, which must stay valid for the matcher's
// lifetime (Algorithm 1 caches one adjacency vector per stripe, so this
// also makes copying a matcher — the swap-optimization probe — cheap).
#pragma once

#include <vector>

namespace fastpr::matching {

class IncrementalMatcher {
 public:
  /// Every left vertex has capacity 1 (one helper read per node).
  explicit IncrementalMatcher(int left_count);

  /// Uniform capacity: every left vertex can absorb `capacity` right
  /// vertices (a node serving `capacity` helper reads per round).
  IncrementalMatcher(int left_count, int capacity);

  /// Per-left-vertex capacities (all >= 1).
  explicit IncrementalMatcher(const std::vector<int>& capacities);

  /// Attempts to add `copies` right vertices sharing `adjacency`
  /// (all-or-nothing). On success they are committed and true returns;
  /// on failure the state is unchanged. `adjacency` must outlive the
  /// matcher (and any copies of it).
  bool try_add_group(const std::vector<int>& adjacency, int copies);

  /// Number of committed right vertices (all matched).
  int right_count() const { return static_cast<int>(right_adj_.size()); }

  int left_count() const { return left_count_; }

  /// Sum of all left capacities — the most right vertices this matcher
  /// can ever commit.
  int total_capacity() const { return static_cast<int>(slots_.size()); }

  /// Left vertex matched to committed right vertex r.
  int matched_left(int r) const;

  /// Committed right vertices currently matched to left vertex l.
  int matched_count(int l) const;

  /// Drops all committed vertices, keeping the left side.
  void reset();

 private:
  /// Kuhn DFS: find augmenting path from right vertex r.
  bool augment(int r, std::vector<char>& visited_left);

  /// Places r into slot `slot` of left vertex l.
  void place(int r, int l, int slot);

  /// Rebuilds the slot occupancy from match_r_ (used by rollback).
  void refill_slots();

  int left_count_;
  std::vector<const std::vector<int>*> right_adj_;
  /// slots_[slot_offset_[l] .. slot_offset_[l+1]) hold the right
  /// vertices matched to l (-1 = free slot).
  std::vector<int> slot_offset_;
  std::vector<int> slots_;
  std::vector<int> match_r_;  // right → left (always matched once committed)
};

}  // namespace fastpr::matching
