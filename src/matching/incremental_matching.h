// Incremental bipartite matcher (Kuhn augmenting paths) with rollback.
//
// Algorithm 1 of the paper probes MATCH(R ∪ {Ci}) thousands of times,
// each probe differing from the previous accepted state by one stripe's
// k chunk vertices. Instead of recomputing a maximum matching from
// scratch per probe (the paper's Ford–Fulkerson formulation), this
// matcher keeps the accepted matching and tries to augment once per new
// right vertex; a failed group insertion is rolled back. The result is
// equivalent — a matching saturating all right vertices exists iff the
// augmenting paths exist — but a probe costs O(k·E) instead of O(V·E).
//
// Adjacency is held BY POINTER: group insertions record a pointer to the
// caller's adjacency vector, which must stay valid for the matcher's
// lifetime (Algorithm 1 caches one adjacency vector per stripe, so this
// also makes copying a matcher — the swap-optimization probe — cheap).
#pragma once

#include <vector>

namespace fastpr::matching {

class IncrementalMatcher {
 public:
  explicit IncrementalMatcher(int left_count);

  /// Attempts to add `copies` right vertices sharing `adjacency`
  /// (all-or-nothing). On success they are committed and true returns;
  /// on failure the state is unchanged. `adjacency` must outlive the
  /// matcher (and any copies of it).
  bool try_add_group(const std::vector<int>& adjacency, int copies);

  /// Number of committed right vertices (all matched).
  int right_count() const { return static_cast<int>(right_adj_.size()); }

  int left_count() const { return left_count_; }

  /// Left vertex matched to committed right vertex r.
  int matched_left(int r) const;

  /// Drops all committed vertices, keeping the left side.
  void reset();

 private:
  /// Kuhn DFS: find augmenting path from right vertex r.
  bool augment(int r, std::vector<char>& visited_left);

  int left_count_;
  std::vector<const std::vector<int>*> right_adj_;
  std::vector<int> match_l_;  // left → right (-1 free)
  std::vector<int> match_r_;  // right → left (always matched once committed)
};

}  // namespace fastpr::matching
