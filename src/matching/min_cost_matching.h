// Minimum-cost perfect bipartite matching (successive shortest paths).
//
// The paper's destination selection takes ANY maximum matching (Hall
// guarantees one exists). A production cluster prefers the matching that
// balances load: this solver minimizes the total destination cost (e.g.
// current chunk count) subject to saturating every right vertex. Sizes
// here are tiny (≤ M vertices), so a Bellman–Ford-based successive
// shortest path implementation is plenty.
#pragma once

#include <optional>
#include <utility>
#include <vector>

namespace fastpr::matching {

struct WeightedBipartiteGraph {
  int left_count = 0;
  /// right_adj[r] = (left vertex, edge cost) candidates for r.
  std::vector<std::vector<std::pair<int, double>>> right_adj;

  int right_count() const { return static_cast<int>(right_adj.size()); }

  int add_right_vertex(std::vector<std::pair<int, double>> adjacency) {
    right_adj.push_back(std::move(adjacency));
    return right_count() - 1;
  }
};

/// Returns right→left assignment saturating every right vertex with
/// minimum total cost, or nullopt when no perfect (on the right)
/// matching exists. Costs may be any finite doubles.
std::optional<std::vector<int>> min_cost_matching(
    const WeightedBipartiteGraph& graph);

}  // namespace fastpr::matching
