#include "matching/incremental_matching.h"

#include <algorithm>

#include "util/check.h"

namespace fastpr::matching {

IncrementalMatcher::IncrementalMatcher(int left_count)
    : IncrementalMatcher(left_count, 1) {}

IncrementalMatcher::IncrementalMatcher(int left_count, int capacity)
    : left_count_(left_count) {
  FASTPR_CHECK(left_count >= 0);
  FASTPR_CHECK(capacity >= 1);
  slot_offset_.resize(static_cast<size_t>(left_count) + 1);
  for (int l = 0; l <= left_count; ++l) {
    slot_offset_[static_cast<size_t>(l)] = l * capacity;
  }
  slots_.assign(static_cast<size_t>(left_count) * capacity, -1);
}

IncrementalMatcher::IncrementalMatcher(const std::vector<int>& capacities)
    : left_count_(static_cast<int>(capacities.size())) {
  slot_offset_.resize(capacities.size() + 1);
  slot_offset_[0] = 0;
  for (size_t l = 0; l < capacities.size(); ++l) {
    FASTPR_CHECK_MSG(capacities[l] >= 1, "left capacity must be >= 1");
    slot_offset_[l + 1] = slot_offset_[l] + capacities[l];
  }
  slots_.assign(static_cast<size_t>(slot_offset_.back()), -1);
}

void IncrementalMatcher::place(int r, int l, int slot) {
  slots_[static_cast<size_t>(slot)] = r;
  match_r_[static_cast<size_t>(r)] = l;
}

bool IncrementalMatcher::augment(int r, std::vector<char>& visited_left) {
  for (int l : *right_adj_[static_cast<size_t>(r)]) {
    if (visited_left[static_cast<size_t>(l)]) continue;
    visited_left[static_cast<size_t>(l)] = 1;
    const int begin = slot_offset_[static_cast<size_t>(l)];
    const int end = slot_offset_[static_cast<size_t>(l) + 1];
    // Free slot: take it.
    for (int s = begin; s < end; ++s) {
      if (slots_[static_cast<size_t>(s)] == -1) {
        place(r, l, s);
        return true;
      }
    }
    // All slots taken: try to reroute one occupant elsewhere. A
    // successful recursive augment reseats the occupant (writing its new
    // slot itself), so its old slot here is simply overwritten with r.
    for (int s = begin; s < end; ++s) {
      const int occupant = slots_[static_cast<size_t>(s)];
      if (augment(occupant, visited_left)) {
        place(r, l, s);
        return true;
      }
    }
  }
  return false;
}

bool IncrementalMatcher::try_add_group(const std::vector<int>& adjacency,
                                       int copies) {
  FASTPR_CHECK(copies >= 1);
  for (int l : adjacency) {
    FASTPR_CHECK_MSG(l >= 0 && l < left_count_,
                     "adjacency to nonexistent left vertex " << l);
  }
  // A failed single augmentation leaves the matching untouched, so a
  // failure after t successes only needs the t successes undone — the
  // truncated match_r_ fully describes the matching, and the slot
  // occupancy is re-derived from it.
  const size_t saved_right = right_adj_.size();
  std::vector<char> visited_left(static_cast<size_t>(left_count_), 0);
  for (int copy = 0; copy < copies; ++copy) {
    right_adj_.push_back(&adjacency);
    match_r_.push_back(-1);
    std::fill(visited_left.begin(), visited_left.end(), 0);
    if (!augment(right_count() - 1, visited_left)) {
      right_adj_.resize(saved_right);
      match_r_.resize(saved_right);
      refill_slots();
      return false;
    }
  }
  return true;
}

void IncrementalMatcher::refill_slots() {
  std::fill(slots_.begin(), slots_.end(), -1);
  for (size_t r = 0; r < match_r_.size(); ++r) {
    const int l = match_r_[r];
    if (l < 0) continue;
    const int begin = slot_offset_[static_cast<size_t>(l)];
    const int end = slot_offset_[static_cast<size_t>(l) + 1];
    for (int s = begin; s < end; ++s) {
      if (slots_[static_cast<size_t>(s)] == -1) {
        slots_[static_cast<size_t>(s)] = static_cast<int>(r);
        break;
      }
    }
  }
}

int IncrementalMatcher::matched_left(int r) const {
  FASTPR_CHECK(r >= 0 && r < right_count());
  return match_r_[static_cast<size_t>(r)];
}

int IncrementalMatcher::matched_count(int l) const {
  FASTPR_CHECK(l >= 0 && l < left_count_);
  int count = 0;
  const int begin = slot_offset_[static_cast<size_t>(l)];
  const int end = slot_offset_[static_cast<size_t>(l) + 1];
  for (int s = begin; s < end; ++s) {
    if (slots_[static_cast<size_t>(s)] != -1) ++count;
  }
  return count;
}

void IncrementalMatcher::reset() {
  right_adj_.clear();
  match_r_.clear();
  std::fill(slots_.begin(), slots_.end(), -1);
}

}  // namespace fastpr::matching
