#include "matching/incremental_matching.h"

#include "util/check.h"

namespace fastpr::matching {

IncrementalMatcher::IncrementalMatcher(int left_count)
    : left_count_(left_count),
      match_l_(static_cast<size_t>(left_count), -1) {
  FASTPR_CHECK(left_count >= 0);
}

bool IncrementalMatcher::augment(int r, std::vector<char>& visited_left) {
  for (int l : *right_adj_[static_cast<size_t>(r)]) {
    if (visited_left[static_cast<size_t>(l)]) continue;
    visited_left[static_cast<size_t>(l)] = 1;
    const int occupant = match_l_[static_cast<size_t>(l)];
    if (occupant == -1 || augment(occupant, visited_left)) {
      match_l_[static_cast<size_t>(l)] = r;
      match_r_[static_cast<size_t>(r)] = l;
      return true;
    }
  }
  return false;
}

bool IncrementalMatcher::try_add_group(const std::vector<int>& adjacency,
                                       int copies) {
  FASTPR_CHECK(copies >= 1);
  for (int l : adjacency) {
    FASTPR_CHECK_MSG(l >= 0 && l < left_count_,
                     "adjacency to nonexistent left vertex " << l);
  }
  // A failed single augmentation leaves the matching untouched, so a
  // failure after t successes only needs the t successes undone — each
  // recorded as (right vertex, matched left) and unwound directly.
  const size_t saved_right = right_adj_.size();
  std::vector<char> visited_left(static_cast<size_t>(left_count_), 0);
  for (int copy = 0; copy < copies; ++copy) {
    right_adj_.push_back(&adjacency);
    match_r_.push_back(-1);
    std::fill(visited_left.begin(), visited_left.end(), 0);
    if (!augment(right_count() - 1, visited_left)) {
      // Roll back: every augmentation in this group flipped some edges,
      // but the net effect on match_l_ is fully described by match_r_ of
      // the group's vertices... except intermediate reroutes. Restore by
      // re-deriving match_l_ from match_r_ after truncation.
      right_adj_.resize(saved_right);
      match_r_.resize(saved_right);
      std::fill(match_l_.begin(), match_l_.end(), -1);
      for (size_t r = 0; r < match_r_.size(); ++r) {
        const int l = match_r_[r];
        if (l >= 0) match_l_[static_cast<size_t>(l)] = static_cast<int>(r);
      }
      return false;
    }
  }
  return true;
}

int IncrementalMatcher::matched_left(int r) const {
  FASTPR_CHECK(r >= 0 && r < right_count());
  return match_r_[static_cast<size_t>(r)];
}

void IncrementalMatcher::reset() {
  right_adj_.clear();
  match_r_.clear();
  match_l_.assign(static_cast<size_t>(left_count_), -1);
}

}  // namespace fastpr::matching
