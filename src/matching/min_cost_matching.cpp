#include "matching/min_cost_matching.h"

#include <limits>

#include "util/check.h"

namespace fastpr::matching {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::optional<std::vector<int>> min_cost_matching(
    const WeightedBipartiteGraph& graph) {
  const int nl = graph.left_count;
  const int nr = graph.right_count();
  std::vector<int> match_l(static_cast<size_t>(nl), -1);
  std::vector<int> match_r(static_cast<size_t>(nr), -1);

  // Successive shortest augmenting paths. The residual graph has a
  // forward edge r→l (cost c) for every unmatched candidate edge and a
  // backward edge l→r (cost -c) for every matched one. One Bellman–Ford
  // per augmentation (sizes are tiny; negative backward edges make
  // Dijkstra-without-potentials incorrect).
  for (int iteration = 0; iteration < nr; ++iteration) {
    std::vector<double> dist_r(static_cast<size_t>(nr), kInf);
    std::vector<double> dist_l(static_cast<size_t>(nl), kInf);
    // Right vertex on the shortest path that reaches this left vertex.
    std::vector<int> parent_of_left(static_cast<size_t>(nl), -1);

    for (int r = 0; r < nr; ++r) {
      if (match_r[static_cast<size_t>(r)] == -1) {
        dist_r[static_cast<size_t>(r)] = 0;
      }
    }
    for (int pass = 0; pass <= nr + nl; ++pass) {
      bool changed = false;
      // Forward edges r → l (unmatched candidates).
      for (int r = 0; r < nr; ++r) {
        const double dr = dist_r[static_cast<size_t>(r)];
        if (dr == kInf) continue;
        for (const auto& [l, cost] :
             graph.right_adj[static_cast<size_t>(r)]) {
          FASTPR_CHECK(l >= 0 && l < nl);
          if (match_r[static_cast<size_t>(r)] == l) continue;
          if (dr + cost < dist_l[static_cast<size_t>(l)] - 1e-12) {
            dist_l[static_cast<size_t>(l)] = dr + cost;
            parent_of_left[static_cast<size_t>(l)] = r;
            changed = true;
          }
        }
      }
      // Backward edges l → r along matched pairs.
      for (int r = 0; r < nr; ++r) {
        const int l = match_r[static_cast<size_t>(r)];
        if (l == -1) continue;
        const double dl = dist_l[static_cast<size_t>(l)];
        if (dl == kInf) continue;
        double cost = 0;
        for (const auto& [cl, c] : graph.right_adj[static_cast<size_t>(r)]) {
          if (cl == l) {
            cost = c;
            break;
          }
        }
        if (dl - cost < dist_r[static_cast<size_t>(r)] - 1e-12) {
          dist_r[static_cast<size_t>(r)] = dl - cost;
          changed = true;
        }
      }
      if (!changed) break;
    }

    // Cheapest reachable FREE left vertex ends the augmenting path.
    int best_left = -1;
    for (int l = 0; l < nl; ++l) {
      if (match_l[static_cast<size_t>(l)] != -1) continue;
      if (dist_l[static_cast<size_t>(l)] == kInf) continue;
      if (best_left == -1 || dist_l[static_cast<size_t>(l)] <
                                 dist_l[static_cast<size_t>(best_left)]) {
        best_left = l;
      }
    }
    if (best_left == -1) break;  // cannot saturate more right vertices

    // Flip matches along the path: parent_of_left gives the incoming
    // right vertex; the right vertex's previous partner continues the
    // alternating walk until a free right vertex is absorbed.
    int cur_l = best_left;
    for (;;) {
      const int r = parent_of_left[static_cast<size_t>(cur_l)];
      FASTPR_CHECK(r >= 0 && r < nr);
      const int old_l = match_r[static_cast<size_t>(r)];
      match_r[static_cast<size_t>(r)] = cur_l;
      match_l[static_cast<size_t>(cur_l)] = r;
      if (old_l == -1) break;  // r was the free path start
      cur_l = old_l;
    }
  }

  for (int r = 0; r < nr; ++r) {
    if (match_r[static_cast<size_t>(r)] == -1) return std::nullopt;
  }
  return match_r;
}

}  // namespace fastpr::matching
