#include "gf/gf256.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FASTPR_GF_X86 1
#endif

#include "util/check.h"
#include "util/logging.h"

namespace fastpr::gf {

namespace {

struct Tables {
  // exp_ is doubled so mul can index log(a)+log(b) without a mod.
  std::array<uint8_t, 512> exp_;
  std::array<uint8_t, 256> log_;
  std::array<uint8_t, 256> inv_;
  // Full product table, mul_[a][b] == a*b. 64 KiB; row mul_[c] is the
  // per-constant lookup used by the region ops.
  std::array<std::array<uint8_t, 256>, 256> mul_;

  Tables() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[i] = static_cast<uint8_t>(x);
      log_[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPrimitivePoly;
    }
    for (int i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // undefined; guarded by callers

    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        mul_[a][b] = (a == 0 || b == 0)
                         ? 0
                         : exp_[log_[a] + log_[b]];
      }
    }
    inv_[0] = 0;  // undefined; guarded by callers
    for (int a = 1; a < 256; ++a) {
      inv_[a] = exp_[255 - log_[a]];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

uint8_t mul(uint8_t a, uint8_t b) { return tables().mul_[a][b]; }

uint8_t div(uint8_t a, uint8_t b) {
  FASTPR_CHECK_MSG(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

uint8_t inv(uint8_t a) {
  FASTPR_CHECK_MSG(a != 0, "inverse of zero in GF(256)");
  return tables().inv_[a];
}

uint8_t exp(unsigned e) { return tables().exp_[e % 255]; }

uint8_t log(uint8_t a) {
  FASTPR_CHECK_MSG(a != 0, "log of zero in GF(256)");
  return tables().log_[a];
}

uint8_t pow(uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned le = (static_cast<unsigned>(t.log_[a]) * (e % 255u)) % 255u;
  return t.exp_[le];
}

// ---------------------------------------------------------------------------
// Kernel variants
//
// Every variant below is an exact drop-in for the scalar reference; the
// property tests in tests/test_gf_kernels.cpp sweep all of them against
// kScalar over random coefficients, unaligned offsets, and ragged tails.

namespace {

/// Sources per fused-dot batch. Bounds the per-batch lookup-table
/// footprint (16 * 64 B = 1 KiB of AVX2 nibble tables — resident in L1
/// across the whole sweep, which is what makes the fused pass cache-
/// friendly) while covering any practical k+extra in one pass.
constexpr size_t kDotBatch = 16;

void mul_region_xor_scalar(uint8_t* dst, const uint8_t* src, uint8_t c,
                           size_t len) {
  const auto& row = tables().mul_[c];
  for (size_t i = 0; i < len; ++i) dst[i] ^= row[src[i]];
}

void mul_region_scalar(uint8_t* dst, const uint8_t* src, uint8_t c,
                       size_t len) {
  const auto& row = tables().mul_[c];
  for (size_t i = 0; i < len; ++i) dst[i] = row[src[i]];
}

void xor_region_scalar(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  // Word-at-a-time XOR; buffers in this codebase are allocated vectors so
  // alignment is fine for memcpy-style access via unsigned char.
  for (; i + 8 <= len; i += 8) {
    uint64_t d, s;
    __builtin_memcpy(&d, dst + i, 8);
    __builtin_memcpy(&s, src + i, 8);
    d ^= s;
    __builtin_memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

/// Scalar fused dot over one batch of non-zero-coefficient sources.
void dot_batch_scalar(uint8_t* dst, const uint8_t* const* srcs,
                      const uint8_t* coeffs, size_t n, size_t len) {
  const uint8_t* rows[kDotBatch];
  for (size_t j = 0; j < n; ++j) rows[j] = tables().mul_[coeffs[j]].data();
  for (size_t i = 0; i < len; ++i) {
    uint8_t acc = dst[i];
    for (size_t j = 0; j < n; ++j) acc ^= rows[j][srcs[j][i]];
    dst[i] = acc;
  }
}

#ifdef FASTPR_GF_X86

/// Loads the two 16-entry nibble tables for constant c: the
/// Jerasure/ISA-L "split table" scheme, c*x = lo[x & 0xF] ^ hi[x >> 4].
inline void load_nibble_tables(uint8_t c, uint8_t lo[16], uint8_t hi[16]) {
  const auto& row = tables().mul_[c];
  for (int x = 0; x < 16; ++x) {
    lo[x] = row[x];
    hi[x] = row[x << 4];
  }
}

/// 8x8 GF(2) bit matrix for gf2p8affineqb that realizes y = c*x in this
/// field. Column j of the map is c * 2^j; the instruction reads output
/// bit i's mask row from matrix byte 7-i (Intel SDM, GF2P8AFFINEQB).
uint64_t gfni_matrix(uint8_t c) {
  const auto& row = tables().mul_[c];
  uint64_t m = 0;
  for (int i = 0; i < 8; ++i) {
    uint8_t mask_row = 0;
    for (int j = 0; j < 8; ++j) {
      if ((row[1u << j] >> i) & 1u) mask_row |= static_cast<uint8_t>(1u << j);
    }
    m |= static_cast<uint64_t>(mask_row) << (8 * (7 - i));
  }
  return m;
}

// --- SSSE3: 16 bytes per step, PSHUFB nibble lookups. -----------------

__attribute__((target("ssse3"))) void mul_region_xor_ssse3(
    uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  alignas(16) uint8_t lo[16], hi[16];
  load_nibble_tables(c, lo, hi);
  const __m128i table_lo = _mm_load_si128(reinterpret_cast<__m128i*>(lo));
  const __m128i table_hi = _mm_load_si128(reinterpret_cast<__m128i*>(hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    const __m128i product =
        _mm_xor_si128(_mm_shuffle_epi8(table_lo, _mm_and_si128(s, mask)),
                      _mm_shuffle_epi8(
                          table_hi,
                          _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
    d = _mm_xor_si128(d, product);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  mul_region_xor_scalar(dst + i, src + i, c, len - i);
}

__attribute__((target("ssse3"))) void mul_region_ssse3(uint8_t* dst,
                                                       const uint8_t* src,
                                                       uint8_t c,
                                                       size_t len) {
  alignas(16) uint8_t lo[16], hi[16];
  load_nibble_tables(c, lo, hi);
  const __m128i table_lo = _mm_load_si128(reinterpret_cast<__m128i*>(lo));
  const __m128i table_hi = _mm_load_si128(reinterpret_cast<__m128i*>(hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i product =
        _mm_xor_si128(_mm_shuffle_epi8(table_lo, _mm_and_si128(s, mask)),
                      _mm_shuffle_epi8(
                          table_hi,
                          _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), product);
  }
  mul_region_scalar(dst + i, src + i, c, len - i);
}

__attribute__((target("ssse3"))) void xor_region_sse2(uint8_t* dst,
                                                      const uint8_t* src,
                                                      size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    d = _mm_xor_si128(d, s);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  xor_region_scalar(dst + i, src + i, len - i);
}

__attribute__((target("ssse3"))) void dot_batch_ssse3(
    uint8_t* dst, const uint8_t* const* srcs, const uint8_t* coeffs,
    size_t n, size_t len) {
  __m128i table_lo[kDotBatch], table_hi[kDotBatch];
  for (size_t j = 0; j < n; ++j) {
    alignas(16) uint8_t lo[16], hi[16];
    load_nibble_tables(coeffs[j], lo, hi);
    table_lo[j] = _mm_load_si128(reinterpret_cast<__m128i*>(lo));
    table_hi[j] = _mm_load_si128(reinterpret_cast<__m128i*>(hi));
  }
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    for (size_t j = 0; j < n; ++j) {
      const __m128i s =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i));
      const __m128i product = _mm_xor_si128(
          _mm_shuffle_epi8(table_lo[j], _mm_and_si128(s, mask)),
          _mm_shuffle_epi8(table_hi[j],
                           _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
      d = _mm_xor_si128(d, product);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  if (i < len) {
    const uint8_t* tail_srcs[kDotBatch];
    for (size_t j = 0; j < n; ++j) tail_srcs[j] = srcs[j] + i;
    dot_batch_scalar(dst + i, tail_srcs, coeffs, n, len - i);
  }
}

// --- AVX2: 32 bytes per step, the same nibble tables broadcast to both
// 128-bit lanes (VPSHUFB shuffles within lanes). ----------------------

__attribute__((target("avx2"))) void mul_region_xor_avx2(
    uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  alignas(16) uint8_t lo[16], hi[16];
  load_nibble_tables(c, lo, hi);
  const __m256i table_lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<__m128i*>(lo)));
  const __m256i table_hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<__m128i*>(hi)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i product = _mm256_xor_si256(
        _mm256_shuffle_epi8(table_lo, _mm256_and_si256(s, mask)),
        _mm256_shuffle_epi8(table_hi,
                            _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
    d = _mm256_xor_si256(d, product);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  mul_region_xor_scalar(dst + i, src + i, c, len - i);
}

__attribute__((target("avx2"))) void mul_region_avx2(uint8_t* dst,
                                                     const uint8_t* src,
                                                     uint8_t c, size_t len) {
  alignas(16) uint8_t lo[16], hi[16];
  load_nibble_tables(c, lo, hi);
  const __m256i table_lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<__m128i*>(lo)));
  const __m256i table_hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<__m128i*>(hi)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i product = _mm256_xor_si256(
        _mm256_shuffle_epi8(table_lo, _mm256_and_si256(s, mask)),
        _mm256_shuffle_epi8(table_hi,
                            _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), product);
  }
  mul_region_scalar(dst + i, src + i, c, len - i);
}

__attribute__((target("avx2"))) void xor_region_avx2(uint8_t* dst,
                                                     const uint8_t* src,
                                                     size_t len) {
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    d = _mm256_xor_si256(d, s);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  xor_region_scalar(dst + i, src + i, len - i);
}

__attribute__((target("avx2"))) void dot_batch_avx2(
    uint8_t* dst, const uint8_t* const* srcs, const uint8_t* coeffs,
    size_t n, size_t len) {
  __m256i table_lo[kDotBatch], table_hi[kDotBatch];
  for (size_t j = 0; j < n; ++j) {
    alignas(16) uint8_t lo[16], hi[16];
    load_nibble_tables(coeffs[j], lo, hi);
    table_lo[j] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<__m128i*>(lo)));
    table_hi[j] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<__m128i*>(hi)));
  }
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    for (size_t j = 0; j < n; ++j) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i));
      const __m256i product = _mm256_xor_si256(
          _mm256_shuffle_epi8(table_lo[j], _mm256_and_si256(s, mask)),
          _mm256_shuffle_epi8(
              table_hi[j],
              _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
      d = _mm256_xor_si256(d, product);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  if (i < len) {
    const uint8_t* tail_srcs[kDotBatch];
    for (size_t j = 0; j < n; ++j) tail_srcs[j] = srcs[j] + i;
    dot_batch_scalar(dst + i, tail_srcs, coeffs, n, len - i);
  }
}

// --- GFNI: one VGF2P8AFFINEQB per 32 source bytes; the multiply-by-c
// bit matrix replaces both nibble shuffles. ---------------------------

__attribute__((target("gfni,avx2"))) void mul_region_xor_gfni(
    uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  const __m256i matrix =
      _mm256_set1_epi64x(static_cast<long long>(gfni_matrix(c)));
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    d = _mm256_xor_si256(d, _mm256_gf2p8affine_epi64_epi8(s, matrix, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  mul_region_xor_scalar(dst + i, src + i, c, len - i);
}

__attribute__((target("gfni,avx2"))) void mul_region_gfni(uint8_t* dst,
                                                          const uint8_t* src,
                                                          uint8_t c,
                                                          size_t len) {
  const __m256i matrix =
      _mm256_set1_epi64x(static_cast<long long>(gfni_matrix(c)));
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_gf2p8affine_epi64_epi8(s, matrix, 0));
  }
  mul_region_scalar(dst + i, src + i, c, len - i);
}

__attribute__((target("gfni,avx2"))) void dot_batch_gfni(
    uint8_t* dst, const uint8_t* const* srcs, const uint8_t* coeffs,
    size_t n, size_t len) {
  __m256i matrix[kDotBatch];
  for (size_t j = 0; j < n; ++j) {
    matrix[j] =
        _mm256_set1_epi64x(static_cast<long long>(gfni_matrix(coeffs[j])));
  }
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    for (size_t j = 0; j < n; ++j) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i));
      d = _mm256_xor_si256(d,
                           _mm256_gf2p8affine_epi64_epi8(s, matrix[j], 0));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  if (i < len) {
    const uint8_t* tail_srcs[kDotBatch];
    for (size_t j = 0; j < n; ++j) tail_srcs[j] = srcs[j] + i;
    dot_batch_scalar(dst + i, tail_srcs, coeffs, n, len - i);
  }
}

// The gfni kernel widens to 512-bit VGF2P8AFFINEQB when the host has
// AVX-512 (GFNI ships with AVX-512 on every server part so far); the
// 256-bit code above remains the fallback for AVX2-only GFNI hosts and
// handles the sub-64-byte tail either way.

bool gfni_use_zmm() {
  static const bool use =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw");
  return use;
}

__attribute__((target("gfni,avx512f,avx512bw"))) void mul_region_xor_gfni512(
    uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  const __m512i matrix =
      _mm512_set1_epi64(static_cast<long long>(gfni_matrix(c)));
  size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m512i s = _mm512_loadu_si512(src + i);
    __m512i d = _mm512_loadu_si512(dst + i);
    d = _mm512_xor_si512(d, _mm512_gf2p8affine_epi64_epi8(s, matrix, 0));
    _mm512_storeu_si512(dst + i, d);
  }
  mul_region_xor_gfni(dst + i, src + i, c, len - i);
}

__attribute__((target("gfni,avx512f,avx512bw"))) void mul_region_gfni512(
    uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  const __m512i matrix =
      _mm512_set1_epi64(static_cast<long long>(gfni_matrix(c)));
  size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i,
                        _mm512_gf2p8affine_epi64_epi8(s, matrix, 0));
  }
  mul_region_gfni(dst + i, src + i, c, len - i);
}

__attribute__((target("gfni,avx512f,avx512bw"))) void dot_batch_gfni512(
    uint8_t* dst, const uint8_t* const* srcs, const uint8_t* coeffs,
    size_t n, size_t len) {
  __m512i matrix[kDotBatch];
  for (size_t j = 0; j < n; ++j) {
    matrix[j] = _mm512_set1_epi64(static_cast<long long>(gfni_matrix(coeffs[j])));
  }
  size_t i = 0;
  // Four independent accumulator chains per iteration: the affine's
  // 3-5 cycle latency is hidden across chains instead of serializing
  // on a single xor chain.
  for (; i + 256 <= len; i += 256) {
    __m512i d0 = _mm512_loadu_si512(dst + i);
    __m512i d1 = _mm512_loadu_si512(dst + i + 64);
    __m512i d2 = _mm512_loadu_si512(dst + i + 128);
    __m512i d3 = _mm512_loadu_si512(dst + i + 192);
    for (size_t j = 0; j < n; ++j) {
      const uint8_t* s = srcs[j] + i;
      d0 = _mm512_xor_si512(d0, _mm512_gf2p8affine_epi64_epi8(
                                    _mm512_loadu_si512(s), matrix[j], 0));
      d1 = _mm512_xor_si512(d1, _mm512_gf2p8affine_epi64_epi8(
                                    _mm512_loadu_si512(s + 64), matrix[j], 0));
      d2 = _mm512_xor_si512(d2, _mm512_gf2p8affine_epi64_epi8(
                                    _mm512_loadu_si512(s + 128), matrix[j], 0));
      d3 = _mm512_xor_si512(d3, _mm512_gf2p8affine_epi64_epi8(
                                    _mm512_loadu_si512(s + 192), matrix[j], 0));
    }
    _mm512_storeu_si512(dst + i, d0);
    _mm512_storeu_si512(dst + i + 64, d1);
    _mm512_storeu_si512(dst + i + 128, d2);
    _mm512_storeu_si512(dst + i + 192, d3);
  }
  for (; i + 64 <= len; i += 64) {
    __m512i d = _mm512_loadu_si512(dst + i);
    for (size_t j = 0; j < n; ++j) {
      const __m512i s = _mm512_loadu_si512(srcs[j] + i);
      d = _mm512_xor_si512(d,
                           _mm512_gf2p8affine_epi64_epi8(s, matrix[j], 0));
    }
    _mm512_storeu_si512(dst + i, d);
  }
  if (i < len) {
    const uint8_t* tail_srcs[kDotBatch];
    for (size_t j = 0; j < n; ++j) tail_srcs[j] = srcs[j] + i;
    dot_batch_gfni(dst + i, tail_srcs, coeffs, n, len - i);
  }
}

#endif  // FASTPR_GF_X86

// ---------------------------------------------------------------------------
// Dispatch

std::atomic<int> g_kernel{-1};

Kernel resolve_default_kernel() {
  if (const char* env = std::getenv("FASTPR_GF_KERNEL"); env && *env) {
    if (auto k = parse_kernel(env)) {
      if (kernel_supported(*k)) return *k;
      LOG_WARN("FASTPR_GF_KERNEL=" << env
                                   << " is not supported on this CPU; using "
                                   << kernel_name(best_supported_kernel()));
    } else {
      LOG_WARN("unrecognized FASTPR_GF_KERNEL=" << env << "; using "
               << kernel_name(best_supported_kernel()));
    }
  }
  return best_supported_kernel();
}

}  // namespace

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kScalar: return "scalar";
    case Kernel::kSsse3: return "ssse3";
    case Kernel::kAvx2: return "avx2";
    case Kernel::kGfni: return "gfni";
  }
  return "unknown";
}

std::optional<Kernel> parse_kernel(std::string_view name) {
  if (name == "scalar") return Kernel::kScalar;
  if (name == "ssse3") return Kernel::kSsse3;
  if (name == "avx2") return Kernel::kAvx2;
  if (name == "gfni") return Kernel::kGfni;
  return std::nullopt;
}

bool kernel_supported(Kernel k) {
#ifdef FASTPR_GF_X86
  switch (k) {
    case Kernel::kScalar: return true;
    case Kernel::kSsse3: return __builtin_cpu_supports("ssse3");
    case Kernel::kAvx2: return __builtin_cpu_supports("avx2");
    case Kernel::kGfni:
      return __builtin_cpu_supports("gfni") &&
             __builtin_cpu_supports("avx2");
  }
  return false;
#else
  return k == Kernel::kScalar;
#endif
}

Kernel best_supported_kernel() {
  for (Kernel k : {Kernel::kGfni, Kernel::kAvx2, Kernel::kSsse3}) {
    if (kernel_supported(k)) return k;
  }
  return Kernel::kScalar;
}

Kernel active_kernel() {
  const int cached = g_kernel.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<Kernel>(cached);
  const Kernel resolved = resolve_default_kernel();
  g_kernel.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

void force_kernel(Kernel k) {
  FASTPR_CHECK_MSG(kernel_supported(k),
                   "GF kernel " << kernel_name(k)
                                << " is not supported on this CPU");
  g_kernel.store(static_cast<int>(k), std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Dispatched region ops

void mul_region_xor(uint8_t* dst, const uint8_t* src, uint8_t c,
                    size_t len) {
  if (c == 0 || len == 0) return;
  if (c == 1) {
    xor_region(dst, src, len);
    return;
  }
#ifdef FASTPR_GF_X86
  switch (active_kernel()) {
    case Kernel::kSsse3: mul_region_xor_ssse3(dst, src, c, len); return;
    case Kernel::kAvx2: mul_region_xor_avx2(dst, src, c, len); return;
    case Kernel::kGfni:
      if (gfni_use_zmm()) {
        mul_region_xor_gfni512(dst, src, c, len);
      } else {
        mul_region_xor_gfni(dst, src, c, len);
      }
      return;
    case Kernel::kScalar: break;
  }
#endif
  mul_region_xor_scalar(dst, src, c, len);
}

void mul_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  if (len == 0) return;
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, len);  // memmove: in-place scaling is legal
    return;
  }
#ifdef FASTPR_GF_X86
  switch (active_kernel()) {
    case Kernel::kSsse3: mul_region_ssse3(dst, src, c, len); return;
    case Kernel::kAvx2: mul_region_avx2(dst, src, c, len); return;
    case Kernel::kGfni:
      if (gfni_use_zmm()) {
        mul_region_gfni512(dst, src, c, len);
      } else {
        mul_region_gfni(dst, src, c, len);
      }
      return;
    case Kernel::kScalar: break;
  }
#endif
  mul_region_scalar(dst, src, c, len);
}

void xor_region(uint8_t* dst, const uint8_t* src, size_t len) {
  if (len == 0) return;
#ifdef FASTPR_GF_X86
  switch (active_kernel()) {
    case Kernel::kSsse3: xor_region_sse2(dst, src, len); return;
    case Kernel::kAvx2:
    case Kernel::kGfni: xor_region_avx2(dst, src, len); return;
    case Kernel::kScalar: break;
  }
#endif
  xor_region_scalar(dst, src, len);
}

void dot_region_xor(uint8_t* dst, const uint8_t* const* srcs,
                    const uint8_t* coeffs, size_t num_src, size_t len) {
  if (len == 0) return;
  // Single-source fast path: one nonzero contribution degenerates to a
  // fused multiply+XOR (a pure XOR when c == 1), skipping batch setup.
  // The chain-hop fold hits this on every forwarded packet.
  size_t nonzero = 0;
  size_t only = 0;
  for (size_t j = 0; j < num_src && nonzero < 2; ++j) {
    if (coeffs[j] != 0) {
      ++nonzero;
      only = j;
    }
  }
  if (nonzero == 0) return;
  if (nonzero == 1) {
    mul_region_xor(dst, srcs[only], coeffs[only], len);
    return;
  }
  const Kernel kernel = active_kernel();
  // Compact zero coefficients out, then sweep batches of up to kDotBatch
  // sources so each batch's tables stay register/L1-resident.
  const uint8_t* batch_srcs[kDotBatch];
  uint8_t batch_coeffs[kDotBatch];
  size_t filled = 0;
  const auto flush = [&] {
    if (filled == 0) return;
    switch (kernel) {
#ifdef FASTPR_GF_X86
      case Kernel::kSsse3:
        dot_batch_ssse3(dst, batch_srcs, batch_coeffs, filled, len);
        break;
      case Kernel::kAvx2:
        dot_batch_avx2(dst, batch_srcs, batch_coeffs, filled, len);
        break;
      case Kernel::kGfni:
        if (gfni_use_zmm()) {
          dot_batch_gfni512(dst, batch_srcs, batch_coeffs, filled, len);
        } else {
          dot_batch_gfni(dst, batch_srcs, batch_coeffs, filled, len);
        }
        break;
#endif
      default:
        dot_batch_scalar(dst, batch_srcs, batch_coeffs, filled, len);
        break;
    }
    filled = 0;
  };
  for (size_t j = 0; j < num_src; ++j) {
    if (coeffs[j] == 0) continue;
    batch_srcs[filled] = srcs[j];
    batch_coeffs[filled] = coeffs[j];
    if (++filled == kDotBatch) flush();
  }
  flush();
}

// ---------------------------------------------------------------------------
// Span conveniences

void mul_region_xor(std::span<uint8_t> dst, std::span<const uint8_t> src,
                    uint8_t c) {
  FASTPR_CHECK(dst.size() == src.size());
  mul_region_xor(dst.data(), src.data(), c, dst.size());
}

void mul_region(std::span<uint8_t> dst, std::span<const uint8_t> src,
                uint8_t c) {
  FASTPR_CHECK(dst.size() == src.size());
  mul_region(dst.data(), src.data(), c, dst.size());
}

void dot_region_xor(std::span<uint8_t> dst,
                    std::span<const std::span<const uint8_t>> srcs,
                    std::span<const uint8_t> coeffs) {
  FASTPR_CHECK(srcs.size() == coeffs.size());
  const uint8_t* ptrs[kDotBatch];
  // Arbitrary source counts are supported by chunking through the raw
  // pointer interface (which batches internally anyway).
  size_t j = 0;
  while (j < srcs.size()) {
    const size_t n = std::min(srcs.size() - j, kDotBatch);
    for (size_t t = 0; t < n; ++t) {
      FASTPR_CHECK(srcs[j + t].size() == dst.size());
      ptrs[t] = srcs[j + t].data();
    }
    dot_region_xor(dst.data(), ptrs, coeffs.data() + j, n, dst.size());
    j += n;
  }
}

}  // namespace fastpr::gf
