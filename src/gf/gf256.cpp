#include "gf/gf256.h"

#include <array>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "util/check.h"

namespace fastpr::gf {

namespace {

struct Tables {
  // exp_ is doubled so mul can index log(a)+log(b) without a mod.
  std::array<uint8_t, 512> exp_;
  std::array<uint8_t, 256> log_;
  std::array<uint8_t, 256> inv_;
  // Full product table, mul_[a][b] == a*b. 64 KiB; row mul_[c] is the
  // per-constant lookup used by the region ops.
  std::array<std::array<uint8_t, 256>, 256> mul_;

  Tables() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[i] = static_cast<uint8_t>(x);
      log_[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPrimitivePoly;
    }
    for (int i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // undefined; guarded by callers

    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        mul_[a][b] = (a == 0 || b == 0)
                         ? 0
                         : exp_[log_[a] + log_[b]];
      }
    }
    inv_[0] = 0;  // undefined; guarded by callers
    for (int a = 1; a < 256; ++a) {
      inv_[a] = exp_[255 - log_[a]];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

uint8_t mul(uint8_t a, uint8_t b) { return tables().mul_[a][b]; }

uint8_t div(uint8_t a, uint8_t b) {
  FASTPR_CHECK_MSG(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

uint8_t inv(uint8_t a) {
  FASTPR_CHECK_MSG(a != 0, "inverse of zero in GF(256)");
  return tables().inv_[a];
}

uint8_t exp(unsigned e) { return tables().exp_[e % 255]; }

uint8_t log(uint8_t a) {
  FASTPR_CHECK_MSG(a != 0, "log of zero in GF(256)");
  return tables().log_[a];
}

uint8_t pow(uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned le = (static_cast<unsigned>(t.log_[a]) * (e % 255u)) % 255u;
  return t.exp_[le];
}

namespace {

#if defined(__x86_64__) || defined(__i386__)
/// SSSE3 nibble-table kernel (the Jerasure/ISA-L "split table" scheme):
/// c*x = T_lo[x & 0xF] ^ T_hi[x >> 4], 16 bytes per shuffle.
__attribute__((target("ssse3"))) void mul_region_xor_ssse3(
    uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  const auto& row = tables().mul_[c];
  alignas(16) uint8_t lo[16], hi[16];
  for (int x = 0; x < 16; ++x) {
    lo[x] = row[x];
    hi[x] = row[x << 4];
  }
  const __m128i table_lo = _mm_load_si128(reinterpret_cast<__m128i*>(lo));
  const __m128i table_hi = _mm_load_si128(reinterpret_cast<__m128i*>(hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    const __m128i product =
        _mm_xor_si128(_mm_shuffle_epi8(table_lo, _mm_and_si128(s, mask)),
                      _mm_shuffle_epi8(
                          table_hi,
                          _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
    d = _mm_xor_si128(d, product);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("ssse3"))) void mul_region_ssse3(uint8_t* dst,
                                                       const uint8_t* src,
                                                       uint8_t c,
                                                       size_t len) {
  const auto& row = tables().mul_[c];
  alignas(16) uint8_t lo[16], hi[16];
  for (int x = 0; x < 16; ++x) {
    lo[x] = row[x];
    hi[x] = row[x << 4];
  }
  const __m128i table_lo = _mm_load_si128(reinterpret_cast<__m128i*>(lo));
  const __m128i table_hi = _mm_load_si128(reinterpret_cast<__m128i*>(hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i product =
        _mm_xor_si128(_mm_shuffle_epi8(table_lo, _mm_and_si128(s, mask)),
                      _mm_shuffle_epi8(
                          table_hi,
                          _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), product);
  }
  for (; i < len; ++i) dst[i] = row[src[i]];
}

bool have_ssse3() {
  static const bool yes = __builtin_cpu_supports("ssse3");
  return yes;
}
#endif  // x86

}  // namespace

void mul_region_xor(uint8_t* dst, const uint8_t* src, uint8_t c,
                    size_t len) {
  if (c == 0) return;
  if (c == 1) {
    xor_region(dst, src, len);
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  if (have_ssse3()) {
    mul_region_xor_ssse3(dst, src, c, len);
    return;
  }
#endif
  const auto& row = tables().mul_[c];
  for (size_t i = 0; i < len; ++i) dst[i] ^= row[src[i]];
}

void mul_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  if (c == 0) {
    for (size_t i = 0; i < len; ++i) dst[i] = 0;
    return;
  }
  if (c == 1) {
    for (size_t i = 0; i < len; ++i) dst[i] = src[i];
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  if (have_ssse3()) {
    mul_region_ssse3(dst, src, c, len);
    return;
  }
#endif
  const auto& row = tables().mul_[c];
  for (size_t i = 0; i < len; ++i) dst[i] = row[src[i]];
}

void xor_region(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  // Word-at-a-time XOR; buffers in this codebase are allocated vectors so
  // alignment is fine for memcpy-style access via unsigned char.
  for (; i + 8 <= len; i += 8) {
    uint64_t d, s;
    __builtin_memcpy(&d, dst + i, 8);
    __builtin_memcpy(&s, src + i, 8);
    d ^= s;
    __builtin_memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void mul_region_xor(std::span<uint8_t> dst, std::span<const uint8_t> src,
                    uint8_t c) {
  FASTPR_CHECK(dst.size() == src.size());
  mul_region_xor(dst.data(), src.data(), c, dst.size());
}

void mul_region(std::span<uint8_t> dst, std::span<const uint8_t> src,
                uint8_t c) {
  FASTPR_CHECK(dst.size() == src.size());
  mul_region(dst.data(), src.data(), c, dst.size());
}

}  // namespace fastpr::gf
