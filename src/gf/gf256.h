// GF(2^8) arithmetic over the AES/Rijndael-compatible field used by most
// storage erasure coders (primitive polynomial x^8+x^4+x^3+x^2+1, 0x11D).
//
// This replaces Jerasure v1.2 in the original FastPR prototype: element
// ops are log/exp-table driven, and the hot region ops (multiply a buffer
// by a constant and XOR into an accumulator) use a per-constant 256-entry
// product row from a full 64 KiB multiplication table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace fastpr::gf {

/// Field order and primitive polynomial.
constexpr int kFieldSize = 256;
constexpr uint16_t kPrimitivePoly = 0x11D;

/// Element product a*b in GF(2^8).
uint8_t mul(uint8_t a, uint8_t b);

/// Element quotient a/b; b must be nonzero.
uint8_t div(uint8_t a, uint8_t b);

/// Multiplicative inverse; a must be nonzero.
uint8_t inv(uint8_t a);

/// alpha^e where alpha = 2 is a generator. e may be any non-negative int.
uint8_t exp(unsigned e);

/// Discrete log base alpha; a must be nonzero. Result in [0, 254].
uint8_t log(uint8_t a);

/// a^e by repeated squaring in the field.
uint8_t pow(uint8_t a, unsigned e);

/// dst[i] ^= c * src[i] for i in [0, len). The accumulate step of
/// encode/decode inner loops.
void mul_region_xor(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len);

/// dst[i] = c * src[i].
void mul_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len);

/// dst[i] ^= src[i]; plain XOR region (c == 1 fast path).
void xor_region(uint8_t* dst, const uint8_t* src, size_t len);

/// Span-based conveniences used by the codecs.
void mul_region_xor(std::span<uint8_t> dst, std::span<const uint8_t> src,
                    uint8_t c);
void mul_region(std::span<uint8_t> dst, std::span<const uint8_t> src,
                uint8_t c);

}  // namespace fastpr::gf
