// GF(2^8) arithmetic over the AES/Rijndael-compatible field used by most
// storage erasure coders (primitive polynomial x^8+x^4+x^3+x^2+1, 0x11D).
//
// This replaces Jerasure v1.2 in the original FastPR prototype. Element
// ops are log/exp-table driven. The hot region ops are a dispatched
// kernel library (the ISA-L role): a scalar reference, the SSSE3/AVX2
// split-nibble-table kernels (PSHUFB "split table" scheme), and a GFNI
// kernel (gf2p8affineqb with the multiply-by-constant bit matrix). The
// variant is picked at runtime from CPU features, overridable with the
// FASTPR_GF_KERNEL environment variable or force_kernel() so benches
// and CI can pin a specific path.
//
// Beyond the per-constant ops there is a fused multi-source dot product
// (gf_vect_dot_prod style): dst ^= sum_j coeffs[j] * srcs[j], one pass
// over memory instead of one pass per source — the decode inner loop of
// RS/LRC repair and of the testbed's packet accumulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace fastpr::gf {

/// Field order and primitive polynomial.
constexpr int kFieldSize = 256;
constexpr uint16_t kPrimitivePoly = 0x11D;

/// Element product a*b in GF(2^8).
uint8_t mul(uint8_t a, uint8_t b);

/// Element quotient a/b; b must be nonzero.
uint8_t div(uint8_t a, uint8_t b);

/// Multiplicative inverse; a must be nonzero.
uint8_t inv(uint8_t a);

/// alpha^e where alpha = 2 is a generator. e may be any non-negative int.
uint8_t exp(unsigned e);

/// Discrete log base alpha; a must be nonzero. Result in [0, 254].
uint8_t log(uint8_t a);

/// a^e by repeated squaring in the field.
uint8_t pow(uint8_t a, unsigned e);

// ---------------------------------------------------------------------------
// Region-kernel dispatch

/// Region-op implementation variants, fastest last. kScalar is the
/// reference every other variant is property-tested against.
enum class Kernel : uint8_t { kScalar = 0, kSsse3 = 1, kAvx2 = 2, kGfni = 3 };

/// Lower-case name as accepted by FASTPR_GF_KERNEL ("scalar", "ssse3",
/// "avx2", "gfni").
const char* kernel_name(Kernel k);

/// Parses a FASTPR_GF_KERNEL value; nullopt for unknown names.
std::optional<Kernel> parse_kernel(std::string_view name);

/// True if this host can execute the variant.
bool kernel_supported(Kernel k);

/// Fastest variant this host supports.
Kernel best_supported_kernel();

/// The variant the region ops currently dispatch to. Resolved on first
/// use: FASTPR_GF_KERNEL if set (and supported — otherwise a warning is
/// logged and the best supported variant is used), else
/// best_supported_kernel().
Kernel active_kernel();

/// Pins the dispatch to `k` (tests/benches). The variant must be
/// supported; throws CheckFailure otherwise. Thread-safe.
void force_kernel(Kernel k);

/// RAII pin-and-restore for tests that iterate over variants.
class ScopedKernel {
 public:
  explicit ScopedKernel(Kernel k) : prev_(active_kernel()) {
    force_kernel(k);
  }
  ~ScopedKernel() { force_kernel(prev_); }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  Kernel prev_;
};

// ---------------------------------------------------------------------------
// Region ops (dispatched)

/// dst[i] ^= c * src[i] for i in [0, len). The accumulate step of
/// encode/decode inner loops.
void mul_region_xor(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len);

/// dst[i] = c * src[i].
void mul_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len);

/// dst[i] ^= src[i]; plain XOR region (c == 1 fast path).
void xor_region(uint8_t* dst, const uint8_t* src, size_t len);

/// Fused multi-source dot product:
///   dst[i] ^= coeffs[0]*srcs[0][i] ^ ... ^ coeffs[n-1]*srcs[n-1][i]
/// for i in [0, len) — the ISA-L gf_vect_dot_prod shape. One pass over
/// dst regardless of the source count (sources are swept in register-
/// blocked batches), versus n separate mul_region_xor passes.
/// Zero coefficients are skipped. Equals the mul_region_xor loop
/// bit-for-bit for every kernel variant. A single nonzero source takes
/// a fused mul_region_xor fast path (pure XOR when its coefficient is
/// 1) — the per-packet partial-sum fold of a chain hop.
void dot_region_xor(uint8_t* dst, const uint8_t* const* srcs,
                    const uint8_t* coeffs, size_t num_src, size_t len);

/// Span-based conveniences used by the codecs.
void mul_region_xor(std::span<uint8_t> dst, std::span<const uint8_t> src,
                    uint8_t c);
void mul_region(std::span<uint8_t> dst, std::span<const uint8_t> src,
                uint8_t c);
void dot_region_xor(std::span<uint8_t> dst,
                    std::span<const std::span<const uint8_t>> srcs,
                    std::span<const uint8_t> coeffs);

}  // namespace fastpr::gf
