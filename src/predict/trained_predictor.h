// Logistic-regression STF predictor TRAINED by stochastic gradient
// descent on a labeled SMART population — the "machine learning"
// counterpart to the fixed-weight LogisticPredictor, standing in for
// the CART/NN classifiers of the work the paper cites [18], [23], [45].
#pragma once

#include <array>
#include <cstdint>

#include "predict/predictor.h"

namespace fastpr::predict {

class TrainedLogisticPredictor final : public FailurePredictor {
 public:
  struct TrainConfig {
    int epochs = 30;
    double learning_rate = 0.05;
    /// L2 regularization strength.
    double weight_decay = 1e-4;
    /// A sample (disk, day) is positive if the disk fails within this
    /// many days after `day`.
    double lookahead_days = 15.0;
    /// Sampling stride through each trace.
    double sample_stride_days = 5.0;
    /// Positive class is rare; weight its gradient up by this factor.
    double positive_weight = 8.0;
    uint64_t seed = 1;
  };

  TrainedLogisticPredictor() = default;

  /// Fits the weights on a labeled population (ground truth comes from
  /// DiskTrace::will_fail / failure_day). Call before score().
  void train(const std::vector<DiskTrace>& traces,
             const TrainConfig& config);

  std::string name() const override { return "trained-logistic"; }
  double score(const DiskTrace& trace, double as_of_day) const override;

  bool trained() const { return trained_; }
  /// Bias followed by the per-feature weights.
  const std::array<double, Features::kCount + 1>& weights() const {
    return weights_;
  }

 private:
  std::array<double, Features::kCount + 1> weights_{};
  bool trained_ = false;
};

}  // namespace fastpr::predict
