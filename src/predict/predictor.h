// Soon-to-fail (STF) disk predictors and their evaluation harness.
//
// Two predictors, mirroring the approaches the paper cites:
//  * ThresholdPredictor — RAIDShield-style: flag when the reallocated
//    sector count crosses a threshold.
//  * LogisticPredictor — small fixed-weight logistic model over the
//    latest error counts and their recent slopes, standing in for the
//    trained ML classifiers (CART/NN) of the cited work.
// Both consume the SMART prefix up to an evaluation day (no peeking).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "predict/smart.h"

namespace fastpr::predict {

/// Feature vector both logistic predictors (fixed-weight and trained)
/// compute from a SMART prefix: log-compressed error-count levels and
/// 7-day slopes.
struct Features {
  static constexpr int kCount = 5;
  std::array<double, kCount> values{};
};

/// Extracts features from the samples with day <= as_of_day.
Features extract_features(const DiskTrace& trace, double as_of_day);

class FailurePredictor {
 public:
  virtual ~FailurePredictor() = default;
  virtual std::string name() const = 0;

  /// Failure risk score in [0, 1] from the samples with day <= as_of_day.
  virtual double score(const DiskTrace& trace, double as_of_day) const = 0;

  /// Decision threshold applied to score().
  virtual double decision_threshold() const { return 0.5; }

  bool predicts_failure(const DiskTrace& trace, double as_of_day) const {
    return score(trace, as_of_day) >= decision_threshold();
  }
};

class ThresholdPredictor final : public FailurePredictor {
 public:
  explicit ThresholdPredictor(double reallocated_threshold = 50.0);
  std::string name() const override { return "threshold"; }
  double score(const DiskTrace& trace, double as_of_day) const override;

 private:
  double threshold_;
};

class LogisticPredictor final : public FailurePredictor {
 public:
  LogisticPredictor();
  std::string name() const override { return "logistic"; }
  double score(const DiskTrace& trace, double as_of_day) const override;
};

/// Offline evaluation over a labeled population at a point in time:
/// a disk is a positive if it fails within `lookahead_days` of
/// `as_of_day`. The paper's premise is >=95% accuracy with a small false
/// alarm rate; tests assert the logistic predictor achieves this on the
/// synthetic population (excluding silent failures, which no SMART-based
/// predictor can see).
struct EvalResult {
  int true_positives = 0;
  int false_positives = 0;
  int true_negatives = 0;
  int false_negatives = 0;

  double precision() const;
  double recall() const;
  double false_alarm_rate() const;
  double accuracy() const;
};

EvalResult evaluate(const FailurePredictor& predictor,
                    const std::vector<DiskTrace>& traces, double as_of_day,
                    double lookahead_days);

/// Scans the population at `as_of_day` and returns the disk with the
/// highest score above the predictor's threshold, or -1. This is the
/// hook that flags the STF node for FastPR (one STF at a time).
int select_stf_disk(const FailurePredictor& predictor,
                    const std::vector<DiskTrace>& traces, double as_of_day);

}  // namespace fastpr::predict
