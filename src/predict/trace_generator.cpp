#include "predict/trace_generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fastpr::predict {

namespace {

/// Occasional benign blip: most samples zero, rare small positives.
double benign_error_count(fastpr::Rng& rng) {
  if (rng.chance(0.01)) return std::floor(rng.uniform_real(1.0, 4.0));
  return 0.0;
}

/// Degradation ramp value at `days_into_ramp` (>=0): accelerating
/// (quadratic) growth with multiplicative noise, in sectors.
double ramp_value(double days_into_ramp, double scale, fastpr::Rng& rng) {
  if (days_into_ramp <= 0) return 0.0;
  const double base = scale * days_into_ramp * days_into_ramp;
  return std::max(0.0, base * rng.uniform_real(0.8, 1.25));
}

}  // namespace

DiskTrace generate_trace(int disk_id, bool will_fail, bool silent,
                         double failure_day, const TraceConfig& config,
                         fastpr::Rng& rng) {
  DiskTrace trace;
  trace.disk_id = disk_id;
  trace.will_fail = will_fail;
  trace.failure_day = will_fail ? failure_day : 0.0;

  const double lead =
      rng.uniform_real(config.min_lead_days, config.max_lead_days);
  const double onset_day = failure_day - lead;
  const double base_temp = rng.uniform_real(28.0, 38.0);
  const double initial_poh = rng.uniform_real(1000.0, 30000.0);

  // Cumulative counters (SMART error counts are monotone).
  double realloc = 0.0, uncorrect = 0.0, timeouts = 0.0, pending = 0.0,
         offline_unc = 0.0;

  const double end_day =
      will_fail ? std::min(failure_day, config.horizon_days)
                : config.horizon_days;
  for (double day = 0.0; day <= end_day;
       day += config.sample_interval_days) {
    const bool degrading = will_fail && !silent && day >= onset_day;
    if (degrading) {
      const double into = day - onset_day;
      realloc = std::max(realloc, ramp_value(into, 2.0, rng));
      pending = std::max(pending, ramp_value(into, 1.2, rng));
      uncorrect = std::max(uncorrect, ramp_value(into, 0.6, rng));
      offline_unc = std::max(offline_unc, ramp_value(into, 0.4, rng));
      timeouts = std::max(timeouts, ramp_value(into, 0.2, rng));
    } else {
      realloc += benign_error_count(rng);
      pending += benign_error_count(rng) * 0.5;
    }

    SmartSample sample;
    sample.day = day;
    sample.values[kReallocatedSectors] = std::floor(realloc);
    sample.values[kReportedUncorrectable] = std::floor(uncorrect);
    sample.values[kCommandTimeout] = std::floor(timeouts);
    sample.values[kCurrentPendingSectors] = std::floor(pending);
    sample.values[kOfflineUncorrectable] = std::floor(offline_unc);
    sample.values[kTemperatureCelsius] =
        base_temp + rng.normal(0.0, 1.5) + (degrading ? 2.0 : 0.0);
    sample.values[kPowerOnHours] = initial_poh + day * 24.0;
    trace.samples.push_back(sample);
  }
  return trace;
}

std::vector<DiskTrace> generate_traces(const TraceConfig& config,
                                       fastpr::Rng& rng) {
  FASTPR_CHECK(config.num_disks >= 1);
  FASTPR_CHECK(config.failure_fraction >= 0.0 &&
               config.failure_fraction <= 1.0);
  const int num_failing = static_cast<int>(
      std::lround(config.failure_fraction * config.num_disks));
  const auto failing_ids =
      rng.sample_distinct(config.num_disks, num_failing);
  std::vector<bool> fails(static_cast<size_t>(config.num_disks), false);
  for (int id : failing_ids) fails[static_cast<size_t>(id)] = true;

  std::vector<DiskTrace> traces;
  traces.reserve(static_cast<size_t>(config.num_disks));
  for (int id = 0; id < config.num_disks; ++id) {
    const bool will_fail = fails[static_cast<size_t>(id)];
    const bool silent =
        will_fail && rng.chance(config.silent_failure_fraction);
    const double failure_day =
        will_fail
            ? rng.uniform_real(config.horizon_days / 2, config.horizon_days)
            : 0.0;
    traces.push_back(
        generate_trace(id, will_fail, silent, failure_day, config, rng));
  }
  return traces;
}

}  // namespace fastpr::predict
