// SMART attribute model.
//
// The paper takes accurate disk-failure prediction as an input (cited ML
// work reaches >=95% accuracy on SMART data). We do not have production
// SMART telemetry, so this module defines the attribute schema that the
// synthetic trace generator emits and the predictors consume — the same
// attributes the cited predictors use (reallocated sectors, pending
// sectors, uncorrectable errors, command timeouts, temperature,
// power-on hours).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace fastpr::predict {

/// Indices into SmartSample::values. Named after the standard SMART ids.
enum SmartAttr : int {
  kReallocatedSectors = 0,   // SMART 5
  kReportedUncorrectable,    // SMART 187
  kCommandTimeout,           // SMART 188
  kCurrentPendingSectors,    // SMART 197
  kOfflineUncorrectable,     // SMART 198
  kTemperatureCelsius,       // SMART 194
  kPowerOnHours,             // SMART 9
  kNumSmartAttrs,
};

constexpr std::array<std::string_view, kNumSmartAttrs> kSmartAttrNames = {
    "reallocated_sectors", "reported_uncorrectable", "command_timeout",
    "current_pending_sectors", "offline_uncorrectable",
    "temperature_celsius", "power_on_hours",
};

/// One SMART poll of one disk.
struct SmartSample {
  double day = 0.0;  // time of the sample, in days since trace start
  std::array<double, kNumSmartAttrs> values{};
};

/// A disk's SMART history plus ground truth for evaluation.
struct DiskTrace {
  int disk_id = -1;
  bool will_fail = false;
  /// Day the disk actually fails; only meaningful when will_fail.
  double failure_day = 0.0;
  std::vector<SmartSample> samples;
};

}  // namespace fastpr::predict
