// Synthetic SMART trace generator.
//
// Models the empirical shape reported by the disk-failure-prediction
// literature the paper cites: healthy disks show near-zero error counts
// with rare benign blips; failing disks develop an accelerating ramp of
// reallocated/pending/uncorrectable sectors starting days-to-weeks
// before the failure event. Temperature and power-on hours evolve
// benignly on both populations so a predictor must key on error counts.
#pragma once

#include "predict/smart.h"
#include "util/rng.h"

#include <vector>

namespace fastpr::predict {

struct TraceConfig {
  int num_disks = 100;
  double failure_fraction = 0.05;  // fraction of disks that fail
  double horizon_days = 90.0;      // trace length
  double sample_interval_days = 1.0;
  /// Degradation onset precedes failure by Uniform[min, max] days.
  double min_lead_days = 5.0;
  double max_lead_days = 20.0;
  /// Fraction of failing disks that fail with NO SMART symptoms at all
  /// (field studies report many failures show no SMART errors — these
  /// bound achievable recall).
  double silent_failure_fraction = 0.1;
};

/// Generates traces for a disk population. Failing disks are chosen
/// uniformly; failure day is Uniform[horizon/2, horizon] so every failing
/// trace contains its onset.
std::vector<DiskTrace> generate_traces(const TraceConfig& config,
                                       fastpr::Rng& rng);

/// Generates a single trace with explicit ground truth (used by tests).
DiskTrace generate_trace(int disk_id, bool will_fail, bool silent,
                         double failure_day, const TraceConfig& config,
                         fastpr::Rng& rng);

}  // namespace fastpr::predict
