#include "predict/predictor.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fastpr::predict {

namespace {

/// Latest sample with day <= as_of_day, or nullptr if none.
const SmartSample* latest_sample(const DiskTrace& trace, double as_of_day) {
  const SmartSample* best = nullptr;
  for (const auto& s : trace.samples) {
    if (s.day <= as_of_day) best = &s;
  }
  return best;
}

/// Slope (per day) of an attribute over the last `window_days` before
/// as_of_day; 0 when insufficient samples.
double recent_slope(const DiskTrace& trace, SmartAttr attr,
                    double as_of_day, double window_days) {
  const SmartSample* last = nullptr;
  const SmartSample* first = nullptr;
  for (const auto& s : trace.samples) {
    if (s.day > as_of_day) break;
    if (s.day >= as_of_day - window_days) {
      if (first == nullptr) first = &s;
      last = &s;
    }
  }
  if (first == nullptr || last == nullptr || last->day <= first->day) {
    return 0.0;
  }
  return (last->values[attr] - first->values[attr]) /
         (last->day - first->day);
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Features extract_features(const DiskTrace& trace, double as_of_day) {
  Features f;
  const SmartSample* s = latest_sample(trace, as_of_day);
  if (s == nullptr) return f;
  f.values[0] = std::log1p(s->values[kReallocatedSectors]);
  f.values[1] = std::log1p(s->values[kCurrentPendingSectors]);
  f.values[2] = std::log1p(s->values[kReportedUncorrectable]);
  f.values[3] = recent_slope(trace, kReallocatedSectors, as_of_day, 7.0);
  f.values[4] = recent_slope(trace, kCurrentPendingSectors, as_of_day, 7.0);
  return f;
}

ThresholdPredictor::ThresholdPredictor(double reallocated_threshold)
    : threshold_(reallocated_threshold) {
  FASTPR_CHECK(reallocated_threshold > 0);
}

double ThresholdPredictor::score(const DiskTrace& trace,
                                 double as_of_day) const {
  const SmartSample* s = latest_sample(trace, as_of_day);
  if (s == nullptr) return 0.0;
  // Saturating ratio: 0 at zero sectors, 0.5 exactly at the threshold.
  const double v = s->values[kReallocatedSectors];
  return v / (v + threshold_);
}

LogisticPredictor::LogisticPredictor() = default;

double LogisticPredictor::score(const DiskTrace& trace,
                                double as_of_day) const {
  // Fixed weights calibrated to the trace generator's ramp scales; they
  // stand in for a trained model. Levels are log-compressed (SMART
  // counts span decades), slopes are linear.
  const Features f = extract_features(trace, as_of_day);
  const double z = -6.0 + 1.1 * f.values[0] + 0.9 * f.values[1] +
                   0.8 * f.values[2] + 0.08 * f.values[3] +
                   0.08 * f.values[4];
  return sigmoid(z);
}

double EvalResult::precision() const {
  const int denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double EvalResult::recall() const {
  const int denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double EvalResult::false_alarm_rate() const {
  const int denom = false_positives + true_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(false_positives) / denom;
}

double EvalResult::accuracy() const {
  const int total = true_positives + false_positives + true_negatives +
                    false_negatives;
  return total == 0
             ? 0.0
             : static_cast<double>(true_positives + true_negatives) / total;
}

EvalResult evaluate(const FailurePredictor& predictor,
                    const std::vector<DiskTrace>& traces, double as_of_day,
                    double lookahead_days) {
  EvalResult r;
  for (const auto& trace : traces) {
    // A disk already dead by as_of_day is not a prediction target.
    if (trace.will_fail && trace.failure_day <= as_of_day) continue;
    const bool positive = trace.will_fail &&
                          trace.failure_day <= as_of_day + lookahead_days;
    const bool predicted = predictor.predicts_failure(trace, as_of_day);
    if (positive && predicted) ++r.true_positives;
    if (positive && !predicted) ++r.false_negatives;
    if (!positive && predicted) ++r.false_positives;
    if (!positive && !predicted) ++r.true_negatives;
  }
  return r;
}

int select_stf_disk(const FailurePredictor& predictor,
                    const std::vector<DiskTrace>& traces,
                    double as_of_day) {
  int best = -1;
  double best_score = 0.0;
  for (const auto& trace : traces) {
    if (trace.will_fail && trace.failure_day <= as_of_day) continue;
    const double s = predictor.score(trace, as_of_day);
    if (s >= predictor.decision_threshold() && s > best_score) {
      best = trace.disk_id;
      best_score = s;
    }
  }
  return best;
}

}  // namespace fastpr::predict
