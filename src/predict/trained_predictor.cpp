#include "predict/trained_predictor.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace fastpr::predict {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

struct Sample {
  Features features;
  bool positive = false;
};

}  // namespace

void TrainedLogisticPredictor::train(const std::vector<DiskTrace>& traces,
                                     const TrainConfig& config) {
  FASTPR_CHECK(config.epochs >= 1);
  FASTPR_CHECK(config.learning_rate > 0);
  FASTPR_CHECK(config.sample_stride_days > 0);

  // Build the training set: one sample per (disk, sampled day), labeled
  // by whether the disk fails within the lookahead.
  std::vector<Sample> samples;
  for (const auto& trace : traces) {
    if (trace.samples.empty()) continue;
    const double last_day = trace.samples.back().day;
    for (double day = config.sample_stride_days; day <= last_day;
         day += config.sample_stride_days) {
      if (trace.will_fail && trace.failure_day <= day) break;  // dead
      Sample s;
      s.features = extract_features(trace, day);
      s.positive = trace.will_fail &&
                   trace.failure_day <= day + config.lookahead_days;
      samples.push_back(s);
    }
  }
  FASTPR_CHECK_MSG(!samples.empty(), "no training samples extracted");

  weights_.fill(0.0);
  Rng rng(config.seed);
  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    for (size_t idx : order) {
      const Sample& s = samples[idx];
      double z = weights_[0];
      for (int f = 0; f < Features::kCount; ++f) {
        z += weights_[static_cast<size_t>(f) + 1] * s.features.values[f];
      }
      const double prediction = sigmoid(z);
      const double target = s.positive ? 1.0 : 0.0;
      // Class-weighted log-loss gradient with L2 decay.
      const double scale = s.positive ? config.positive_weight : 1.0;
      const double grad = scale * (prediction - target);
      weights_[0] -= config.learning_rate * grad;
      for (int f = 0; f < Features::kCount; ++f) {
        auto& w = weights_[static_cast<size_t>(f) + 1];
        w -= config.learning_rate *
             (grad * s.features.values[f] + config.weight_decay * w);
      }
    }
  }
  trained_ = true;
}

double TrainedLogisticPredictor::score(const DiskTrace& trace,
                                       double as_of_day) const {
  FASTPR_CHECK_MSG(trained_, "call train() before score()");
  const Features f = extract_features(trace, as_of_day);
  double z = weights_[0];
  for (int i = 0; i < Features::kCount; ++i) {
    z += weights_[static_cast<size_t>(i) + 1] * f.values[i];
  }
  return sigmoid(z);
}

}  // namespace fastpr::predict
