// Seeded Zipfian popularity sampler (YCSB-style skewed access).
//
// P(rank i) ∝ 1/(i+1)^theta over [0, n). theta 0 is uniform; the YCSB
// default 0.99 makes a handful of chunks absorb most foreground ops —
// the access pattern under which repair/foreground NIC contention
// actually hurts tail latency. Callers shuffle their item list with the
// same seed discipline so the hot ranks land on pseudo-random nodes.
//
// Sampling is a binary search over the precomputed CDF: O(log n) per
// draw, exact probabilities, no rejection loops — deterministic cost
// per op, which keeps the open-loop generator's pacing honest.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace fastpr::load {

class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta) {
    FASTPR_CHECK(n >= 1);
    FASTPR_CHECK(theta >= 0);
    cdf_.reserve(n);
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }

  size_t size() const { return cdf_.size(); }

  /// Draws one rank in [0, n). Thread-safe for distinct `rng`s (the
  /// sampler itself is immutable after construction).
  size_t operator()(Rng& rng) const {
    const double u = rng.uniform_real(0.0, 1.0);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const size_t rank = static_cast<size_t>(it - cdf_.begin());
    return std::min(rank, cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace fastpr::load
