// Exact sliding-window latency percentiles.
//
// A fixed-capacity ring of the most recent per-op latencies, with
// percentiles computed exactly (nth_element over a snapshot) rather
// than from log-bucketed histograms: the SLO control loop compares p99
// against a millisecond-scale target, where a 2× bucket boundary is
// the difference between "breach" and "fine". Deliberately independent
// of the telemetry library so foreground SLOs stay measurable under
// -DFASTPR_TELEMETRY=OFF — the throttler's feedback signal must not
// disappear with the observability build flag.
#pragma once

#include <cstdint>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace fastpr::load {

class LatencyWindow {
 public:
  explicit LatencyWindow(size_t capacity = 1 << 14);

  void observe(int64_t ns) FASTPR_EXCLUDES(mutex_);

  /// Total observations ever (not just those still in the window).
  int64_t count() const FASTPR_EXCLUDES(mutex_);

  /// q-quantile (q in [0, 1]) of the samples currently in the window,
  /// in seconds; 0 while empty. p99 = percentile(0.99).
  double percentile(double q) const FASTPR_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_{lock_order::kLoadWorkload};
  std::vector<int64_t> ring_ FASTPR_GUARDED_BY(mutex_);
  size_t capacity_;
  size_t next_ FASTPR_GUARDED_BY(mutex_) = 0;
  int64_t total_ FASTPR_GUARDED_BY(mutex_) = 0;
};

}  // namespace fastpr::load
