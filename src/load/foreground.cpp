#include "load/foreground.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "telemetry/trace.h"
#include "util/check.h"

namespace fastpr::load {

using cluster::ChunkRef;
using cluster::NodeId;

namespace {

/// Exponential inter-arrival gap (µs) for a Poisson process at `rate`.
int64_t exp_gap_us(Rng& rng, double rate_per_sec) {
  const double u = rng.uniform_real(1e-12, 1.0);
  return static_cast<int64_t>(-std::log(u) / rate_per_sec * 1e6);
}

/// Chunk universe = every chunk in the layout, shuffled so the Zipfian
/// hot set spreads over pseudo-random nodes.
std::vector<ChunkRef> chunk_universe(const cluster::StripeLayout& layout,
                                     uint64_t seed) {
  std::vector<ChunkRef> all;
  all.reserve(static_cast<size_t>(layout.total_chunks()));
  for (int s = 0; s < layout.num_stripes(); ++s) {
    for (int i = 0; i < layout.chunks_per_stripe(); ++i) {
      all.push_back(ChunkRef{s, i});
    }
  }
  Rng shuffler(seed ^ 0x217f0000ULL);
  shuffler.shuffle(all);
  return all;
}

}  // namespace

ForegroundWorkload::ForegroundWorkload(agent::Testbed& testbed,
                                       const ec::ErasureCode& code,
                                       const WorkloadOptions& options)
    : testbed_(testbed),
      code_(code),
      options_(options),
      chunks_(chunk_universe(testbed.layout(), options.seed)),
      zipf_(chunks_.size(), options.zipf_theta),
      global_(options.window_capacity) {
  FASTPR_CHECK(options.ops_per_sec > 0);
  FASTPR_CHECK(options.read_fraction >= 0 && options.read_fraction <= 1);
  FASTPR_CHECK(options.op_bytes > 0);
  FASTPR_CHECK(options.threads >= 1);
  chunk_bytes_ = static_cast<int64_t>(
      testbed_.oracle().generate(ChunkRef{0, 0})->size());
  const auto& layout = testbed_.layout();
  stripe_nodes_.reserve(static_cast<size_t>(layout.num_stripes()));
  for (int s = 0; s < layout.num_stripes(); ++s) {
    stripe_nodes_.push_back(layout.stripe_nodes(s));
  }
  // One slot per agent-backed node (storage + standby).
  const int num_nodes = layout.num_nodes();
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    nodes_.push_back(std::make_unique<PerNode>(options.window_capacity));
  }
}

ForegroundWorkload::~ForegroundWorkload() { stop(); }

void ForegroundWorkload::start() {
  if (running_.exchange(true)) return;
  // The trace clock's epoch is captured lazily at first use, so this
  // very call can legitimately read 0 µs — clamp to 1 so the "never
  // started" sentinel in stats()/sample() stays unambiguous.
  start_us_.store(std::max<int64_t>(1, telemetry::trace_now_us()),
                  std::memory_order_relaxed);
  threads_.reserve(static_cast<size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) {
    threads_.emplace_back([this, t] { worker(t); });
  }
}

void ForegroundWorkload::stop() {
  running_.store(false);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void ForegroundWorkload::set_degraded(NodeId node) {
  FASTPR_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
  nodes_[static_cast<size_t>(node)]->degraded.store(true);
}

bool ForegroundWorkload::node_degraded(NodeId node) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return true;
  if (nodes_[static_cast<size_t>(node)]->degraded.load()) return true;
  const net::FaultyTransport* faulty = const_cast<ForegroundWorkload*>(this)
                                           ->testbed_.faulty();
  return faulty != nullptr && faulty->crashed(node);
}

bool ForegroundWorkload::run_degraded_read(
    ChunkRef chunk, int64_t slice, std::vector<NodeId>& touched) {
  const auto& placement = stripe_nodes_[static_cast<size_t>(chunk.stripe)];
  std::vector<bool> available(placement.size(), true);
  for (size_t j = 0; j < placement.size(); ++j) {
    if (node_degraded(placement[j])) available[j] = false;
  }
  std::vector<int> helpers;
  try {
    helpers = code_.repair_helpers(chunk.index, available);
  } catch (const CheckFailure&) {
    return false;  // too many nodes down — the read just fails
  }

  std::vector<std::vector<uint8_t>> helper_data;
  for (int h : helpers) {
    const NodeId node = placement[static_cast<size_t>(h)];
    auto& store = testbed_.store(node);
    if (options_.verify_degraded) {
      auto data = store.read_unthrottled(ChunkRef{chunk.stripe, h});
      if (!data.has_value()) return false;  // helper read error
      helper_data.push_back(std::move(*data));
    }
    store.charge_io(slice);
    if (auto* inproc = testbed_.inproc()) inproc->charge_tx(node, slice);
    touched.push_back(node);
  }

  if (options_.verify_degraded) {
    std::vector<ec::ConstChunk> spans;
    spans.reserve(helper_data.size());
    for (const auto& d : helper_data) {
      FASTPR_CHECK(static_cast<int64_t>(d.size()) >= slice);
      spans.emplace_back(d.data(), static_cast<size_t>(slice));
    }
    std::vector<uint8_t> out(static_cast<size_t>(slice));
    code_.repair_chunk(chunk.index, helpers, spans,
                       ec::MutChunk(out.data(), out.size()));
    const auto expected = testbed_.oracle().generate(chunk);
    if (!expected.has_value() ||
        !std::equal(out.begin(), out.end(), expected->begin())) {
      verify_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return true;
}

bool ForegroundWorkload::run_op(Rng& rng, std::vector<NodeId>& touched) {
  const ChunkRef chunk = chunks_[zipf_(rng)];
  const NodeId home =
      stripe_nodes_[static_cast<size_t>(chunk.stripe)]
                   [static_cast<size_t>(chunk.index)];
  const int64_t slice = std::min(options_.op_bytes, chunk_bytes_);
  const bool is_read = rng.chance(options_.read_fraction);

  if (is_read) {
    if (node_degraded(home)) {
      degraded_reads_.fetch_add(1, std::memory_order_relaxed);
      return run_degraded_read(chunk, slice, touched);
    }
    reads_.fetch_add(1, std::memory_order_relaxed);
    testbed_.store(home).charge_io(slice);
    if (auto* inproc = testbed_.inproc()) inproc->charge_tx(home, slice);
    touched.push_back(home);
    return true;
  }

  // Writes land on the chunk's home, or on the stripe's first healthy
  // node when the home is degraded (surviving-copy redirect).
  NodeId target = home;
  if (node_degraded(target)) {
    target = cluster::kNoNode;
    for (NodeId n : stripe_nodes_[static_cast<size_t>(chunk.stripe)]) {
      if (!node_degraded(n)) {
        target = n;
        break;
      }
    }
    if (target == cluster::kNoNode) return false;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  testbed_.store(target).charge_io(slice);
  if (auto* inproc = testbed_.inproc()) inproc->charge_rx(target, slice);
  touched.push_back(target);
  return true;
}

void ForegroundWorkload::worker(int index) {
  Rng rng(options_.seed * 7919 + static_cast<uint64_t>(index));
  const double rate = options_.ops_per_sec / options_.threads;
  int64_t scheduled_us = telemetry::trace_now_us();
  std::vector<NodeId> touched;
  while (running_.load(std::memory_order_relaxed)) {
    scheduled_us += exp_gap_us(rng, rate);
    // Sleep in short bounded naps so stop() joins promptly; once behind
    // schedule, no sleeping — the backlog is the open-loop queue whose
    // wait lands in the measured latency.
    while (running_.load(std::memory_order_relaxed)) {
      const int64_t ahead_us = scheduled_us - telemetry::trace_now_us();
      if (ahead_us <= 0) break;
      std::this_thread::sleep_for(
          std::chrono::microseconds(std::min<int64_t>(ahead_us, 5000)));
    }
    if (!running_.load(std::memory_order_relaxed)) break;

    touched.clear();
    const bool ok = run_op(rng, touched);
    if (!ok) {
      failed_ops_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Latency from the SCHEDULED arrival: queueing delay while repair
    // hogs the buckets is the whole point of the measurement.
    const int64_t latency_ns =
        (telemetry::trace_now_us() - scheduled_us) * 1000;
    global_.observe(latency_ns);
    const int64_t per_node_bytes =
        options_.op_bytes / std::max<size_t>(touched.size(), 1);
    for (NodeId node : touched) {
      auto& pn = *nodes_[static_cast<size_t>(node)];
      pn.window.observe(latency_ns);
      pn.bytes.fetch_add(per_node_bytes, std::memory_order_relaxed);
    }
  }
}

agent::NodePressure ForegroundWorkload::sample(NodeId node) {
  agent::NodePressure pressure;
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return pressure;
  const int64_t start = start_us_.load(std::memory_order_relaxed);
  if (start == 0) return pressure;
  auto& pn = *nodes_[static_cast<size_t>(node)];
  pressure.p99_seconds = pn.window.percentile(0.99);
  const double elapsed_s =
      static_cast<double>(telemetry::trace_now_us() - start) / 1e6;
  if (elapsed_s > 0) {
    pressure.fg_bytes_per_sec =
        static_cast<double>(pn.bytes.load(std::memory_order_relaxed)) /
        elapsed_s;
  }
  return pressure;
}

WorkloadStats ForegroundWorkload::stats() const {
  WorkloadStats s;
  s.reads = reads_.load();
  s.writes = writes_.load();
  s.degraded_reads = degraded_reads_.load();
  s.failed_ops = failed_ops_.load();
  s.verify_failures = verify_failures_.load();
  s.p50_seconds = global_.percentile(0.50);
  s.p99_seconds = global_.percentile(0.99);
  s.p999_seconds = global_.percentile(0.999);
  const int64_t start = start_us_.load();
  if (start > 0) {
    const double elapsed_s =
        static_cast<double>(telemetry::trace_now_us() - start) / 1e6;
    if (elapsed_s > 0) {
      s.achieved_ops_per_sec =
          static_cast<double>(global_.count()) / elapsed_s;
    }
  }
  return s;
}

}  // namespace fastpr::load
