#include "load/latency_window.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fastpr::load {

LatencyWindow::LatencyWindow(size_t capacity) : capacity_(capacity) {
  FASTPR_CHECK(capacity >= 1);
}

void LatencyWindow::observe(int64_t ns) {
  MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(ns);
  } else {
    ring_[next_] = ns;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

int64_t LatencyWindow::count() const {
  MutexLock lock(mutex_);
  return total_;
}

double LatencyWindow::percentile(double q) const {
  FASTPR_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<int64_t> samples;
  {
    MutexLock lock(mutex_);
    if (ring_.empty()) return 0;
    samples = ring_;  // snapshot; nth_element runs outside the lock
  }
  const size_t rank = std::min(
      samples.size() - 1,
      static_cast<size_t>(std::floor(q * static_cast<double>(samples.size()))));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<ptrdiff_t>(rank),
                   samples.end());
  return static_cast<double>(samples[rank]) / 1e9;
}

}  // namespace fastpr::load
